//! The central invariant of the paper: a *reliable* variable-latency adder
//! never returns a wrong sum, on any input distribution — speculation only
//! changes latency, never values. Exercised across engines, widths and
//! distributions, including adversarial patterns.

use bitnum::rng::{RandomBits, Xoshiro256};
use bitnum::UBig;
use proptest::prelude::*;
use vlcsa::{Vlcsa1, Vlcsa2};
use workloads::dist::{Distribution, OperandSource};

fn all_distributions() -> Vec<Distribution> {
    vec![
        Distribution::UnsignedUniform,
        Distribution::TwosComplementUniform,
        Distribution::UnsignedGaussian {
            sigma: (1u64 << 32) as f64,
        },
        Distribution::paper_gaussian(),
        Distribution::TwosComplementGaussian { sigma: 300.0 },
    ]
}

#[test]
fn vlcsa1_exact_on_every_distribution() {
    for dist in all_distributions() {
        for (n, k) in [(64usize, 14usize), (65, 9), (128, 15), (512, 17)] {
            let adder = Vlcsa1::new(n, k);
            let mut src = OperandSource::new(dist, n, 0xAA);
            for _ in 0..5_000 {
                let (a, b) = src.next_pair();
                let outcome = adder.add(&a, &b);
                let (sum, cout) = a.overflowing_add(&b);
                assert_eq!(outcome.sum, sum, "{dist:?} n={n} k={k}");
                assert_eq!(outcome.cout, cout, "{dist:?} n={n} k={k}");
            }
        }
    }
}

#[test]
fn vlcsa2_exact_on_every_distribution() {
    for dist in all_distributions() {
        for (n, k) in [(64usize, 13usize), (100, 9), (512, 13)] {
            let adder = Vlcsa2::new(n, k);
            let mut src = OperandSource::new(dist, n, 0xBB);
            for _ in 0..5_000 {
                let (a, b) = src.next_pair();
                let outcome = adder.add(&a, &b);
                let (sum, cout) = a.overflowing_add(&b);
                assert_eq!(outcome.sum, sum, "{dist:?} n={n} k={k}");
                assert_eq!(outcome.cout, cout, "{dist:?} n={n} k={k}");
            }
        }
    }
}

#[test]
fn adversarial_carry_patterns() {
    // Hand-built worst cases: maximal chains, chains at window boundaries,
    // alternating patterns, all-ones, wrap-around.
    for (n, k) in [(64usize, 14usize), (512, 17)] {
        let v1 = Vlcsa1::new(n, k);
        let v2 = Vlcsa2::new(n, k.max(13) - 4);
        let mut patterns: Vec<(UBig, UBig)> = vec![
            (UBig::ones(n), UBig::from_u128(1, n)),
            (UBig::ones(n), UBig::ones(n)),
            (UBig::zero(n), UBig::zero(n)),
            (UBig::from_u128(1, n), UBig::ones(n).shr(1)),
        ];
        // A generate just below each window boundary with propagates above.
        for boundary in (k..n).step_by(k) {
            let mut a = UBig::zero(n);
            a.set_bit(boundary - 1, true);
            let mut b = UBig::ones(n).shl(boundary - 1);
            b.set_bit(boundary - 1, true);
            patterns.push((a, b.resize(n)));
        }
        for (a, b) in patterns {
            let (sum, cout) = a.overflowing_add(&b);
            let o1 = v1.add(&a, &b);
            assert_eq!((o1.sum, o1.cout), (sum.clone(), cout), "VLCSA1 {a} {b}");
            let o2 = v2.add(&a, &b);
            assert_eq!((o2.sum, o2.cout), (sum, cout), "VLCSA2 {a} {b}");
        }
    }
}

#[test]
fn sign_mixed_small_values_single_cycle_on_vlcsa2() {
    // The whole point of VLCSA 2: small-positive + small-negative pairs
    // complete in one cycle (Ch. 6), not two.
    let n = 256;
    let adder = Vlcsa2::new(n, 13);
    let mut rng = Xoshiro256::seed_from_u64(3);
    let mut one_cycle = 0usize;
    let total = 2_000;
    for _ in 0..total {
        let pos = (rng.next_u64() >> 24) as i128 + 1;
        let neg = -((rng.next_u64() >> 32) as i128) - 1;
        let a = UBig::from_i128(pos, n);
        let b = UBig::from_i128(neg, n);
        let outcome = adder.add(&a, &b);
        assert_eq!(outcome.sum, a.wrapping_add(&b));
        one_cycle += (outcome.cycles == 1) as usize;
    }
    assert!(
        one_cycle as f64 > 0.98 * total as f64,
        "only {one_cycle}/{total} sign-mixed adds were single-cycle"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn vlcsa1_exact_for_arbitrary_parameters(
        seed in any::<u64>(),
        n in 2usize..200,
        k in 1usize..40,
    ) {
        let k = k.min(n).min(63);
        let adder = Vlcsa1::new(n, k);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        for _ in 0..50 {
            let a = UBig::random(n, &mut rng);
            let b = UBig::random(n, &mut rng);
            let outcome = adder.add(&a, &b);
            let (sum, cout) = a.overflowing_add(&b);
            prop_assert_eq!(&outcome.sum, &sum);
            prop_assert_eq!(outcome.cout, cout);
        }
    }

    #[test]
    fn vlcsa2_exact_for_arbitrary_parameters(
        seed in any::<u64>(),
        n in 2usize..200,
        k in 1usize..40,
    ) {
        let k = k.min(n).min(63);
        let adder = Vlcsa2::new(n, k);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        for _ in 0..50 {
            let a = UBig::random(n, &mut rng);
            let b = UBig::random(n, &mut rng);
            let outcome = adder.add(&a, &b);
            let (sum, cout) = a.overflowing_add(&b);
            prop_assert_eq!(&outcome.sum, &sum);
            prop_assert_eq!(outcome.cout, cout);
        }
    }
}

//! Head-of-line isolation across serve lanes: a stalled engine must not
//! delay any other `(engine, width)` lane.
//!
//! This is the scale-out runtime's core claim — per-lane batchers, queues
//! and workers mean a slow engine head-of-line-blocks only its own
//! traffic — pinned deterministically, with no sleeps: a synthetic
//! `gated` engine (registered through the [`RegistryCache::with_factory`]
//! seam) parks its worker inside `add_batch` on a condvar handshake, the
//! test *observes* the park, drives a full burst through other lanes to
//! completion while the gate is still closed, and only then releases the
//! stalled lane. With a shared worker pool and `workers: 1`, step two
//! would hang forever; with per-lane workers it cannot.
//!
//! The scenario runs at a one-limb and a multi-limb width, and the whole
//! file compiles under both slab words (`DefaultWord` is `W256`, or `u64`
//! under `--cfg vlcsa_word64`), so the isolation property is pinned for
//! both word widths.

use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Duration;

use bitnum::batch::{BitSlab, DefaultWord};
use bitnum::UBig;
use vlcsa::batch::BatchOutcome;
use vlcsa::engine::{Engine, Registry, ScalarEngine};
use vlcsa::route::{RouteConfig, Router};
use vlcsa::AddOutcome;
use vlcsa_serve::{RegistryCache, ServeConfig, Service};

/// The rendezvous between the test and the stalled worker: the worker
/// reports how many `add_batch` calls are parked inside the gate, the
/// test waits for that count to rise, then opens the gate.
struct Gate {
    state: Mutex<GateState>,
    changed: Condvar,
}

struct GateState {
    parked: usize,
    open: bool,
}

impl Gate {
    fn new() -> Self {
        Self {
            state: Mutex::new(GateState {
                parked: 0,
                open: false,
            }),
            changed: Condvar::new(),
        }
    }

    /// Called by the engine, from a lane worker: announce the park, then
    /// block until the gate opens.
    fn park(&self) {
        let mut state = self.state.lock().expect("gate lock");
        state.parked += 1;
        self.changed.notify_all();
        while !state.open {
            state = self.changed.wait(state).expect("gate lock");
        }
    }

    /// Called by the test: block until `n` workers are parked. Bounded so
    /// a regression fails the test instead of wedging the suite.
    fn await_parked(&self, n: usize) {
        let deadline = Duration::from_secs(30);
        let state = self.state.lock().expect("gate lock");
        let (state, timeout) = self
            .changed
            .wait_timeout_while(state, deadline, |s| s.parked < n)
            .expect("gate lock");
        assert!(
            !timeout.timed_out(),
            "no worker reached the gated engine: {} parked",
            state.parked
        );
    }

    fn open(&self) {
        let mut state = self.state.lock().expect("gate lock");
        state.open = true;
        self.changed.notify_all();
    }
}

/// An always-stall engine: scalar path delegates untouched, batch path
/// parks on the gate before delegating — so a request through its lane
/// wedges that lane's worker, visibly and releasably, while computing the
/// correct sum once released.
struct GatedEngine {
    inner: Box<dyn Engine<DefaultWord>>,
    gate: Arc<Gate>,
}

impl ScalarEngine for GatedEngine {
    fn name(&self) -> &'static str {
        "gated"
    }

    fn width(&self) -> usize {
        self.inner.width()
    }

    fn add_one(&self, a: &UBig, b: &UBig) -> AddOutcome {
        self.inner.add_one(a, b)
    }
}

impl Engine<DefaultWord> for GatedEngine {
    fn add_batch(
        &self,
        a: &BitSlab<DefaultWord>,
        b: &BitSlab<DefaultWord>,
    ) -> BatchOutcome<DefaultWord> {
        self.gate.park();
        self.inner.add_batch(a, b)
    }
}

/// The production registry plus the `gated` engine, sharing one gate
/// across widths.
fn gated_cache(gate: &Arc<Gate>) -> RegistryCache {
    let gate = Arc::clone(gate);
    RegistryCache::with_factory(move |width| {
        let mut engines = Registry::for_width(width).into_engines();
        let inner = Registry::for_width(width)
            .into_engines()
            .into_iter()
            .find(|e| e.name() == "ripple")
            .expect("ripple exists at every width");
        engines.push(Box::new(GatedEngine {
            inner,
            gate: Arc::clone(&gate),
        }));
        Registry::from_engines(width, engines)
    })
}

/// One worker per lane is the sharpest configuration: under the old
/// shared pool this is exactly the shape where one stalled `add_batch`
/// wedged the whole service.
fn one_worker_config() -> ServeConfig {
    ServeConfig {
        max_wait: Duration::from_millis(1),
        workers: 1,
        exec_threads: 1,
        ..ServeConfig::default()
    }
}

fn stalled_lane_does_not_delay_others_at(width: usize) {
    let gate = Arc::new(Gate::new());
    let service = Service::start_custom(
        one_worker_config(),
        Arc::new(Router::new(RouteConfig::default())),
        Arc::new(gated_cache(&gate)),
    );

    // One request down the gated lane; wait until its worker is provably
    // parked inside `add_batch` — not merely queued.
    let (gated_tx, gated_rx) = mpsc::channel();
    service
        .submit(
            "gated",
            UBig::from_u128(41, width),
            UBig::from_u128(1, width),
            Box::new(move |result| {
                let _ = gated_tx.send(result);
            }),
        )
        .expect("gated submit");
    gate.await_parked(1);

    // With the gate still closed, a burst through two *other* lanes (the
    // same width, and engine families on both sides of the latency
    // trade-off) must run to completion.
    let (tx, rx) = mpsc::channel();
    let burst = 64u64;
    for i in 0..burst {
        let engine = if i % 2 == 0 { "vlcsa1" } else { "carry-select" };
        let tx = tx.clone();
        service
            .submit(
                engine,
                UBig::from_u128(i as u128, width),
                UBig::from_u128(i as u128 * 5, width),
                Box::new(move |result| {
                    let _ = tx.send((i, result));
                }),
            )
            .expect("burst submit");
    }
    drop(tx);
    let mut seen = 0u64;
    while let Ok((i, result)) = rx.recv_timeout(Duration::from_secs(30)) {
        assert_eq!(result.sum.to_u128(), Some(i as u128 * 6), "request {i}");
        seen += 1;
        if seen == burst {
            break;
        }
    }
    assert_eq!(
        seen, burst,
        "burst answered while the gated lane is stalled"
    );

    // The stalled group really has not completed: workers record a
    // group's stats only after `add_batch` returns, so `gated` must be
    // absent from the engine counters while both its neighbours served
    // the full burst.
    let stats = service.stats();
    assert!(
        stats.engine("gated").is_none(),
        "gated group completed early: {:?}",
        stats.engines
    );
    assert_eq!(
        stats.engine("vlcsa1").expect("vlcsa1 served").lanes
            + stats
                .engine("carry-select")
                .expect("carry-select served")
                .lanes,
        burst,
        "{:?}",
        stats.engines
    );
    assert!(
        stats.lane("gated", width).is_some(),
        "the gated lane exists: {:?}",
        stats.lanes
    );

    // Release the gate: the stalled request completes with the exact sum,
    // proving the lane was wedged, not dead.
    gate.open();
    let released = gated_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("gated reply after release");
    assert_eq!(released.sum.to_u128(), Some(42));
    let stats = service.stats();
    assert_eq!(stats.engine("gated").expect("gated ran").lanes, 1);

    service.shutdown();
}

#[test]
fn stalled_lane_does_not_delay_others_one_limb() {
    stalled_lane_does_not_delay_others_at(64);
}

#[test]
fn stalled_lane_does_not_delay_others_multi_limb() {
    stalled_lane_does_not_delay_others_at(100);
}

/// The converse guarantee: traffic on healthy lanes does not leak into a
/// stalled lane's queue accounting — the gated lane's depth stays exactly
/// its own backlog.
#[test]
fn stalled_lane_keeps_only_its_own_backlog() {
    let gate = Arc::new(Gate::new());
    let service = Service::start_custom(
        one_worker_config(),
        Arc::new(Router::new(RouteConfig::default())),
        Arc::new(gated_cache(&gate)),
    );
    let (gated_tx, gated_rx) = mpsc::channel();
    for _ in 0..3 {
        let tx = gated_tx.clone();
        service
            .submit(
                "gated",
                UBig::from_u128(1, 64),
                UBig::from_u128(2, 64),
                Box::new(move |result| {
                    let _ = tx.send(result);
                }),
            )
            .expect("gated submit");
    }
    drop(gated_tx);
    gate.await_parked(1);
    // One group is wedged in the worker; serve the healthy lane fully.
    let healthy = service
        .add_blocking("vlcsa2", UBig::from_u128(20, 64), UBig::from_u128(22, 64))
        .expect("healthy lane");
    assert_eq!(healthy.sum.to_u128(), Some(42));
    let stats = service.stats();
    let healthy_lane = stats.lane("vlcsa2", 64).expect("vlcsa2 lane");
    assert_eq!(
        (healthy_lane.depth, healthy_lane.occupancy),
        (0, 0),
        "healthy lane drained: {:?}",
        stats.lanes
    );
    gate.open();
    let mut answered = 0;
    while gated_rx.recv_timeout(Duration::from_secs(30)).is_ok() {
        answered += 1;
    }
    assert_eq!(answered, 3, "every gated request answered after release");
    service.shutdown();
}

//! Word-equivalence property suite: every registry engine computes the
//! same function over `u64` slabs and `W256` slabs, lane for lane.
//!
//! The `Word` abstraction promises that widening the lane word is purely a
//! throughput change — 4× the lanes per word operation, zero semantic
//! drift. This suite pins that promise across the whole engine surface:
//!
//! * `BitSlab<u64>` vs `BitSlab<W256>` through `Engine::add_batch` for
//!   every family `Registry` knows, at lane counts that are *not*
//!   multiples of 64 (so the `W256` lane mask has a partial limb);
//! * the partial-final-chunk `WideSlab` path through `Executor::run`,
//!   where the two words chunk the same workload differently (64-lane vs
//!   256-lane chunks) and must still merge to identical per-lane results;
//! * per-lane carry-out, stall flag and cycle accounting, not just sums.

use bitnum::batch::{BitSlab, WideSlab, Word, W256, W512};
use bitnum::UBig;
use proptest::prelude::*;
use vlcsa::engine::Registry;
use vlcsa::exec::Executor;
use vlcsa::program::{Operand, Program};
use workloads::dist::{Distribution, OperandSource};

/// Lane counts chosen to straddle both words' chunk boundaries and leave
/// partial final chunks: not multiples of 64, below/above 64 and 256.
const LANE_CASES: [usize; 6] = [1, 37, 63, 65, 130, 300];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Single-slab path: for every registry engine, `add_batch` over a
    /// `BitSlab<W256>` equals `add_batch` over the same lanes as
    /// `BitSlab<u64>` chunks — sums, carry-outs and stall words.
    #[test]
    fn registry_engines_agree_across_words(
        width in 1usize..150,
        lanes in 1usize..=256,
        seed in any::<u64>(),
    ) {
        let mut src = OperandSource::new(Distribution::paper_gaussian(), width, seed);
        let a: Vec<UBig> = (0..lanes).map(|_| src.next_operand()).collect();
        let b: Vec<UBig> = (0..lanes).map(|_| src.next_operand()).collect();
        let wide_a = BitSlab::<W256>::from_lanes(&a);
        let wide_b = BitSlab::<W256>::from_lanes(&b);
        let narrow = Registry::<u64>::for_width_word(width);
        let wide = Registry::<W256>::for_width_word(width);
        prop_assert_eq!(narrow.names(), wide.names());
        for (ne, we) in narrow.engines().iter().zip(wide.engines()) {
            let wide_out = we.add_batch(&wide_a, &wide_b);
            for (c, chunk) in a.chunks(64).enumerate() {
                let ca = BitSlab::<u64>::from_lanes(chunk);
                let cb = BitSlab::<u64>::from_lanes(&b[c * 64..c * 64 + chunk.len()]);
                let narrow_out = ne.add_batch(&ca, &cb);
                prop_assert_eq!(
                    wide_out.cout.limb(c), narrow_out.cout,
                    "{} cout chunk {} width {}", ne.name(), c, width
                );
                prop_assert_eq!(
                    wide_out.flagged.limb(c), narrow_out.flagged,
                    "{} flagged chunk {} width {}", ne.name(), c, width
                );
                for l in 0..chunk.len() {
                    prop_assert_eq!(
                        wide_out.sum.lane(c * 64 + l),
                        narrow_out.sum.lane(l),
                        "{} sum chunk {} lane {}", ne.name(), c, l
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Program path across words: a random server-shaped add-DAG run
    /// through `Program::run_csa` (one carry-resolve for all lanes) over
    /// `u64` slabs and `W256` slabs — at lane counts leaving partial
    /// final chunks for both — is bit-identical per lane to the scalar
    /// fold, with identical resolve cycles, for every registry engine.
    #[test]
    fn program_csa_agrees_across_words(
        width in 1usize..100,
        lanes in 1usize..=300,
        inputs in 1usize..6,
        steps in 0usize..8,
        seed in any::<u64>(),
    ) {
        use bitnum::rng::{RandomBits, Xoshiro256};
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut program = Program::new(inputs).expect("valid input count");
        for s in 0..steps {
            let draw = |rng: &mut Xoshiro256| {
                let pick = (rng.next_u64() % (inputs + s) as u64) as usize;
                if pick < inputs {
                    Operand::Input(pick)
                } else {
                    Operand::Temp(pick - inputs)
                }
            };
            let (x, y) = (draw(&mut rng), draw(&mut rng));
            program.push(x, y).expect("operands in range");
        }
        let mut src = OperandSource::new(Distribution::paper_gaussian(), width, seed ^ 0x9E);
        let lanes_ops: Vec<Vec<UBig>> = (0..inputs)
            .map(|_| (0..lanes).map(|_| src.next_operand()).collect())
            .collect();
        let narrow_in: Vec<WideSlab<u64>> =
            lanes_ops.iter().map(|ops| WideSlab::from_lanes(ops)).collect();
        let wide_in: Vec<WideSlab<W256>> =
            lanes_ops.iter().map(|ops| WideSlab::from_lanes(ops)).collect();
        let narrow_registry = Registry::<u64>::for_width_word(width);
        let wide_registry = Registry::<W256>::for_width_word(width);
        let exec = Executor::new(2);
        for (ne, we) in narrow_registry.engines().iter().zip(wide_registry.engines()) {
            let narrow_out = program.run_csa(ne.as_ref(), &exec, &narrow_in);
            let wide_out = program.run_csa(we.as_ref(), &exec, &wide_in);
            prop_assert_eq!(narrow_out.stalls(), wide_out.stalls(), "{}", ne.name());
            for l in 0..lanes {
                let ops: Vec<UBig> = lanes_ops.iter().map(|o| o[l].clone()).collect();
                let expect = program.eval_scalar(&ops);
                prop_assert_eq!(
                    &narrow_out.sum.lane(l), &expect,
                    "{} narrow lane {} spec `{}`", ne.name(), l, program.spec()
                );
                prop_assert_eq!(
                    &wide_out.sum.lane(l), &expect,
                    "{} wide lane {} spec `{}`", ne.name(), l, program.spec()
                );
                prop_assert_eq!(
                    narrow_out.cycles(l), wide_out.cycles(l),
                    "{} cycles lane {}", ne.name(), l
                );
            }
        }
    }
}

/// WideSlab path: the sharded executor over `WideSlab<u64>` (64-lane
/// chunks) and `WideSlab<W256>` (256-lane chunks) produces identical
/// per-lane sums, carry-outs and cycles for every registry engine — at
/// every thread count, including workloads whose final chunk is partial
/// for both words.
#[test]
fn executor_agrees_across_words_and_thread_counts() {
    let width = 64;
    let narrow_registry = Registry::<u64>::for_width_word(width);
    let wide_registry = Registry::<W256>::for_width_word(width);
    for &lanes in &LANE_CASES {
        let mut src = OperandSource::new(Distribution::paper_gaussian(), width, lanes as u64);
        let a: Vec<UBig> = (0..lanes).map(|_| src.next_operand()).collect();
        let b: Vec<UBig> = (0..lanes).map(|_| src.next_operand()).collect();
        let na = bitnum::batch::WideSlab::<u64>::from_lanes(&a);
        let nb = bitnum::batch::WideSlab::<u64>::from_lanes(&b);
        let wa = bitnum::batch::WideSlab::<W256>::from_lanes(&a);
        let wb = bitnum::batch::WideSlab::<W256>::from_lanes(&b);
        assert_eq!(na.lanes_per_chunk(), 64);
        assert_eq!(wa.lanes_per_chunk(), 256);
        for (ne, we) in narrow_registry
            .engines()
            .iter()
            .zip(wide_registry.engines())
        {
            for threads in [1usize, 2, 4] {
                let exec = Executor::new(threads);
                let narrow_out = exec.run(ne.as_ref(), &na, &nb);
                let wide_out = exec.run(we.as_ref(), &wa, &wb);
                assert_eq!(
                    narrow_out.stalls(),
                    wide_out.stalls(),
                    "{} lanes={lanes} threads={threads}",
                    ne.name()
                );
                for l in 0..lanes {
                    assert_eq!(
                        narrow_out.sum.lane(l),
                        wide_out.sum.lane(l),
                        "{} sum lane {l} lanes={lanes} threads={threads}",
                        ne.name()
                    );
                    assert_eq!(
                        narrow_out.cout(l),
                        wide_out.cout(l),
                        "{} cout lane {l}",
                        ne.name()
                    );
                    assert_eq!(
                        narrow_out.cycles(l),
                        wide_out.cycles(l),
                        "{} cycles lane {l}",
                        ne.name()
                    );
                }
            }
        }
    }
}

/// The eight-limb scaling probe obeys the same contract: `WideSlab<W512>`
/// (512-lane chunks) through the sharded executor is bit-identical per
/// lane to `WideSlab<u64>` for every registry engine, at lane counts
/// that leave partial final chunks on both sides of 512 — so any
/// throughput measured for `W512` is semantics-free, purely a word-width
/// change.
#[test]
fn w512_executor_agrees_with_u64() {
    let width = 64;
    let narrow_registry = Registry::<u64>::for_width_word(width);
    let probe_registry = Registry::<W512>::for_width_word(width);
    assert_eq!(narrow_registry.names(), probe_registry.names());
    for &lanes in &[1usize, 63, 300, 513, 700] {
        let mut src = OperandSource::new(Distribution::paper_gaussian(), width, lanes as u64);
        let a: Vec<UBig> = (0..lanes).map(|_| src.next_operand()).collect();
        let b: Vec<UBig> = (0..lanes).map(|_| src.next_operand()).collect();
        let na = WideSlab::<u64>::from_lanes(&a);
        let nb = WideSlab::<u64>::from_lanes(&b);
        let wa = WideSlab::<W512>::from_lanes(&a);
        let wb = WideSlab::<W512>::from_lanes(&b);
        assert_eq!(wa.lanes_per_chunk(), 512);
        for (ne, we) in narrow_registry
            .engines()
            .iter()
            .zip(probe_registry.engines())
        {
            for threads in [1usize, 3] {
                let exec = Executor::new(threads);
                let narrow_out = exec.run(ne.as_ref(), &na, &nb);
                let probe_out = exec.run(we.as_ref(), &wa, &wb);
                assert_eq!(
                    narrow_out.stalls(),
                    probe_out.stalls(),
                    "{} lanes={lanes} threads={threads}",
                    ne.name()
                );
                for l in 0..lanes {
                    assert_eq!(
                        narrow_out.sum.lane(l),
                        probe_out.sum.lane(l),
                        "{} sum lane {l} lanes={lanes}",
                        ne.name()
                    );
                    assert_eq!(
                        narrow_out.cout(l),
                        probe_out.cout(l),
                        "{} cout lane {l}",
                        ne.name()
                    );
                    assert_eq!(
                        narrow_out.cycles(l),
                        probe_out.cycles(l),
                        "{} cycles lane {l}",
                        ne.name()
                    );
                }
            }
        }
    }
}

/// The default registry is the wide word (unless the build forces
/// `vlcsa_word64`) and agrees with both explicit registries — the
/// "Registry-visible choice" anchor: callers that never name a word get
/// exactly the `W256` semantics pinned above.
#[test]
fn default_registry_matches_explicit_word() {
    use bitnum::batch::DefaultWord;
    let registry = Registry::for_width(64);
    assert_eq!(
        registry.names(),
        Registry::<u64>::for_width_word(64).names()
    );
    let mut src = OperandSource::new(Distribution::UnsignedUniform, 64, 7);
    let lanes = DefaultWord::LANES.min(97);
    let (a, b) = src.next_batch(lanes);
    for engine in registry.engines() {
        let out = engine.add_batch(&a, &b);
        for l in 0..lanes {
            let one = engine.add_one(&a.lane(l), &b.lane(l));
            assert_eq!(out.sum.lane(l), one.sum, "{} lane {l}", engine.name());
            assert_eq!(out.cout.bit(l), one.cout, "{} lane {l}", engine.name());
        }
    }
}

//! Smoke tests for the experiment harness: every registered artifact runs
//! at a reduced sample count and produces a plausible table.

use vlcsa_bench::{registry, run_by_id, Config};

fn tiny() -> Config {
    Config {
        mc_samples: 5_000,
        out_dir: None,
    }
}

#[test]
fn fast_experiments_all_run() {
    // Everything except the trace-heavy and synthesis-heavy artifacts runs
    // here; those get dedicated tests below so failures localize.
    let skip = ["fig6.2", "tab7.5", "fig7.10", "fig7.11", "ext.latency"];
    let config = tiny();
    for e in registry() {
        if skip.contains(&e.id) {
            continue;
        }
        let table = (e.run)(&config);
        assert_eq!(table.id, e.id);
        assert!(!table.rows.is_empty(), "{} produced no rows", e.id);
        assert!(!table.columns.is_empty());
        for row in &table.rows {
            assert_eq!(row.len(), table.columns.len(), "{} row width", e.id);
        }
        // Render paths must not panic.
        let _ = table.to_string();
        let _ = table.to_csv();
    }
}

#[test]
fn crypto_figure_runs() {
    let table = run_by_id("fig6.2", &tiny()).unwrap();
    assert_eq!(table.columns.len(), 5); // length + 4 benchmarks
    assert_eq!(table.rows.len(), 32);
}

#[test]
fn vlcsa2_synthesis_figures_run() {
    for id in ["fig7.10", "fig7.11"] {
        let table = run_by_id(id, &tiny()).unwrap();
        assert_eq!(table.rows.len(), 4);
    }
}

#[test]
fn latency_extension_runs() {
    let table = run_by_id("ext.latency", &tiny()).unwrap();
    assert_eq!(table.rows.len(), 4); // four distributions
}

#[test]
fn chain_reduction_experiment_sweeps_every_registry_family() {
    // The chains experiment is registry-driven, not hand-listed: every
    // family the registry knows at the experiment's width gets rows, and
    // each row's fold latency covers at least the carry-save resolve.
    let table = run_by_id("ext.chain_engines", &tiny()).unwrap();
    for name in vlcsa::engine::Registry::for_width(32).names() {
        let rows: Vec<_> = table.rows.iter().filter(|r| r[0] == name).collect();
        assert_eq!(rows.len(), 3, "{name} swept at every N"); // N in {2, 4, 8}
        for row in rows {
            let fold: f64 = row[2].parse().unwrap();
            let csa: f64 = row[3].parse().unwrap();
            let n: f64 = row[1].parse().unwrap();
            assert!(fold >= n - 1.0, "{name} fold pays N-1 resolves");
            assert!((1.0..=2.0).contains(&csa), "{name} csa is one resolve");
        }
    }
}

#[test]
fn model_engines_experiment_sweeps_every_registry_family() {
    // One row per family: fixed-latency families stall never, the
    // speculative ones stall at most a bounded share of the time, and
    // mean cycles stays inside the 1..=2 band the latency model allows.
    let table = run_by_id("ext.model_engines", &tiny()).unwrap();
    let names = vlcsa::engine::Registry::for_width(64).names();
    assert_eq!(table.rows.len(), names.len());
    for name in names {
        let row = table
            .rows
            .iter()
            .find(|r| r[0] == name)
            .unwrap_or_else(|| panic!("{name} missing"));
        let variable: bool = row[1].parse().unwrap();
        let stall: f64 = row[2].trim_end_matches('%').parse().unwrap();
        let mean: f64 = row[4].parse().unwrap();
        assert!((1.0..=2.0).contains(&mean), "{name} mean cycles {mean}");
        if !variable {
            assert_eq!(stall, 0.0, "{name} is fixed-latency yet stalled");
            assert_eq!(mean, 1.0, "{name} is fixed-latency yet took cycles");
        }
    }
}

#[test]
fn gaussian_engines_experiment_sweeps_every_family_and_width() {
    // families x WIDTHS rows, each with a sane cycle count; the bimodal
    // Gaussian workload must actually exercise some recovery path in at
    // least one speculative family.
    let table = run_by_id("ext.gaussian_engines", &tiny()).unwrap();
    let mut stalled_somewhere = false;
    for width in [64usize, 128, 256, 512] {
        let names = vlcsa::engine::Registry::for_width(width).names();
        for name in &names {
            let rows: Vec<_> = table
                .rows
                .iter()
                .filter(|r| r[0] == *name && r[1] == width.to_string())
                .collect();
            assert_eq!(rows.len(), 1, "{name} at n={width}");
            let mean: f64 = rows[0][3].parse().unwrap();
            assert!((1.0..=2.0).contains(&mean), "{name} n={width} mean {mean}");
            let stall: f64 = rows[0][2].trim_end_matches('%').parse().unwrap();
            stalled_somewhere |= stall > 0.0;
        }
    }
    assert!(
        stalled_somewhere,
        "the Gaussian workload must trigger recovery in some family"
    );
}

#[test]
fn dist_engines_experiment_sweeps_every_family_and_distribution() {
    // Four distribution rows per family at the 32-bit profiling width.
    let table = run_by_id("ext.dist_engines", &tiny()).unwrap();
    for name in vlcsa::engine::Registry::for_width(32).names() {
        let rows: Vec<_> = table.rows.iter().filter(|r| r[0] == name).collect();
        assert_eq!(rows.len(), 4, "{name} swept at every distribution");
        for row in rows {
            let mean: f64 = row[3].parse().unwrap();
            assert!((1.0..=2.0).contains(&mean), "{name} {} mean {mean}", row[1]);
        }
    }
}

#[test]
fn solver_experiment_is_stable_at_low_samples() {
    // tab7.5 with few samples still returns window sizes in a sane band.
    let table = run_by_id("tab7.5", &tiny()).unwrap();
    for row in &table.rows {
        let k01: usize = row[1].parse().unwrap();
        let k25: usize = row[3].parse().unwrap();
        assert!((8..=20).contains(&k01), "k@0.01% = {k01}");
        assert!((5..=14).contains(&k25), "k@0.25% = {k25}");
    }
}

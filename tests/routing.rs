//! Deterministic harness for the adaptive `auto` router.
//!
//! Every test here drives [`vlcsa::route::Router`] through its injected
//! seams — a [`ManualClock`] for time and explicit `record` calls for
//! statistics — so routing decisions are a pure function of the script.
//! No test sleeps, reads wall-clock time in an assertion, or depends on
//! scheduler interleaving: the suite passes at every `--test-threads`
//! because each router is confined to its own test.
//!
//! The three pinned behaviors, per the roadmap contract:
//!
//! 1. `auto` converges to the lowest-cycles engine on a uniform operand
//!    stream (real engines, real `BatchOutcome` statistics);
//! 2. an injected stall storm on the chosen engine flips routing within a
//!    small, counted number of batches;
//! 3. an SLO breach forces a fixed-latency family, and recovery (sample
//!    expiry under the scripted clock) re-enables variable-latency ones.

use std::sync::Arc;

use bitnum::batch::WideSlab;
use bitnum::rng::Xoshiro256;
use bitnum::UBig;
use vlcsa::engine::Registry;
use vlcsa::exec::Executor;
use vlcsa::route::{Candidate, Clock, Decision, FixedCandidates, ManualClock, RouteConfig, Router};

const WIDTH: usize = 64;
const LANES: usize = 256;

/// A scripted router over an explicit candidate list, plus the clock that
/// steers its sample expiry.
fn scripted(list: Vec<Candidate>) -> (Arc<ManualClock>, Router) {
    let clock = Arc::new(ManualClock::new());
    let router = Router::with_sources(
        RouteConfig::default(),
        Arc::clone(&clock) as Arc<dyn Clock>,
        Arc::new(FixedCandidates::new(list)),
    );
    (clock, router)
}

/// Drives one serve-shaped step: route the width, run a real uniform
/// batch on the chosen engine, feed the outcome's lane/stall counts back.
/// Returns the decision.
fn drive_uniform_batch(
    router: &Router,
    registry: &Registry,
    executor: &Executor,
    rng: &mut Xoshiro256,
) -> Decision {
    let decision = router.route(WIDTH).expect("registry candidates");
    let engine = registry.lookup(&decision.engine).expect("routed name");
    let a: Vec<UBig> = (0..LANES).map(|_| UBig::random(WIDTH, rng)).collect();
    let b: Vec<UBig> = (0..LANES).map(|_| UBig::random(WIDTH, rng)).collect();
    let out = executor.run(engine, &WideSlab::from_lanes(&a), &WideSlab::from_lanes(&b));
    router.record(
        &decision.engine,
        WIDTH,
        out.lanes() as u64,
        out.stalls(),
        100, // a scripted constant — latency plays no role in this phase
    );
    decision
}

/// (a) On a uniform operand stream the router converges to the engine
/// with the lowest observed cycles/op. Uniform operands stall the
/// speculative families at their model rates and the synchronous families
/// never, so the winner is the first fixed-latency family in registry
/// order — and it stays the winner for every subsequent batch.
#[test]
fn auto_converges_to_the_lowest_cycles_engine_on_a_uniform_stream() {
    let clock = Arc::new(ManualClock::new());
    let router = Router::with_sources(
        RouteConfig::default(),
        Arc::clone(&clock) as Arc<dyn Clock>,
        Arc::new(vlcsa::route::RegistryCandidates),
    );
    let registry = Registry::for_width(WIDTH);
    let executor = Executor::new(1);
    let mut rng = Xoshiro256::seed_from_u64(0x5eed_0001);

    // Exploration: every family gets its minimum batches.
    let warmup = registry.names().len() * RouteConfig::default().min_batches as usize;
    for _ in 0..warmup {
        drive_uniform_batch(&router, &registry, &executor, &mut rng);
    }
    // Exploitation: the next 32 decisions are stable on one engine…
    let converged: Vec<Decision> = (0..32)
        .map(|_| drive_uniform_batch(&router, &registry, &executor, &mut rng))
        .collect();
    let winner = &converged[0];
    assert!(
        converged.iter().all(|d| d == winner),
        "routing did not stabilize: {converged:?}"
    );
    assert!(!winner.degraded, "no SLO is set, nothing may degrade");
    // …and that engine really is the lowest-cycles one: exactly 1.0
    // cycles/op (a fixed-latency family — uniform operands make every
    // speculative family stall at a non-zero rate), specifically the
    // first such family in registry order, which ties win.
    assert_eq!(winner.engine, "ripple");
    let snap = router.estimate("ripple", WIDTH).expect("observed engine");
    assert_eq!(snap.cycles_per_op, 1.0);
    assert_eq!(snap.stall_rate, 0.0);
    for speculative in ["vlsa", "vlcsa1", "vlcsa2"] {
        let snap = router.estimate(speculative, WIDTH).expect("explored");
        assert!(
            snap.cycles_per_op >= 1.0,
            "{speculative}: {}",
            snap.cycles_per_op
        );
    }
}

/// (b) A stall storm on the chosen engine flips routing within a small,
/// counted number of batches. All-variable candidate universe so the
/// storm target is the *winner*, not a family the router already avoids.
#[test]
fn a_stall_storm_on_the_chosen_engine_flips_routing_within_n_batches() {
    const FLIP_WITHIN: usize = 4;
    let (_clock, router) = scripted(vec![
        Candidate::variable("fast"),
        Candidate::variable("steady"),
    ]);
    // Converge: `fast` stalls 2/256 lanes (~1.008 cycles/op), `steady`
    // 26/256 (~1.1).
    for _ in 0..12 {
        let d = router.route(WIDTH).expect("candidates");
        let stalls = if d.engine == "fast" { 2 } else { 26 };
        router.record(&d.engine, WIDTH, LANES as u64, stalls, 100);
    }
    assert_eq!(router.route(WIDTH).unwrap().engine, "fast");

    // Storm: every lane of `fast` now takes the recovery path.
    let mut flipped_after = None;
    for batch in 0..FLIP_WITHIN {
        let d = router.route(WIDTH).expect("candidates");
        if d.engine == "steady" {
            flipped_after = Some(batch);
            break;
        }
        assert_eq!(d.engine, "fast");
        router.record("fast", WIDTH, LANES as u64, LANES as u64, 100);
    }
    // alpha 0.3: cycles/op(fast) after two storm batches is
    // 0.7²·1.008 + (0.3 + 0.7·0.3)·2.0 ≈ 1.51 > 1.1, so the flip lands
    // on the third decision at the latest.
    let flipped_after = flipped_after.expect("storm never flipped the route");
    assert!(
        flipped_after <= 3,
        "flip took {flipped_after} batches, budget {FLIP_WITHIN}"
    );
    // The flip is sticky while the storm's EWMA dominates.
    assert_eq!(router.route(WIDTH).unwrap().engine, "steady");
}

/// (c) An SLO breach forces a fixed-latency family; recovery — the
/// breaching samples aging out under the scripted clock — re-enables the
/// variable-latency winner without any manual reset.
#[test]
fn slo_breach_forces_a_fixed_family_and_recovery_reenables_variable() {
    let (clock, router) = scripted(vec![
        Candidate::variable("speculative"),
        Candidate::fixed("synchronous"),
    ]);
    router.set_slo(Some(1_000));

    // Warm both estimates up within budget; `speculative` wins the
    // cycles/op tie as the earlier candidate.
    for _ in 0..8 {
        let d = router.route(WIDTH).expect("candidates");
        router.record(&d.engine, WIDTH, LANES as u64, 0, 300);
    }
    let chosen = router.route(WIDTH).unwrap();
    assert_eq!(
        chosen,
        Decision {
            engine: "speculative".into(),
            degraded: false
        }
    );

    // Latency storm on the winner: p99 blows through the budget, and the
    // very next decision is the fixed family, flagged as degraded.
    for _ in 0..4 {
        router.record("speculative", WIDTH, LANES as u64, 0, 8_000);
    }
    let degraded = router.route(WIDTH).unwrap();
    assert_eq!(
        degraded,
        Decision {
            engine: "synchronous".into(),
            degraded: true
        }
    );
    // The degraded state is visible on the stats surface.
    let routes = router.routes();
    assert_eq!(routes.len(), 1);
    assert_eq!(routes[0].engine, "synchronous");
    assert!(routes[0].degraded);

    // While degraded, fixed-family traffic keeps flowing; the breaching
    // samples are untouched until they age out, so the degradation holds.
    router.record("synchronous", WIDTH, LANES as u64, 0, 300);
    assert!(router.route(WIDTH).unwrap().degraded);

    // Recovery: advance the scripted clock past the sample TTL. The
    // stale p99 evaporates and the variable family is routable again.
    clock.advance(RouteConfig::default().sample_ttl_micros + 1);
    assert_eq!(
        router.estimate("speculative", WIDTH).unwrap().p99_micros,
        None
    );
    let recovered = router.route(WIDTH).unwrap();
    assert_eq!(
        recovered,
        Decision {
            engine: "speculative".into(),
            degraded: false
        }
    );
}

/// Two routers fed the same script make the same decisions at every
/// step — the determinism contract the serve batcher and this whole
/// harness rely on.
#[test]
fn identical_scripts_produce_identical_decision_sequences() {
    let script: Vec<(u64, u64, u64)> = (0..64)
        .map(|i| {
            let stalls = if i % 7 == 0 { 40 } else { i % 3 };
            (LANES as u64, stalls, 50 + 10 * (i % 5))
        })
        .collect();
    let run = || -> Vec<Decision> {
        let (clock, router) = scripted(vec![
            Candidate::variable("a"),
            Candidate::fixed("b"),
            Candidate::variable("c"),
        ]);
        router.set_slo(Some(500));
        script
            .iter()
            .map(|&(lanes, stalls, micros)| {
                let d = router.route(WIDTH).expect("candidates");
                router.record(&d.engine, WIDTH, lanes, stalls, micros);
                clock.advance(75);
                d
            })
            .collect()
    };
    assert_eq!(run(), run());
}

/// The serve integration of the same seam: a `Service` started over an
/// injected router resolves `auto` groups through it, answers them
/// exactly, and surfaces the decision on the stats route list. No
/// assertion depends on *which* engine the router picked — only that the
/// pick is a real registry family and the arithmetic is exact.
#[test]
fn service_with_injected_router_resolves_auto_groups() {
    use vlcsa_serve::{ServeConfig, Service};

    let router = Arc::new(Router::with_sources(
        RouteConfig::default(),
        Arc::new(ManualClock::new()) as Arc<dyn Clock>,
        Arc::new(vlcsa::route::RegistryCandidates),
    ));
    let service = Service::start_with_router(
        ServeConfig {
            max_wait: std::time::Duration::from_micros(300),
            ..ServeConfig::default()
        },
        Arc::clone(&router),
    );
    for i in 0..20u128 {
        let out = service
            .add_blocking(
                "auto",
                UBig::from_u128(i << 32, WIDTH),
                UBig::from_u128(i, WIDTH),
            )
            .expect("auto is a valid engine name");
        assert_eq!(out.sum.to_u128(), Some((i << 32) + i));
        assert!(out.cycles == 1 || out.cycles == 2);
    }
    let stats = service.stats();
    let registry = Registry::for_width(WIDTH);
    let route = stats
        .routes
        .iter()
        .find(|r| r.width == WIDTH)
        .expect("auto traffic at width 64 leaves a route entry");
    assert!(
        registry.names().contains(&route.engine.as_str()),
        "routed to unknown engine {}",
        route.engine
    );
    assert!(!route.degraded, "no SLO is configured");
    assert_eq!(stats.slo_micros, None);
    service.shutdown();
}

/// Long-haul soak (ignored by default; CI runs it via `-- --ignored`):
/// 50k scripted rounds with a stall storm rotating across an
/// all-variable candidate set. Every candidate receives background
/// (named) traffic each round — exactly what the serve workers feed the
/// router, and what keeps an abandoned family's estimate from going
/// stale at its storm-time high forever. Pins that the router
/// (1) always answers with a listed candidate, (2) abandons every storm
/// target within a few rounds of the storm landing, and (3) never lets
/// an estimate escape the [1, 2] cycles/op envelope.
#[test]
#[ignore = "soak: 50k scripted rounds, run explicitly or via CI's --ignored step"]
fn soak_rotating_storms_never_wedge_the_router() {
    let names = ["n0", "n1", "n2", "n3"];
    let (clock, router) = scripted(names.iter().map(|n| Candidate::variable(*n)).collect());
    let base = [1u64, 3, 5, 7]; // per-candidate baseline stalls per 256 lanes
    for round in 0..50_000u64 {
        // Every 1000 rounds the storm moves to the next candidate.
        let storm = ((round / 1000) % names.len() as u64) as usize;
        let d = router.route(WIDTH).expect("candidates");
        let i = names
            .iter()
            .position(|n| *n == d.engine)
            .expect("router answered with an unlisted candidate");
        // The storm is a property of the operand stream hitting its
        // target, routed there or not; background traffic reaches every
        // family each round, so all four estimates stay fresh.
        for (j, name) in names.iter().enumerate() {
            let stalls = if j == storm { LANES as u64 } else { base[j] };
            router.record(name, WIDTH, LANES as u64, stalls, 100);
        }
        clock.advance(50);
        // With fresh estimates everywhere, one storm batch (alpha 0.3)
        // already pushes the target past every baseline; a few rounds of
        // slack and the route must have moved off the storm.
        if round % 1000 >= 8 {
            assert_ne!(
                i, storm,
                "round {round}: still routing into the storm on {}",
                names[storm]
            );
        }
    }
    for name in names {
        let snap = router.estimate(name, WIDTH).expect("all explored");
        assert!(
            (1.0..=2.0).contains(&snap.cycles_per_op),
            "{name} escaped the envelope: {}",
            snap.cycles_per_op
        );
    }
}

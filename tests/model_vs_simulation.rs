//! Model-validation integration tests (the Fig. 7.1 claim): the analytical
//! error models must predict Monte Carlo measurements across the parameter
//! space, and the detectors must be sound everywhere.

use bitnum::rng::Xoshiro256;
use bitnum::UBig;
use vlcsa::{detect, model, OverflowMode, Scsa};
use vlsa::Vlsa;

#[test]
fn scsa_exact_model_tracks_simulation_over_grid() {
    let mut rng = Xoshiro256::seed_from_u64(0xF1);
    let trials = 120_000;
    for n in [64usize, 128, 256] {
        for k in [6usize, 9, 12] {
            let scsa = Scsa::new(n, k);
            let mut errors = 0usize;
            for _ in 0..trials {
                let a = UBig::random(n, &mut rng);
                let b = UBig::random(n, &mut rng);
                errors += scsa.is_error(&a, &b, OverflowMode::Truncate) as usize;
            }
            let mc = errors as f64 / trials as f64;
            let predicted = model::exact_error_rate(n, k);
            let sigma = (predicted * (1.0 - predicted) / trials as f64).sqrt();
            assert!(
                (mc - predicted).abs() < 5.0 * sigma + 2e-6,
                "n={n} k={k}: mc={mc:.6} model={predicted:.6}"
            );
        }
    }
}

#[test]
fn vlsa_model_tracks_simulation() {
    let mut rng = Xoshiro256::seed_from_u64(0xF2);
    let trials = 120_000;
    for (n, l) in [(64usize, 7usize), (128, 9)] {
        let adder = Vlsa::new(n, l);
        let mut errors = 0usize;
        for _ in 0..trials {
            let a = UBig::random(n, &mut rng);
            let b = UBig::random(n, &mut rng);
            errors += adder.is_error(&a, &b) as usize;
        }
        let mc = errors as f64 / trials as f64;
        let predicted = vlsa::model::error_rate(n, l);
        let sigma = (predicted * (1.0 - predicted) / trials as f64).sqrt();
        assert!(
            (mc - predicted).abs() < 5.0 * sigma + 2e-6,
            "n={n} l={l}: mc={mc:.6} model={predicted:.6}"
        );
    }
}

#[test]
fn detection_soundness_sweep() {
    // No false negatives anywhere: error implies flag, for both SCSA
    // detectors and the VLSA run detector.
    let mut rng = Xoshiro256::seed_from_u64(0xF3);
    for k in [5usize, 8, 13] {
        let n = 96;
        let scsa = Scsa::new(n, k);
        let vlsa = Vlsa::new(n, k);
        for _ in 0..40_000 {
            let a = UBig::random(n, &mut rng);
            let b = UBig::random(n, &mut rng);
            if scsa.is_error(&a, &b, OverflowMode::Truncate) {
                assert!(
                    detect::err0(&scsa.window_pg(&a, &b)),
                    "SCSA k={k}: missed error on {a} + {b}"
                );
            }
            if vlsa.is_error(&a, &b) {
                assert!(vlsa.detect(&a, &b), "VLSA l={k}: missed error on {a} + {b}");
            }
        }
    }
}

#[test]
fn nominal_rate_bounds_real_rate() {
    for n in [64usize, 256] {
        for k in 4..16 {
            let real = model::exact_error_rate(n, k);
            let nominal = model::err0_rate_exact(n, k);
            assert!(
                nominal >= real - 1e-15,
                "n={n} k={k}: nominal {nominal} < real {real}"
            );
        }
    }
}

#[test]
fn scsa_needs_smaller_windows_than_vlsa() {
    // The comparative claim behind Table 7.3, checked from the models
    // directly: at equal parameter k = l, SCSA's window-level speculation
    // errs less than VLSA's per-bit speculation, so its solver returns
    // smaller parameters at every width and target.
    for n in [64usize, 128, 256, 512] {
        for target in [1e-3, 1e-4] {
            let k = model::window_size_for(
                n,
                target,
                model::Semantics::Strict,
                OverflowMode::Truncate,
                model::Model::Exact,
            );
            let l = vlsa::model::chain_length_for(n, target, vlsa::model::Semantics::Strict);
            assert!(k < l, "n={n} target={target}: k={k} !< l={l}");
        }
    }
}

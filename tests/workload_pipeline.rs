//! End-to-end workload pipeline: crypto traces → chain profiles → engine
//! latency — the Ch. 6 narrative as one executable chain.

use bitnum::UBig;
use vlcsa::{Vlcsa1, Vlcsa2};
use workloads::chains::ChainHistogram;
use workloads::crypto::{AddSink, CryptoBench, PairCollector};
use workloads::dist::{Distribution, OperandSource};

/// Fans a trace out to both a histogram and a pair collector.
struct Tee<'a>(&'a mut ChainHistogram, &'a mut PairCollector);
impl AddSink for Tee<'_> {
    fn record_add(&mut self, a: &UBig, b: &UBig) {
        self.0.record(a, b);
        self.1.record_add(a, b);
    }
}

#[test]
fn crypto_traces_stall_vlcsa1_but_not_vlcsa2() {
    let width = CryptoBench::Dh256.width();
    let mut hist = ChainHistogram::new(width);
    let mut pairs = PairCollector::with_cap(Some(60_000));
    CryptoBench::Dh256.run(1, 0xAB, &mut Tee(&mut hist, &mut pairs));

    // The profile is bimodal (the Fig. 6.2 phenomenon).
    assert!(hist.share(1) > hist.share(4), "short-chain mode present");
    let long_mode = hist.additions_with_chain_at_least(20);
    assert!(long_mode > 0.02, "long-chain mode share {long_mode}");

    // Replaying through the engines: VLCSA 1 pays for the long mode,
    // VLCSA 2 does not (and both stay exact).
    let v1 = Vlcsa1::new(width, 8);
    let v2 = Vlcsa2::new(width, 8);
    let (mut stalls1, mut stalls2) = (0usize, 0usize);
    for (a, b) in pairs.pairs() {
        let o1 = v1.add(a, b);
        assert_eq!(o1.sum, a.wrapping_add(b));
        stalls1 += (o1.cycles == 2) as usize;
        let o2 = v2.add(a, b);
        assert_eq!(o2.sum, a.wrapping_add(b));
        stalls2 += (o2.cycles == 2) as usize;
    }
    let n = pairs.pairs().len() as f64;
    let (r1, r2) = (stalls1 as f64 / n, stalls2 as f64 / n);
    assert!(
        r2 < r1 * 0.7,
        "VLCSA 2 ({r2:.4}) must stall clearly less than VLCSA 1 ({r1:.4}) on crypto traces"
    );
}

#[test]
fn gaussian_proxy_matches_trace_behaviour_qualitatively() {
    // The paper's argument for using 2's-complement Gaussian as a proxy:
    // both exhibit the MSB-reaching chain mode that defeats VLCSA 1.
    let width = 32;
    let mut src = OperandSource::new(
        Distribution::TwosComplementGaussian { sigma: 256.0 },
        width,
        0xAC,
    );
    let mut hist = ChainHistogram::new(width);
    for _ in 0..30_000 {
        let (a, b) = src.next_pair();
        hist.record(&a, &b);
    }
    assert!(
        hist.additions_with_chain_at_least(20) > 0.1,
        "proxy long-chain mode"
    );

    let v1 = Vlcsa1::new(width, 8);
    let mut stalls = 0usize;
    let mut src = OperandSource::new(
        Distribution::TwosComplementGaussian { sigma: 256.0 },
        width,
        0xAD,
    );
    for _ in 0..30_000 {
        let (a, b) = src.next_pair();
        stalls += (v1.add(&a, &b).cycles == 2) as usize;
    }
    assert!(
        stalls as f64 / 30_000.0 > 0.15,
        "the proxy should stall VLCSA 1 heavily: {}",
        stalls as f64 / 30_000.0
    );
}

#[test]
fn trace_width_matches_profiler_width() {
    for bench in CryptoBench::ALL {
        let mut pairs = PairCollector::with_cap(Some(100));
        bench.run(1, 1, &mut pairs);
        assert!(!pairs.pairs().is_empty());
        for (a, b) in pairs.pairs() {
            assert_eq!(a.width(), bench.width());
            assert_eq!(b.width(), bench.width());
        }
    }
}

//! Cross-layer consistency: the gate-level netlists must compute exactly
//! what the behavioral models compute, for every design in the workspace,
//! and the baseline adders must agree with the bignum reference.

use bitnum::rng::Xoshiro256;
use bitnum::UBig;
use gatesim::{equiv, sim};
use vlcsa::{detect, Scsa, Scsa2};
use vlsa::Vlsa;

#[test]
fn every_baseline_adder_equals_the_reference() {
    for n in [7usize, 33, 64] {
        let reference = adders::ripple::ripple_carry_adder(n);
        for family in adders::Family::ALL {
            let candidate = family.build(n);
            assert_eq!(
                equiv::check(&reference, &candidate, 512, 0xC0).unwrap(),
                None,
                "{} at n={n}",
                family.name()
            );
        }
        let dw = adders::designware::best(n).netlist;
        assert_eq!(
            equiv::check(&reference, &dw, 512, 0xC1).unwrap(),
            None,
            "DW at n={n}"
        );
    }
}

#[test]
fn scsa_netlists_equal_behavioral_models() {
    let mut rng = Xoshiro256::seed_from_u64(0xC2);
    for (n, k) in [(48usize, 9usize), (64, 14), (130, 17)] {
        let scsa1 = Scsa::new(n, k);
        let scsa2 = Scsa2::new(n, k);
        let net1 = vlcsa::netlist::scsa1_netlist(n, k);
        let net2 = vlcsa::netlist::scsa2_netlist(n, k);
        for _ in 0..300 {
            let a = UBig::random(n, &mut rng);
            let b = UBig::random(n, &mut rng);
            let out1 = sim::simulate_ubig(&net1, &[("a", &a), ("b", &b)]).unwrap();
            let spec1 = scsa1.speculate(&a, &b);
            assert_eq!(out1["sum"], spec1.sum);
            assert_eq!(out1["cout"].bit(0), spec1.cout);
            let out2 = sim::simulate_ubig(&net2, &[("a", &a), ("b", &b)]).unwrap();
            let spec2 = scsa2.speculate(&a, &b);
            assert_eq!(out2["sum"], spec2.sum0);
            assert_eq!(out2["sum1"], spec2.sum1);
            assert_eq!(out2["cout"].bit(0), spec2.cout0);
            assert_eq!(out2["cout1"].bit(0), spec2.cout1);
        }
    }
}

#[test]
fn vlcsa_netlist_protocol_equals_engine_decisions() {
    // The hardware's VALID/STALL handshake must match the behavioral
    // engines' cycle decisions on both uniform and Gaussian inputs.
    use workloads::dist::{Distribution, OperandSource};
    for dist in [
        Distribution::UnsignedUniform,
        Distribution::paper_gaussian(),
    ] {
        let (n, k) = (64usize, 10usize);
        let net1 = vlcsa::netlist::vlcsa1_netlist(n, k);
        let net2 = vlcsa::netlist::vlcsa2_netlist(n, k);
        let model1 = Scsa::new(n, k);
        let model2 = Scsa2::new(n, k);
        let mut src = OperandSource::new(dist, n, 0xC3);
        for _ in 0..300 {
            let (a, b) = src.next_pair();
            let (exact, exact_cout) = a.overflowing_add(&b);

            let out = sim::simulate_ubig(&net1, &[("a", &a), ("b", &b)]).unwrap();
            let flagged = detect::err0(&model1.window_pg(&a, &b));
            assert_eq!(out["err"].bit(0), flagged);
            assert_eq!(out["sum_rec"], exact);
            assert_eq!(out["cout_rec"].bit(0), exact_cout);
            if !flagged {
                assert_eq!(out["sum"], exact);
            }

            let out = sim::simulate_ubig(&net2, &[("a", &a), ("b", &b)]).unwrap();
            let selection = detect::select(&model2.window_pg(&a, &b));
            let stall = selection == detect::Selection::Recover;
            assert_eq!(out["stall"].bit(0), stall);
            assert_eq!(out["sum_rec"], exact);
            if !stall {
                assert_eq!(
                    out["sum"], exact,
                    "selected speculative result must be exact"
                );
                assert_eq!(out["cout"].bit(0), exact_cout);
            }
        }
    }
}

#[test]
fn vlsa_netlist_equals_behavioral_model() {
    let mut rng = Xoshiro256::seed_from_u64(0xC4);
    let (n, l) = (64usize, 12usize);
    let net = vlsa::netlist::vlsa_netlist(n, l);
    let spec_only = vlsa::netlist::vlsa_spec_netlist(n, l);
    let model = Vlsa::new(n, l);
    for _ in 0..300 {
        let a = UBig::random(n, &mut rng);
        let b = UBig::random(n, &mut rng);
        let out = sim::simulate_ubig(&net, &[("a", &a), ("b", &b)]).unwrap();
        let (spec, spec_cout) = model.speculative_add(&a, &b);
        assert_eq!(out["sum"], spec);
        assert_eq!(out["cout"].bit(0), spec_cout);
        assert_eq!(out["err"].bit(0), model.detect(&a, &b));
        let only = sim::simulate_ubig(&spec_only, &[("a", &a), ("b", &b)]).unwrap();
        assert_eq!(only["sum"], spec);
    }
    // The speculative-only netlist must be a strict subset in area.
    assert!(spec_only.cell_count() < net.cell_count());
}

#[test]
fn optimization_passes_preserve_all_headline_designs() {
    for net in [
        vlcsa::netlist::scsa1_netlist(64, 14),
        vlcsa::netlist::vlcsa1_netlist(64, 14),
        vlcsa::netlist::vlcsa2_netlist(64, 13),
        vlsa::netlist::vlsa_netlist(64, 17),
    ] {
        let tuned = gatesim::opt::best_buffered(&net, &[4, 8, 16]);
        assert_eq!(
            equiv::check(&net, &tuned, 512, 0xC5).unwrap(),
            None,
            "tuning changed {}",
            net.name()
        );
    }
}

#[test]
fn verilog_export_is_nonempty_and_structured() {
    for net in [
        vlcsa::netlist::vlcsa1_netlist(32, 8),
        vlcsa::netlist::vlcsa2_netlist(32, 8),
    ] {
        let text = gatesim::verilog::emit(&net);
        assert!(text.contains("module"));
        assert!(text.contains("endmodule"));
        assert!(text.lines().count() > net.cell_count() / 2);
    }
}

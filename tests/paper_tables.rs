//! Golden reproduction checks for the paper's parameter tables and headline
//! rates: these pin the quantitative claims end-to-end.

use vlcsa::model::{self, Model, Semantics};
use vlcsa::{detect, OverflowMode, Scsa, Scsa2};
use workloads::dist::{Distribution, OperandSource};

/// Tables 7.3/7.4, SCSA columns: exact reproduction.
#[test]
fn table_7_3_and_7_4_scsa_window_sizes() {
    let expect_001 = [(64usize, 14usize), (128, 15), (256, 16), (512, 17)];
    let expect_025 = [(64usize, 10usize), (128, 11), (256, 12), (512, 13)];
    for (n, k) in expect_001 {
        assert_eq!(
            model::window_size_for(
                n,
                1e-4,
                Semantics::RoundsTo2Dp,
                OverflowMode::Truncate,
                Model::Paper
            ),
            k,
            "0.01% n={n}"
        );
    }
    for (n, k) in expect_025 {
        assert_eq!(
            model::window_size_for(
                n,
                2.5e-3,
                Semantics::RoundsTo2Dp,
                OverflowMode::Truncate,
                Model::Paper
            ),
            k,
            "0.25% n={n}"
        );
    }
}

/// Table 7.3, VLSA column: within ±1 of the paper (see EXPERIMENTS.md).
#[test]
fn table_7_3_vlsa_chain_lengths() {
    for (n, l_paper) in [(64usize, 17usize), (128, 18), (256, 20), (512, 21)] {
        let l = vlsa::model::chain_length_for(n, 1e-4, vlsa::model::Semantics::RoundsTo2Dp);
        assert!(l.abs_diff(l_paper) <= 1, "n={n}: {l} vs paper {l_paper}");
    }
}

/// Table 7.1: VLCSA 1 stalls on ~25% of 2's-complement Gaussian inputs.
#[test]
fn table_7_1_gaussian_rate() {
    let trials = 60_000;
    for (n, k) in [(64usize, 14usize), (256, 16)] {
        let scsa = Scsa::new(n, k);
        let mut src = OperandSource::new(Distribution::paper_gaussian(), n, 0xD1);
        let mut errors = 0usize;
        for _ in 0..trials {
            let (a, b) = src.next_pair();
            errors += scsa.is_error(&a, &b, OverflowMode::Truncate) as usize;
        }
        let rate = errors as f64 / trials as f64;
        assert!(
            (0.235..0.265).contains(&rate),
            "n={n}: rate {rate} (paper: 25.01%)"
        );
    }
}

/// Table 7.2: VLCSA 2 collapses the Gaussian error rate to ~0.01%.
#[test]
fn table_7_2_gaussian_rate() {
    let trials = 100_000;
    for (n, k) in [(64usize, 14usize), (512, 17)] {
        let scsa2 = Scsa2::new(n, k);
        let mut src = OperandSource::new(Distribution::paper_gaussian(), n, 0xD2);
        let (mut errors, mut stalls) = (0usize, 0usize);
        for _ in 0..trials {
            let (a, b) = src.next_pair();
            errors += scsa2.is_error(&a, &b, OverflowMode::Truncate) as usize;
            stalls += matches!(
                detect::select(&scsa2.window_pg(&a, &b)),
                detect::Selection::Recover
            ) as usize;
        }
        let err_rate = errors as f64 / trials as f64;
        let stall_rate = stalls as f64 / trials as f64;
        assert!(
            err_rate < 1e-3,
            "n={n}: error rate {err_rate} (paper: 0.01%)"
        );
        assert!(stall_rate < 2e-3, "n={n}: stall rate {stall_rate}");
    }
}

/// Table 7.5's headline property: the VLCSA 2 window size is
/// width-independent (the same k meets the target at every width).
#[test]
fn table_7_5_width_independence() {
    let trials = 60_000;
    let k = 13;
    for n in [64usize, 128, 256, 512] {
        let scsa2 = Scsa2::new(n, k);
        let mut src = OperandSource::new(Distribution::paper_gaussian(), n, 0xD3);
        let mut stalls = 0usize;
        for _ in 0..trials {
            let (a, b) = src.next_pair();
            stalls += matches!(
                detect::select(&scsa2.window_pg(&a, &b)),
                detect::Selection::Recover
            ) as usize;
        }
        let rate = stalls as f64 / trials as f64;
        assert!(
            rate < 1.5e-3,
            "n={n}, k={k}: stall rate {rate} should be ~0.01%"
        );
    }
}

/// The headline synthesis claims, end to end on the 64-bit design point.
#[test]
fn headline_delay_area_claims() {
    use gatesim::{area, opt, sta};
    let tune = |net: &gatesim::Netlist| opt::best_buffered(net, &[4, 8, 16]);
    let n = 64;

    let dw = adders::designware::best(n);
    let scsa = tune(&vlcsa::netlist::scsa1_netlist(n, 14));
    let vlcsa1 = tune(&vlcsa::netlist::vlcsa1_netlist(n, 14));

    // SCSA is faster than the strongest traditional adder...
    let t_scsa = sta::analyze(&scsa).output_arrival_tau("sum").unwrap();
    assert!(
        t_scsa < 0.95 * dw.delay_tau,
        "SCSA {t_scsa:.0} vs DW {:.0}",
        dw.delay_tau
    );
    // ...and smaller.
    let a_scsa = area::analyze(&scsa).total_nand2();
    assert!(
        a_scsa < dw.area_nand2,
        "SCSA area {a_scsa:.0} vs DW {:.0}",
        dw.area_nand2
    );

    // VLCSA 1's clock (max of speculation and detection) still beats DW.
    let timing = sta::analyze(&vlcsa1);
    let t_clk = timing
        .output_arrival_tau("sum")
        .unwrap()
        .max(timing.output_arrival_tau("err").unwrap());
    assert!(
        t_clk < dw.delay_tau,
        "VLCSA1 clk {t_clk:.0} vs DW {:.0}",
        dw.delay_tau
    );
    // And recovery closes within two cycles.
    let t_rec = timing.output_arrival_tau("sum_rec").unwrap();
    assert!(t_rec < 2.0 * t_clk, "recovery {t_rec:.0} vs 2x{t_clk:.0}");
}

//! Exhaustive verification at small widths: for every (a, b) pair in the
//! full input space, the engines are exact and the detectors sound — a
//! formal-strength complement to the randomized suites.
//!
//! The engine coverage is registry-driven: every `Engine` the `Registry`
//! knows is checked over the full input space at widths 1–8, on all three
//! evaluation paths (scalar `add_one`, bit-sliced `add_batch`, and the
//! sharded executor at 2 shards). Adding a family to the registry adds it
//! to this suite automatically; no hand-listed families remain.

use adders::batch::{compress3, compress3_one, reduce_csa_one, sum_batch, BatchRipple};
use bitnum::batch::{BitSlab, DefaultWord, WideSlab, Word};
use bitnum::UBig;
use vlcsa::engine::{Engine, Registry, VlsaBaseline};
use vlcsa::exec::Executor;
use vlcsa::program::Program;
use vlcsa::{detect, OverflowMode, Scsa, Scsa2, Vlcsa1, Vlcsa2};

/// Every (n, k) combination checked over all 2^(2n) input pairs.
fn grid() -> Vec<(usize, usize)> {
    let mut g = Vec::new();
    for n in 2..=9usize {
        for k in 1..=n {
            g.push((n, k));
        }
    }
    g
}

#[test]
fn scsa1_error_set_is_exactly_characterized() {
    // For each pair: the speculative result differs from the exact sum iff
    // some window's speculative carry-in is wrong — and then ERR0 flags.
    for (n, k) in grid() {
        let scsa = Scsa::new(n, k);
        for av in 0..(1u64 << n) {
            for bv in 0..(1u64 << n) {
                let a = UBig::from_u128(av as u128, n);
                let b = UBig::from_u128(bv as u128, n);
                let is_err = scsa.is_error(&a, &b, OverflowMode::CarryOut);
                if is_err {
                    assert!(
                        detect::err0(&scsa.window_pg(&a, &b)),
                        "missed error n={n} k={k} a={av:#x} b={bv:#x}"
                    );
                }
            }
        }
    }
}

/// All 2^(2n) operand pairs, flattened into one wide workload.
fn full_input_space(n: usize) -> (Vec<UBig>, Vec<UBig>, WideSlab, WideSlab) {
    let mut a_lanes = Vec::with_capacity(1 << (2 * n));
    let mut b_lanes = Vec::with_capacity(1 << (2 * n));
    for av in 0..(1u64 << n) {
        for bv in 0..(1u64 << n) {
            a_lanes.push(UBig::from_u128(av as u128, n));
            b_lanes.push(UBig::from_u128(bv as u128, n));
        }
    }
    let a = WideSlab::from_lanes(&a_lanes);
    let b = WideSlab::from_lanes(&b_lanes);
    (a_lanes, b_lanes, a, b)
}

/// Checks one engine over the full input space on all three paths:
/// scalar `add_one`, per-chunk `add_batch`, and the 2-shard executor
/// (whose merge must be bit-identical to the serial one). Returns the
/// number of lanes that stalled, so callers can assert speculation was
/// actually exercised.
fn check_engine_over_full_space(
    n: usize,
    engine: &dyn Engine,
    (a_lanes, b_lanes, a, b): &(Vec<UBig>, Vec<UBig>, WideSlab, WideSlab),
) -> u64 {
    let wide = Executor::new(2).run(engine, a, b);
    assert_eq!(
        wide,
        Executor::new(1).run(engine, a, b),
        "{} executor not deterministic at n={n}",
        engine.name()
    );
    // Per-chunk add_batch agrees with the merged executor result.
    for (c, (ca, cb)) in a.chunks().iter().zip(b.chunks()).enumerate() {
        let batch = engine.add_batch(ca, cb);
        assert_eq!(
            &batch.sum,
            &wide.sum.chunks()[c],
            "{} chunk {c}",
            engine.name()
        );
        assert_eq!(batch.cout, wide.cout[c], "{} chunk {c}", engine.name());
        assert_eq!(
            batch.flagged,
            wide.flagged[c],
            "{} chunk {c}",
            engine.name()
        );
    }
    // Every lane is exact and the scalar path agrees, cycles included.
    for (l, (al, bl)) in a_lanes.iter().zip(b_lanes).enumerate() {
        let (sum, cout) = al.overflowing_add(bl);
        let one = engine.add_one(al, bl);
        assert_eq!(
            (&one.sum, one.cout),
            (&sum, cout),
            "{} scalar n={n} a={al} b={bl}",
            engine.name()
        );
        assert_eq!(
            wide.sum.lane(l),
            sum,
            "{} batch n={n} lane={l}",
            engine.name()
        );
        assert_eq!(
            wide.cout(l),
            cout,
            "{} batch cout n={n} lane={l}",
            engine.name()
        );
        assert_eq!(
            wide.cycles(l),
            one.cycles,
            "{} cycles n={n} a={al} b={bl}",
            engine.name()
        );
    }
    wide.stalls()
}

#[test]
fn registry_engines_exact_over_full_input_space() {
    // Every registered engine, every operand pair at widths 1..=8, all
    // three paths. Registry defaults at these widths give the speculative
    // engines a single window (k = n), so speculation itself is covered
    // by the k-sweep test below; this test pins the registry surface.
    for n in 1..=8usize {
        let registry = Registry::for_width(n);
        assert!(registry.engines().len() >= 9, "registry too small at n={n}");
        let space = full_input_space(n);
        for engine in registry.engines() {
            check_engine_over_full_space(n, engine.as_ref(), &space);
        }
    }
}

#[test]
fn speculative_engines_exact_at_every_window_size() {
    // The variable-latency engines again, at every real parameter: all
    // window sizes k in 1..n (and VLSA chain lengths l in 1..n) over the
    // full input space — the configurations where speculation misses,
    // detection fires and recovery runs. Single-window k = n is covered
    // by the registry test above.
    let mut stalls = 0u64;
    for n in 2..=8usize {
        let space = full_input_space(n);
        for k in 1..n {
            let engines: [Box<dyn Engine>; 3] = [
                Box::new(Vlcsa1::new(n, k)),
                Box::new(Vlcsa2::new(n, k)),
                Box::new(VlsaBaseline::new(n, k)),
            ];
            for engine in &engines {
                stalls += check_engine_over_full_space(n, engine.as_ref(), &space);
            }
        }
    }
    assert!(
        stalls > 10_000,
        "sub-width parameters must exercise recovery (stalled lanes: {stalls})"
    );
}

/// The m-operand input space at width n, column-major, with exact `u128`
/// reference sums. The full 2^(m·n) tuple space when that is at most 2^16
/// tuples; beyond that, the full 2^(2n) (a, b) pair space crossed with
/// corner patterns (0, all-ones, alternating, 1) for the remaining
/// operands — the first two operands always sweep their whole space.
fn operand_tuples(m: usize, n: usize) -> (Vec<Vec<UBig>>, Vec<u128>) {
    let mut columns: Vec<Vec<UBig>> = vec![Vec::new(); m];
    let mut sums = Vec::new();
    if m * n <= 16 {
        let lane_mask = (1u64 << n) - 1;
        for t in 0..(1u64 << (m * n)) {
            let mut sum = 0u128;
            for (op, column) in columns.iter_mut().enumerate() {
                let v = (t >> (op * n)) & lane_mask;
                column.push(UBig::from_u128(v as u128, n));
                sum += v as u128;
            }
            sums.push(sum);
        }
    } else {
        let mask = (1u64 << n) - 1;
        let corners = [0u64, mask, 0x5555_5555_5555_5555 & mask, 1 & mask];
        let patterns = if 2 * n <= 13 { corners.len() } else { 2 };
        for p in 0..patterns {
            for av in 0..=mask {
                for bv in 0..=mask {
                    columns[0].push(UBig::from_u128(av as u128, n));
                    columns[1].push(UBig::from_u128(bv as u128, n));
                    let mut sum = (av + bv) as u128;
                    for (op, column) in columns.iter_mut().enumerate().skip(2) {
                        let v = corners[(p + op) % corners.len()];
                        column.push(UBig::from_u128(v as u128, n));
                        sum += v as u128;
                    }
                    sums.push(sum);
                }
            }
        }
    }
    (columns, sums)
}

#[test]
fn csa_compressor_exact_over_small_widths() {
    // The 3:2 compressor at widths 1..=8: batch (bit-sliced over the
    // default word) and scalar agree with each other and with the u128
    // reference — sum ⊕ carry pair adds back to a+b+c mod 2^n, and the
    // carry word never carries into bit 0.
    for n in 1..=8usize {
        let (columns, sums) = operand_tuples(3, n);
        let lanes = sums.len();
        let mut l0 = 0;
        while l0 < lanes {
            let take = DefaultWord::LANES.min(lanes - l0);
            let slabs: Vec<BitSlab> = columns
                .iter()
                .map(|c| BitSlab::from_lanes(&c[l0..l0 + take]))
                .collect();
            let (x, y) = compress3(&slabs[0], &slabs[1], &slabs[2]);
            for l in 0..take {
                let (sx, sy) = compress3_one(
                    &columns[0][l0 + l],
                    &columns[1][l0 + l],
                    &columns[2][l0 + l],
                );
                assert_eq!(x.lane(l), sx, "batch sum word n={n} lane {}", l0 + l);
                assert_eq!(y.lane(l), sy, "batch carry word n={n} lane {}", l0 + l);
                assert!(!sy.bit(0), "carry into bit 0 n={n} lane {}", l0 + l);
                let expect = UBig::from_u128(sums[l0 + l] & ((1u128 << n) - 1), n);
                assert_eq!(
                    sx.wrapping_add(&sy),
                    expect,
                    "pair adds to reference n={n} lane {}",
                    l0 + l
                );
            }
            l0 += take;
        }
    }
}

#[test]
fn csa_reduction_exact_over_small_widths_all_paths() {
    // The N-operand Wallace reduction at widths 1..=8, N ∈ {3, 4, 8},
    // against the u128 reference on all three paths: scalar
    // (`reduce_csa_one`), batch (`sum_batch` — one `BatchAdd` resolve per
    // chunk), and the 2-shard executor through `Program::sum(N).run_csa`.
    // The full registry sweeps the smallest configs; larger spaces pin one
    // fixed- and one variable-latency engine.
    for &m in &[3usize, 4, 8] {
        for n in 1..=8usize {
            let (columns, sums) = operand_tuples(m, n);
            let lanes = sums.len();
            let expect: Vec<UBig> = sums
                .iter()
                .map(|&s| UBig::from_u128(s & ((1u128 << n) - 1), n))
                .collect();

            // Scalar path.
            for l in 0..lanes {
                let tuple: Vec<UBig> = columns.iter().map(|c| c[l].clone()).collect();
                let (x, y) = reduce_csa_one(&tuple);
                assert_eq!(
                    x.wrapping_add(&y),
                    expect[l],
                    "scalar reduction m={m} n={n} lane {l}"
                );
            }

            // Batch path: chunked slabs, exactly one ripple resolve each.
            let ripple = BatchRipple::new(n);
            let mut l0 = 0;
            while l0 < lanes {
                let take = DefaultWord::LANES.min(lanes - l0);
                let slabs: Vec<BitSlab> = columns
                    .iter()
                    .map(|c| BitSlab::from_lanes(&c[l0..l0 + take]))
                    .collect();
                let out = sum_batch(&ripple, &slabs);
                for l in 0..take {
                    assert_eq!(
                        out.sum.lane(l),
                        expect[l0 + l],
                        "batch reduction m={m} n={n} lane {}",
                        l0 + l
                    );
                }
                l0 += take;
            }

            // Executor path: the sum program, one resolve for all lanes.
            let wide: Vec<WideSlab> = columns.iter().map(|c| WideSlab::from_lanes(c)).collect();
            let program = Program::sum(m).unwrap();
            let registry = Registry::for_width(n);
            let engines: Vec<&str> = if m * n <= 8 {
                registry.names()
            } else {
                vec!["carry-select", "vlcsa1"]
            };
            let exec = Executor::new(2);
            for name in engines {
                let out = program.run_csa(registry.get(name).unwrap(), &exec, &wide);
                for (l, want) in expect.iter().enumerate() {
                    assert_eq!(
                        &out.sum.lane(l),
                        want,
                        "{name} executor reduction m={m} n={n} lane {l}"
                    );
                }
            }
        }
    }
}

#[test]
fn scsa2_spec1_exact_whenever_selected() {
    for (n, k) in grid() {
        let scsa2 = Scsa2::new(n, k);
        for av in 0..(1u64 << n) {
            for bv in 0..(1u64 << n) {
                let a = UBig::from_u128(av as u128, n);
                let b = UBig::from_u128(bv as u128, n);
                let pgs = scsa2.window_pg(&a, &b);
                let spec = scsa2.speculate(&a, &b);
                let exact = a.wrapping_add(&b);
                match detect::select(&pgs) {
                    detect::Selection::Spec0 => {
                        assert_eq!(spec.sum0, exact, "S*,0 n={n} k={k} a={av:#x} b={bv:#x}")
                    }
                    detect::Selection::Spec1 => {
                        assert_eq!(spec.sum1, exact, "S*,1 n={n} k={k} a={av:#x} b={bv:#x}")
                    }
                    detect::Selection::Recover => {}
                }
            }
        }
    }
}

#[test]
fn exact_model_agrees_with_exhaustive_count() {
    // The Markov model must equal the exhaustive error count exactly
    // (uniform inputs = every pair weighted equally).
    for (n, k) in [(6usize, 2usize), (8, 3), (8, 4), (9, 3)] {
        let scsa = Scsa::new(n, k);
        let mut errors = 0u64;
        for av in 0..(1u64 << n) {
            for bv in 0..(1u64 << n) {
                let a = UBig::from_u128(av as u128, n);
                let b = UBig::from_u128(bv as u128, n);
                errors += scsa.is_error(&a, &b, OverflowMode::Truncate) as u64;
            }
        }
        let measured = errors as f64 / (1u64 << (2 * n)) as f64;
        let model = vlcsa::model::exact_error_rate(n, k);
        assert!(
            (measured - model).abs() < 1e-12,
            "n={n} k={k}: exhaustive {measured} vs model {model}"
        );
    }
}

//! Exhaustive verification at small widths: for every (a, b) pair in the
//! full input space, the engines are exact and the detectors sound — a
//! formal-strength complement to the randomized suites.

use bitnum::UBig;
use vlcsa::{detect, OverflowMode, Scsa, Scsa2, Vlcsa1, Vlcsa2};

/// Every (n, k) combination checked over all 2^(2n) input pairs.
fn grid() -> Vec<(usize, usize)> {
    let mut g = Vec::new();
    for n in 2..=9usize {
        for k in 1..=n {
            g.push((n, k));
        }
    }
    g
}

#[test]
fn scsa1_error_set_is_exactly_characterized() {
    // For each pair: the speculative result differs from the exact sum iff
    // some window's speculative carry-in is wrong — and then ERR0 flags.
    for (n, k) in grid() {
        let scsa = Scsa::new(n, k);
        for av in 0..(1u64 << n) {
            for bv in 0..(1u64 << n) {
                let a = UBig::from_u128(av as u128, n);
                let b = UBig::from_u128(bv as u128, n);
                let is_err = scsa.is_error(&a, &b, OverflowMode::CarryOut);
                if is_err {
                    assert!(
                        detect::err0(&scsa.window_pg(&a, &b)),
                        "missed error n={n} k={k} a={av:#x} b={bv:#x}"
                    );
                }
            }
        }
    }
}

#[test]
fn engines_exact_over_full_input_space() {
    for (n, k) in grid() {
        let v1 = Vlcsa1::new(n, k);
        let v2 = Vlcsa2::new(n, k);
        for av in 0..(1u64 << n) {
            for bv in 0..(1u64 << n) {
                let a = UBig::from_u128(av as u128, n);
                let b = UBig::from_u128(bv as u128, n);
                let (sum, cout) = a.overflowing_add(&b);
                let o1 = v1.add(&a, &b);
                assert_eq!(
                    (&o1.sum, o1.cout),
                    (&sum, cout),
                    "VLCSA1 n={n} k={k} a={av:#x} b={bv:#x}"
                );
                let o2 = v2.add(&a, &b);
                assert_eq!(
                    (&o2.sum, o2.cout),
                    (&sum, cout),
                    "VLCSA2 n={n} k={k} a={av:#x} b={bv:#x}"
                );
            }
        }
    }
}

#[test]
fn scsa2_spec1_exact_whenever_selected() {
    for (n, k) in grid() {
        let scsa2 = Scsa2::new(n, k);
        for av in 0..(1u64 << n) {
            for bv in 0..(1u64 << n) {
                let a = UBig::from_u128(av as u128, n);
                let b = UBig::from_u128(bv as u128, n);
                let pgs = scsa2.window_pg(&a, &b);
                let spec = scsa2.speculate(&a, &b);
                let exact = a.wrapping_add(&b);
                match detect::select(&pgs) {
                    detect::Selection::Spec0 => {
                        assert_eq!(spec.sum0, exact, "S*,0 n={n} k={k} a={av:#x} b={bv:#x}")
                    }
                    detect::Selection::Spec1 => {
                        assert_eq!(spec.sum1, exact, "S*,1 n={n} k={k} a={av:#x} b={bv:#x}")
                    }
                    detect::Selection::Recover => {}
                }
            }
        }
    }
}

#[test]
fn exact_model_agrees_with_exhaustive_count() {
    // The Markov model must equal the exhaustive error count exactly
    // (uniform inputs = every pair weighted equally).
    for (n, k) in [(6usize, 2usize), (8, 3), (8, 4), (9, 3)] {
        let scsa = Scsa::new(n, k);
        let mut errors = 0u64;
        for av in 0..(1u64 << n) {
            for bv in 0..(1u64 << n) {
                let a = UBig::from_u128(av as u128, n);
                let b = UBig::from_u128(bv as u128, n);
                errors += scsa.is_error(&a, &b, OverflowMode::Truncate) as u64;
            }
        }
        let measured = errors as f64 / (1u64 << (2 * n)) as f64;
        let model = vlcsa::model::exact_error_rate(n, k);
        assert!(
            (measured - model).abs() < 1e-12,
            "n={n} k={k}: exhaustive {measured} vs model {model}"
        );
    }
}

//! Loopback end-to-end tests of the serve front-end: real TCP, concurrent
//! clients, mixed engines and widths, deterministic assertions against the
//! scalar reference, and VLCSA cycle accounting checked against the batch
//! outcome of the same operands.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use bitnum::batch::{WideSlab, Word};
use bitnum::rng::{RandomBits, Xoshiro256};
use bitnum::UBig;
use vlcsa::engine::Registry;
use vlcsa::exec::Executor;
use vlcsa::program::Program;
use vlcsa_serve::{Client, ErrorCode, ServeConfig, Server};
use workloads::dist::{Distribution, OperandSource};

fn test_config() -> ServeConfig {
    ServeConfig {
        max_wait: Duration::from_micros(300),
        ..ServeConfig::default()
    }
}

/// Joins the server within a wall-clock bound — the clean-shutdown
/// contract every test ends with.
fn shutdown_within(server: Server, bound: Duration) {
    let start = Instant::now();
    server.shutdown();
    assert!(
        start.elapsed() < bound,
        "server shutdown took {:?} (bound {:?})",
        start.elapsed(),
        bound
    );
}

#[test]
fn concurrent_clients_mixed_engines_bit_identical() {
    let server = Server::start("127.0.0.1:0", test_config()).unwrap();
    let addr = server.local_addr();
    const CLIENTS: usize = 4;
    const REQUESTS: usize = 60;
    let engines = ["ripple", "carry-select", "vlsa", "vlcsa1", "vlcsa2"];
    let widths = [16usize, 64, 100];

    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let mut rng = Xoshiro256::seed_from_u64(0xC0FFEE + c as u64);
                let mut client = Client::connect(addr).unwrap();
                // Pipeline everything, then drain: completions may arrive
                // out of submission order across engines.
                let mut expected = std::collections::HashMap::new();
                for r in 0..REQUESTS {
                    let engine = engines[(c + r) % engines.len()];
                    let width = widths[(rng.next_u64() % 3) as usize];
                    let a = UBig::random(width, &mut rng);
                    let b = UBig::random(width, &mut rng);
                    let seq = client.submit(engine, &a, &b).unwrap();
                    expected.insert(seq, (engine, width, a, b));
                }
                let mut registries = std::collections::HashMap::new();
                for _ in 0..REQUESTS {
                    let (seq, response) = client.recv().unwrap();
                    let response = response.unwrap_or_else(|e| panic!("seq {seq}: {e:?}"));
                    let (engine, width, a, b) = expected.remove(&seq).expect("known seq");
                    let registry = registries
                        .entry(width)
                        .or_insert_with(|| Registry::for_width(width));
                    let one = registry.get(engine).unwrap().add_one(&a, &b);
                    assert_eq!(response.sum, one.sum, "client {c} seq {seq} {engine}");
                    assert_eq!(response.cout, one.cout, "client {c} seq {seq} {engine}");
                    assert_eq!(response.cycles, one.cycles, "client {c} seq {seq} {engine}");
                }
                assert!(expected.is_empty());
                client.close();
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("client thread");
    }
    shutdown_within(server, Duration::from_secs(10));
}

#[test]
fn vlcsa_cycle_totals_match_batch_accounting() {
    // Per-response cycle counts summed over a request stream must equal
    // the `BatchOutcome`/`WideOutcome` accounting of the same operands —
    // the eq. 5.2 average-latency bookkeeping, visible through the server.
    let server = Server::start("127.0.0.1:0", test_config()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    const LANES: usize = 200;
    for engine in ["vlcsa1", "vlcsa2"] {
        let mut src = OperandSource::new(Distribution::paper_gaussian(), 64, 1234);
        let (a, b) = src.next_wide(LANES);
        let registry = Registry::for_width(64);
        let direct = Executor::new(1).run(registry.get(engine).unwrap(), &a, &b);

        let mut seqs = Vec::with_capacity(LANES);
        for l in 0..LANES {
            seqs.push(client.submit(engine, &a.lane(l), &b.lane(l)).unwrap());
        }
        let mut served_total = 0u64;
        for _ in 0..LANES {
            let (_, response) = client.recv().unwrap();
            let response = response.unwrap();
            assert!(response.cycles == 1 || response.cycles == 2);
            served_total += response.cycles as u64;
        }
        assert_eq!(
            served_total,
            direct.total_cycles(),
            "{engine}: served cycle total vs executor accounting"
        );
        // Gaussian operands at the paper's parameters must actually stall
        // VLCSA 1 — otherwise this test is vacuous.
        if engine == "vlcsa1" {
            assert!(direct.stalls() > 0, "expected stalls in the workload");
            assert_eq!(served_total, LANES as u64 + direct.stalls());
        }
    }
    client.close();
    shutdown_within(server, Duration::from_secs(10));
}

#[test]
fn bad_engine_name_lists_known_engines_and_keeps_connection() {
    let server = Server::start("127.0.0.1:0", test_config()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let a = UBig::from_u128(1, 32);
    let b = UBig::from_u128(2, 32);
    let seq = client.submit("karry-select", &a, &b).unwrap();
    let (done, response) = client.recv().unwrap();
    assert_eq!(done, seq);
    let err = response.expect_err("unknown engine must fail");
    assert_eq!(err.code, ErrorCode::UnknownEngine);
    for name in Registry::for_width(32).names() {
        assert!(
            err.message.contains(name),
            "error must list `{name}`: {}",
            err.message
        );
    }
    // The connection survives the error.
    let ok = client.add("carry-select", &a, &b).unwrap();
    assert_eq!(ok.sum.to_u128(), Some(3));
    client.close();
    shutdown_within(server, Duration::from_secs(10));
}

#[test]
fn engines_command_lists_the_registry_plus_auto() {
    let server = Server::start("127.0.0.1:0", test_config()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let names = client.engines().unwrap();
    let expect: Vec<String> = Registry::for_width(64)
        .names()
        .into_iter()
        .map(str::to_string)
        .chain(std::iter::once(vlcsa_serve::AUTO_ENGINE.to_string()))
        .collect();
    assert_eq!(names, expect, "registry families then the pseudo-engine");
    client.close();
    shutdown_within(server, Duration::from_secs(10));
}

#[test]
fn stats_command_reports_queue_window_and_stall_rates() {
    // The in-band STATS snapshot: a fresh server reports an idle queue and
    // window; after traffic, per-engine lane totals are exact, the
    // variable-latency engine shows its Gaussian stall rate, and the
    // fixed-latency engine shows none. The response is a single line.
    let server = Server::start("127.0.0.1:0", test_config()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let idle = client.stats().unwrap();
    assert_eq!(idle.queue_depth, 0);
    assert_eq!(idle.window_lanes, 0);
    assert_eq!(idle.max_lanes, ServeConfig::default().max_lanes);
    assert_eq!(idle.word_bits, bitnum::batch::DefaultWord::LANES);
    assert!(idle.engines.is_empty(), "no traffic served yet: {idle:?}");
    assert_eq!(idle.window_occupancy(), 0.0);

    const LANES: usize = 300;
    let mut src = OperandSource::new(Distribution::paper_gaussian(), 64, 77);
    let registry = Registry::for_width(64);
    let mut expected_stalls = 0u64;
    for engine in ["vlcsa1", "ripple"] {
        for _ in 0..LANES {
            let (a, b) = src.next_pair();
            if registry.get(engine).unwrap().add_one(&a, &b).cycles > 1 {
                expected_stalls += 1;
            }
            let seq = client.submit(engine, &a, &b).unwrap();
            let _ = seq;
        }
    }
    for _ in 0..2 * LANES {
        client.recv().unwrap().1.unwrap();
    }

    let stats = client.stats().unwrap();
    assert_eq!(stats.queue_depth, 0, "all requests answered: {stats:?}");
    let vlcsa1 = stats.engine("vlcsa1").expect("vlcsa1 served traffic");
    let ripple = stats.engine("ripple").expect("ripple served traffic");
    assert_eq!(vlcsa1.lanes, LANES as u64);
    assert_eq!(ripple.lanes, LANES as u64);
    assert_eq!(ripple.stalls, 0);
    assert_eq!(ripple.stall_rate(), 0.0);
    // Worker accounting equals the scalar reference exactly — the same
    // cycle bookkeeping the OK lines carry, aggregated server-side.
    assert_eq!(vlcsa1.stalls, expected_stalls);
    assert!(
        vlcsa1.stall_rate() > 0.1,
        "Gaussian operands at k=14 stall ~25%: {stats:?}"
    );

    client.close();
    shutdown_within(server, Duration::from_secs(10));
}

#[test]
fn stats_window_occupancy_is_visible_mid_window() {
    // With a long batching window and a max_lanes bound that is not yet
    // reached, submitted requests sit in the open window — STATS must show
    // them as window occupancy (or, transiently, queue depth) while they
    // wait for the flush.
    let server = Server::start(
        "127.0.0.1:0",
        ServeConfig {
            max_wait: Duration::from_secs(5),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut submitter = Client::connect(server.local_addr()).unwrap();
    let mut prober = Client::connect(server.local_addr()).unwrap();
    let a = UBig::from_u128(1, 64);
    let b = UBig::from_u128(2, 64);
    let pending = 5usize;
    for _ in 0..pending {
        submitter.submit("vlcsa2", &a, &b).unwrap();
    }
    // Wait (bounded) for the batcher to absorb the submissions into the
    // open window, then snapshot through a second connection.
    let deadline = Instant::now() + Duration::from_secs(3);
    let mut seen = 0;
    while Instant::now() < deadline {
        let stats = prober.stats().unwrap();
        seen = stats.window_lanes + stats.queue_depth;
        if stats.window_lanes == pending {
            assert!((stats.window_occupancy() - pending as f64 / 256.0).abs() < 1e-9);
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(seen, pending, "pending requests visible through STATS");
    for _ in 0..pending {
        submitter.recv().unwrap().1.unwrap();
    }
    prober.close();
    submitter.close();
    shutdown_within(server, Duration::from_secs(10));
}

#[test]
fn malformed_lines_are_answered_not_dropped() {
    // Raw-socket client: protocol garbage gets an ERR with seq 0 (or the
    // parsed seq), and the same connection still serves valid requests.
    let server = Server::start("127.0.0.1:0", test_config()).unwrap();
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut line = String::new();

    writer.write_all(b"FROBNICATE 1 2 3\n").unwrap();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("ERR 0 bad-request"), "{line}");

    line.clear();
    writer.write_all(b"ADD 9 ripple 8 fff 1\n").unwrap(); // 0xfff > 8 bits
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("ERR 9 bad-operand"), "{line}");

    line.clear();
    writer.write_all(b"ADD 10 ripple 8 ff 1\n").unwrap();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim(), "OK 10 0 1 1"); // 0xff + 1 wraps to 0, carry out

    shutdown_within(server, Duration::from_secs(10));
}

#[test]
fn closed_connections_are_deregistered() {
    // A long-running server must not accumulate one open socket per dead
    // connection: each reader deregisters its stream on exit, so after a
    // churn of short-lived clients the registry drains back to zero.
    let server = Server::start("127.0.0.1:0", test_config()).unwrap();
    let a = UBig::from_u128(20, 16);
    let b = UBig::from_u128(5, 16);
    for _ in 0..25 {
        let mut client = Client::connect(server.local_addr()).unwrap();
        assert_eq!(
            client.add("ripple", &a, &b).unwrap().sum.to_u128(),
            Some(25)
        );
        client.close();
    }
    // Deregistration runs on the reader threads after the socket closes;
    // give it a bounded moment.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.open_connections() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(
        server.open_connections(),
        0,
        "dead connections must be pruned from the registry"
    );
    shutdown_within(server, Duration::from_secs(10));
}

#[test]
fn sums_and_programs_round_trip_with_mixed_add_traffic() {
    // Happy-path end to end: SUM and PROG requests interleave with plain
    // ADDs on one connection and answer the exact scalar-fold values.
    let server = Server::start("127.0.0.1:0", test_config()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let program = Program::from_spec("i0+i1,t0+t0,t1+i2", 3).unwrap();
    for (round, engine) in ["ripple", "carry-select", "vlcsa1", "vlcsa2"]
        .into_iter()
        .enumerate()
    {
        for width in [16usize, 64, 100] {
            let mut src = OperandSource::new(
                Distribution::paper_gaussian(),
                width,
                round as u64 * 31 + width as u64,
            );
            let operands: Vec<UBig> = (0..5).map(|_| src.next_operand()).collect();
            let expect = operands[1..]
                .iter()
                .fold(operands[0].clone(), |acc, o| acc.wrapping_add(o));
            let response = client.sum(engine, &operands).unwrap();
            assert_eq!(response.sum, expect, "{engine} SUM width {width}");
            assert!(response.cycles == 1 || response.cycles == 2);

            let inputs = &operands[..3];
            let response = client.run_program(engine, &program, inputs).unwrap();
            assert_eq!(
                response.sum,
                program.eval_scalar(inputs),
                "{engine} PROG width {width}"
            );

            let (a, b) = src.next_pair();
            let ok = client.add(engine, &a, &b).unwrap();
            assert_eq!(ok.sum, a.wrapping_add(&b), "{engine} ADD width {width}");
        }
    }
    client.close();
    shutdown_within(server, Duration::from_secs(10));
}

#[test]
fn served_sum_of_8_resolves_carries_exactly_once() {
    // The acceptance pin: a SUM of 8 operands is ONE carry-resolve, not
    // seven. Three observables agree: (1) each response's cycles are the
    // scalar engine's cycles for resolving the reduction's carry-save
    // pair; (2) the served cycle total equals the executor's accounting
    // over those pairs batched as one slab — lanes + stalls, i.e. one
    // resolve per sum; (3) STATS counts one lane per sum, not eight.
    let server = Server::start("127.0.0.1:0", test_config()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    const SUMS: usize = 120;
    const N: usize = 8;
    let width = 64;
    let program = Program::sum(N).unwrap();
    let registry = Registry::for_width(width);
    let engine = registry.get("vlcsa1").unwrap();
    let mut src = OperandSource::new(Distribution::paper_gaussian(), width, 0x5E41);

    let mut xs = Vec::with_capacity(SUMS);
    let mut ys = Vec::with_capacity(SUMS);
    let mut expected = std::collections::HashMap::new();
    for _ in 0..SUMS {
        let operands: Vec<UBig> = (0..N).map(|_| src.next_operand()).collect();
        let (x, y) = program.csa_pair_scalar(&operands);
        let seq = client.submit_sum("vlcsa1", &operands).unwrap();
        expected.insert(
            seq,
            (program.eval_scalar(&operands), engine.add_one(&x, &y)),
        );
        xs.push(x);
        ys.push(y);
    }
    let mut served_total = 0u64;
    for _ in 0..SUMS {
        let (seq, response) = client.recv().unwrap();
        let response = response.unwrap();
        let (sum, resolve) = expected.remove(&seq).expect("known seq");
        assert_eq!(response.sum, sum, "seq {seq}");
        assert!(response.cycles == 1 || response.cycles == 2);
        // The one resolve is the engine adding the carry-save pair: the
        // served latency is that single addition's, never 7 additions'.
        assert_eq!(response.cycles, resolve.cycles, "seq {seq}");
        assert_eq!(response.cout, resolve.cout, "seq {seq}");
        served_total += u64::from(response.cycles);
    }
    assert!(expected.is_empty());

    let direct = Executor::new(1).run(
        registry.get("vlcsa1").unwrap(),
        &WideSlab::from_lanes(&xs),
        &WideSlab::from_lanes(&ys),
    );
    assert_eq!(served_total, direct.total_cycles());
    assert_eq!(served_total, SUMS as u64 + direct.stalls());
    assert!(
        direct.stalls() > 0,
        "Gaussian carry-save pairs must stall vlcsa1 sometimes, or the pin is vacuous"
    );

    // One lane per 8-operand sum — the server never expanded the request
    // into per-operand additions.
    let stats = client.stats().unwrap();
    assert_eq!(stats.engine("vlcsa1").unwrap().lanes, SUMS as u64);
    client.close();
    shutdown_within(server, Duration::from_secs(10));
}

#[test]
fn fuzzed_sum_and_prog_lines_never_kill_the_connection() {
    // Satellite robustness: one raw socket feeds interleaved valid ADD/SUM
    // traffic, truncated and oversized SUM/PROG lines, and seeded garbage.
    // Every non-empty line gets exactly one response; malformed lines get
    // ERR with the right code and sequence; valid requests still answer
    // exactly; and STATS still parses afterwards.
    let server = Server::start("127.0.0.1:0", test_config()).unwrap();
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut rng = Xoshiro256::seed_from_u64(0xF022);

    // Malformed lines with a parseable seq → ERR <seq> <code>.
    let malformed: Vec<(String, ErrorCode)> = vec![
        ("SUM 101 ripple".into(), ErrorCode::BadRequest),
        ("SUM 102 ripple 8".into(), ErrorCode::BadRequest),
        ("SUM 103 ripple 9999 2 1 2".into(), ErrorCode::BadWidth),
        ("SUM 104 ripple 8 0".into(), ErrorCode::BadRequest),
        ("SUM 105 ripple 8 999 1 2".into(), ErrorCode::BadRequest),
        ("SUM 106 ripple 8 3 1 2".into(), ErrorCode::BadRequest),
        ("SUM 107 ripple 8 2 1 2 3".into(), ErrorCode::BadRequest),
        ("SUM 108 ripple 8 2 zz 1".into(), ErrorCode::BadOperand),
        ("SUM 109 ripple 8 2 ffff 1".into(), ErrorCode::BadOperand),
        ("SUM 110 no-such 8 2 1 2".into(), ErrorCode::UnknownEngine),
        ("SUM 111 ripple 8 two 1 2".into(), ErrorCode::BadRequest),
        (
            "PROG 112 ripple 8 2 i0*i1 1 2".into(),
            ErrorCode::BadRequest,
        ),
        (
            "PROG 113 ripple 8 2 t0+i0 1 2".into(),
            ErrorCode::BadRequest,
        ),
        ("PROG 114 ripple 8 2".into(), ErrorCode::BadRequest),
        ("PROG 115 ripple 8 2 i0+i1 1".into(), ErrorCode::BadRequest),
        (
            "PROG 116 ripple 8 2 i0+i9 1 2".into(),
            ErrorCode::BadRequest,
        ),
        // Oversized: a 64 KiB hex operand against width 64.
        (
            format!("SUM 117 ripple 64 2 {} 1", "f".repeat(65536)),
            ErrorCode::BadOperand,
        ),
        // Oversized: a program far past the step cap.
        (
            format!(
                "PROG 118 ripple 8 1 {} ff",
                (0..80)
                    .map(|s| if s == 0 {
                        "i0+i0".to_string()
                    } else {
                        format!("t{}+t{}", s - 1, s - 1)
                    })
                    .collect::<Vec<_>>()
                    .join(",")
            ),
            ErrorCode::BadRequest,
        ),
    ];
    // Seqless garbage → ERR 0 bad-request. Tokens avoid whitespace so each
    // write stays one line.
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789+,=!?#@";
    let mut garbage: Vec<String> = vec![
        "SUM".into(),
        "PROG".into(),
        "SUM x ripple 8 2 1 2".into(),
        "SUMMON 1 ripple 8 2 1 2".into(),
    ];
    for _ in 0..8 {
        let len = 1 + (rng.next_u64() % 200) as usize;
        let token: String = (0..len)
            .map(|_| ALPHABET[(rng.next_u64() % ALPHABET.len() as u64) as usize] as char)
            .collect();
        garbage.push(token);
    }

    // Valid traffic: ADDs (seq 1000+) and SUMs (seq 2000+) whose exact
    // answers are checked after the storm, plus `auto`-delegated ADDs
    // (seq 3000+), SUMs (seq 4000+) and PROGs (seq 5000+) — the router's
    // pick may be any family, but every family computes exact addition,
    // so the expected sums don't depend on it.
    let auto_program = Program::from_spec("i0+i1,t0+i2", 3).unwrap();
    let mut valid: Vec<(String, u64, usize, UBig)> = Vec::new();
    let mut src = OperandSource::new(Distribution::UnsignedUniform, 64, 0xF00D);
    for i in 0..12u64 {
        let (a, b) = src.next_pair();
        valid.push((
            vlcsa_serve::protocol::format_add(1000 + i, "vlcsa1", &a, &b),
            1000 + i,
            64,
            a.wrapping_add(&b),
        ));
        let n = [2usize, 3, 8][i as usize % 3];
        let operands: Vec<UBig> = (0..n).map(|_| src.next_operand()).collect();
        let expect = operands[1..]
            .iter()
            .fold(operands[0].clone(), |acc, o| acc.wrapping_add(o));
        valid.push((
            vlcsa_serve::protocol::format_sum(2000 + i, "ripple", &operands),
            2000 + i,
            64,
            expect,
        ));
        let (a, b) = src.next_pair();
        valid.push((
            vlcsa_serve::protocol::format_add(3000 + i, "auto", &a, &b),
            3000 + i,
            64,
            a.wrapping_add(&b),
        ));
        let operands: Vec<UBig> = (0..3).map(|_| src.next_operand()).collect();
        let expect = operands[1..]
            .iter()
            .fold(operands[0].clone(), |acc, o| acc.wrapping_add(o));
        valid.push((
            vlcsa_serve::protocol::format_sum(4000 + i, "auto", &operands),
            4000 + i,
            64,
            expect,
        ));
        let inputs: Vec<UBig> = (0..3).map(|_| src.next_operand()).collect();
        valid.push((
            vlcsa_serve::protocol::format_program(5000 + i, "auto", &auto_program, &inputs),
            5000 + i,
            64,
            auto_program.eval_scalar(&inputs),
        ));
    }

    // Interleave the three streams deterministically and fire.
    let mut lines: Vec<(String, Option<(u64, ErrorCode)>)> = Vec::new();
    for (line, code) in &malformed {
        let seq = line
            .split_ascii_whitespace()
            .nth(1)
            .and_then(|t| t.parse().ok())
            .unwrap();
        lines.push((line.clone(), Some((seq, *code))));
    }
    for g in &garbage {
        lines.push((g.clone(), Some((0, ErrorCode::BadRequest))));
    }
    for (line, ..) in &valid {
        lines.push((line.clone(), None));
    }
    // Deterministic shuffle.
    for i in (1..lines.len()).rev() {
        lines.swap(i, (rng.next_u64() % (i as u64 + 1)) as usize);
    }
    for (line, _) in &lines {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
    }

    // One response per line, in any order (ERRs answer inline, OKs from
    // workers). Classify by seq.
    let mut errors: Vec<(u64, ErrorCode)> = Vec::new();
    let mut oks: std::collections::HashMap<u64, String> = std::collections::HashMap::new();
    for _ in 0..lines.len() {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).unwrap() > 0,
            "connection died mid-storm"
        );
        let mut tokens = line.split_ascii_whitespace();
        match tokens.next().unwrap() {
            "OK" => {
                let seq: u64 = tokens.next().unwrap().parse().unwrap();
                oks.insert(seq, line.trim().to_string());
            }
            "ERR" => {
                let seq: u64 = tokens.next().unwrap().parse().unwrap();
                let code = ErrorCode::from_str_token(tokens.next().unwrap()).unwrap();
                errors.push((seq, code));
            }
            other => panic!("unexpected response `{other}`: {line}"),
        }
    }

    // Every malformed line got its ERR…
    for (expect_seq, expect_code) in lines.iter().filter_map(|(_, e)| *e) {
        let at = errors
            .iter()
            .position(|&(s, c)| s == expect_seq && c == expect_code)
            .unwrap_or_else(|| panic!("no ERR {expect_seq} {expect_code} in {errors:?}"));
        errors.swap_remove(at);
    }
    assert!(errors.is_empty(), "unexplained errors: {errors:?}");
    // …and every valid request answered exactly.
    for (_, seq, width, expect) in &valid {
        let line = oks.remove(seq).unwrap_or_else(|| panic!("no OK for {seq}"));
        match vlcsa_serve::protocol::parse_response(&line, *width).unwrap() {
            vlcsa_serve::Response::Ok { sum, .. } => assert_eq!(&sum, expect, "seq {seq}"),
            other => panic!("seq {seq}: {other:?}"),
        }
    }
    assert!(oks.is_empty(), "unexplained OKs: {oks:?}");

    // The connection survives and STATS still parses. The `auto` lanes
    // were recorded under whatever family the router picked, so the named
    // engines hold at least their own traffic and the grand total adds up
    // exactly: 12 named ADDs + 12 named SUMs + 36 delegated requests.
    writer.write_all(b"STATS\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    match vlcsa_serve::protocol::parse_response(&line, 1).unwrap() {
        vlcsa_serve::Response::Stats(stats) => {
            assert!(stats.engine("ripple").unwrap().lanes >= 12);
            assert!(stats.engine("vlcsa1").unwrap().lanes >= 12);
            let total: u64 = stats.engines.iter().map(|e| e.lanes).sum();
            assert_eq!(total, 60, "every request is exactly one lane: {stats:?}");
            // Delegated traffic flowed, so the router must expose its
            // width-64 decision, un-degraded (no SLO was ever set).
            let route = stats
                .routes
                .iter()
                .find(|r| r.width == 64)
                .expect("auto traffic leaves a width-64 route");
            assert!(!route.degraded);
            assert_eq!(stats.slo_micros, None);
        }
        other => panic!("STATS answered {other:?}"),
    }
    shutdown_within(server, Duration::from_secs(10));
}

#[test]
fn slo_round_trips_and_stats_reports_routes() {
    // The SLO budget is a live service knob: query, set (the response
    // doubles as a readback), clear — and STATS carries both the budget
    // in force and the router's current per-width decision once `auto`
    // traffic has flowed. Garbage SLO lines are seqless bad-requests that
    // leave the connection (and the budget) untouched.
    let server = Server::start("127.0.0.1:0", test_config()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    assert_eq!(client.slo().unwrap(), None, "no budget configured at start");
    assert_eq!(client.set_slo(Some(750)).unwrap(), Some(750), "set echoes");
    assert_eq!(client.slo().unwrap(), Some(750));

    // Delegated traffic at two widths; exactness never depends on the pick.
    for width in [32usize, 64] {
        for v in 0..6u128 {
            let a = UBig::from_u128(v, width);
            let b = UBig::from_u128(v + 1, width);
            let ok = client.add("auto", &a, &b).unwrap();
            assert_eq!(ok.sum.to_u128(), Some(2 * v + 1));
        }
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.slo_micros, Some(750));
    let registry_names = Registry::for_width(64).names();
    for width in [32usize, 64] {
        let route = stats
            .routes
            .iter()
            .find(|r| r.width == width)
            .unwrap_or_else(|| panic!("no route for width {width}: {stats:?}"));
        assert!(
            registry_names.contains(&route.engine.as_str()),
            "route resolves to a concrete family: {route:?}"
        );
    }

    assert_eq!(client.set_slo(None).unwrap(), None, "clear echoes");
    assert_eq!(client.stats().unwrap().slo_micros, None);

    // Raw socket: the pinned ERR behavior for garbage SLO arguments. None
    // of these may change the budget or kill the connection.
    client.set_slo(Some(900)).unwrap();
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    for garbage in [
        "SLO abc",
        "SLO 0",
        "SLO -3",
        "SLO 1.5",
        "SLO 12 34",
        "SLO off now",
    ] {
        writer.write_all(garbage.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(
            line.starts_with("ERR 0 bad-request"),
            "`{garbage}` answered {line}"
        );
    }
    writer.write_all(b"SLO\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim(), "SLO 900", "garbage left the budget untouched");
    writer.write_all(b"SLO off\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim(), "SLO off");

    client.close();
    shutdown_within(server, Duration::from_secs(10));
}

#[test]
fn step_less_program_is_a_structured_client_error() {
    // Regression: a step-less program (e.g. the 1-operand sum) has an
    // empty spec, which the wire format cannot carry — `run_program` must
    // answer with a structured error instead of panicking in the
    // formatter, and the connection must stay usable afterwards.
    let server = Server::start("127.0.0.1:0", test_config()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let step_less = Program::sum(1).unwrap();
    assert!(step_less.steps().is_empty(), "sum(1) needs no additions");
    let input = UBig::from_u128(17, 64);
    match client.run_program("ripple", &step_less, std::slice::from_ref(&input)) {
        Err(vlcsa_serve::ClientError::Unrepresentable(message)) => {
            assert!(
                message.contains("step-less"),
                "error names the problem: {message}"
            );
        }
        other => panic!("expected Unrepresentable, got {other:?}"),
    }
    // Nothing was written to the socket: the same connection still serves.
    let ok = client
        .add("ripple", &input, &UBig::from_u128(25, 64))
        .unwrap();
    assert_eq!(ok.sum.to_u128(), Some(42));
    client.close();
    shutdown_within(server, Duration::from_secs(10));
}

#[test]
fn binary_clients_round_trip_and_proto_counters_pin() {
    // The tentpole end to end, plus the STATS satellite: a binary client
    // negotiated via HELLO serves exact sums at multi-limb widths (and
    // through `auto`), while proto_text/proto_bin count every answered
    // request on the right side — the STATS request itself included, the
    // HELLO upgrade line excluded.
    let server = Server::start("127.0.0.1:0", test_config()).unwrap();
    let addr = server.local_addr();

    let mut text = Client::connect(addr).unwrap();
    assert!(!text.is_binary());
    let mut src = OperandSource::new(Distribution::paper_gaussian(), 100, 0xB1A2);
    for _ in 0..3 {
        let (a, b) = src.next_pair();
        let ok = text.add("vlcsa1", &a, &b).unwrap();
        assert_eq!(ok.sum, a.wrapping_add(&b));
    }

    let mut bin = Client::connect_binary(addr).unwrap();
    assert!(bin.is_binary());
    // The listing is identical across transports, auto included.
    assert_eq!(bin.engines().unwrap(), text.engines().unwrap());
    for engine in ["vlcsa2", "auto"] {
        let (a, b) = src.next_pair();
        let ok = bin.add(engine, &a, &b).unwrap();
        assert_eq!(ok.sum, a.wrapping_add(&b), "{engine}");
        assert!(ok.cycles == 1 || ok.cycles == 2);
    }
    // SUM and PROG travel as frames too.
    let operands: Vec<UBig> = (0..5).map(|_| src.next_operand()).collect();
    let expect = operands[1..]
        .iter()
        .fold(operands[0].clone(), |acc, o| acc.wrapping_add(o));
    assert_eq!(bin.sum("ripple", &operands).unwrap().sum, expect);
    let program = Program::from_spec("i0+i1,t0+i2", 3).unwrap();
    let inputs = &operands[..3];
    assert_eq!(
        bin.run_program("carry-select", &program, inputs)
            .unwrap()
            .sum,
        program.eval_scalar(inputs)
    );
    // And the SLO knob answers over frames.
    assert_eq!(bin.set_slo(Some(750)).unwrap(), Some(750));
    assert_eq!(bin.slo().unwrap(), Some(750));
    assert_eq!(bin.set_slo(None).unwrap(), None);

    // The pin: the text side has answered 3 ADDs + 1 ENGINES; the binary
    // side has answered the handshake ENGINES + the explicit engines() +
    // 2 ADDs + SUM + PROG + 3 SLO commands = 9 frames, and this STATS is
    // the 10th. The HELLO upgrade line counts as neither.
    let snapshot = bin.stats().unwrap();
    assert_eq!(snapshot.proto_text, 4, "{snapshot:?}");
    assert_eq!(snapshot.proto_bin, 10, "{snapshot:?}");
    // The text view agrees — one set of counters, two transports — and
    // its own STATS line is text request number 5.
    let snapshot = text.stats().unwrap();
    assert_eq!(snapshot.proto_text, 5, "{snapshot:?}");
    assert_eq!(snapshot.proto_bin, 10, "{snapshot:?}");

    bin.close();
    text.close();
    shutdown_within(server, Duration::from_secs(10));
}

#[test]
fn binary_bad_engine_id_gets_structured_err_frame() {
    // The Registry::lookup error surface, reachable from binary mode: an
    // out-of-range engine id answers with an ERR frame that lists the
    // id ↔ name mapping, and the same connection keeps serving.
    use vlcsa_serve::binary;

    let server = Server::start("127.0.0.1:0", test_config()).unwrap();
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    writer.write_all(b"HELLO BIN 1\n").unwrap();
    let mut ack = String::new();
    reader.read_line(&mut ack).unwrap();
    assert_eq!(ack.trim(), binary::HELLO_LINE);

    writer
        .write_all(&binary::encode_add(7, 200, 64, &[5], &[6]))
        .unwrap();
    let (opcode, body) = binary::read_frame(&mut reader).unwrap().unwrap();
    match binary::decode_response(opcode, &body).unwrap() {
        vlcsa_serve::binary::BinResponse::Err(err) => {
            assert_eq!(err.seq, 7);
            assert_eq!(err.code, ErrorCode::UnknownEngine);
            for (i, name) in Registry::for_width(64).names().iter().enumerate() {
                assert!(
                    err.message.contains(&format!("{i}={name}")),
                    "listing must map `{name}`: {}",
                    err.message
                );
            }
            assert!(err.message.contains("255=auto"), "{}", err.message);
        }
        other => panic!("expected ERR frame, got {other:?}"),
    }
    // The connection survives: id 0 is the listing's first engine.
    writer
        .write_all(&binary::encode_add(8, 0, 64, &[40], &[2]))
        .unwrap();
    let (opcode, body) = binary::read_frame(&mut reader).unwrap().unwrap();
    match binary::decode_response(opcode, &body).unwrap() {
        vlcsa_serve::binary::BinResponse::Ok { seq, sum_limbs, .. } => {
            assert_eq!((seq, sum_limbs.as_slice()), (8, &[42u64][..]));
        }
        other => panic!("expected OK frame, got {other:?}"),
    }
    shutdown_within(server, Duration::from_secs(10));
}

#[test]
fn binary_garbage_answers_or_closes_cleanly_never_desyncs() {
    // The framing robustness satellite. In-frame malformations (unknown
    // opcode, wrong counts, stray bits) are answered and the stream stays
    // in sync; header-level poison (bad version, lying length) answers
    // once and closes; a mid-frame disconnect is a clean close. The server
    // survives all of it.
    use vlcsa_serve::binary;

    let server = Server::start("127.0.0.1:0", test_config()).unwrap();
    let addr = server.local_addr();
    let hello = |stream: &mut TcpStream, reader: &mut BufReader<TcpStream>| {
        stream.write_all(b"HELLO BIN 1\n").unwrap();
        let mut ack = String::new();
        reader.read_line(&mut ack).unwrap();
        assert_eq!(ack.trim(), binary::HELLO_LINE);
    };
    let expect_err = |reader: &mut BufReader<TcpStream>, seq: u64, code: ErrorCode| {
        let (opcode, body) = binary::read_frame(reader).unwrap().unwrap();
        match binary::decode_response(opcode, &body).unwrap() {
            vlcsa_serve::binary::BinResponse::Err(err) => {
                assert_eq!((err.seq, err.code), (seq, code), "{}", err.message);
            }
            other => panic!("expected ERR, got {other:?}"),
        }
    };

    // Each scenario owns its sockets in a block: shadowed `TcpStream`
    // bindings would otherwise keep client FDs open until the end of the
    // test, and the drained-readers check below would never pass.

    // 1) In-frame garbage, then later frames still answered — no desync.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        hello(&mut stream, &mut reader);
        // Unknown opcode (body carries seq 21).
        let mut bad_op = binary::encode_add(21, 0, 64, &[1], &[2]);
        bad_op[1] = 0x7f;
        stream.write_all(&bad_op).unwrap();
        expect_err(&mut reader, 21, ErrorCode::BadRequest);
        // Truncated body: an ADD body cut mid-operand (the header's length
        // is honest about the short body, so the stream stays in sync).
        let whole = binary::encode_add(22, 0, 64, &[1], &[2]);
        let cut_body_len = (whole.len() - 6 - 4) as u32;
        let mut cut = Vec::new();
        cut.extend_from_slice(&[1, 0x01]);
        cut.extend_from_slice(&cut_body_len.to_le_bytes());
        cut.extend_from_slice(&whole[6..whole.len() - 4]);
        stream.write_all(&cut).unwrap();
        expect_err(&mut reader, 22, ErrorCode::BadRequest);
        // Stray bits above the width.
        stream
            .write_all(&binary::encode_add(23, 0, 60, &[1 << 63], &[0]))
            .unwrap();
        expect_err(&mut reader, 23, ErrorCode::BadOperand);
        // Bad width.
        stream
            .write_all(&binary::encode_add(24, 0, 5000, &[0], &[0]))
            .unwrap();
        expect_err(&mut reader, 24, ErrorCode::BadWidth);
        // The stream is still perfectly usable.
        stream
            .write_all(&binary::encode_add(25, 0, 64, &[20], &[22]))
            .unwrap();
        let (opcode, body) = binary::read_frame(&mut reader).unwrap().unwrap();
        match binary::decode_response(opcode, &body).unwrap() {
            vlcsa_serve::binary::BinResponse::Ok { seq, sum_limbs, .. } => {
                assert_eq!((seq, sum_limbs.as_slice()), (25, &[42u64][..]));
            }
            other => panic!("expected OK, got {other:?}"),
        }
    }

    // 2) Unknown version byte: one ERR, then the server closes.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        hello(&mut stream, &mut reader);
        let mut frame = binary::encode_add(31, 0, 64, &[1], &[2]);
        frame[0] = 9;
        stream.write_all(&frame).unwrap();
        expect_err(&mut reader, 0, ErrorCode::BadRequest);
        assert!(
            matches!(binary::read_frame(&mut reader), Ok(None) | Err(_)),
            "stream must close after a version it cannot trust"
        );
    }

    // 3) Oversized length prefix: one ERR, then close — never an
    //    allocation or a hang.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        hello(&mut stream, &mut reader);
        let mut lying = vec![1u8, 0x01];
        lying.extend_from_slice(&u32::MAX.to_le_bytes());
        stream.write_all(&lying).unwrap();
        expect_err(&mut reader, 0, ErrorCode::BadRequest);
        assert!(matches!(binary::read_frame(&mut reader), Ok(None) | Err(_)));
    }

    // 4) Mid-frame disconnect: a clean close server-side, no panic, no
    //    stuck reader thread.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        hello(&mut stream, &mut reader);
        let whole = binary::encode_add(41, 0, 64, &[1], &[2]);
        stream.write_all(&whole[..whole.len() / 2]).unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.open_connections() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(server.open_connections(), 0, "readers drained");

    // 5) After the storm, a fresh client of each protocol still works.
    let mut text = Client::connect(addr).unwrap();
    let a = UBig::from_u128(40, 64);
    let b = UBig::from_u128(2, 64);
    assert_eq!(text.add("ripple", &a, &b).unwrap().sum.to_u128(), Some(42));
    let mut bin = Client::connect_binary(addr).unwrap();
    assert_eq!(bin.add("ripple", &a, &b).unwrap().sum.to_u128(), Some(42));
    text.close();
    bin.close();
    shutdown_within(server, Duration::from_secs(10));
}

#[test]
fn hello_after_the_first_line_is_just_an_unknown_command() {
    // Negotiation is first-line-only: a connection that has spoken text
    // once can never upgrade, so a later HELLO is answered as a normal
    // unknown command and the connection stays text.
    let server = Server::start("127.0.0.1:0", test_config()).unwrap();
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut line = String::new();

    writer.write_all(b"ADD 1 ripple 8 1 2\n").unwrap();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim(), "OK 1 3 0 1");

    line.clear();
    writer.write_all(b"HELLO BIN 1\n").unwrap();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("ERR 0 bad-request"), "{line}");

    line.clear();
    writer.write_all(b"ADD 2 ripple 8 2 3\n").unwrap();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim(), "OK 2 5 0 1", "still text after the late HELLO");
    shutdown_within(server, Duration::from_secs(10));
}

#[test]
fn idle_windows_then_burst() {
    // An idle server (batching windows with zero requests) must neither
    // busy-spin nor wedge: after a quiet period, a burst is served intact.
    let server = Server::start("127.0.0.1:0", test_config()).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let mut client = Client::connect(server.local_addr()).unwrap();
    let mut seqs = Vec::new();
    let a = UBig::from_u128(41, 64);
    let b = UBig::from_u128(1, 64);
    for _ in 0..32 {
        seqs.push(client.submit("vlcsa2", &a, &b).unwrap());
    }
    for _ in 0..32 {
        let (_, response) = client.recv().unwrap();
        assert_eq!(response.unwrap().sum.to_u128(), Some(42));
    }
    client.close();
    shutdown_within(server, Duration::from_secs(10));
}

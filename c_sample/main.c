/*
 * c_sample — drives the vlcsa engines through the C ABI, no socket
 * anywhere, and asserts bit-exact sums against a plain-C reference:
 *
 *   1. synchronous adds on a named engine (vlcsa2) at a non-limb-
 *      aligned width (96 bits), checking sum, carry-out and cycles;
 *   2. one 8-operand reduction (vlcsa1), checked against a C fold;
 *   3. an auto-routed async batch: 64 tickets submitted in a burst,
 *      polled to completion, each checked — then vlcsa_stats must
 *      report every lane and a non-zero (and coalesced) group count;
 *   4. the error surface: bad config, bad operands, double free.
 *
 * Build (from the repo root, after `cargo build --release -p vlcsa-ffi`):
 *
 *   cc -O2 -o vlcsa_demo c_sample/main.c -Icrates/ffi/include \
 *      target/release/libvlcsa_ffi.a -lpthread -ldl -lm
 */

#include <inttypes.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#include "vlcsa.h"

#define CHECK(cond, ...)                                              \
    do {                                                              \
        if (!(cond)) {                                                \
            fprintf(stderr, "FAIL %s:%d: ", __FILE__, __LINE__);      \
            fprintf(stderr, __VA_ARGS__);                             \
            fprintf(stderr, "\n");                                    \
            exit(1);                                                  \
        }                                                             \
    } while (0)

/* splitmix64 — deterministic operand streams, independent of libc. */
static uint64_t rng_state;
static uint64_t rng_next(void) {
    uint64_t z = (rng_state += UINT64_C(0x9e3779b97f4a7c15));
    z = (z ^ (z >> 30)) * UINT64_C(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)) * UINT64_C(0x94d049bb133111eb);
    return z ^ (z >> 31);
}

/* A random width-bit operand: `limbs` limbs, top limb masked. */
static void rand_operand(uint64_t *out, size_t limbs, size_t width) {
    size_t used = width % 64;
    for (size_t i = 0; i < limbs; i++)
        out[i] = rng_next();
    if (used)
        out[limbs - 1] &= (UINT64_C(1) << used) - 1;
}

/* Reference addition mod 2^width; returns the carry out of bit
 * width-1. Operands must already be masked to `width` bits. */
static int ref_add(const uint64_t *a, const uint64_t *b, uint64_t *out,
                   size_t limbs, size_t width) {
    unsigned carry = 0;
    for (size_t i = 0; i < limbs; i++) {
        uint64_t s = a[i] + carry;
        unsigned c1 = s < a[i];
        out[i] = s + b[i];
        carry = c1 | (out[i] < s);
    }
    size_t used = width % 64;
    if (used) {
        /* The raw sum's bit `width` is the carry out; clear it. */
        carry = (unsigned)((out[limbs - 1] >> used) & 1);
        out[limbs - 1] &= (UINT64_C(1) << used) - 1;
    }
    return (int)carry;
}

static void check_sync_adds(void) {
    const size_t width = 96, limbs = 2, rounds = 50;
    vlcsa_config_t config;
    memset(&config, 0, sizeof config);
    config.engine = "vlcsa2";
    config.width = width;
    config.max_wait_micros = 200;

    vlcsa_engine_t *engine = NULL;
    CHECK(vlcsa_init(&config, &engine) == VLCSA_OK, "init: %s",
          vlcsa_last_error(NULL));
    CHECK(vlcsa_limbs(engine) == limbs, "limbs at width 96");

    for (size_t round = 0; round < rounds; round++) {
        uint64_t a[2], b[2], sum[2], want[2];
        rand_operand(a, limbs, width);
        rand_operand(b, limbs, width);
        int want_cout = ref_add(a, b, want, limbs, width);
        int cout = -1;
        uint32_t cycles = 0;
        CHECK(vlcsa_add(engine, a, b, sum, &cout, &cycles) == VLCSA_OK,
              "add: %s", vlcsa_last_error(engine));
        CHECK(memcmp(sum, want, sizeof want) == 0,
              "round %zu: sum mismatch", round);
        CHECK(cout == want_cout, "round %zu: cout %d want %d", round, cout,
              want_cout);
        CHECK(cycles == 1 || cycles == 2, "round %zu: cycles %u", round,
              cycles);
    }
    CHECK(vlcsa_free(engine) == VLCSA_OK, "free");
    printf("ok  sync adds       engine=vlcsa2 width=%zu rounds=%zu\n", width,
           rounds);
}

static void check_reduction(void) {
    const size_t width = 128, limbs = 2, n = 8;
    vlcsa_config_t config;
    memset(&config, 0, sizeof config);
    config.engine = "vlcsa1";
    config.width = width;
    config.max_wait_micros = 200;

    vlcsa_engine_t *engine = NULL;
    CHECK(vlcsa_init(&config, &engine) == VLCSA_OK, "init: %s",
          vlcsa_last_error(NULL));

    uint64_t ops[8 * 2], want[2] = {0, 0}, sum[2];
    for (size_t i = 0; i < n; i++) {
        rand_operand(&ops[i * limbs], limbs, width);
        /* Fold mod 2^width — value-equal to the engine's carry-save
         * compression + single resolve. */
        ref_add(want, &ops[i * limbs], want, limbs, width);
    }
    CHECK(vlcsa_sum(engine, ops, n, sum, NULL, NULL) == VLCSA_OK, "sum: %s",
          vlcsa_last_error(engine));
    CHECK(memcmp(sum, want, sizeof want) == 0, "8-operand reduction mismatch");
    CHECK(vlcsa_free(engine) == VLCSA_OK, "free");
    printf("ok  reduction       engine=vlcsa1 width=%zu operands=%zu\n", width,
           n);
}

static void check_auto_batch(void) {
    const size_t width = 64, batch = 64;
    vlcsa_config_t config;
    memset(&config, 0, sizeof config);
    config.engine = "auto"; /* adaptive routing, in process */
    config.width = width;
    config.max_wait_micros = 300;
    config.slo_micros = 5000;

    vlcsa_engine_t *engine = NULL;
    CHECK(vlcsa_init(&config, &engine) == VLCSA_OK, "init: %s",
          vlcsa_last_error(NULL));

    uint64_t a[64], b[64], tickets[64];
    for (size_t i = 0; i < batch; i++) {
        a[i] = rng_next();
        b[i] = rng_next();
        CHECK(vlcsa_submit(engine, &a[i], &b[i], &tickets[i]) == VLCSA_OK,
              "submit %zu: %s", i, vlcsa_last_error(engine));
    }
    for (size_t i = 0; i < batch; i++) {
        uint64_t sum, want;
        int cout = -1, want_cout = ref_add(&a[i], &b[i], &want, 1, width);
        int code;
        while ((code = vlcsa_poll(engine, tickets[i], &sum, &cout, NULL)) ==
               VLCSA_PENDING)
            ; /* spin: the window flushes within max_wait_micros */
        CHECK(code == VLCSA_OK, "poll %zu: %s", i, vlcsa_last_error(engine));
        CHECK(sum == want, "ticket %zu: sum %" PRIu64 " want %" PRIu64, i, sum,
              want);
        CHECK(cout == want_cout, "ticket %zu: cout", i);
    }

    vlcsa_stats_t stats;
    CHECK(vlcsa_stats(engine, &stats) == VLCSA_OK, "stats");
    CHECK(stats.lanes == batch, "lanes %" PRIu64 " want %zu", stats.lanes,
          batch);
    CHECK(stats.groups > 0, "groups must be non-zero after traffic");
    CHECK(stats.groups < batch, "a burst of %zu must coalesce, got %" PRIu64
          " groups", batch, stats.groups);
    CHECK(vlcsa_free(engine) == VLCSA_OK, "free");
    printf("ok  auto batch      lanes=%" PRIu64 " groups=%" PRIu64
           " stalls=%" PRIu64 "\n",
           stats.lanes, stats.groups, stats.stalls);
}

static void check_errors(void) {
    vlcsa_config_t config;
    memset(&config, 0, sizeof config);
    config.engine = "no-such-engine";
    config.width = 64;

    vlcsa_engine_t *engine = NULL;
    CHECK(vlcsa_init(&config, &engine) == VLCSA_ERR_BAD_CONFIG,
          "unknown engine must be rejected");
    CHECK(strstr(vlcsa_last_error(NULL), "no-such-engine") != NULL,
          "error text names the engine: %s", vlcsa_last_error(NULL));

    config.engine = "ripple";
    config.width = 0;
    CHECK(vlcsa_init(&config, &engine) == VLCSA_ERR_BAD_CONFIG,
          "zero width must be rejected");

    config.width = 64;
    CHECK(vlcsa_init(&config, &engine) == VLCSA_OK, "init: %s",
          vlcsa_last_error(NULL));
    uint64_t sum;
    CHECK(vlcsa_sum(engine, &sum, 65, &sum, NULL, NULL) ==
              VLCSA_ERR_BAD_OPERANDS,
          "over-cap operand count must be rejected before any read");
    CHECK(vlcsa_add(engine, NULL, &sum, &sum, NULL, NULL) == VLCSA_ERR_NULL,
          "null operand must be rejected");
    CHECK(vlcsa_free(engine) == VLCSA_OK, "free");
    CHECK(vlcsa_free(engine) == VLCSA_ERR_BAD_HANDLE,
          "double free must be an error, not UB");
    printf("ok  error surface   codes stable, no aborts\n");
}

int main(void) {
    rng_state = UINT64_C(0xc0ffee);
    printf("vlcsa C ABI sample: word_bits=%zu (build-time slab word)\n",
           vlcsa_word_bits());
    check_sync_adds();
    check_reduction();
    check_auto_batch();
    check_errors();
    printf("all green: bit-exact through the C ABI, no socket involved\n");
    return 0;
}

//! Practical-workload latency: why VLCSA 2 exists.
//!
//! Chapter 6 profiles cryptographic workloads, finds MSB-reaching carry
//! chains everywhere, and shows VLCSA 1 degenerating to a 25% stall rate on
//! the two's-complement Gaussian proxy. This example closes the loop on
//! real(istic) data: it regenerates the crypto traces, replays every traced
//! addition through VLCSA 1 and VLCSA 2, and compares average latency.
//!
//! Run with: `cargo run --release -p vlcsa --example crypto_latency`

use bitnum::UBig;
use vlcsa::{LatencyStats, Vlcsa1, Vlcsa2};
use workloads::chains::ChainHistogram;
use workloads::crypto::{AddSink, CryptoBench, PairCollector};
use workloads::dist::{Distribution, OperandSource};

fn replay(pairs: &[(UBig, UBig)], v1: &Vlcsa1, v2: &Vlcsa2) -> (LatencyStats, LatencyStats) {
    let mut s1 = LatencyStats::new();
    let mut s2 = LatencyStats::new();
    for (a, b) in pairs {
        let o1 = v1.add(a, b);
        debug_assert_eq!(o1.sum, a.wrapping_add(b));
        s1.record(&o1);
        let o2 = v2.add(a, b);
        debug_assert_eq!(o2.sum, a.wrapping_add(b));
        s2.record(&o2);
    }
    (s1, s2)
}

fn main() {
    let width = 32; // the traced software word size
    let v1 = Vlcsa1::new(width, 8);
    let v2 = Vlcsa2::new(width, 8);

    println!(
        "{:10} {:>10} {:>14} {:>14} {:>22}",
        "workload", "adds", "VLCSA1 stall", "VLCSA2 stall", "avg cycles (1 -> 2)"
    );
    for bench in CryptoBench::ALL {
        // Collect a bounded trace plus its chain statistics.
        let mut collector = PairCollector::with_cap(Some(200_000));
        let mut hist = ChainHistogram::new(width);
        struct Tee<'a>(&'a mut PairCollector, &'a mut ChainHistogram);
        impl AddSink for Tee<'_> {
            fn record_add(&mut self, a: &UBig, b: &UBig) {
                self.0.record_add(a, b);
                self.1.record(a, b);
            }
        }
        bench.run(1, 42, &mut Tee(&mut collector, &mut hist));
        let (s1, s2) = replay(collector.pairs(), &v1, &v2);
        println!(
            "{:10} {:>10} {:>13.2}% {:>13.2}% {:>11.3} -> {:.3}   (chains >= 20: {:.1}%)",
            bench.name(),
            collector.pairs().len(),
            100.0 * s1.stall_rate(),
            100.0 * s2.stall_rate(),
            s1.avg_cycles(),
            s2.avg_cycles(),
            100.0 * hist.additions_with_chain_at_least(20),
        );
    }

    // The paper's Gaussian proxy at the same window size, for reference.
    let mut src = OperandSource::new(
        Distribution::TwosComplementGaussian { sigma: 256.0 },
        width,
        7,
    );
    let pairs: Vec<_> = (0..200_000).map(|_| src.next_pair()).collect();
    let (s1, s2) = replay(&pairs, &v1, &v2);
    println!(
        "{:10} {:>10} {:>13.2}% {:>13.2}% {:>11.3} -> {:.3}",
        "gaussian",
        pairs.len(),
        100.0 * s1.stall_rate(),
        100.0 * s2.stall_rate(),
        s1.avg_cycles(),
        s2.avg_cycles(),
    );
    println!(
        "\nVLCSA 2's second speculative result absorbs the MSB-reaching chains \
         that stall VLCSA 1 on sign-mixed arithmetic (Ch. 6)."
    );
}

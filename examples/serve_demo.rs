//! End-to-end serve demo: start the batching server on a loopback port,
//! drive it with a pipelined client, and print the per-request latency
//! accounting that makes the variable-latency trade-off visible.
//!
//! ```sh
//! cargo run --release --example serve_demo
//! ```

use std::time::Duration;

use bitnum::UBig;
use vlcsa_serve::{Client, ServeConfig, Server};
use workloads::dist::{Distribution, OperandSource};

fn main() {
    let server = Server::start(
        "127.0.0.1:0",
        ServeConfig {
            max_lanes: 128,
            max_wait: Duration::from_micros(300),
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback");
    println!("serving on {}\n", server.local_addr());

    let mut client = Client::connect(server.local_addr()).expect("connect");
    println!(
        "engines: {}\n",
        client.engines().expect("ENGINES").join(", ")
    );

    // One Gaussian stream (the paper's practical operand model), fanned
    // across a fixed-latency baseline and both VLCSA variants.
    const OPS: usize = 512;
    println!(
        "{:<14} {:>6} {:>8} {:>9} {:>12}",
        "engine", "ops", "stalls", "cycles", "avg latency"
    );
    for engine in ["carry-select", "vlsa", "vlcsa1", "vlcsa2"] {
        let mut src = OperandSource::new(Distribution::paper_gaussian(), 64, 7);
        let mut seqs = Vec::with_capacity(OPS);
        for _ in 0..OPS {
            let (a, b) = src.next_pair();
            seqs.push(client.submit(engine, &a, &b).expect("submit"));
        }
        let (mut cycles, mut stalls) = (0u64, 0u64);
        for _ in 0..OPS {
            let (_, response) = client.recv().expect("recv");
            let response = response.expect("no request errors in the demo");
            cycles += response.cycles as u64;
            stalls += u64::from(response.cycles == 2);
        }
        println!(
            "{engine:<14} {OPS:>6} {stalls:>8} {cycles:>9} {:>11.4}c",
            cycles as f64 / OPS as f64
        );
    }

    // The server-side view of the same accounting: one in-band STATS line
    // with queue depth, window occupancy, the slab word width and
    // per-engine stall totals.
    let stats = client.stats().expect("STATS");
    println!(
        "\nSTATS: queue_depth={} window={}/{} word_bits={}",
        stats.queue_depth, stats.window_lanes, stats.max_lanes, stats.word_bits
    );
    for e in &stats.engines {
        println!(
            "  {:<14} lanes={:<6} stalls={:<5} stall_rate={:.4}",
            e.name,
            e.lanes,
            e.stalls,
            e.stall_rate()
        );
    }

    // The error path is structured: a bad engine name answers with the
    // registry's names instead of dropping the connection.
    let a = UBig::from_u128(1, 64);
    let seq = client.submit("no-such-adder", &a, &a).expect("submit");
    let (done, response) = client.recv().expect("recv");
    assert_eq!(done, seq);
    println!("\nbad engine name → {}", response.expect_err("ERR").message);

    client.close();
    server.shutdown();
    println!("server shut down cleanly");
}

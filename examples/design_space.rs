//! Design-space exploration: the error-rate / delay / area trade-off.
//!
//! Sweeps the window size of a 128-bit VLCSA 1, synthesizes each point, and
//! prints the Pareto picture the paper's Sec. 7.5 discusses ("there is a
//! tradeoff between the error rate and area … the error rate may slightly
//! increase to clearly reduce area").
//!
//! Run with: `cargo run --release -p vlcsa --example design_space`

use gatesim::{area, opt, sta};
use vlcsa::model;

fn main() {
    let width = 128;
    let dw = adders::designware::best(width);
    let ns = |tau: f64| tau * gatesim::PS_PER_TAU / 1000.0;
    println!(
        "reference: DesignWare-substitute ({}) = {:.3} ns, {:.0} um2\n",
        dw.candidate,
        ns(dw.delay_tau),
        dw.area_nand2 * gatesim::UM2_PER_NAND2
    );
    println!(
        "{:>3} {:>12} {:>12} {:>10} {:>10} {:>10} {:>12}",
        "k", "err (model)", "stall (ERR)", "Tclk (ns)", "vs DW", "area um2", "avg ns/add"
    );
    for k in [6usize, 8, 10, 12, 14, 16, 20, 24] {
        let err = model::exact_error_rate(width, k);
        let stall = model::err0_rate_exact(width, k);
        let net = opt::best_buffered(&vlcsa::netlist::vlcsa1_netlist(width, k), &[4, 8, 16]);
        let timing = sta::analyze(&net);
        let t_clk = ns(timing
            .output_arrival_tau("sum")
            .unwrap()
            .max(timing.output_arrival_tau("err").unwrap()));
        let a = area::analyze(&net).total_um2();
        // eq. 5.2: the average latency folds the stall rate back in.
        let avg = t_clk * (1.0 + stall);
        println!(
            "{k:>3} {:>11.4}% {:>11.4}% {t_clk:>10.3} {:>9.1}% {a:>10.0} {avg:>12.3}",
            100.0 * err,
            100.0 * stall,
            100.0 * (t_clk / ns(dw.delay_tau) - 1.0),
        );
    }
    println!(
        "\nsmall windows: tiny area, fast clock, but the stall rate erodes the \
         average; large windows converge to a traditional adder. The paper's \
         sweet spot (0.01%-0.25% error) sits in the middle."
    );
}

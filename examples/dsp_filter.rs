//! Error-tolerant signal processing with a bare speculative adder.
//!
//! The paper's intro motivates SCSA for "applications where errors are
//! tolerable, such as ... signal processing": the speculative adder is used
//! *without* detection and recovery, trading rare, low-magnitude errors for
//! the area and delay of the safety net. This example runs a 32-tap
//! moving-average filter over a noisy sine wave, accumulating through
//! SCSA 1 at several window sizes, and reports the signal-to-error ratio of
//! the approximate output. The error *rate* falls geometrically with the
//! window size (Ch. 3.2), while the per-error magnitude is set by where a
//! window boundary lands relative to the accumulator's active bits
//! (Sec. 3.3) — so the sweep below exposes both effects: k = 10 puts its
//! boundaries in quiet bit positions and is near-transparent, while k = 14
//! errs 7x less often but each miss costs more.
//!
//! Run with: `cargo run --release -p vlcsa --example dsp_filter`

use bitnum::rng::{RandomBits, Xoshiro256};
use bitnum::UBig;
use vlcsa::{model, OverflowMode, Scsa};

const WIDTH: usize = 32;
const TAPS: usize = 32;
const SAMPLES: usize = 4096;

fn main() {
    // 16-bit signal samples, offset to stay unsigned: s(t) = sine + noise.
    let mut rng = Xoshiro256::seed_from_u64(2024);
    let signal: Vec<u64> = (0..SAMPLES)
        .map(|t| {
            let sine = 20_000.0 * (t as f64 * 0.05).sin();
            let noise = (rng.next_f64() - 0.5) * 4_000.0;
            (32_768.0 + sine + noise) as u64
        })
        .collect();

    // Exact reference output.
    let exact_out: Vec<f64> = (TAPS..SAMPLES)
        .map(|t| {
            let s: u64 = signal[t - TAPS..t].iter().sum();
            s as f64 / TAPS as f64
        })
        .collect();

    println!(
        "{:>3} {:>14} {:>12} {:>10} {:>12}",
        "k", "model err", "wrong adds", "SER (dB)", "worst (LSB)"
    );
    let mut previous_rate = f64::INFINITY;
    let mut best_ser = f64::NEG_INFINITY;
    for k in [6usize, 8, 10, 14] {
        let scsa = Scsa::new(WIDTH, k);
        let mut wrong = 0u64;
        let mut adds = 0u64;
        let mut spec_out = Vec::with_capacity(exact_out.len());
        for t in TAPS..SAMPLES {
            let mut acc = UBig::zero(WIDTH);
            for &sample in &signal[(t - TAPS)..t] {
                let x = UBig::from_u128(sample as u128, WIDTH);
                wrong += scsa.is_error(&acc, &x, OverflowMode::Truncate) as u64;
                adds += 1;
                acc = scsa.speculate(&acc, &x).sum;
            }
            spec_out.push(acc.to_u128().unwrap() as f64 / TAPS as f64);
        }
        let mut signal_power = 0.0;
        let mut error_power = 0.0;
        let mut worst = 0.0f64;
        for (e, s) in exact_out.iter().zip(&spec_out) {
            let centered = e - 32_768.0;
            signal_power += centered * centered;
            let err = e - s;
            error_power += err * err;
            worst = worst.max(err.abs());
        }
        let ser_db = 10.0 * (signal_power / error_power.max(1e-12)).log10();
        println!(
            "{k:>3} {:>13.4}% {:>11.4}% {:>10.1} {:>12.1}",
            100.0 * model::exact_error_rate(WIDTH, k),
            100.0 * wrong as f64 / adds as f64,
            ser_db,
            worst
        );
        let rate = wrong as f64 / adds as f64;
        assert!(
            rate <= previous_rate,
            "error rate must fall with window size"
        );
        previous_rate = rate;
        best_ser = best_ser.max(ser_db);
    }
    assert!(
        best_ser > 40.0,
        "some window size should be near-transparent: {best_ser:.1} dB"
    );
    println!(
        "\nThe error rate falls ~2x per window bit, while each miss is one \
         carry at a window boundary — place boundaries in the accumulator's \
         quiet bits (k = 10 here) and speculation is effectively transparent \
         without any detection/recovery hardware."
    );
}

//! Quickstart: build a reliable variable-latency adder, add numbers, and
//! inspect both the behavioral engine and the synthesized hardware.
//!
//! Run with: `cargo run --release -p vlcsa --example quickstart`

use bitnum::UBig;
use gatesim::{area, opt, sta};
use vlcsa::{model, LatencyStats, Vlcsa1};

fn main() {
    // --- 1. Pick a design point from the analytical error model ----------
    let width = 64;
    let window = model::window_size_for(
        width,
        1e-4, // 0.01% target error rate
        model::Semantics::RoundsTo2Dp,
        vlcsa::OverflowMode::Truncate,
        model::Model::Paper,
    );
    println!("n = {width}: window size k = {window} for a 0.01% error rate");
    println!(
        "  model: eq.3.13 = {:.6}%, exact = {:.6}%, nominal (ERR rate) = {:.6}%",
        100.0 * model::paper_error_rate(width, window, vlcsa::OverflowMode::Truncate),
        100.0 * model::exact_error_rate(width, window),
        100.0 * model::err0_rate_exact(width, window),
    );

    // --- 2. Add numbers through the variable-latency engine --------------
    let adder = Vlcsa1::new(width, window);
    let mut stats = LatencyStats::new();

    let a = UBig::from_u128(0x1234_5678_9abc_def0, width);
    let b = UBig::from_u128(0x0fed_cba9_8765_4321, width);
    let outcome = adder.add(&a, &b);
    stats.record(&outcome);
    println!(
        "\n{a} + {b} = {} in {} cycle(s)",
        outcome.sum, outcome.cycles
    );

    // A worst-case pattern: a long carry chain forces detection + recovery.
    let ones = UBig::from_u128(u64::MAX as u128 >> 1, width);
    let one = UBig::from_u128(1, width);
    let outcome = adder.add(&ones, &one);
    stats.record(&outcome);
    println!(
        "{ones} + {one} = {} in {} cycle(s) (flagged: {})",
        outcome.sum, outcome.cycles, outcome.flagged
    );

    // The output is exact either way — that is the reliability invariant.
    assert_eq!(outcome.sum, ones.wrapping_add(&one));

    // --- 3. Look at the hardware the paper synthesizes -------------------
    let netlist = opt::best_buffered(&vlcsa::netlist::vlcsa1_netlist(width, window), &[4, 8, 16]);
    let timing = sta::analyze(&netlist);
    let ns = |tau: f64| tau * gatesim::PS_PER_TAU / 1000.0;
    let spec_ns = ns(timing.output_arrival_tau("sum").unwrap());
    let det_ns = ns(timing.output_arrival_tau("err").unwrap());
    let rec_ns = ns(timing.output_arrival_tau("sum_rec").unwrap());
    println!(
        "\nsynthesized VLCSA 1 ({} cells, {:.0} um2):",
        netlist.cell_count(),
        area::analyze(&netlist).total_um2()
    );
    println!("  speculation {spec_ns:.3} ns | detection {det_ns:.3} ns | recovery {rec_ns:.3} ns");
    println!(
        "  T_clk = {:.3} ns, recovery fits in 2 cycles: {}",
        spec_ns.max(det_ns),
        rec_ns < 2.0 * spec_ns.max(det_ns)
    );

    // For comparison: the fastest traditional adder our flow produces.
    let dw = adders::designware::best(width);
    let dw_ns = ns(dw.delay_tau);
    println!(
        "  DesignWare-substitute ({}): {:.3} ns -> VLCSA 1 is {:.1}% faster when speculation holds",
        dw.candidate,
        dw_ns,
        100.0 * (1.0 - spec_ns.max(det_ns) / dw_ns)
    );
    println!(
        "\naverage cycles so far: {:.3} (eq. 5.2)",
        stats.avg_cycles()
    );
}

//! Batched (bit-sliced) behavioral evaluation of the baseline adder
//! families.
//!
//! The netlist generators in this crate describe *hardware structure*; this
//! module evaluates the same algorithms *behaviorally* over a
//! [`BitSlab`] — one independent addition per lane word bit, per
//! gate-level word operation — so throughput experiments can compare adder
//! families at rates the one-operand-at-a-time scalar path cannot reach
//! (see the `batch` bench in `vlcsa-bench` and the benchmark contract in
//! EXPERIMENTS.md).
//!
//! Every engine is generic over the slab's lane word
//! ([`Word`]: `u64` for 64 lanes, [`W256`](bitnum::batch::W256) for 256 —
//! the workspace default) and implements [`BatchAdd`] with two paths that
//! compute the identical function:
//!
//! * [`BatchAdd::add_batch`] — bit-sliced over all lanes of a slab pair;
//! * [`ScalarAdd::add_one`] — the scalar reference with per-bit loops,
//!   mirroring the same carry structure one operand pair at a time. This is
//!   the baseline the batch speedups in `BENCH_batch.json` are measured
//!   against.
//!
//! Lane-exact agreement between the two (and with [`UBig::overflowing_add`])
//! is enforced by the `batch_properties` proptest suite — for both lane
//! words, which the same suite pins against each other lane-for-lane.
//!
//! # Example
//!
//! ```
//! use adders::batch::{BatchAdd, BatchCarrySelect};
//! use bitnum::batch::{BitSlab, Word};
//! use bitnum::UBig;
//!
//! let engine = BatchCarrySelect::new(64, 8);
//! let a: BitSlab = BitSlab::from_lanes(&vec![UBig::from_u128(123, 64); 4]);
//! let b = BitSlab::from_lanes(&vec![UBig::from_u128(877, 64); 4]);
//! let out = engine.add_batch(&a, &b);
//! assert_eq!(out.sum.lane(2).to_u128(), Some(1000));
//! assert!(out.cout.is_zero());
//! ```

use bitnum::batch::{ripple_words, BitSlab, DefaultWord, Word};
use bitnum::UBig;

/// The result of one batched addition: a slab of sums plus a per-lane
/// carry-out word.
///
/// ```
/// use adders::batch::{BatchAdd, BatchRipple, BatchSum};
/// use bitnum::batch::{BitSlab, Word};
/// use bitnum::UBig;
///
/// let out: BatchSum = BatchRipple::new(8).add_batch(
///     &BitSlab::from_lanes(&[UBig::from_u128(255, 8), UBig::from_u128(1, 8)]),
///     &BitSlab::from_lanes(&[UBig::from_u128(1, 8), UBig::from_u128(1, 8)]),
/// );
/// assert_eq!(out.sum.lane(0).to_u128(), Some(0)); // 256 wraps
/// assert_eq!(out.cout.limb(0), 0b01); // only lane 0 carries out
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchSum<W: Word = DefaultWord> {
    /// The wrapped sums, one lane per input lane.
    pub sum: BitSlab<W>,
    /// Carry-out word: bit `l` is lane `l`'s carry out of bit `width-1`.
    pub cout: W,
}

/// A behavioral adder engine with a bit-sliced batch path and a scalar
/// per-bit reference path, generic over the slab lane word `W`.
///
/// Implementations must make the two paths compute the same function:
/// `add_batch(a, b).sum.lane(l)` equals `add_one(&a.lane(l), &b.lane(l)).0`
/// for every lane `l` (and likewise the carry-outs) — which in turn must
/// equal the exact [`UBig::overflowing_add`]. Every engine in this module
/// implements the trait for **every** lane word, so the same engine value
/// serves 64-lane `u64` slabs and 256-lane `W256` slabs.
///
/// ```
/// use adders::batch::{BatchAdd, BatchCla, BatchSum, ScalarAdd};
/// use bitnum::batch::BitSlab;
/// use bitnum::UBig;
///
/// let engine = BatchCla::new(16);
/// let (a, b) = (UBig::from_u128(0xfffe, 16), UBig::from_u128(3, 16));
/// let (sum, cout) = engine.add_one(&a, &b);
/// assert_eq!(sum.to_u128(), Some(1));
/// assert!(cout);
/// let batch: BatchSum = engine.add_batch(&BitSlab::from_lanes(&[a]), &BitSlab::from_lanes(&[b]));
/// assert_eq!(batch.sum.lane(0), sum);
/// ```
pub trait BatchAdd<W: Word = DefaultWord>: ScalarAdd {
    /// Adds all lanes of `a` and `b` bit-sliced.
    ///
    /// # Panics
    ///
    /// Panics if the slabs disagree with the engine width or with each
    /// other's lane count.
    fn add_batch(&self, a: &BitSlab<W>, b: &BitSlab<W>) -> BatchSum<W>;
}

/// The word-independent half of a batch engine: identity plus the scalar
/// per-bit reference path. Split out of [`BatchAdd`] so scalar calls on a
/// concrete engine need no lane-word annotation (the batch path is the
/// only word-generic surface).
pub trait ScalarAdd {
    /// The operand width the engine was built for.
    fn width(&self) -> usize;

    /// Short display name for reports (e.g. `"carry-select"`).
    fn name(&self) -> &'static str;

    /// Adds one operand pair through the scalar per-bit path (the
    /// benchmark baseline), returning `(sum, carry_out)`.
    ///
    /// # Panics
    ///
    /// Panics if the operand widths disagree with the engine width.
    fn add_one(&self, a: &UBig, b: &UBig) -> (UBig, bool);
}

fn check_slabs<W: Word>(width: usize, a: &BitSlab<W>, b: &BitSlab<W>) {
    assert_eq!(a.width(), width, "slab width mismatch");
    assert_eq!(b.width(), width, "slab width mismatch");
    assert_eq!(a.lanes(), b.lanes(), "slab lane count mismatch");
}

fn check_ones(width: usize, a: &UBig, b: &UBig) {
    assert_eq!(a.width(), width, "operand width mismatch");
    assert_eq!(b.width(), width, "operand width mismatch");
}

/// Bit-sliced ripple-carry: one word-parallel carry chain across the full
/// width. The simplest engine and the latency reference for the rest.
///
/// ```
/// use adders::batch::{BatchRipple, ScalarAdd};
/// let engine = BatchRipple::new(32);
/// assert_eq!(engine.width(), 32);
/// assert_eq!(engine.name(), "ripple");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchRipple {
    width: usize,
}

impl BatchRipple {
    /// Creates a ripple engine of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`bitnum::MAX_WIDTH`].
    pub fn new(width: usize) -> Self {
        assert!(
            (1..=bitnum::MAX_WIDTH).contains(&width),
            "unsupported width {width}"
        );
        Self { width }
    }
}

impl ScalarAdd for BatchRipple {
    fn width(&self) -> usize {
        self.width
    }

    fn name(&self) -> &'static str {
        "ripple"
    }

    fn add_one(&self, a: &UBig, b: &UBig) -> (UBig, bool) {
        check_ones(self.width, a, b);
        let mut sum = UBig::zero(self.width);
        let mut carry = false;
        for i in 0..self.width {
            let (ai, bi) = (a.bit(i), b.bit(i));
            sum.set_bit(i, ai ^ bi ^ carry);
            carry = (ai && bi) || (carry && (ai ^ bi));
        }
        (sum, carry)
    }
}

impl<W: Word> BatchAdd<W> for BatchRipple {
    fn add_batch(&self, a: &BitSlab<W>, b: &BitSlab<W>) -> BatchSum<W> {
        check_slabs(self.width, a, b);
        let mut sum = BitSlab::zero(self.width, a.lanes());
        let cout = ripple_words(
            a.words(),
            b.words(),
            W::ZERO,
            a.lane_mask(),
            sum.words_mut(),
        );
        BatchSum { sum, cout }
    }
}

/// Bit-sliced blocked carry-lookahead: 4-bit groups compute their group
/// `(P, G)` signals, the inter-group carries follow the lookahead
/// recurrence `C_{j+1} = G_j ∨ P_j·C_j`, and each group forms its sum bits
/// from its group carry-in — the behavioral shape of the hierarchical CLA
/// netlist in [`crate::cla`].
///
/// ```
/// use adders::batch::{BatchCla, ScalarAdd};
/// use bitnum::UBig;
/// let engine = BatchCla::new(10); // width not a multiple of the group size
/// let (sum, cout) = engine.add_one(&UBig::from_u128(1000, 10), &UBig::from_u128(30, 10));
/// assert_eq!(sum.to_u128(), Some(6)); // 1030 mod 1024
/// assert!(cout);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchCla {
    width: usize,
}

/// Lookahead group size of [`BatchCla`] (matching the netlist generator's
/// 4-bit groups).
const CLA_GROUP: usize = 4;

impl BatchCla {
    /// Creates a carry-lookahead engine of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`bitnum::MAX_WIDTH`].
    pub fn new(width: usize) -> Self {
        assert!(
            (1..=bitnum::MAX_WIDTH).contains(&width),
            "unsupported width {width}"
        );
        Self { width }
    }
}

impl ScalarAdd for BatchCla {
    fn width(&self) -> usize {
        self.width
    }

    fn name(&self) -> &'static str {
        "cla4"
    }

    fn add_one(&self, a: &UBig, b: &UBig) -> (UBig, bool) {
        check_ones(self.width, a, b);
        let mut sum = UBig::zero(self.width);
        let mut group_cin = false;
        for lo in (0..self.width).step_by(CLA_GROUP) {
            let len = CLA_GROUP.min(self.width - lo);
            let (mut gp, mut gg) = (true, false);
            let mut carry = group_cin;
            for i in lo..lo + len {
                let p = a.bit(i) ^ b.bit(i);
                let g = a.bit(i) && b.bit(i);
                sum.set_bit(i, p ^ carry);
                carry = g || (p && carry);
                gg = g || (p && gg);
                gp &= p;
            }
            group_cin = gg || (gp && group_cin);
        }
        (sum, group_cin)
    }
}

impl<W: Word> BatchAdd<W> for BatchCla {
    fn add_batch(&self, a: &BitSlab<W>, b: &BitSlab<W>) -> BatchSum<W> {
        check_slabs(self.width, a, b);
        let mask = a.lane_mask();
        let mut sum = BitSlab::zero(self.width, a.lanes());
        let mut group_cin = W::ZERO;
        for lo in (0..self.width).step_by(CLA_GROUP) {
            let len = CLA_GROUP.min(self.width - lo);
            // Group P/G from the per-bit signals (word-parallel lookahead).
            let (mut gp, mut gg) = (mask, W::ZERO);
            for i in lo..lo + len {
                let p = a.word(i) ^ b.word(i);
                let g = a.word(i) & b.word(i);
                gg = g | (p & gg);
                gp = gp & p;
            }
            // Sum bits from the group carry-in.
            let mut carry = group_cin;
            for i in lo..lo + len {
                let p = a.word(i) ^ b.word(i);
                let g = a.word(i) & b.word(i);
                sum.set_word(i, p ^ carry);
                carry = g | (p & carry);
            }
            group_cin = gg | (gp & group_cin);
            debug_assert_eq!(carry, group_cin, "lookahead carry disagrees with chain");
        }
        BatchSum {
            sum,
            cout: group_cin,
        }
    }
}

/// Bit-sliced carry-select: each block computes its two conditional sums
/// (carry-in 0 and carry-in 1) with word-parallel ripple chains, then the
/// incoming carry word selects per lane — the behavioral shape of
/// [`crate::carry_select`], and the structure the paper's speculative
/// window adders reuse.
///
/// ```
/// use adders::batch::{BatchCarrySelect, ScalarAdd};
/// let engine = BatchCarrySelect::new(64, 8);
/// assert_eq!(engine.block(), 8);
/// assert_eq!(engine.name(), "carry-select");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchCarrySelect {
    width: usize,
    block: usize,
}

impl BatchCarrySelect {
    /// Creates a carry-select engine with uniform `block`-bit blocks (the
    /// most significant block may be shorter).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`bitnum::MAX_WIDTH`], or if
    /// `block` is not in `1..=64` (blocks are packed into `u64` words on
    /// the scalar path).
    pub fn new(width: usize, block: usize) -> Self {
        assert!(
            (1..=bitnum::MAX_WIDTH).contains(&width),
            "unsupported width {width}"
        );
        assert!((1..=64).contains(&block), "block size must be in 1..=64");
        Self { width, block }
    }

    /// The block size.
    pub fn block(&self) -> usize {
        self.block
    }
}

impl ScalarAdd for BatchCarrySelect {
    fn width(&self) -> usize {
        self.width
    }

    fn name(&self) -> &'static str {
        "carry-select"
    }

    fn add_one(&self, a: &UBig, b: &UBig) -> (UBig, bool) {
        check_ones(self.width, a, b);
        let mut sum = UBig::zero(self.width);
        let mut cin = false;
        for lo in (0..self.width).step_by(self.block) {
            let len = self.block.min(self.width - lo);
            // Both conditional legs, then select with the incoming carry.
            let (mut c0, mut c1) = (false, true);
            let mut bits0 = 0u64;
            let mut bits1 = 0u64;
            for j in 0..len {
                let (ai, bi) = (a.bit(lo + j), b.bit(lo + j));
                let p = ai ^ bi;
                let g = ai && bi;
                bits0 |= ((p ^ c0) as u64) << j;
                bits1 |= ((p ^ c1) as u64) << j;
                c0 = g || (p && c0);
                c1 = g || (p && c1);
            }
            sum.deposit_bits(lo, len, if cin { bits1 } else { bits0 });
            cin = if cin { c1 } else { c0 };
        }
        (sum, cin)
    }
}

impl<W: Word> BatchAdd<W> for BatchCarrySelect {
    fn add_batch(&self, a: &BitSlab<W>, b: &BitSlab<W>) -> BatchSum<W> {
        check_slabs(self.width, a, b);
        let mask = a.lane_mask();
        let mut sum = BitSlab::zero(self.width, a.lanes());
        let mut s0 = vec![W::ZERO; self.block];
        let mut s1 = vec![W::ZERO; self.block];
        let mut cin = W::ZERO;
        for lo in (0..self.width).step_by(self.block) {
            let len = self.block.min(self.width - lo);
            let aw = &a.words()[lo..lo + len];
            let bw = &b.words()[lo..lo + len];
            let c0 = ripple_words(aw, bw, W::ZERO, mask, &mut s0[..len]);
            let c1 = ripple_words(aw, bw, mask, mask, &mut s1[..len]);
            for j in 0..len {
                sum.set_word(lo + j, (s0[j] & !cin) | (s1[j] & cin));
            }
            cin = (c0 & !cin) | (c1 & cin);
        }
        BatchSum { sum, cout: cin }
    }
}

/// Bit-sliced carry-skip: each block ripples with its real carry-in, and
/// the carry **out** of the block goes through the skip mux — `cin` when
/// the whole block propagates, the block generate otherwise — the
/// behavioral shape of [`crate::carry_skip`].
///
/// ```
/// use adders::batch::{BatchCarrySkip, ScalarAdd};
/// let engine = BatchCarrySkip::new(64, 8);
/// assert_eq!(engine.block(), 8);
/// assert_eq!(engine.name(), "carry-skip");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchCarrySkip {
    width: usize,
    block: usize,
}

impl BatchCarrySkip {
    /// Creates a carry-skip engine with uniform `block`-bit blocks (the
    /// most significant block may be shorter).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`bitnum::MAX_WIDTH`], or if
    /// `block` is zero.
    pub fn new(width: usize, block: usize) -> Self {
        assert!(
            (1..=bitnum::MAX_WIDTH).contains(&width),
            "unsupported width {width}"
        );
        assert!(block >= 1, "block size must be >= 1");
        Self { width, block }
    }

    /// The block size.
    pub fn block(&self) -> usize {
        self.block
    }
}

impl ScalarAdd for BatchCarrySkip {
    fn width(&self) -> usize {
        self.width
    }

    fn name(&self) -> &'static str {
        "carry-skip"
    }

    fn add_one(&self, a: &UBig, b: &UBig) -> (UBig, bool) {
        check_ones(self.width, a, b);
        let mut sum = UBig::zero(self.width);
        let mut cin = false;
        for lo in (0..self.width).step_by(self.block) {
            let len = self.block.min(self.width - lo);
            let mut carry = cin;
            let mut bp = true;
            for i in lo..lo + len {
                let p = a.bit(i) ^ b.bit(i);
                let g = a.bit(i) && b.bit(i);
                sum.set_bit(i, p ^ carry);
                carry = g || (p && carry);
                bp &= p;
            }
            cin = if bp { cin } else { carry };
        }
        (sum, cin)
    }
}

impl<W: Word> BatchAdd<W> for BatchCarrySkip {
    fn add_batch(&self, a: &BitSlab<W>, b: &BitSlab<W>) -> BatchSum<W> {
        check_slabs(self.width, a, b);
        let mask = a.lane_mask();
        let mut sum = BitSlab::zero(self.width, a.lanes());
        let mut scratch = vec![W::ZERO; self.block];
        let mut cin = W::ZERO;
        for lo in (0..self.width).step_by(self.block) {
            let len = self.block.min(self.width - lo);
            let aw = &a.words()[lo..lo + len];
            let bw = &b.words()[lo..lo + len];
            let ripple_out = ripple_words(aw, bw, cin, mask, &mut scratch[..len]);
            for (j, &w) in scratch[..len].iter().enumerate() {
                sum.set_word(lo + j, w);
            }
            // Block propagate word: every bit of the block propagates.
            let bp = aw.iter().zip(bw).fold(mask, |p, (&x, &y)| p & (x ^ y));
            // Skip mux. When a lane's block fully propagates it has no
            // generate, so ripple_out == cin there and the mux is a
            // restatement — the structural identity of the skip adder.
            cin = (bp & cin) | (!bp & ripple_out);
            debug_assert_eq!(cin, ripple_out, "skip mux disagrees with ripple chain");
        }
        BatchSum { sum, cout: cin }
    }
}

/// Bit-sliced conditional-sum: recursive doubling over block sizes 1, 2,
/// 4, … where each level keeps *both* conditional sums (carry-in 0 and 1)
/// per block and merges adjacent blocks with per-lane select words — the
/// behavioral shape of [`crate::cond_sum`].
///
/// ```
/// use adders::batch::{BatchCondSum, ScalarAdd};
/// use bitnum::UBig;
/// let engine = BatchCondSum::new(12);
/// let (sum, cout) = engine.add_one(&UBig::from_u128(4000, 12), &UBig::from_u128(200, 12));
/// assert_eq!(sum.to_u128(), Some(4200 % 4096));
/// assert!(cout);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchCondSum {
    width: usize,
}

impl BatchCondSum {
    /// Creates a conditional-sum engine of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`bitnum::MAX_WIDTH`].
    pub fn new(width: usize) -> Self {
        assert!(
            (1..=bitnum::MAX_WIDTH).contains(&width),
            "unsupported width {width}"
        );
        Self { width }
    }
}

impl ScalarAdd for BatchCondSum {
    fn width(&self) -> usize {
        self.width
    }

    fn name(&self) -> &'static str {
        "conditional-sum"
    }

    fn add_one(&self, a: &UBig, b: &UBig) -> (UBig, bool) {
        check_ones(self.width, a, b);
        let w = self.width;
        let mut s0: Vec<bool> = (0..w).map(|i| a.bit(i) ^ b.bit(i)).collect();
        let mut s1: Vec<bool> = s0.iter().map(|&p| !p).collect();
        let mut c0: Vec<bool> = (0..w).map(|i| a.bit(i) && b.bit(i)).collect();
        let mut c1: Vec<bool> = (0..w).map(|i| a.bit(i) || b.bit(i)).collect();
        let mut size = 1;
        while size < w {
            let blocks = w.div_ceil(2 * size);
            let mut nc0 = Vec::with_capacity(blocks);
            let mut nc1 = Vec::with_capacity(blocks);
            for blk in 0..blocks {
                let base = blk * 2 * size;
                let mid = base + size;
                if mid >= w {
                    nc0.push(c0[2 * blk]);
                    nc1.push(c1[2 * blk]);
                    continue;
                }
                let hi = (mid + size).min(w);
                let (lc0, lc1) = (c0[2 * blk], c1[2 * blk]);
                for i in mid..hi {
                    let (r0, r1) = (s0[i], s1[i]);
                    s0[i] = if lc0 { r1 } else { r0 };
                    s1[i] = if lc1 { r1 } else { r0 };
                }
                let (rc0, rc1) = (c0[2 * blk + 1], c1[2 * blk + 1]);
                nc0.push(if lc0 { rc1 } else { rc0 });
                nc1.push(if lc1 { rc1 } else { rc0 });
            }
            c0 = nc0;
            c1 = nc1;
            size *= 2;
        }
        let mut sum = UBig::zero(w);
        for (i, &bit) in s0.iter().enumerate() {
            sum.set_bit(i, bit);
        }
        (sum, c0[0])
    }
}

impl<W: Word> BatchAdd<W> for BatchCondSum {
    fn add_batch(&self, a: &BitSlab<W>, b: &BitSlab<W>) -> BatchSum<W> {
        check_slabs(self.width, a, b);
        let mask = a.lane_mask();
        let w = self.width;
        // Level 0: per-bit conditional sums and carries for both carry-ins.
        let mut s0: Vec<W> = (0..w).map(|i| a.word(i) ^ b.word(i)).collect();
        let mut s1: Vec<W> = s0.iter().map(|&p| p ^ mask).collect();
        let mut c0: Vec<W> = (0..w).map(|i| a.word(i) & b.word(i)).collect();
        let mut c1: Vec<W> = (0..w).map(|i| a.word(i) | b.word(i)).collect();
        let mut size = 1;
        while size < w {
            let blocks = w.div_ceil(2 * size);
            let mut nc0 = Vec::with_capacity(blocks);
            let mut nc1 = Vec::with_capacity(blocks);
            for blk in 0..blocks {
                let base = blk * 2 * size;
                let mid = base + size;
                if mid >= w {
                    // Lone left half: carries pass through unchanged.
                    nc0.push(c0[2 * blk]);
                    nc1.push(c1[2 * blk]);
                    continue;
                }
                let hi = (mid + size).min(w);
                let (lc0, lc1) = (c0[2 * blk], c1[2 * blk]);
                // The left half's conditional carry-outs select the right
                // half's precomputed sums, per lane.
                for i in mid..hi {
                    let (r0, r1) = (s0[i], s1[i]);
                    s0[i] = (r0 & !lc0) | (r1 & lc0);
                    s1[i] = (r0 & !lc1) | (r1 & lc1);
                }
                let (rc0, rc1) = (c0[2 * blk + 1], c1[2 * blk + 1]);
                nc0.push((rc0 & !lc0) | (rc1 & lc0));
                nc1.push((rc0 & !lc1) | (rc1 & lc1));
            }
            c0 = nc0;
            c1 = nc1;
            size *= 2;
        }
        // The architectural carry-in is 0: the final selection is leg 0.
        let mut sum = BitSlab::zero(w, a.lanes());
        for (i, &word) in s0.iter().enumerate() {
            sum.set_word(i, word);
        }
        BatchSum { sum, cout: c0[0] }
    }
}

/// Bit-sliced Kogge–Stone parallel prefix: span-doubling `(G, P)` merges
/// across bit positions, word-parallel across lanes — the behavioral shape
/// of [`crate::prefix::kogge_stone_adder`].
///
/// ```
/// use adders::batch::{BatchPrefix, ScalarAdd};
/// let engine = BatchPrefix::new(48);
/// assert_eq!(engine.name(), "kogge-stone");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPrefix {
    width: usize,
}

impl BatchPrefix {
    /// Creates a Kogge–Stone prefix engine of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`bitnum::MAX_WIDTH`].
    pub fn new(width: usize) -> Self {
        assert!(
            (1..=bitnum::MAX_WIDTH).contains(&width),
            "unsupported width {width}"
        );
        Self { width }
    }
}

impl ScalarAdd for BatchPrefix {
    fn width(&self) -> usize {
        self.width
    }

    fn name(&self) -> &'static str {
        "kogge-stone"
    }

    fn add_one(&self, a: &UBig, b: &UBig) -> (UBig, bool) {
        check_ones(self.width, a, b);
        let w = self.width;
        let p: Vec<bool> = (0..w).map(|i| a.bit(i) ^ b.bit(i)).collect();
        let mut g: Vec<bool> = (0..w).map(|i| a.bit(i) && b.bit(i)).collect();
        let mut gp = p.clone();
        let mut span = 1;
        while span < w {
            for i in (span..w).rev() {
                g[i] = g[i] || (gp[i] && g[i - span]);
                gp[i] = gp[i] && gp[i - span];
            }
            span *= 2;
        }
        let mut sum = UBig::zero(w);
        sum.set_bit(0, p[0]);
        for i in 1..w {
            sum.set_bit(i, p[i] ^ g[i - 1]);
        }
        (sum, g[w - 1])
    }
}

impl<W: Word> BatchAdd<W> for BatchPrefix {
    fn add_batch(&self, a: &BitSlab<W>, b: &BitSlab<W>) -> BatchSum<W> {
        check_slabs(self.width, a, b);
        let w = self.width;
        let p: Vec<W> = (0..w).map(|i| a.word(i) ^ b.word(i)).collect();
        // Prefix planes: after the sweep, g[i] is the generate of bits 0..=i.
        let mut g = (0..w).map(|i| a.word(i) & b.word(i)).collect::<Vec<W>>();
        let mut gp = p.clone();
        let mut span = 1;
        while span < w {
            // Descending so g[i - span] still holds the previous level.
            for i in (span..w).rev() {
                g[i] = g[i] | (gp[i] & g[i - span]);
                gp[i] = gp[i] & gp[i - span];
            }
            span *= 2;
        }
        let mut sum = BitSlab::zero(w, a.lanes());
        sum.set_word(0, p[0]);
        for i in 1..w {
            sum.set_word(i, p[i] ^ g[i - 1]);
        }
        BatchSum {
            sum,
            cout: g[w - 1],
        }
    }
}

fn check_csa_slabs<W: Word>(a: &BitSlab<W>, b: &BitSlab<W>, c: &BitSlab<W>) {
    check_slabs(a.width(), a, b);
    check_slabs(a.width(), b, c);
}

/// Bit-sliced 3:2 carry-save compressor: turns three addends into two
/// whose wrapping sum is the same, in **two word operations per bit** and
/// with no carry propagation at all.
///
/// Per bit position `i` (word-parallel across all lanes):
///
/// * `sum[i] = a[i] ⊕ b[i] ⊕ c[i]` — the full-adder sum;
/// * `carry[i+1] = (a[i]·b[i]) ∨ (b[i]·c[i]) ∨ (a[i]·c[i])` — the
///   majority, weighted one position up (`carry[0] = 0`).
///
/// The majority out of the top bit falls outside the width and is dropped,
/// so the invariant is modular: `sum + carry ≡ a + b + c (mod 2^width)`
/// per lane. Because there is no carry chain, this compresses *better*
/// bit-sliced than any carry-propagate family evaluates — which is why
/// [`reduce_csa`] defers the single real carry-resolve to the very end.
///
/// ```
/// use adders::batch::compress3;
/// use bitnum::batch::BitSlab;
/// use bitnum::UBig;
///
/// let slab = |v| -> BitSlab { BitSlab::from_lanes(&[UBig::from_u128(v, 8)]) };
/// let (sum, carry) = compress3(&slab(100), &slab(90), &slab(80));
/// let total = sum.lane(0).wrapping_add(&carry.lane(0));
/// assert_eq!(total.to_u128(), Some((100 + 90 + 80) % 256));
/// ```
///
/// # Panics
///
/// Panics if the three slabs disagree in width or lane count.
pub fn compress3<W: Word>(
    a: &BitSlab<W>,
    b: &BitSlab<W>,
    c: &BitSlab<W>,
) -> (BitSlab<W>, BitSlab<W>) {
    check_csa_slabs(a, b, c);
    let (width, lanes) = (a.width(), a.lanes());
    let mut sum = BitSlab::zero(width, lanes);
    let mut carry = BitSlab::zero(width, lanes);
    let mut maj = W::ZERO; // carry[0] = 0
    for i in 0..width {
        let (aw, bw, cw) = (a.word(i), b.word(i), c.word(i));
        sum.set_word(i, aw ^ bw ^ cw);
        carry.set_word(i, maj);
        maj = (aw & bw) | (bw & cw) | (aw & cw);
    }
    // The final majority word wraps out of the width: dropped (mod 2^width).
    (sum, carry)
}

/// Scalar reference for [`compress3`]: one operand triple at a time over
/// [`UBig`] bitwise operations. `sum + carry ≡ a + b + c (mod 2^width)`.
///
/// ```
/// use adders::batch::compress3_one;
/// use bitnum::UBig;
///
/// let v = |x| UBig::from_u128(x, 8);
/// let (sum, carry) = compress3_one(&v(200), &v(100), &v(57));
/// assert_eq!(sum.wrapping_add(&carry).to_u128(), Some(357 % 256));
/// ```
///
/// # Panics
///
/// Panics if the operand widths differ.
pub fn compress3_one(a: &UBig, b: &UBig, c: &UBig) -> (UBig, UBig) {
    check_ones(a.width(), a, b);
    check_ones(a.width(), b, c);
    let sum = &(a ^ b) ^ c;
    let maj = &(&(a & b) | &(b & c)) | &(a & c);
    // shl drops the top majority bit, matching the modular invariant.
    (sum, maj.shl(1))
}

/// Wallace-style carry-save reduction: compresses any number of addend
/// slabs down to **two** whose wrapping sum equals the wrapping sum of all
/// inputs, using only [`compress3`] levels — no carry is ever resolved.
///
/// Each level greedily feeds groups of three surviving addends through a
/// 3:2 compressor (pass-through for a leftover one or two), shrinking the
/// count by ⌊n/3⌋ per level exactly like a hardware Wallace tree. A single
/// input is paired with a zero slab so the contract (`two` outputs) holds
/// for every `n >= 1`.
///
/// ```
/// use adders::batch::reduce_csa;
/// use bitnum::batch::BitSlab;
/// use bitnum::UBig;
///
/// let addends: Vec<BitSlab> = (1..=8)
///     .map(|v| BitSlab::from_lanes(&[UBig::from_u128(v * 40, 8)]))
///     .collect();
/// let (x, y) = reduce_csa(&addends);
/// // 40+80+...+320 = 1440; one real addition finishes the sum.
/// assert_eq!(x.lane(0).wrapping_add(&y.lane(0)).to_u128(), Some(1440 % 256));
/// ```
///
/// # Panics
///
/// Panics if `operands` is empty or the slabs disagree in width or lane
/// count.
pub fn reduce_csa<W: Word>(operands: &[BitSlab<W>]) -> (BitSlab<W>, BitSlab<W>) {
    assert!(!operands.is_empty(), "carry-save reduction of no operands");
    let (width, lanes) = (operands[0].width(), operands[0].lanes());
    for op in operands {
        check_slabs(width, &operands[0], op);
    }
    let mut level: Vec<BitSlab<W>> = operands.to_vec();
    while level.len() > 2 {
        let mut next = Vec::with_capacity(level.len().div_ceil(3) * 2);
        let mut triples = level.chunks_exact(3);
        for t in &mut triples {
            let (s, c) = compress3(&t[0], &t[1], &t[2]);
            next.push(s);
            next.push(c);
        }
        next.extend_from_slice(triples.remainder());
        level = next;
    }
    let y = if level.len() == 2 {
        level.pop().expect("two survivors")
    } else {
        BitSlab::zero(width, lanes)
    };
    let x = level.pop().expect("at least one survivor");
    (x, y)
}

/// Scalar reference for [`reduce_csa`]: reduces any number of [`UBig`]
/// addends to a carry-save pair whose wrapping sum is the wrapping sum of
/// all inputs. Same tree shape, one lane.
///
/// ```
/// use adders::batch::reduce_csa_one;
/// use bitnum::UBig;
///
/// let ops: Vec<UBig> = (1..=5).map(|v| UBig::from_u128(v, 16)).collect();
/// let (x, y) = reduce_csa_one(&ops);
/// assert_eq!(x.wrapping_add(&y).to_u128(), Some(15));
/// ```
///
/// # Panics
///
/// Panics if `operands` is empty or the widths differ.
pub fn reduce_csa_one(operands: &[UBig]) -> (UBig, UBig) {
    assert!(!operands.is_empty(), "carry-save reduction of no operands");
    let width = operands[0].width();
    for op in operands {
        check_ones(width, &operands[0], op);
    }
    let mut level: Vec<UBig> = operands.to_vec();
    while level.len() > 2 {
        let mut next = Vec::with_capacity(level.len().div_ceil(3) * 2);
        let mut triples = level.chunks_exact(3);
        for t in &mut triples {
            let (s, c) = compress3_one(&t[0], &t[1], &t[2]);
            next.push(s);
            next.push(c);
        }
        next.extend_from_slice(triples.remainder());
        level = next;
    }
    let y = if level.len() == 2 {
        level.pop().expect("two survivors")
    } else {
        UBig::zero(width)
    };
    let x = level.pop().expect("at least one survivor");
    (x, y)
}

/// Sums N addend slabs with **exactly one** carry-resolve: a
/// [`reduce_csa`] Wallace tree down to two addends, then a single
/// [`BatchAdd::add_batch`] call on whichever engine family the caller
/// picked. The returned [`BatchSum`] is that one resolve's output, so its
/// `sum` is the wrapping N-operand total and its `cout` is the final
/// resolve's carry-out (the tree itself is modular and reports none).
///
/// ```
/// use adders::batch::{sum_batch, BatchCarrySelect};
/// use bitnum::batch::BitSlab;
/// use bitnum::UBig;
///
/// let addends: Vec<BitSlab> = (0..4)
///     .map(|v| BitSlab::from_lanes(&[UBig::from_u128(v + 10, 32)]))
///     .collect();
/// let out = sum_batch(&BatchCarrySelect::new(32, 6), &addends);
/// assert_eq!(out.sum.lane(0).to_u128(), Some(10 + 11 + 12 + 13));
/// ```
///
/// # Panics
///
/// Panics if `operands` is empty, the slabs disagree in width or lane
/// count, or their width disagrees with the engine width.
pub fn sum_batch<W: Word>(adder: &dyn BatchAdd<W>, operands: &[BitSlab<W>]) -> BatchSum<W> {
    let (x, y) = reduce_csa(operands);
    adder.add_batch(&x, &y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitnum::batch::W256;
    use bitnum::rng::Xoshiro256;

    fn engines<W: Word>(width: usize) -> Vec<Box<dyn BatchAdd<W>>> {
        vec![
            Box::new(BatchRipple::new(width)),
            Box::new(BatchCla::new(width)),
            Box::new(BatchCarrySelect::new(width, 8.min(width))),
            Box::new(BatchCarrySelect::new(width, 3.min(width))),
            Box::new(BatchCarrySkip::new(width, 8.min(width))),
            Box::new(BatchCarrySkip::new(width, 3.min(width))),
            Box::new(BatchCondSum::new(width)),
            Box::new(BatchPrefix::new(width)),
        ]
    }

    fn both_paths_match_for<W: Word>() {
        let mut rng = Xoshiro256::seed_from_u64(21);
        for width in [1usize, 7, 10, 64, 65, 100] {
            for lanes in [1usize, 13, W::LANES] {
                let a = BitSlab::<W>::random(width, lanes, &mut rng);
                let b = BitSlab::<W>::random(width, lanes, &mut rng);
                for engine in engines::<W>(width) {
                    let batch = engine.add_batch(&a, &b);
                    for l in 0..lanes {
                        let (al, bl) = (a.lane(l), b.lane(l));
                        let (exact, exact_cout) = al.overflowing_add(&bl);
                        assert_eq!(
                            batch.sum.lane(l),
                            exact,
                            "{} batch width={width} lane={l}",
                            engine.name()
                        );
                        assert_eq!(batch.cout.bit(l), exact_cout);
                        let (one, one_cout) = engine.add_one(&al, &bl);
                        assert_eq!(one, exact, "{} scalar", engine.name());
                        assert_eq!(one_cout, exact_cout);
                    }
                }
            }
        }
    }

    #[test]
    fn both_paths_match_exact_addition() {
        both_paths_match_for::<u64>();
        both_paths_match_for::<W256>();
    }

    #[test]
    fn carries_cross_block_boundaries() {
        // All-ones + 1: the carry ripples through every block.
        let width = 24;
        let a = BitSlab::<W256>::from_lanes(&[UBig::ones(width)]);
        let b = BitSlab::<W256>::from_lanes(&[UBig::from_u128(1, width)]);
        for engine in engines::<W256>(width) {
            let out = engine.add_batch(&a, &b);
            assert!(out.sum.lane(0).is_zero(), "{}", engine.name());
            assert_eq!(out.cout, W256::from_low(1), "{}", engine.name());
        }
    }

    #[test]
    #[should_panic(expected = "slab width mismatch")]
    fn width_mismatch_panics() {
        let engine = BatchRipple::new(16);
        let _ = engine.add_batch(&BitSlab::<u64>::zero(8, 2), &BitSlab::<u64>::zero(8, 2));
    }

    /// Wraps an engine and counts `add_batch` calls, to pin that the
    /// carry-save reduction resolves carries exactly once.
    struct CountingAdd {
        inner: BatchRipple,
        calls: std::cell::Cell<usize>,
    }

    impl ScalarAdd for CountingAdd {
        fn width(&self) -> usize {
            self.inner.width()
        }
        fn name(&self) -> &'static str {
            "counting-ripple"
        }
        fn add_one(&self, a: &UBig, b: &UBig) -> (UBig, bool) {
            self.inner.add_one(a, b)
        }
    }

    impl<W: Word> BatchAdd<W> for CountingAdd {
        fn add_batch(&self, a: &BitSlab<W>, b: &BitSlab<W>) -> BatchSum<W> {
            self.calls.set(self.calls.get() + 1);
            self.inner.add_batch(a, b)
        }
    }

    fn csa_reduction_matches_fold_for<W: Word>() {
        let mut rng = Xoshiro256::seed_from_u64(35);
        for width in [1usize, 7, 10, 64, 65, 100] {
            for n in [1usize, 2, 3, 4, 7, 8] {
                for lanes in [1usize, 13, W::LANES] {
                    let addends: Vec<BitSlab<W>> = (0..n)
                        .map(|_| BitSlab::<W>::random(width, lanes, &mut rng))
                        .collect();
                    let counting = CountingAdd {
                        inner: BatchRipple::new(width),
                        calls: std::cell::Cell::new(0),
                    };
                    let out = sum_batch(&counting, &addends);
                    assert_eq!(counting.calls.get(), 1, "exactly one carry-resolve");
                    let (x, y) = reduce_csa(&addends);
                    for l in 0..lanes {
                        let ops: Vec<UBig> = addends.iter().map(|s| s.lane(l)).collect();
                        let expect = ops[1..]
                            .iter()
                            .fold(ops[0].clone(), |acc, o| acc.wrapping_add(o));
                        assert_eq!(out.sum.lane(l), expect, "sum width={width} n={n} lane={l}");
                        // The scalar tree produces the same carry-save pair.
                        let (sx, sy) = reduce_csa_one(&ops);
                        assert_eq!(x.lane(l), sx, "x width={width} n={n} lane={l}");
                        assert_eq!(y.lane(l), sy, "y width={width} n={n} lane={l}");
                        // The pair itself already carries the total.
                        assert_eq!(sx.wrapping_add(&sy), expect);
                    }
                }
            }
        }
    }

    #[test]
    fn csa_reduction_matches_scalar_fold() {
        csa_reduction_matches_fold_for::<u64>();
        csa_reduction_matches_fold_for::<W256>();
    }

    #[test]
    fn compress3_is_a_full_adder_per_bit() {
        // Exhaustive at width 4: every (a, b, c) triple, batch vs scalar.
        let width = 4;
        let mut a_lanes = Vec::new();
        let mut b_lanes = Vec::new();
        let mut c_lanes = Vec::new();
        for v in 0..(1u32 << (3 * width)) {
            a_lanes.push(UBig::from_u128((v & 0xf) as u128, width));
            b_lanes.push(UBig::from_u128(((v >> 4) & 0xf) as u128, width));
            c_lanes.push(UBig::from_u128(((v >> 8) & 0xf) as u128, width));
        }
        for chunk in 0..a_lanes.len().div_ceil(64) {
            let r = chunk * 64..((chunk + 1) * 64).min(a_lanes.len());
            let a = BitSlab::<u64>::from_lanes(&a_lanes[r.clone()]);
            let b = BitSlab::<u64>::from_lanes(&b_lanes[r.clone()]);
            let c = BitSlab::<u64>::from_lanes(&c_lanes[r.clone()]);
            let (s, k) = compress3(&a, &b, &c);
            for l in 0..a.lanes() {
                let (ss, sk) = compress3_one(&a.lane(l), &b.lane(l), &c.lane(l));
                assert_eq!(s.lane(l), ss);
                assert_eq!(k.lane(l), sk);
                let expect = a.lane(l).wrapping_add(&b.lane(l)).wrapping_add(&c.lane(l));
                assert_eq!(ss.wrapping_add(&sk), expect);
                // carry[0] is structurally zero.
                assert!(!sk.bit(0));
            }
        }
    }

    #[test]
    #[should_panic(expected = "no operands")]
    fn empty_reduction_panics() {
        let _ = reduce_csa::<u64>(&[]);
    }
}

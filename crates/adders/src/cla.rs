//! Hierarchical carry-lookahead adder with 4-bit groups.
//!
//! Each level collapses up to four `(G, P)` pairs into one through the
//! classic lookahead expansion, recursively; carries are then expanded back
//! down the hierarchy. Depth is O(log₄ n) lookahead stages.

use gatesim::{Netlist, NetlistBuilder, Signal};

use crate::pg::{self, GroupPg};

/// Builds an `n`-bit hierarchical carry-lookahead adder
/// (`a`, `b` → `sum`, `cout`).
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn cla_adder(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new(format!("cla4_{width}"));
    let a = b.input_bus("a", width);
    let bb = b.input_bus("b", width);
    let plane = pg::pg_bits(&mut b, &a, &bb);
    let groups: Vec<GroupPg> = plane
        .iter()
        .map(|bit| GroupPg {
            g: bit.g,
            p: Some(bit.p),
        })
        .collect();
    let cin = b.const0();
    let (carries_out, cout) = lookahead(&mut b, &groups, cin);
    let sums = pg::sum_bits(&mut b, &plane, &carries_out, None);
    b.output_bus("sum", &sums);
    b.output_bit("cout", cout);
    b.finish()
}

/// Recursive lookahead over group `(G, P)` values.
///
/// Returns the carry **out of** every group plus the overall carry-out
/// (equal to the last element; returned separately for convenience).
fn lookahead(b: &mut NetlistBuilder, groups: &[GroupPg], cin: Signal) -> (Vec<Signal>, Signal) {
    if groups.len() <= 4 {
        let outs = expand_block(b, groups, cin);
        let cout = *outs.last().expect("non-empty group list");
        return (outs, cout);
    }
    // Collapse chunks of 4 into super-groups.
    let chunks: Vec<&[GroupPg]> = groups.chunks(4).collect();
    let supers: Vec<GroupPg> = chunks.iter().map(|c| combine_block(b, c)).collect();
    let (super_carries, cout) = lookahead(b, &supers, cin);
    // Expand within each chunk using the carry into the chunk.
    let mut outs = Vec::with_capacity(groups.len());
    for (i, chunk) in chunks.iter().enumerate() {
        let chunk_cin = if i == 0 { cin } else { super_carries[i - 1] };
        outs.extend(expand_block(b, chunk, chunk_cin));
    }
    (outs, cout)
}

/// Carries out of each member of a ≤4-wide block given the block carry-in:
/// `c_0 = G_0 | P_0·cin`, `c_1 = G_1 | P_1·G_0 | P_1·P_0·cin`, …
fn expand_block(b: &mut NetlistBuilder, block: &[GroupPg], cin: Signal) -> Vec<Signal> {
    let mut outs = Vec::with_capacity(block.len());
    let mut carry = cin;
    for grp in block {
        // Flat two-level form per member keeps the depth at two gates.
        let p = grp.p.expect("CLA keeps all group propagates");
        let t = b.and2(p, carry);
        carry = b.or2(grp.g, t);
        outs.push(carry);
    }
    outs
}

/// The `(G, P)` of a ≤4-wide block, with the flat lookahead expansion.
fn combine_block(b: &mut NetlistBuilder, block: &[GroupPg]) -> GroupPg {
    let mut acc = block[0];
    for grp in &block[1..] {
        acc = pg::combine(b, *grp, acc, true);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatesim::equiv;

    #[test]
    fn matches_ripple_small() {
        for width in [1usize, 2, 3, 4, 5, 7, 8] {
            let cla = cla_adder(width);
            let rca = crate::ripple::ripple_carry_adder(width);
            assert_eq!(
                equiv::check(&cla, &rca, 0, 0).unwrap(),
                None,
                "width {width}"
            );
        }
    }

    #[test]
    fn matches_kogge_stone_random_wide() {
        for width in [17usize, 32, 64, 100] {
            let cla = cla_adder(width);
            let ks = crate::prefix::kogge_stone_adder(width);
            assert_eq!(
                equiv::check(&cla, &ks, 512, 5).unwrap(),
                None,
                "width {width}"
            );
        }
    }

    #[test]
    fn logarithmic_depth() {
        // One more radix-4 hierarchy level costs a bounded number of
        // collapse+expand stages, far below the 4x ripple growth.
        let d64 = cla_adder(64).depth();
        let d256 = cla_adder(256).depth();
        assert!(
            d256 <= d64 + 16,
            "CLA depth must grow slowly: {d64} -> {d256}"
        );
        assert!(d256 < 64, "CLA-256 depth {d256} must be far sublinear");
    }
}

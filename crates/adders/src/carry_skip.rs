//! Carry-skip adder: ripple blocks with a propagate-controlled bypass.
//!
//! Within each block carries ripple; between blocks, a multiplexer driven by
//! the block's group propagate lets an incoming carry skip the block
//! entirely. Exactness note: when the block propagate is 0 the rippled
//! carry-out is independent of the carry-in, so the bypass mux is not an
//! approximation.

use gatesim::{Netlist, NetlistBuilder, Signal};

use crate::pg;

/// Builds an `n`-bit carry-skip adder with `block`-bit ripple blocks (the
/// most-significant block absorbs any remainder).
///
/// # Panics
///
/// Panics if `width == 0` or `block == 0`.
pub fn carry_skip_adder(width: usize, block: usize) -> Netlist {
    assert!(block >= 1, "block size must be >= 1");
    let mut b = NetlistBuilder::new(format!("carry_skip_{width}x{block}"));
    let a = b.input_bus("a", width);
    let bb = b.input_bus("b", width);
    let plane = pg::pg_bits(&mut b, &a, &bb);

    let mut sums: Vec<Signal> = Vec::with_capacity(width);
    let mut cin: Option<Signal> = None;
    let mut lo = 0usize;
    while lo < width {
        let size = block.min(width - lo);
        let slice = &plane[lo..lo + size];
        // Sums ripple from the real carry-in (the classic skip-adder sum
        // path: skip chain + one block of rippling).
        let carries = pg::ripple_carries(&mut b, slice, cin);
        sums.extend(pg::sum_bits(&mut b, slice, &carries, cin));
        // The forwarded carry must not ripple through the block, or static
        // timing sees the textbook false path (carry-in → full ripple →
        // next block). Use the carry-in-0 chain, which is exact:
        // cout = G_blk when P_blk = 0, and cin when P_blk = 1.
        let g_chain = pg::ripple_carries(&mut b, slice, None);
        let block_g = g_chain[size - 1];
        let props: Vec<Signal> = slice.iter().map(|bit| bit.p).collect();
        let block_p = b.and_many(&props);
        let cout = match cin {
            Some(c) => b.mux2(block_g, c, block_p),
            None => block_g, // first block: carry-in is 0
        };
        cin = Some(cout);
        lo += size;
    }
    b.output_bus("sum", &sums);
    b.output_bit("cout", cin.expect("at least one block"));
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatesim::{equiv, sta};

    #[test]
    fn matches_kogge_stone() {
        for (width, block) in [(8usize, 2usize), (16, 4), (33, 5), (64, 8)] {
            let skip = carry_skip_adder(width, block);
            let ks = crate::prefix::kogge_stone_adder(width);
            assert_eq!(
                equiv::check(&skip, &ks, 512, 11).unwrap(),
                None,
                "width {width} block {block}"
            );
        }
    }

    #[test]
    fn faster_than_ripple_smaller_than_prefix() {
        let skip = carry_skip_adder(64, 8);
        let rca = crate::ripple::ripple_carry_adder(64);
        let ks = crate::prefix::kogge_stone_adder(64);
        let t_skip = sta::analyze(&skip).critical_delay_tau();
        let t_rca = sta::analyze(&rca).critical_delay_tau();
        assert!(t_skip < t_rca);
        let a_skip = gatesim::area::analyze(&skip).total_nand2();
        let a_ks = gatesim::area::analyze(&ks).total_nand2();
        assert!(a_skip < a_ks);
    }
}

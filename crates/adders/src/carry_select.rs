//! Carry-select adders.
//!
//! Each block (except the least-significant) is computed twice — once
//! assuming carry-in 0, once assuming carry-in 1 — and the real block carry,
//! arriving late, merely steers multiplexers. This is the structural idea
//! the paper embeds in its window adders (Fig. 4.2), so this module is also
//! exercised as a substrate by the `vlcsa` crate's netlists.

use gatesim::{Netlist, NetlistBuilder, Signal};

use crate::pg::{self, PgBit};
use crate::prefix;

/// Builds an `n`-bit carry-select adder with uniform `block`-bit blocks
/// (the first block absorbs any remainder, mirroring the paper's placement
/// of the odd-sized window at the least-significant end).
///
/// Blocks are internally Kogge–Stone.
///
/// # Panics
///
/// Panics if `width == 0` or `block == 0`.
pub fn carry_select_adder(width: usize, block: usize) -> Netlist {
    assert!(block >= 1, "block size must be >= 1");
    let mut sizes = Vec::new();
    let blocks = width.div_ceil(block);
    let first = width - block * (blocks - 1);
    sizes.push(first);
    sizes.extend(std::iter::repeat_n(block, blocks - 1));
    build(width, &sizes, format!("carry_select_{width}x{block}"))
}

/// Builds a square-root-profiled carry-select adder: block sizes grow by
/// one (k, k+1, k+2, …) so every block's local sum arrives just as the
/// select chain reaches it — the classic O(√n)-delay sizing.
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn carry_select_sqrt_adder(width: usize) -> Netlist {
    // Find the smallest starting size whose staircase covers the width.
    let mut start = 1usize;
    loop {
        let mut total = 0usize;
        let mut k = start;
        while total < width {
            total += k;
            k += 1;
        }
        if total >= width {
            // Distribute: sizes start..k-1 cover >= width; shrink the last.
            let mut sizes: Vec<usize> = (start..k).collect();
            let excess = total - width;
            let last = sizes.last_mut().expect("at least one block");
            if *last > excess {
                *last -= excess;
            } else {
                // Degenerate staircase; fall back to uniform blocks.
                return carry_select_adder(width, start.max(2));
            }
            sizes.reverse(); // smallest block at the least-significant end
            return build(width, &sizes, format!("carry_select_sqrt_{width}"));
        }
        start += 1;
    }
}

/// Shared construction: `sizes` are block widths, LSB block first.
fn build(width: usize, sizes: &[usize], name: String) -> Netlist {
    assert_eq!(
        sizes.iter().sum::<usize>(),
        width,
        "block sizes must cover the width"
    );
    let mut b = NetlistBuilder::new(name);
    let a = b.input_bus("a", width);
    let bb = b.input_bus("b", width);
    let plane = pg::pg_bits(&mut b, &a, &bb);

    let mut sums: Vec<Signal> = Vec::with_capacity(width);
    let mut select: Option<Signal> = None; // carry into the current block
    let mut lo = 0usize;
    for (i, &size) in sizes.iter().enumerate() {
        let slice = &plane[lo..lo + size];
        if i == 0 {
            // LSB block: single copy, carry-in 0.
            let (s, cout) = block_sum(&mut b, slice, None);
            sums.extend(s);
            select = Some(cout);
        } else {
            let zero = b.const0();
            let one = b.const1();
            let (s0, c0) = block_sum(&mut b, slice, Some(zero));
            let (s1, c1) = block_sum(&mut b, slice, Some(one));
            let sel = select.expect("select chain initialized by first block");
            sums.extend(b.mux_bus(&s0, &s1, sel));
            select = Some(b.mux2(c0, c1, sel));
        }
        lo += size;
    }
    b.output_bus("sum", &sums);
    b.output_bit("cout", select.expect("at least one block"));
    b.finish()
}

/// One block: Kogge–Stone carries with an explicit carry-in signal, plus
/// sum formation. Returns `(sums, carry_out)`.
///
/// Also used by the `vlcsa` crate to build window adders.
pub fn block_sum(
    b: &mut NetlistBuilder,
    slice: &[PgBit],
    cin: Option<Signal>,
) -> (Vec<Signal>, Signal) {
    let network = prefix::kogge_stone(slice.len());
    let carries = prefix::realize_carries(b, slice, &network, cin);
    let sums = pg::sum_bits(b, slice, &carries, cin);
    (sums, carries[slice.len() - 1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatesim::{equiv, sta};

    #[test]
    fn uniform_blocks_match_ripple() {
        for (width, block) in [(8usize, 3usize), (16, 4), (33, 8), (64, 16)] {
            let cs = carry_select_adder(width, block);
            let ks = crate::prefix::kogge_stone_adder(width);
            assert_eq!(
                equiv::check(&cs, &ks, 512, 9).unwrap(),
                None,
                "width {width} block {block}"
            );
        }
    }

    #[test]
    fn sqrt_profile_matches_and_is_fast() {
        for width in [16usize, 32, 64, 128] {
            let cs = carry_select_sqrt_adder(width);
            let ks = crate::prefix::kogge_stone_adder(width);
            assert_eq!(
                equiv::check(&cs, &ks, 512, 10).unwrap(),
                None,
                "width {width}"
            );
        }
        // Much faster than ripple.
        let rca_t = sta::analyze(&crate::ripple::ripple_carry_adder(64)).critical_delay_tau();
        let cs_t = sta::analyze(&carry_select_sqrt_adder(64)).critical_delay_tau();
        assert!(cs_t < rca_t / 2.0, "carry-select {cs_t} vs ripple {rca_t}");
    }

    #[test]
    fn block_of_width_equals_plain_adder() {
        let cs = carry_select_adder(16, 16);
        let ks = crate::prefix::kogge_stone_adder(16);
        assert_eq!(equiv::check(&cs, &ks, 0, 0).unwrap(), None);
    }
}

//! Parallel-prefix networks and the prefix-adder family.
//!
//! A prefix adder computes, for every bit `i`, the group generate/propagate
//! over `[0, i]` with a network of associative combine cells. The classic
//! networks differ in depth, cell count and fanout:
//!
//! | network | depth | size | max fanout |
//! |---------|-------|------|-----------|
//! | Kogge–Stone | log n | n·log n | 2 |
//! | Sklansky | log n | (n/2)·log n | n/2 |
//! | Brent–Kung | 2·log n − 1 | 2n | 2 |
//! | Han–Carlson | log n + 1 | (n/2)·log n | 2 |
//! | Ladner–Fischer | log n + 1 | ~(n/4)·log n + n | n/4 |
//!
//! The paper uses Kogge–Stone both as the reference traditional adder and
//! inside its window adders ("Kogge-Stone adder is considered as the
//! possible fastest adder design in traditional adders", Ch. 4.1).
//!
//! [`PrefixNetwork`] is a validated description (levels of `(pos, from)`
//! combine operations); [`realize_carries`] lowers a network onto a
//! [`NetlistBuilder`] with gray-cell optimization, and the
//! `*_adder` functions produce complete netlists.

use gatesim::{Netlist, NetlistBuilder, Signal};

use crate::pg::{self, GroupPg, PgBit};

/// One combine operation: position `pos` absorbs the group ending at
/// `from` (which must be exactly adjacent below `pos`'s current span).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixOp {
    /// The position being extended (holds the `hi` group).
    pub pos: usize,
    /// The position holding the `lo` group, ending at `from = lo_span-1`.
    pub from: usize,
}

/// A prefix network: levels of parallel combine operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixNetwork {
    width: usize,
    levels: Vec<Vec<PrefixOp>>,
    name: &'static str,
}

/// Error describing why a prefix-network construction is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidPrefixNetwork(String);

impl std::fmt::Display for InvalidPrefixNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid prefix network: {}", self.0)
    }
}

impl std::error::Error for InvalidPrefixNetwork {}

impl PrefixNetwork {
    /// Constructs and validates a network.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidPrefixNetwork`] if any operation is out of range or
    /// non-adjacent, a level touches a position twice, or the final spans do
    /// not all reach bit 0.
    pub fn new(
        width: usize,
        levels: Vec<Vec<PrefixOp>>,
        name: &'static str,
    ) -> Result<Self, InvalidPrefixNetwork> {
        let net = Self {
            width,
            levels,
            name,
        };
        net.validate()?;
        Ok(net)
    }

    fn validate(&self) -> Result<(), InvalidPrefixNetwork> {
        let mut lo: Vec<usize> = (0..self.width).collect();
        for (li, level) in self.levels.iter().enumerate() {
            let mut touched = vec![false; self.width];
            for op in level {
                if op.pos >= self.width || op.from >= self.width {
                    return Err(InvalidPrefixNetwork(format!(
                        "level {li}: op {op:?} out of range for width {}",
                        self.width
                    )));
                }
                if touched[op.pos] {
                    return Err(InvalidPrefixNetwork(format!(
                        "level {li}: position {} written twice",
                        op.pos
                    )));
                }
                touched[op.pos] = true;
                if lo[op.pos] == 0 {
                    return Err(InvalidPrefixNetwork(format!(
                        "level {li}: position {} already complete",
                        op.pos
                    )));
                }
                if op.from != lo[op.pos] - 1 {
                    return Err(InvalidPrefixNetwork(format!(
                        "level {li}: op {op:?} not adjacent (span starts at {})",
                        lo[op.pos]
                    )));
                }
            }
            // Apply after checking the whole level (operations within a
            // level read pre-level state).
            let snapshot = lo.clone();
            for op in level {
                lo[op.pos] = snapshot[op.from];
            }
        }
        for (i, &l) in lo.iter().enumerate() {
            if l != 0 {
                return Err(InvalidPrefixNetwork(format!(
                    "position {i} ends with span [{l}, {i}], not [0, {i}]"
                )));
            }
        }
        Ok(())
    }

    /// Operand width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The network's display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of levels (logic depth in combine cells).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Total number of combine operations.
    pub fn size(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// The levels of the network.
    pub fn levels(&self) -> &[Vec<PrefixOp>] {
        &self.levels
    }

    /// Maximum number of consumers of any intermediate group value (a
    /// structural fanout estimate). Each level overwrites the positions it
    /// targets, so read counts are tracked per value generation: a value is
    /// read as `hi` by the op that replaces it, as `lo` by any op naming it
    /// in `from`, and once more as the final carry if it survives.
    pub fn max_internal_fanout(&self) -> usize {
        let mut reads = vec![0usize; self.width];
        let mut max = 0usize;
        for level in &self.levels {
            for op in level {
                reads[op.from] += 1;
                reads[op.pos] += 1;
            }
            for op in level {
                max = max.max(reads[op.pos]);
                reads[op.pos] = 0; // new generation
            }
        }
        for r in reads {
            max = max.max(r + 1); // surviving value feeds the carry output
        }
        max
    }
}

/// Kogge–Stone network: minimal depth, fanout 2, n·log n cells.
pub fn kogge_stone(width: usize) -> PrefixNetwork {
    let mut levels = Vec::new();
    let mut stride = 1;
    while stride < width {
        let level = (stride..width)
            .map(|pos| PrefixOp {
                pos,
                from: pos - stride,
            })
            .collect();
        levels.push(level);
        stride *= 2;
    }
    PrefixNetwork::new(width, levels, "kogge-stone").expect("kogge-stone construction is valid")
}

/// Sklansky (divide-and-conquer) network: minimal depth, high fanout.
pub fn sklansky(width: usize) -> PrefixNetwork {
    let mut levels = Vec::new();
    let mut span = 1;
    while span < width {
        let mut level = Vec::new();
        let mut block = 0;
        while block + span < width {
            let from = block + span - 1;
            for pos in (block + span..block + 2 * span).take_while(|&p| p < width) {
                level.push(PrefixOp { pos, from });
            }
            block += 2 * span;
        }
        levels.push(level);
        span *= 2;
    }
    PrefixNetwork::new(width, levels, "sklansky").expect("sklansky construction is valid")
}

/// Brent–Kung network: ~2·log n depth, 2n cells, fanout 2.
pub fn brent_kung(width: usize) -> PrefixNetwork {
    let mut levels = Vec::new();
    // Up-sweep.
    let mut stride = 1;
    while stride < width {
        let mut level = Vec::new();
        let mut pos = 2 * stride - 1;
        while pos < width {
            level.push(PrefixOp {
                pos,
                from: pos - stride,
            });
            pos += 2 * stride;
        }
        if !level.is_empty() {
            levels.push(level);
        }
        stride *= 2;
    }
    // Down-sweep.
    stride /= 2;
    while stride >= 1 {
        let mut level = Vec::new();
        let mut pos = 3 * stride - 1;
        while pos < width {
            level.push(PrefixOp {
                pos,
                from: pos - stride,
            });
            pos += 2 * stride;
        }
        if !level.is_empty() {
            levels.push(level);
        }
        if stride == 1 {
            break;
        }
        stride /= 2;
    }
    PrefixNetwork::new(width, levels, "brent-kung").expect("brent-kung construction is valid")
}

/// Han–Carlson network: Kogge–Stone on odd positions, one extra level to
/// fix even positions; half the cells of Kogge–Stone at +1 depth.
pub fn han_carlson(width: usize) -> PrefixNetwork {
    let mut levels = Vec::new();
    if width > 1 {
        // Level 0: odd positions absorb their even neighbor.
        levels.push(
            (1..width)
                .step_by(2)
                .map(|pos| PrefixOp { pos, from: pos - 1 })
                .collect(),
        );
        // Kogge–Stone among odd positions (element i at position 2i+1).
        let m = width / 2; // number of odd positions
        let mut stride = 1;
        while stride < m {
            let level = (stride..m)
                .map(|i| PrefixOp {
                    pos: 2 * i + 1,
                    from: 2 * (i - stride) + 1,
                })
                .collect::<Vec<_>>();
            levels.push(level);
            stride *= 2;
        }
        // Final level: even positions >= 2 absorb the odd position below.
        let fix: Vec<PrefixOp> = (2..width)
            .step_by(2)
            .map(|pos| PrefixOp { pos, from: pos - 1 })
            .collect();
        if !fix.is_empty() {
            levels.push(fix);
        }
    }
    PrefixNetwork::new(width, levels, "han-carlson").expect("han-carlson construction is valid")
}

/// Ladner–Fischer network (even–odd flavor): Sklansky over odd positions,
/// one extra level to fix even positions — fewer cells than Sklansky with
/// the same +1-depth trade as Han–Carlson.
pub fn ladner_fischer(width: usize) -> PrefixNetwork {
    let mut levels = Vec::new();
    if width > 1 {
        levels.push(
            (1..width)
                .step_by(2)
                .map(|pos| PrefixOp { pos, from: pos - 1 })
                .collect(),
        );
        let m = width / 2;
        let mut span = 1;
        while span < m {
            let mut level = Vec::new();
            let mut block = 0;
            while block + span < m {
                let from = 2 * (block + span - 1) + 1;
                for i in (block + span..block + 2 * span).take_while(|&i| i < m) {
                    level.push(PrefixOp {
                        pos: 2 * i + 1,
                        from,
                    });
                }
                block += 2 * span;
            }
            levels.push(level);
            span *= 2;
        }
        let fix: Vec<PrefixOp> = (2..width)
            .step_by(2)
            .map(|pos| PrefixOp { pos, from: pos - 1 })
            .collect();
        if !fix.is_empty() {
            levels.push(fix);
        }
    }
    PrefixNetwork::new(width, levels, "ladner-fischer")
        .expect("ladner-fischer construction is valid")
}

/// Lowers a prefix network onto `b`, returning the group `(G, P)` over
/// `[0, i]` for every position `i`.
///
/// With `keep_all_p = true` every group keeps its propagate (needed when a
/// carry-in will be applied, or when the full-span group propagate itself
/// is wanted — e.g. the window group signals of the SCSA detectors); with
/// `false`, gray cells drop `P` once a span reaches bit 0.
///
/// # Panics
///
/// Panics if `pg.len() != network.width()`.
pub fn realize_groups(
    b: &mut NetlistBuilder,
    pg: &[PgBit],
    network: &PrefixNetwork,
    keep_all_p: bool,
) -> Vec<GroupPg> {
    assert_eq!(pg.len(), network.width(), "pg plane width mismatch");
    let mut groups: Vec<GroupPg> = pg
        .iter()
        .map(|bit| GroupPg {
            g: bit.g,
            p: Some(bit.p),
        })
        .collect();
    let mut lo: Vec<usize> = (0..pg.len()).collect();
    for level in network.levels() {
        let snapshot = groups.clone();
        let lo_snapshot = lo.clone();
        for op in level {
            let hi = snapshot[op.pos];
            let low = snapshot[op.from];
            let new_lo = lo_snapshot[op.from];
            // Keep P while the span is incomplete, or always on request.
            let need_p = keep_all_p || new_lo > 0;
            groups[op.pos] = pg::combine(b, hi, low, need_p);
            lo[op.pos] = new_lo;
        }
    }
    groups
}

/// Lowers a prefix network onto `b`, returning the carry **out of** every
/// bit position.
///
/// When `cin` is `Some`, all group propagates are kept alive so the carry-in
/// can be folded in at the end (`c_i = G_i | P_i·cin`); with `cin = None`
/// gray cells drop `P` as soon as a span reaches bit 0.
///
/// # Panics
///
/// Panics if `pg.len() != network.width()`.
pub fn realize_carries(
    b: &mut NetlistBuilder,
    pg: &[PgBit],
    network: &PrefixNetwork,
    cin: Option<Signal>,
) -> Vec<Signal> {
    let groups = realize_groups(b, pg, network, cin.is_some());
    pg::apply_cin(b, &groups, cin)
}

/// Builds a complete `width`-bit adder (`a`, `b` → `sum`, `cout`) from a
/// prefix network.
pub fn prefix_adder(network: &PrefixNetwork) -> Netlist {
    let width = network.width();
    let mut b = NetlistBuilder::new(format!("{}_{}", network.name(), width));
    let a = b.input_bus("a", width);
    let bb = b.input_bus("b", width);
    let pg_plane = pg::pg_bits(&mut b, &a, &bb);
    let carries = realize_carries(&mut b, &pg_plane, network, None);
    let sums = pg::sum_bits(&mut b, &pg_plane, &carries, None);
    b.output_bus("sum", &sums);
    b.output_bit("cout", carries[width - 1]);
    b.finish()
}

/// Kogge–Stone adder.
pub fn kogge_stone_adder(width: usize) -> Netlist {
    prefix_adder(&kogge_stone(width))
}

/// Brent–Kung adder.
pub fn brent_kung_adder(width: usize) -> Netlist {
    prefix_adder(&brent_kung(width))
}

/// Sklansky adder.
pub fn sklansky_adder(width: usize) -> Netlist {
    prefix_adder(&sklansky(width))
}

/// Han–Carlson adder.
pub fn han_carlson_adder(width: usize) -> Netlist {
    prefix_adder(&han_carlson(width))
}

/// Ladner–Fischer adder.
pub fn ladner_fischer_adder(width: usize) -> Netlist {
    prefix_adder(&ladner_fischer(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_networks_valid_across_widths() {
        for width in 1..=130 {
            for net in [
                kogge_stone(width),
                sklansky(width),
                brent_kung(width),
                han_carlson(width),
                ladner_fischer(width),
            ] {
                assert_eq!(net.width(), width);
                // `new` already validated; double-check via reconstruction.
                assert!(
                    PrefixNetwork::new(width, net.levels().to_vec(), net.name()).is_ok(),
                    "{} width {width}",
                    net.name()
                );
            }
        }
    }

    #[test]
    fn structural_properties_at_64() {
        let ks = kogge_stone(64);
        assert_eq!(ks.depth(), 6);
        assert_eq!(ks.size(), 64 * 6 - (1 + 2 + 4 + 8 + 16 + 32));
        let sk = sklansky(64);
        assert_eq!(sk.depth(), 6);
        assert_eq!(sk.size(), 32 * 6);
        assert!(sk.max_internal_fanout() > ks.max_internal_fanout());
        let bk = brent_kung(64);
        assert_eq!(bk.depth(), 11);
        assert_eq!(bk.size(), 2 * 64 - 2 - 6); // 2n - 2 - log2 n
        let hc = han_carlson(64);
        assert_eq!(hc.depth(), 7);
        assert!(hc.size() < ks.size());
    }

    #[test]
    fn invalid_networks_rejected() {
        // Non-adjacent combine.
        let bad = PrefixNetwork::new(4, vec![vec![PrefixOp { pos: 3, from: 1 }]], "bad");
        assert!(bad.is_err());
        // Incomplete coverage.
        let incomplete = PrefixNetwork::new(4, vec![], "bad");
        assert!(incomplete.is_err());
        // Double write in one level.
        let double = PrefixNetwork::new(
            2,
            vec![vec![
                PrefixOp { pos: 1, from: 0 },
                PrefixOp { pos: 1, from: 0 },
            ]],
            "bad",
        );
        assert!(double.is_err());
    }

    #[test]
    fn kogge_stone_fanout_is_logarithmic() {
        // Interior KS nodes have fanout 2; the persisting low-position
        // nodes feed one op per level, so the bound is log2(n) + O(1) —
        // far below Sklansky's n/2.
        for width in [16usize, 64, 100, 256] {
            let levels = usize::BITS as usize - (width - 1).leading_zeros() as usize;
            let f = kogge_stone(width).max_internal_fanout();
            assert!(f <= levels + 2, "width {width}: fanout {f}");
            assert!(f < sklansky(width).max_internal_fanout());
        }
    }
}

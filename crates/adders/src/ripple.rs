//! Ripple-carry adder: the minimal-area, O(n)-delay baseline.

use gatesim::{Netlist, NetlistBuilder};

use crate::pg;

/// Builds an `n`-bit ripple-carry adder (`a`, `b` → `sum`, `cout`) from a
/// chain of full adders.
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn ripple_carry_adder(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new(format!("ripple_{width}"));
    let a = b.input_bus("a", width);
    let bb = b.input_bus("b", width);
    let plane = pg::pg_bits(&mut b, &a, &bb);
    let carries = pg::ripple_carries(&mut b, &plane, None);
    let sums = pg::sum_bits(&mut b, &plane, &carries, None);
    b.output_bus("sum", &sums);
    b.output_bit("cout", carries[width - 1]);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatesim::equiv;

    #[test]
    fn tiny_widths_exhaustive_vs_prefix() {
        for width in 1..=6 {
            let rca = ripple_carry_adder(width);
            let ks = crate::prefix::kogge_stone_adder(width);
            assert_eq!(
                equiv::check(&rca, &ks, 0, 0).unwrap(),
                None,
                "width {width}"
            );
        }
    }

    #[test]
    fn linear_depth() {
        let n = ripple_carry_adder(32);
        assert!(n.depth() >= 32, "ripple depth {} must be linear", n.depth());
    }
}

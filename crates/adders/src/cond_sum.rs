//! Conditional-sum adder.
//!
//! Every block is computed for both possible carry-ins and blocks are merged
//! pairwise in a logarithmic tree of multiplexers — the fully unrolled
//! limit of carry-select. O(log n) delay with high mux/area cost.

use gatesim::{Netlist, NetlistBuilder, Signal};

/// A block conditionally summed for both carry-in values.
#[derive(Debug, Clone)]
struct CondBlock {
    /// Sums and carry-out assuming carry-in 0.
    sum0: Vec<Signal>,
    cout0: Signal,
    /// Sums and carry-out assuming carry-in 1.
    sum1: Vec<Signal>,
    cout1: Signal,
}

/// Builds an `n`-bit conditional-sum adder (`a`, `b` → `sum`, `cout`).
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn conditional_sum_adder(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new(format!("cond_sum_{width}"));
    let a = b.input_bus("a", width);
    let bb = b.input_bus("b", width);

    // Base case: 1-bit blocks.
    let mut blocks: Vec<CondBlock> = a
        .iter()
        .zip(&bb)
        .map(|(&x, &y)| {
            let p = b.xor2(x, y);
            let g = b.and2(x, y);
            let np = b.xnor2(x, y);
            let gp = b.or2(x, y);
            CondBlock {
                sum0: vec![p],
                cout0: g,
                sum1: vec![np],
                cout1: gp,
            }
        })
        .collect();

    // Merge adjacent blocks until one remains.
    while blocks.len() > 1 {
        let mut merged = Vec::with_capacity(blocks.len().div_ceil(2));
        let mut it = blocks.into_iter();
        while let Some(lo) = it.next() {
            match it.next() {
                Some(hi) => merged.push(merge(&mut b, lo, hi)),
                None => merged.push(lo),
            }
        }
        blocks = merged;
    }
    let result = blocks.pop().expect("width >= 1");
    b.output_bus("sum", &result.sum0);
    b.output_bit("cout", result.cout0);
    b.finish()
}

/// Merges two adjacent conditional blocks (`lo` less significant).
fn merge(b: &mut NetlistBuilder, lo: CondBlock, hi: CondBlock) -> CondBlock {
    let mut sum0 = lo.sum0.clone();
    sum0.extend(b.mux_bus(&hi.sum0, &hi.sum1, lo.cout0));
    let cout0 = b.mux2(hi.cout0, hi.cout1, lo.cout0);
    let mut sum1 = lo.sum1.clone();
    sum1.extend(b.mux_bus(&hi.sum0, &hi.sum1, lo.cout1));
    let cout1 = b.mux2(hi.cout0, hi.cout1, lo.cout1);
    CondBlock {
        sum0,
        cout0,
        sum1,
        cout1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatesim::equiv;

    #[test]
    fn matches_kogge_stone() {
        for width in [1usize, 2, 3, 7, 16, 33, 64] {
            let cond = conditional_sum_adder(width);
            let ks = crate::prefix::kogge_stone_adder(width);
            assert_eq!(
                equiv::check(&cond, &ks, 512, 13).unwrap(),
                None,
                "width {width}"
            );
        }
    }

    #[test]
    fn logarithmic_depth() {
        let d = conditional_sum_adder(64).depth();
        assert!(d <= 16, "conditional-sum depth {d} should be logarithmic");
    }
}

//! Baseline adder generators for the VLCSA reproduction.
//!
//! Every generator returns a [`gatesim::Netlist`] with the common interface
//!
//! * inputs `a`, `b` — the `n`-bit addends (LSB first),
//! * output `sum` — the `n`-bit sum,
//! * output `cout` — the carry out of bit `n−1`,
//!
//! so all designs are mutually equivalence-checkable and plug into the same
//! timing/area experiments. The families implemented:
//!
//! | module | designs |
//! |--------|---------|
//! | [`ripple`] | ripple-carry |
//! | [`prefix`] | Kogge–Stone, Brent–Kung, Sklansky, Han–Carlson, Ladner–Fischer (any width, via a validated prefix-network abstraction) |
//! | [`cla`] | hierarchical 4-bit carry-lookahead |
//! | [`carry_select`] | uniform- and square-root-block carry-select |
//! | [`carry_skip`] | fixed-block carry-skip |
//! | [`cond_sum`] | conditional-sum |
//! | [`designware`] | a best-of-family, delay-optimized selection standing in for the Synopsys DesignWare adder (see DESIGN.md §5) |
//!
//! The low-level building blocks ([`pg`]) — propagate/generate cells, prefix
//! carry realization with optional carry-in, sum formation — are shared with
//! the speculative adders in the `vlcsa` crate, exactly as the paper's
//! window adders reuse carry-select and Kogge–Stone structures.
//!
//! # Example
//!
//! ```
//! use adders::prefix;
//! use bitnum::UBig;
//! use gatesim::sim;
//!
//! let ks = prefix::kogge_stone_adder(32);
//! let a = UBig::from_u128(123_456_789, 32);
//! let b = UBig::from_u128(987_654_321, 32);
//! let out = sim::simulate_ubig(&ks, &[("a", &a), ("b", &b)])?;
//! assert_eq!(out["sum"], a.wrapping_add(&b));
//! # Ok::<(), gatesim::GateError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod carry_select;
pub mod carry_skip;
pub mod cla;
pub mod cond_sum;
pub mod designware;
pub mod pg;
pub mod prefix;
pub mod ripple;

use gatesim::Netlist;

/// The adder families this crate can generate, for experiment sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Family {
    /// Ripple-carry.
    Ripple,
    /// Kogge–Stone parallel prefix.
    KoggeStone,
    /// Brent–Kung parallel prefix.
    BrentKung,
    /// Sklansky parallel prefix.
    Sklansky,
    /// Han–Carlson parallel prefix.
    HanCarlson,
    /// Ladner–Fischer parallel prefix.
    LadnerFischer,
    /// Hierarchical carry-lookahead (4-bit groups).
    Cla,
    /// Carry-select with uniform block size.
    CarrySelect,
    /// Carry-select with square-root block sizing.
    CarrySelectSqrt,
    /// Carry-skip with fixed blocks.
    CarrySkip,
    /// Conditional-sum.
    CondSum,
}

impl Family {
    /// All families, in report order.
    pub const ALL: [Family; 11] = [
        Family::Ripple,
        Family::KoggeStone,
        Family::BrentKung,
        Family::Sklansky,
        Family::HanCarlson,
        Family::LadnerFischer,
        Family::Cla,
        Family::CarrySelect,
        Family::CarrySelectSqrt,
        Family::CarrySkip,
        Family::CondSum,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Family::Ripple => "ripple",
            Family::KoggeStone => "kogge-stone",
            Family::BrentKung => "brent-kung",
            Family::Sklansky => "sklansky",
            Family::HanCarlson => "han-carlson",
            Family::LadnerFischer => "ladner-fischer",
            Family::Cla => "cla4",
            Family::CarrySelect => "carry-select",
            Family::CarrySelectSqrt => "carry-select-sqrt",
            Family::CarrySkip => "carry-skip",
            Family::CondSum => "conditional-sum",
        }
    }

    /// Generates the family's netlist at the given width, using each
    /// family's default parameters.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn build(self, width: usize) -> Netlist {
        match self {
            Family::Ripple => ripple::ripple_carry_adder(width),
            Family::KoggeStone => prefix::kogge_stone_adder(width),
            Family::BrentKung => prefix::brent_kung_adder(width),
            Family::Sklansky => prefix::sklansky_adder(width),
            Family::HanCarlson => prefix::han_carlson_adder(width),
            Family::LadnerFischer => prefix::ladner_fischer_adder(width),
            Family::Cla => cla::cla_adder(width),
            Family::CarrySelect => {
                carry_select::carry_select_adder(width, (width as f64).sqrt().ceil() as usize)
            }
            Family::CarrySelectSqrt => carry_select::carry_select_sqrt_adder(width),
            Family::CarrySkip => {
                carry_skip::carry_skip_adder(width, (width as f64).sqrt().ceil() as usize)
            }
            Family::CondSum => cond_sum::conditional_sum_adder(width),
        }
    }
}

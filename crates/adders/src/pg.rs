//! Shared gate-level building blocks: propagate/generate cells, prefix
//! combine cells, carry application and sum formation.
//!
//! These fragments are the vocabulary from which every adder in the
//! workspace — traditional, speculative, and variable-latency — is
//! assembled. They operate inside a caller-provided [`NetlistBuilder`] so
//! composite designs (window adders, detection trees, recovery prefix
//! adders) can share logic through the builder's hash-consing.

use gatesim::{NetlistBuilder, Signal};

/// Per-bit propagate/generate pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PgBit {
    /// `p_i = a_i XOR b_i` — also the half-sum used for sum formation.
    pub p: Signal,
    /// `g_i = a_i AND b_i`.
    pub g: Signal,
}

/// Builds the per-bit propagate/generate plane for two equal-width buses.
///
/// # Panics
///
/// Panics if the buses have different widths.
pub fn pg_bits(b: &mut NetlistBuilder, a: &[Signal], bb: &[Signal]) -> Vec<PgBit> {
    assert_eq!(a.len(), bb.len(), "operand width mismatch");
    a.iter()
        .zip(bb)
        .map(|(&x, &y)| PgBit {
            p: b.xor2(x, y),
            g: b.and2(x, y),
        })
        .collect()
}

/// A group `(G, P)` pair during prefix evaluation. `P` may be dropped
/// (`None`) once a group's span reaches bit 0 and no carry-in must be
/// applied (the classic "gray cell" optimization).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupPg {
    /// Group generate.
    pub g: Signal,
    /// Group propagate, if still required.
    pub p: Option<Signal>,
}

/// Prefix combine (`∘` operator): `hi ∘ lo` where `hi` covers the more
/// significant range.
///
/// `G = G_hi | (P_hi & G_lo)`, `P = P_hi & P_lo` (only when both groups
/// still carry a `P` and `keep_p` is true).
///
/// # Panics
///
/// Panics if `hi.p` is `None` (a group whose span already reaches bit 0
/// cannot be extended downward).
pub fn combine(b: &mut NetlistBuilder, hi: GroupPg, lo: GroupPg, keep_p: bool) -> GroupPg {
    let hp = hi.p.expect("cannot extend a completed group");
    let t = b.and2(hp, lo.g);
    let g = b.or2(hi.g, t);
    let p = if keep_p {
        lo.p.map(|lp| b.and2(hp, lp))
    } else {
        None
    };
    GroupPg { g, p }
}

/// Applies a carry-in to a vector of group `(G, P)` values that each span
/// `[0, i]`: returns `c_out[i] = G_i | (P_i & cin)` for every position.
///
/// With `cin = None` the carries are just the group generates.
pub fn apply_cin(b: &mut NetlistBuilder, groups: &[GroupPg], cin: Option<Signal>) -> Vec<Signal> {
    groups
        .iter()
        .map(|grp| match (cin, grp.p) {
            (Some(c), Some(p)) => {
                let t = b.and2(p, c);
                b.or2(grp.g, t)
            }
            (Some(_), None) => grp.g,
            (None, _) => grp.g,
        })
        .collect()
}

/// Forms sum bits from the propagate plane and the per-position carry-outs:
/// `s_0 = p_0 ^ cin`, `s_i = p_i ^ c_out[i-1]`.
///
/// `carries_out[i]` must be the carry out of bit `i`; only indices
/// `0..n-1` are consumed.
pub fn sum_bits(
    b: &mut NetlistBuilder,
    pg: &[PgBit],
    carries_out: &[Signal],
    cin: Option<Signal>,
) -> Vec<Signal> {
    let mut sums = Vec::with_capacity(pg.len());
    for (i, bit) in pg.iter().enumerate() {
        let s = if i == 0 {
            match cin {
                Some(c) => b.xor2(bit.p, c),
                None => bit.p,
            }
        } else {
            b.xor2(bit.p, carries_out[i - 1])
        };
        sums.push(s);
    }
    sums
}

/// A compact serial (ripple) computation of all carry-outs from a PG plane:
/// `c_i = g_i | (p_i & c_{i-1})`. O(n) cells, O(n) depth.
pub fn ripple_carries(b: &mut NetlistBuilder, pg: &[PgBit], cin: Option<Signal>) -> Vec<Signal> {
    let mut carries = Vec::with_capacity(pg.len());
    let mut c = cin;
    for bit in pg {
        let next = match c {
            Some(cs) => {
                let t = b.and2(bit.p, cs);
                b.or2(bit.g, t)
            }
            None => bit.g,
        };
        carries.push(next);
        c = Some(next);
    }
    carries
}

/// Computes the group `(G, P)` of a contiguous PG slice as a balanced tree:
/// `G` = generate of the whole slice, `P` = AND of all propagates.
/// O(len) cells, O(log len) depth.
pub fn group_of_slice(b: &mut NetlistBuilder, pg: &[PgBit]) -> GroupPg {
    fn rec(b: &mut NetlistBuilder, pg: &[PgBit]) -> GroupPg {
        match pg.len() {
            0 => panic!("empty slice has no group PG"),
            1 => GroupPg {
                g: pg[0].g,
                p: Some(pg[0].p),
            },
            _ => {
                let mid = pg.len() / 2;
                let lo = rec(b, &pg[..mid]);
                let hi = rec(b, &pg[mid..]);
                combine(b, hi, lo, true)
            }
        }
    }
    rec(b, pg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitnum::rng::Xoshiro256;
    use bitnum::UBig;
    use gatesim::sim;

    /// Builds a reference ripple adder from the fragments and checks it.
    #[test]
    fn fragments_compose_into_correct_adder() {
        let n = 48;
        let mut b = NetlistBuilder::new("frag");
        let a = b.input_bus("a", n);
        let bb = b.input_bus("b", n);
        let cin = b.input_bit("cin");
        let pg = pg_bits(&mut b, &a, &bb);
        let carries = ripple_carries(&mut b, &pg, Some(cin));
        let sums = sum_bits(&mut b, &pg, &carries, Some(cin));
        b.output_bus("sum", &sums);
        b.output_bit("cout", carries[n - 1]);
        let net = b.finish();

        let mut rng = Xoshiro256::seed_from_u64(2);
        for _ in 0..50 {
            let x = UBig::random(n, &mut rng);
            let y = UBig::random(n, &mut rng);
            for cin_v in [false, true] {
                let c = if cin_v { UBig::ones(1) } else { UBig::zero(1) };
                let out = sim::simulate_ubig(&net, &[("a", &x), ("b", &y), ("cin", &c)]).unwrap();
                let (want, want_c) = x.add_with_carry(&y, cin_v);
                assert_eq!(out["sum"], want);
                assert_eq!(
                    out["cout"],
                    if want_c { UBig::ones(1) } else { UBig::zero(1) }
                );
            }
        }
    }

    #[test]
    fn group_of_slice_matches_behavioral() {
        let n = 20;
        let mut b = NetlistBuilder::new("grp");
        let a = b.input_bus("a", n);
        let bb = b.input_bus("b", n);
        let pg = pg_bits(&mut b, &a, &bb);
        let grp = group_of_slice(&mut b, &pg);
        b.output_bit("gg", grp.g);
        b.output_bit("gp", grp.p.unwrap());
        let net = b.finish();

        let mut rng = Xoshiro256::seed_from_u64(4);
        for _ in 0..100 {
            let x = UBig::random(n, &mut rng);
            let y = UBig::random(n, &mut rng);
            let out = sim::simulate_ubig(&net, &[("a", &x), ("b", &y)]).unwrap();
            let planes = bitnum::pg::PgPlanes::of(&x, &y);
            let (p, g) = planes.group_pg(0, n);
            assert_eq!(out["gg"].bit(0), g);
            assert_eq!(out["gp"].bit(0), p);
        }
    }

    #[test]
    #[should_panic(expected = "cannot extend a completed group")]
    fn combine_rejects_completed_group() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input_bit("x");
        let hi = GroupPg { g: x, p: None };
        let lo = GroupPg { g: x, p: Some(x) };
        combine(&mut b, hi, lo, true);
    }
}

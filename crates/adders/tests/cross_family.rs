//! Cross-family checks: every adder family computes the same function, and
//! the structural delay/area rankings follow the textbook ordering.

use adders::Family;
use bitnum::rng::Xoshiro256;
use bitnum::UBig;
use gatesim::{area, equiv, sim, sta};

#[test]
fn all_families_equivalent_at_mixed_widths() {
    for width in [5usize, 16, 24, 33, 64] {
        let reference = Family::KoggeStone.build(width);
        for family in Family::ALL {
            if family == Family::KoggeStone {
                continue;
            }
            let candidate = family.build(width);
            assert_eq!(
                equiv::check(&reference, &candidate, 512, 23).unwrap(),
                None,
                "{} disagrees with kogge-stone at width {width}",
                family.name()
            );
        }
    }
}

#[test]
fn all_families_match_bignum_reference() {
    let width = 96;
    let mut rng = Xoshiro256::seed_from_u64(1234);
    for family in Family::ALL {
        let netlist = family.build(width);
        for _ in 0..20 {
            let a = UBig::random(width, &mut rng);
            let b = UBig::random(width, &mut rng);
            let out = sim::simulate_ubig(&netlist, &[("a", &a), ("b", &b)]).unwrap();
            let (sum, cout) = a.overflowing_add(&b);
            assert_eq!(out["sum"], sum, "{} sum", family.name());
            assert_eq!(out["cout"].bit(0), cout, "{} cout", family.name());
        }
        // Corner cases.
        for (a, b) in [
            (UBig::zero(width), UBig::zero(width)),
            (UBig::ones(width), UBig::ones(width)),
            (UBig::ones(width), UBig::from_u128(1, width)),
        ] {
            let out = sim::simulate_ubig(&netlist, &[("a", &a), ("b", &b)]).unwrap();
            let (sum, cout) = a.overflowing_add(&b);
            assert_eq!(out["sum"], sum, "{} corner sum", family.name());
            assert_eq!(out["cout"].bit(0), cout, "{} corner cout", family.name());
        }
    }
}

#[test]
fn textbook_delay_and_area_ordering() {
    let width = 64;
    let delay = |f: Family| sta::analyze(&f.build(width)).critical_delay_tau();
    let size = |f: Family| area::analyze(&f.build(width)).total_nand2();

    // Ripple is the slowest and smallest of the classic designs.
    let t_ripple = delay(Family::Ripple);
    let a_ripple = size(Family::Ripple);
    for f in [
        Family::KoggeStone,
        Family::Sklansky,
        Family::BrentKung,
        Family::CondSum,
    ] {
        assert!(
            delay(f) < t_ripple / 2.0,
            "{} should be much faster than ripple",
            f.name()
        );
        assert!(
            size(f) > a_ripple,
            "{} should be bigger than ripple",
            f.name()
        );
    }
    // Brent–Kung trades depth for area against Kogge–Stone.
    assert!(size(Family::BrentKung) < size(Family::KoggeStone));
    assert!(Family::BrentKung.build(width).depth() > Family::KoggeStone.build(width).depth());
}

#[test]
fn designware_choice_beats_every_raw_family() {
    for width in [32usize, 128] {
        let dw = adders::designware::best(width);
        for family in [Family::KoggeStone, Family::Sklansky, Family::HanCarlson] {
            let raw = sta::analyze(&family.build(width)).critical_delay_tau();
            assert!(
                dw.delay_tau <= raw + 1e-9,
                "DW ({}, {:.1}) slower than raw {} ({:.1}) at width {width}",
                dw.candidate,
                dw.delay_tau,
                family.name(),
                raw
            );
        }
        // And it is still a correct adder.
        let ks = Family::KoggeStone.build(width);
        assert_eq!(equiv::check(&dw.netlist, &ks, 256, 29).unwrap(), None);
    }
}

//! Property tests: the bit-sliced batch path of every behavioral engine
//! agrees lane-for-lane with its scalar path and with exact addition, at
//! arbitrary widths, lane counts and block sizes.

use adders::batch::{
    BatchAdd, BatchCarrySelect, BatchCarrySkip, BatchCla, BatchCondSum, BatchPrefix, BatchRipple,
};
use bitnum::batch::BitSlab;
use bitnum::rng::Xoshiro256;
use proptest::prelude::*;

fn engines(width: usize, block: usize) -> Vec<Box<dyn BatchAdd>> {
    vec![
        Box::new(BatchRipple::new(width)),
        Box::new(BatchCla::new(width)),
        Box::new(BatchCarrySelect::new(width, block)),
        Box::new(BatchCarrySkip::new(width, block)),
        Box::new(BatchCondSum::new(width)),
        Box::new(BatchPrefix::new(width)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Batch lane `l` == scalar path == `UBig::overflowing_add`, for every
    /// family, including lanes < 64 and widths not multiples of the block.
    #[test]
    fn lane_agreement(
        n in 1usize..150,
        lanes in 1usize..=64,
        block in 1usize..24,
        seed in any::<u64>(),
    ) {
        let block = block.min(n);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let a = BitSlab::random(n, lanes, &mut rng);
        let b = BitSlab::random(n, lanes, &mut rng);
        for engine in engines(n, block) {
            let batch = engine.add_batch(&a, &b);
            prop_assert_eq!(batch.sum.lanes(), lanes);
            prop_assert_eq!(batch.cout & !a.lane_mask(), 0, "stray cout bits");
            for l in 0..lanes {
                let (al, bl) = (a.lane(l), b.lane(l));
                let (exact, exact_cout) = al.overflowing_add(&bl);
                prop_assert_eq!(
                    batch.sum.lane(l), exact.clone(),
                    "{} n={} block={} lane={}", engine.name(), n, block, l
                );
                prop_assert_eq!((batch.cout >> l) & 1 == 1, exact_cout);
                let (one, one_cout) = engine.add_one(&al, &bl);
                prop_assert_eq!(one, exact, "{} scalar path", engine.name());
                prop_assert_eq!(one_cout, exact_cout);
            }
        }
    }

    /// Transpose/untranspose is lossless and the sum words never leak
    /// bits beyond the lane mask.
    #[test]
    fn slab_invariants_survive_addition(
        n in 1usize..200,
        lanes in 1usize..=64,
        seed in any::<u64>(),
    ) {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let a = BitSlab::random(n, lanes, &mut rng);
        let b = BitSlab::random(n, lanes, &mut rng);
        prop_assert_eq!(BitSlab::from_lanes(&a.to_lanes()), a.clone());
        let out = BatchRipple::new(n).add_batch(&a, &b);
        let mask = a.lane_mask();
        for i in 0..n {
            prop_assert_eq!(out.sum.word(i) & !mask, 0, "stray bits at position {}", i);
        }
    }
}

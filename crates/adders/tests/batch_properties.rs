//! Property tests: the bit-sliced batch path of every behavioral engine
//! agrees lane-for-lane with its scalar path and with exact addition, at
//! arbitrary widths, lane counts and block sizes — for both lane words
//! (`u64` and `W256`), which are additionally pinned against each other
//! bit-for-bit.

use adders::batch::{
    BatchAdd, BatchCarrySelect, BatchCarrySkip, BatchCla, BatchCondSum, BatchPrefix, BatchRipple,
};
use bitnum::batch::{BitSlab, Word, W256};
use bitnum::rng::Xoshiro256;
use bitnum::UBig;
use proptest::prelude::*;

fn engines<W: Word>(width: usize, block: usize) -> Vec<Box<dyn BatchAdd<W>>> {
    vec![
        Box::new(BatchRipple::new(width)),
        Box::new(BatchCla::new(width)),
        Box::new(BatchCarrySelect::new(width, block)),
        Box::new(BatchCarrySkip::new(width, block)),
        Box::new(BatchCondSum::new(width)),
        Box::new(BatchPrefix::new(width)),
    ]
}

fn random_lanes(width: usize, lanes: usize, rng: &mut Xoshiro256) -> Vec<UBig> {
    (0..lanes).map(|_| UBig::random(width, rng)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Batch lane `l` == scalar path == `UBig::overflowing_add`, for every
    /// family, including lanes < 64 and widths not multiples of the block.
    #[test]
    fn lane_agreement_u64(
        n in 1usize..150,
        lanes in 1usize..=64,
        block in 1usize..24,
        seed in any::<u64>(),
    ) {
        let block = block.min(n);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let a = BitSlab::<u64>::random(n, lanes, &mut rng);
        let b = BitSlab::<u64>::random(n, lanes, &mut rng);
        for engine in engines::<u64>(n, block) {
            let batch = engine.add_batch(&a, &b);
            prop_assert_eq!(batch.sum.lanes(), lanes);
            prop_assert_eq!(batch.cout & !a.lane_mask(), 0, "stray cout bits");
            for l in 0..lanes {
                let (al, bl) = (a.lane(l), b.lane(l));
                let (exact, exact_cout) = al.overflowing_add(&bl);
                prop_assert_eq!(
                    batch.sum.lane(l), exact.clone(),
                    "{} n={} block={} lane={}", engine.name(), n, block, l
                );
                prop_assert_eq!((batch.cout >> l) & 1 == 1, exact_cout);
                let (one, one_cout) = engine.add_one(&al, &bl);
                prop_assert_eq!(one, exact, "{} scalar path", engine.name());
                prop_assert_eq!(one_cout, exact_cout);
            }
        }
    }

    /// The same property through the 256-lane word, at lane counts that
    /// straddle the 64-lane boundary — plus the word-equivalence pin: the
    /// `W256` batch result equals the `u64` chunked result bit-for-bit.
    #[test]
    fn lane_agreement_and_word_equivalence_w256(
        n in 1usize..150,
        lanes in 1usize..=256,
        block in 1usize..24,
        seed in any::<u64>(),
    ) {
        let block = block.min(n);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let av = random_lanes(n, lanes, &mut rng);
        let bv = random_lanes(n, lanes, &mut rng);
        let a = BitSlab::<W256>::from_lanes(&av);
        let b = BitSlab::<W256>::from_lanes(&bv);
        for (wide, narrow) in engines::<W256>(n, block)
            .into_iter()
            .zip(engines::<u64>(n, block))
        {
            let batch = wide.add_batch(&a, &b);
            prop_assert!((batch.cout & !a.lane_mask()).is_zero(), "stray cout bits");
            // u64 reference, chunk by chunk over the same lanes.
            for (c, chunk) in av.chunks(64).enumerate() {
                let ca = BitSlab::<u64>::from_lanes(chunk);
                let cb = BitSlab::<u64>::from_lanes(&bv[c * 64..c * 64 + chunk.len()]);
                let reference = narrow.add_batch(&ca, &cb);
                prop_assert_eq!(batch.cout.limb(c), reference.cout, "{} chunk {}", wide.name(), c);
                for l in 0..chunk.len() {
                    prop_assert_eq!(
                        batch.sum.lane(c * 64 + l),
                        reference.sum.lane(l),
                        "{} n={} chunk={} lane={}", wide.name(), n, c, l
                    );
                }
            }
            // And the scalar/exact pins per lane.
            for l in 0..lanes {
                let (exact, exact_cout) = av[l].overflowing_add(&bv[l]);
                prop_assert_eq!(batch.sum.lane(l), exact, "{} lane {}", wide.name(), l);
                prop_assert_eq!(batch.cout.bit(l), exact_cout, "{} lane {}", wide.name(), l);
            }
        }
    }

    /// Transpose/untranspose is lossless and the sum words never leak
    /// bits beyond the lane mask — in any limb.
    #[test]
    fn slab_invariants_survive_addition(
        n in 1usize..200,
        lanes in 1usize..=256,
        seed in any::<u64>(),
    ) {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let a = BitSlab::<W256>::random(n, lanes, &mut rng);
        let b = BitSlab::<W256>::random(n, lanes, &mut rng);
        prop_assert_eq!(BitSlab::<W256>::from_lanes(&a.to_lanes()), a.clone());
        let out = BatchAdd::<W256>::add_batch(&BatchRipple::new(n), &a, &b);
        let mask = a.lane_mask();
        for i in 0..n {
            prop_assert!((out.sum.word(i) & !mask).is_zero(), "stray bits at position {}", i);
        }
    }
}

//! Property tests: every adder family is correct at arbitrary widths, and
//! the prefix-network abstraction holds its structural invariants.

use adders::prefix;
use adders::Family;
use bitnum::rng::Xoshiro256;
use bitnum::UBig;
use gatesim::sim;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn families_correct_at_arbitrary_width(
        n in 1usize..96,
        seed in any::<u64>(),
        family_idx in 0usize..Family::ALL.len(),
    ) {
        let family = Family::ALL[family_idx];
        let netlist = family.build(n);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        for _ in 0..8 {
            let a = UBig::random(n, &mut rng);
            let b = UBig::random(n, &mut rng);
            let out = sim::simulate_ubig(&netlist, &[("a", &a), ("b", &b)]).unwrap();
            let (sum, cout) = a.overflowing_add(&b);
            prop_assert_eq!(&out["sum"], &sum, "{} n={}", family.name(), n);
            prop_assert_eq!(out["cout"].bit(0), cout);
        }
    }

    #[test]
    fn prefix_networks_structural_invariants(n in 1usize..200) {
        for net in [
            prefix::kogge_stone(n),
            prefix::sklansky(n),
            prefix::brent_kung(n),
            prefix::han_carlson(n),
            prefix::ladner_fischer(n),
        ] {
            // Validity is asserted by the constructor; check size/depth
            // bounds hold for all widths.
            let log2 = usize::BITS as usize - n.leading_zeros() as usize;
            prop_assert!(net.depth() <= 2 * log2 + 2, "{} depth {}", net.name(), net.depth());
            prop_assert!(net.size() <= n * (log2 + 1), "{} size {}", net.name(), net.size());
            if n > 1 {
                prop_assert!(net.size() >= n - 1, "{} needs >= n-1 combines", net.name());
            }
        }
    }

    #[test]
    fn carry_select_any_block_size(n in 2usize..80, block in 1usize..24, seed in any::<u64>()) {
        let block = block.min(n);
        let netlist = adders::carry_select::carry_select_adder(n, block);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        for _ in 0..8 {
            let a = UBig::random(n, &mut rng);
            let b = UBig::random(n, &mut rng);
            let out = sim::simulate_ubig(&netlist, &[("a", &a), ("b", &b)]).unwrap();
            prop_assert_eq!(&out["sum"], &a.wrapping_add(&b));
        }
    }

    #[test]
    fn carry_skip_any_block_size(n in 2usize..80, block in 1usize..24, seed in any::<u64>()) {
        let block = block.min(n);
        let netlist = adders::carry_skip::carry_skip_adder(n, block);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        for _ in 0..8 {
            let a = UBig::random(n, &mut rng);
            let b = UBig::random(n, &mut rng);
            let out = sim::simulate_ubig(&netlist, &[("a", &a), ("b", &b)]).unwrap();
            prop_assert_eq!(&out["sum"], &a.wrapping_add(&b));
        }
    }
}

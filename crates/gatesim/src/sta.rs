//! Load-aware static timing analysis.
//!
//! Delay model (logical effort with minimum-drive cells):
//!
//! ```text
//! delay(node) = parasitic(cell) + Σ_{fanout pins} (pin_cap + WIRE_CAP) [τ]
//! arrival(node) = max over inputs of arrival(input) + delay(node)
//! ```
//!
//! Primary inputs arrive at t = 0 but still pay their fanout load (they are
//! driven by an ideal minimum inverter), so designs with huge primary-input
//! fanout — the problem the paper points out in prior speculative adders —
//! are penalized realistically. Output-bus bits add one register-pin load.
//!
//! Delays are reported in τ and convertible to nanoseconds with
//! [`crate::PS_PER_TAU`].

use crate::netlist::{Netlist, Node, Signal};
use crate::PS_PER_TAU;

/// Wire capacitance charged per fanout pin, in unit inverter capacitances.
pub const WIRE_CAP: f64 = 0.5;

/// Load presented by an output-bus bit (a register data pin).
pub const OUTPUT_PIN_CAP: f64 = 1.0;

/// The result of timing a netlist.
#[derive(Debug, Clone)]
pub struct TimingReport {
    arrivals: Vec<f64>,
    critical_path: Vec<Signal>,
    critical_delay: f64,
    output_arrivals: Vec<(String, f64)>,
}

impl TimingReport {
    /// Critical-path delay in τ.
    pub fn critical_delay_tau(&self) -> f64 {
        self.critical_delay
    }

    /// Critical-path delay in nanoseconds under the calibrated process.
    pub fn critical_delay_ns(&self) -> f64 {
        self.critical_delay * PS_PER_TAU / 1000.0
    }

    /// Arrival time (τ) of the latest bit of the named output bus, if it
    /// exists.
    pub fn output_arrival_tau(&self, bus: &str) -> Option<f64> {
        self.output_arrivals
            .iter()
            .find(|(name, _)| name == bus)
            .map(|&(_, t)| t)
    }

    /// Arrival time (τ) of every output bus, in declaration order.
    pub fn output_arrivals(&self) -> &[(String, f64)] {
        &self.output_arrivals
    }

    /// The signals along the critical path, from a primary input to the
    /// latest output.
    pub fn critical_path(&self) -> &[Signal] {
        &self.critical_path
    }

    /// Arrival time (τ) of an individual signal.
    pub fn arrival_tau(&self, s: Signal) -> f64 {
        self.arrivals[s.index()]
    }

    /// Renders the critical path as a human-readable timing report: one
    /// line per stage with the cell kind, incremental delay and cumulative
    /// arrival — the `report_timing` a synthesis flow prints.
    pub fn path_report(&self, netlist: &Netlist) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "critical path of {} ({:.1}τ = {:.3} ns):",
            netlist.name(),
            self.critical_delay_tau(),
            self.critical_delay_ns()
        );
        let mut prev = 0.0f64;
        for s in &self.critical_path {
            let arrival = self.arrivals[s.index()];
            let label = match &netlist.nodes()[s.index()] {
                Node::Input { bus, bit } => {
                    format!("input {}[{}]", netlist.inputs()[*bus as usize].name, bit)
                }
                Node::Cell { kind, .. } => format!("{kind:?}"),
            };
            let _ = writeln!(
                out,
                "  {label:<12} +{:>6.1}  @{:>7.1}",
                arrival - prev,
                arrival
            );
            prev = arrival;
        }
        out
    }
}

/// Times a netlist.
pub fn analyze(netlist: &Netlist) -> TimingReport {
    let n = netlist.nodes().len();
    // Accumulate the capacitive load on every signal.
    let mut load = vec![0.0f64; n];
    for node in netlist.nodes() {
        if let Node::Cell { kind, ins } = node {
            for s in ins.iter().take(kind.arity()) {
                load[s.index()] += kind.pin_cap() + WIRE_CAP;
            }
        }
    }
    for bus in netlist.outputs() {
        for s in &bus.signals {
            load[s.index()] += OUTPUT_PIN_CAP + WIRE_CAP;
        }
    }

    let mut arrival = vec![0.0f64; n];
    let mut pred: Vec<Option<Signal>> = vec![None; n];
    for (i, node) in netlist.nodes().iter().enumerate() {
        match node {
            Node::Input { .. } => {
                // Ideal driver: zero intrinsic delay, pays its load.
                arrival[i] = load[i];
            }
            Node::Cell { kind, ins } => {
                if kind.arity() == 0 {
                    arrival[i] = 0.0; // constants are tie cells
                    continue;
                }
                let mut worst = 0.0f64;
                let mut worst_in = None;
                for s in ins.iter().take(kind.arity()) {
                    let t = arrival[s.index()];
                    if worst_in.is_none() || t > worst {
                        worst = t;
                        worst_in = Some(*s);
                    }
                }
                arrival[i] = worst + kind.parasitic() + load[i];
                pred[i] = worst_in;
            }
        }
    }

    let mut output_arrivals = Vec::new();
    let mut critical_end: Option<Signal> = None;
    let mut critical_delay = 0.0f64;
    for bus in netlist.outputs() {
        let mut bus_worst = 0.0f64;
        for s in &bus.signals {
            let t = arrival[s.index()];
            if t > bus_worst {
                bus_worst = t;
            }
            if critical_end.is_none() || t > critical_delay {
                critical_delay = t;
                critical_end = Some(*s);
            }
        }
        output_arrivals.push((bus.name.clone(), bus_worst));
    }

    let mut critical_path = Vec::new();
    let mut cursor = critical_end;
    while let Some(s) = cursor {
        critical_path.push(s);
        cursor = pred[s.index()];
    }
    critical_path.reverse();

    TimingReport {
        arrivals: arrival,
        critical_path,
        critical_delay,
        output_arrivals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    #[test]
    fn chain_is_slower_than_tree() {
        // 8-input AND as a chain vs a balanced tree.
        let chain = {
            let mut b = NetlistBuilder::new("chain");
            let xs = b.input_bus("x", 8);
            let mut acc = xs[0];
            for &x in &xs[1..] {
                acc = b.and2(acc, x);
            }
            b.output_bit("z", acc);
            b.finish()
        };
        let tree = {
            let mut b = NetlistBuilder::new("tree");
            let xs = b.input_bus("x", 8);
            let z = b.and_many(&xs);
            b.output_bit("z", z);
            b.finish()
        };
        let tc = analyze(&chain).critical_delay_tau();
        let tt = analyze(&tree).critical_delay_tau();
        assert!(tc > tt, "chain {tc} should be slower than tree {tt}");
    }

    #[test]
    fn fanout_increases_delay() {
        // One inverter driving 1 load vs driving 16 loads.
        let light = {
            let mut b = NetlistBuilder::new("light");
            let x = b.input_bit("x");
            let nx = b.inv(x);
            let y = b.input_bit("y");
            let z = b.and2(nx, y);
            b.output_bit("z", z);
            b.finish()
        };
        let heavy = {
            let mut b = NetlistBuilder::new("heavy");
            let x = b.input_bit("x");
            let nx = b.inv(x);
            let ys = b.input_bus("y", 16);
            let zs: Vec<_> = ys.iter().map(|&y| b.and2(nx, y)).collect();
            b.output_bus("z", &zs);
            b.finish()
        };
        let tl = analyze(&light).critical_delay_tau();
        let th = analyze(&heavy).critical_delay_tau();
        assert!(
            th > tl + 10.0,
            "fanout 16 ({th}) must cost well over fanout 1 ({tl})"
        );
    }

    #[test]
    fn critical_path_is_connected_and_ends_at_output() {
        let mut b = NetlistBuilder::new("t");
        let xs = b.input_bus("x", 4);
        let a = b.and2(xs[0], xs[1]);
        let c = b.xor2(a, xs[2]);
        let d = b.or2(c, xs[3]);
        b.output_bit("z", d);
        let n = b.finish();
        let report = analyze(&n);
        let path = report.critical_path();
        assert!(!path.is_empty());
        // Arrivals must be non-decreasing along the path.
        for w in path.windows(2) {
            assert!(report.arrival_tau(w[0]) <= report.arrival_tau(w[1]));
        }
        assert_eq!(
            path.last().unwrap().index(),
            n.output("z").unwrap().signals[0].index()
        );
    }

    #[test]
    fn path_report_lists_every_stage() {
        let mut b = NetlistBuilder::new("report");
        let xs = b.input_bus("x", 4);
        let a = b.and2(xs[0], xs[1]);
        let c = b.xor2(a, xs[2]);
        let d = b.or2(c, xs[3]);
        b.output_bit("z", d);
        let n = b.finish();
        let report = analyze(&n);
        let text = report.path_report(&n);
        assert!(text.contains("critical path of report"));
        // Path: input -> And2 -> Xor2 -> Or2.
        assert!(text.contains("And2"));
        assert!(text.contains("Xor2"));
        assert!(text.contains("Or2"));
        assert_eq!(text.lines().count(), 1 + report.critical_path().len());
    }

    #[test]
    fn ns_conversion_is_linear() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input_bit("x");
        let y = b.input_bit("y");
        let z = b.and2(x, y);
        b.output_bit("z", z);
        let n = b.finish();
        let r = analyze(&n);
        assert!(
            (r.critical_delay_ns() - r.critical_delay_tau() * PS_PER_TAU / 1000.0).abs() < 1e-12
        );
    }
}

use std::collections::HashMap;

use crate::cell::CellKind;
use crate::netlist::{Bus, Netlist, Node, Signal};

/// Incremental netlist constructor with hash-consing and constant folding.
///
/// The builder plays the role of a synthesis tool's front end:
///
/// * structurally identical cells are merged (common-subexpression
///   elimination) — commutative cells are input-normalized first;
/// * constants propagate through every cell kind (`AND(x,0) → 0`,
///   `MUX(d0,d1,1) → d1`, double inverters cancel, …), which is how the
///   paper's "carry truncated to 0" speculation actually shrinks hardware;
/// * [`NetlistBuilder::finish`] sweeps logic not reachable from an output.
///
/// Node creation order is topological by construction, an invariant the
/// simulator and timer rely on.
///
/// # Panics
///
/// Builder methods panic on programmer errors (duplicate bus names, foreign
/// signals); they are infallible otherwise.
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    name: String,
    nodes: Vec<Node>,
    inputs: Vec<Bus>,
    outputs: Vec<Bus>,
    cse: HashMap<(CellKind, [Signal; 4]), Signal>,
    const0: Option<Signal>,
    const1: Option<Signal>,
    /// When false, hash-consing and folding are suspended (used by the
    /// fanout-buffering pass, which needs duplicate `Buf` cells).
    share: bool,
}

impl NetlistBuilder {
    /// Creates a builder for a design called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            nodes: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            cse: HashMap::new(),
            const0: None,
            const1: None,
            share: true,
        }
    }

    /// Disables hash-consing and folding for subsequently created cells.
    /// Only the optimization passes need this.
    pub(crate) fn set_sharing(&mut self, share: bool) {
        self.share = share;
    }

    /// Declares an input bus of `width` bits; returns its signals LSB first.
    ///
    /// # Panics
    ///
    /// Panics if the name is already used or `width == 0`.
    pub fn input_bus(&mut self, name: impl Into<String>, width: usize) -> Vec<Signal> {
        let name = name.into();
        assert!(width > 0, "bus {name:?} must have width >= 1");
        assert!(
            self.inputs.iter().all(|b| b.name != name),
            "input bus {name:?} declared twice"
        );
        let bus_idx = self.inputs.len() as u32;
        let signals: Vec<Signal> = (0..width)
            .map(|bit| {
                self.push(Node::Input {
                    bus: bus_idx,
                    bit: bit as u32,
                })
            })
            .collect();
        self.inputs.push(Bus {
            name,
            signals: signals.clone(),
        });
        signals
    }

    /// Declares a 1-bit input.
    pub fn input_bit(&mut self, name: impl Into<String>) -> Signal {
        self.input_bus(name, 1)[0]
    }

    /// Declares an output bus driven by `signals` (LSB first).
    ///
    /// # Panics
    ///
    /// Panics if the name is already used, `signals` is empty, or a signal
    /// does not belong to this builder.
    pub fn output_bus(&mut self, name: impl Into<String>, signals: &[Signal]) {
        let name = name.into();
        assert!(
            !signals.is_empty(),
            "output bus {name:?} must have width >= 1"
        );
        assert!(
            self.outputs.iter().all(|b| b.name != name),
            "output bus {name:?} declared twice"
        );
        for s in signals {
            assert!(s.index() < self.nodes.len(), "signal from another netlist");
        }
        self.outputs.push(Bus {
            name,
            signals: signals.to_vec(),
        });
    }

    /// Declares a 1-bit output.
    pub fn output_bit(&mut self, name: impl Into<String>, signal: Signal) {
        self.output_bus(name, &[signal]);
    }

    /// The constant-0 signal.
    pub fn const0(&mut self) -> Signal {
        if let Some(s) = self.const0 {
            return s;
        }
        let s = self.push(Node::Cell {
            kind: CellKind::Const0,
            ins: [Signal(0); 4],
        });
        self.const0 = Some(s);
        s
    }

    /// The constant-1 signal.
    pub fn const1(&mut self) -> Signal {
        if let Some(s) = self.const1 {
            return s;
        }
        let s = self.push(Node::Cell {
            kind: CellKind::Const1,
            ins: [Signal(0); 4],
        });
        self.const1 = Some(s);
        s
    }

    /// A constant of the given value.
    pub fn constant(&mut self, value: bool) -> Signal {
        if value {
            self.const1()
        } else {
            self.const0()
        }
    }

    /// Returns the constant value of `s`, if it is a constant node.
    pub fn const_value(&self, s: Signal) -> Option<bool> {
        match self.nodes[s.index()] {
            Node::Cell {
                kind: CellKind::Const0,
                ..
            } => Some(false),
            Node::Cell {
                kind: CellKind::Const1,
                ..
            } => Some(true),
            _ => None,
        }
    }

    /// If `s` is an inverter output, returns its input.
    fn inv_input(&self, s: Signal) -> Option<Signal> {
        match self.nodes[s.index()] {
            Node::Cell {
                kind: CellKind::Inv,
                ins,
            } => Some(ins[0]),
            _ => None,
        }
    }

    fn push(&mut self, node: Node) -> Signal {
        let id = Signal(u32::try_from(self.nodes.len()).expect("netlist too large"));
        self.nodes.push(node);
        id
    }

    /// Instantiates a cell, applying folding and sharing.
    ///
    /// # Panics
    ///
    /// Panics if the number of inputs does not match the cell arity or an
    /// input belongs to another builder.
    pub fn cell(&mut self, kind: CellKind, inputs: &[Signal]) -> Signal {
        assert_eq!(
            inputs.len(),
            kind.arity(),
            "{kind:?} needs {} inputs",
            kind.arity()
        );
        for s in inputs {
            assert!(s.index() < self.nodes.len(), "signal from another netlist");
        }
        let mut ins = [Signal(0); 4];
        ins[..inputs.len()].copy_from_slice(inputs);

        if self.share {
            if let Some(folded) = self.fold(kind, &ins) {
                return folded;
            }
            // Normalize commutative inputs for better sharing.
            let mut key = ins;
            match kind {
                CellKind::And2
                | CellKind::Or2
                | CellKind::Nand2
                | CellKind::Nor2
                | CellKind::Xor2
                | CellKind::Xnor2 => key[..2].sort(),
                CellKind::Maj3 => key[..3].sort(),
                CellKind::And4 | CellKind::Or4 | CellKind::Nand4 | CellKind::Nor4 => {
                    key[..4].sort()
                }
                _ => {}
            }
            if let Some(&existing) = self.cse.get(&(kind, key)) {
                return existing;
            }
            let s = self.push(Node::Cell { kind, ins: key });
            self.cse.insert((kind, key), s);
            s
        } else {
            self.push(Node::Cell { kind, ins })
        }
    }

    /// Constant folding and local simplification. Returns the replacement
    /// signal if the cell can be elided.
    fn fold(&mut self, kind: CellKind, ins: &[Signal; 4]) -> Option<Signal> {
        use CellKind::*;
        let c = |b: &Self, s: Signal| b.const_value(s);
        let (a, b2, c3) = (ins[0], ins[1], ins[2]);
        match kind {
            Const0 | Const1 => None,
            And4 | Or4 | Nand4 | Nor4 => {
                // Wide gates fold only in the presence of constants or
                // duplicates, by lowering to the 2-input network (which
                // folds recursively).
                let is_and = matches!(kind, And4 | Nand4);
                let invert = matches!(kind, Nand4 | Nor4);
                let has_const = ins.iter().any(|&s| c(self, s).is_some());
                let mut unique = ins.to_vec();
                unique.sort();
                unique.dedup();
                if !has_const && unique.len() == 4 {
                    return None;
                }
                let mut acc: Option<Signal> = None;
                for &s in ins.iter() {
                    acc = Some(match acc {
                        None => s,
                        Some(prev) => {
                            if is_and {
                                self.and2(prev, s)
                            } else {
                                self.or2(prev, s)
                            }
                        }
                    });
                }
                let out = acc.expect("four inputs");
                Some(if invert { self.inv(out) } else { out })
            }
            Buf => Some(a),
            Inv => {
                if let Some(v) = c(self, a) {
                    return Some(self.constant(!v));
                }
                self.inv_input(a)
            }
            And2 | Nand2 => {
                let invert = kind == Nand2;
                let out = |builder: &mut Self, s: Signal| {
                    if invert {
                        Some(builder.inv(s))
                    } else {
                        Some(s)
                    }
                };
                match (c(self, a), c(self, b2)) {
                    (Some(false), _) | (_, Some(false)) => {
                        let z = self.constant(invert);
                        Some(z)
                    }
                    (Some(true), _) => out(self, b2),
                    (_, Some(true)) => out(self, a),
                    _ if a == b2 => out(self, a),
                    _ if self.inv_input(a) == Some(b2) || self.inv_input(b2) == Some(a) => {
                        let z = self.constant(invert);
                        Some(z)
                    }
                    _ => None,
                }
            }
            Or2 | Nor2 => {
                let invert = kind == Nor2;
                let out = |builder: &mut Self, s: Signal| {
                    if invert {
                        Some(builder.inv(s))
                    } else {
                        Some(s)
                    }
                };
                match (c(self, a), c(self, b2)) {
                    (Some(true), _) | (_, Some(true)) => {
                        let z = self.constant(!invert);
                        Some(z)
                    }
                    (Some(false), _) => out(self, b2),
                    (_, Some(false)) => out(self, a),
                    _ if a == b2 => out(self, a),
                    _ if self.inv_input(a) == Some(b2) || self.inv_input(b2) == Some(a) => {
                        let z = self.constant(!invert);
                        Some(z)
                    }
                    _ => None,
                }
            }
            Xor2 | Xnor2 => {
                let invert = kind == Xnor2;
                let out = |builder: &mut Self, s: Signal, inv: bool| {
                    if inv != invert {
                        Some(builder.inv(s))
                    } else {
                        Some(s)
                    }
                };
                match (c(self, a), c(self, b2)) {
                    (Some(va), Some(vb)) => Some(self.constant((va ^ vb) != invert)),
                    (Some(va), None) => out(self, b2, va),
                    (None, Some(vb)) => out(self, a, vb),
                    _ if a == b2 => Some(self.constant(invert)),
                    _ if self.inv_input(a) == Some(b2) || self.inv_input(b2) == Some(a) => {
                        Some(self.constant(!invert))
                    }
                    _ => None,
                }
            }
            Mux2 => {
                // ins = [d0, d1, sel]
                match c(self, c3) {
                    Some(false) => return Some(a),
                    Some(true) => return Some(b2),
                    None => {}
                }
                if a == b2 {
                    return Some(a);
                }
                match (c(self, a), c(self, b2)) {
                    (Some(false), Some(true)) => Some(c3),
                    (Some(true), Some(false)) => Some(self.inv(c3)),
                    (Some(false), None) => Some(self.and2(b2, c3)),
                    (None, Some(true)) => Some(self.or2(a, c3)),
                    (Some(true), None) => {
                        let ns = self.inv(c3);
                        Some(self.or2(b2, ns))
                    }
                    (None, Some(false)) => {
                        let ns = self.inv(c3);
                        Some(self.and2(a, ns))
                    }
                    _ => None,
                }
            }
            Aoi21 => {
                // !((a & b) | c)
                match c(self, c3) {
                    Some(true) => return Some(self.const0()),
                    Some(false) => return Some(self.nand2(a, b2)),
                    None => {}
                }
                match (c(self, a), c(self, b2)) {
                    (Some(false), _) | (_, Some(false)) => Some(self.inv(c3)),
                    (Some(true), _) => Some(self.nor2(b2, c3)),
                    (_, Some(true)) => Some(self.nor2(a, c3)),
                    _ => None,
                }
            }
            Oai21 => {
                // !((a | b) & c)
                match c(self, c3) {
                    Some(false) => return Some(self.const1()),
                    Some(true) => return Some(self.nor2(a, b2)),
                    None => {}
                }
                match (c(self, a), c(self, b2)) {
                    (Some(true), _) | (_, Some(true)) => Some(self.inv(c3)),
                    (Some(false), _) => Some(self.nand2(b2, c3)),
                    (_, Some(false)) => Some(self.nand2(a, c3)),
                    _ => None,
                }
            }
            Maj3 => {
                let consts = [c(self, a), c(self, b2), c(self, c3)];
                let sigs = [a, b2, c3];
                // A constant input reduces majority to AND/OR of the others.
                for i in 0..3 {
                    if let Some(v) = consts[i] {
                        let x = sigs[(i + 1) % 3];
                        let y = sigs[(i + 2) % 3];
                        return Some(if v { self.or2(x, y) } else { self.and2(x, y) });
                    }
                }
                // A repeated input dominates the vote.
                if a == b2 || a == c3 {
                    return Some(a);
                }
                if b2 == c3 {
                    return Some(b2);
                }
                None
            }
        }
    }

    /// Buffer (identity; folded away unless sharing is disabled).
    pub fn buf(&mut self, a: Signal) -> Signal {
        self.cell(CellKind::Buf, &[a])
    }

    /// An *isolation buffer*: a real `Buf` cell instantiated even under
    /// sharing (never folded, never merged with other buffers of `a`).
    ///
    /// Use it to decouple a timing-critical consumer from heavy side loads
    /// (e.g. a recovery stage tapping speculative signals), exactly as a
    /// synthesis tool isolates critical paths.
    pub fn isolation_buf(&mut self, a: Signal) -> Signal {
        assert!(a.index() < self.nodes.len(), "signal from another netlist");
        self.push(Node::Cell {
            kind: CellKind::Buf,
            ins: [a, Signal(0), Signal(0), Signal(0)],
        })
    }

    /// Inverter.
    pub fn inv(&mut self, a: Signal) -> Signal {
        self.cell(CellKind::Inv, &[a])
    }

    /// 2-input AND.
    pub fn and2(&mut self, a: Signal, b: Signal) -> Signal {
        self.cell(CellKind::And2, &[a, b])
    }

    /// 2-input OR.
    pub fn or2(&mut self, a: Signal, b: Signal) -> Signal {
        self.cell(CellKind::Or2, &[a, b])
    }

    /// 2-input NAND.
    pub fn nand2(&mut self, a: Signal, b: Signal) -> Signal {
        self.cell(CellKind::Nand2, &[a, b])
    }

    /// 2-input NOR.
    pub fn nor2(&mut self, a: Signal, b: Signal) -> Signal {
        self.cell(CellKind::Nor2, &[a, b])
    }

    /// 2-input XOR.
    pub fn xor2(&mut self, a: Signal, b: Signal) -> Signal {
        self.cell(CellKind::Xor2, &[a, b])
    }

    /// 2-input XNOR.
    pub fn xnor2(&mut self, a: Signal, b: Signal) -> Signal {
        self.cell(CellKind::Xnor2, &[a, b])
    }

    /// 2:1 multiplexer: `sel ? d1 : d0`.
    pub fn mux2(&mut self, d0: Signal, d1: Signal, sel: Signal) -> Signal {
        self.cell(CellKind::Mux2, &[d0, d1, sel])
    }

    /// AND-OR-invert: `!((a & b) | c)`.
    pub fn aoi21(&mut self, a: Signal, b: Signal, c: Signal) -> Signal {
        self.cell(CellKind::Aoi21, &[a, b, c])
    }

    /// OR-AND-invert: `!((a | b) & c)`.
    pub fn oai21(&mut self, a: Signal, b: Signal, c: Signal) -> Signal {
        self.cell(CellKind::Oai21, &[a, b, c])
    }

    /// 3-input majority (a full-adder carry).
    pub fn maj3(&mut self, a: Signal, b: Signal, c: Signal) -> Signal {
        self.cell(CellKind::Maj3, &[a, b, c])
    }

    /// 4-input AND.
    pub fn and4(&mut self, a: Signal, b: Signal, c: Signal, d: Signal) -> Signal {
        self.cell(CellKind::And4, &[a, b, c, d])
    }

    /// 4-input OR.
    pub fn or4(&mut self, a: Signal, b: Signal, c: Signal, d: Signal) -> Signal {
        self.cell(CellKind::Or4, &[a, b, c, d])
    }

    /// 4-input NAND.
    pub fn nand4(&mut self, a: Signal, b: Signal, c: Signal, d: Signal) -> Signal {
        self.cell(CellKind::Nand4, &[a, b, c, d])
    }

    /// 4-input NOR.
    pub fn nor4(&mut self, a: Signal, b: Signal, c: Signal, d: Signal) -> Signal {
        self.cell(CellKind::Nor4, &[a, b, c, d])
    }

    /// Balanced AND over any number of signals (1 for the empty set).
    pub fn and_many(&mut self, signals: &[Signal]) -> Signal {
        self.reduce_balanced(signals, true)
    }

    /// Balanced OR over any number of signals (0 for the empty set).
    pub fn or_many(&mut self, signals: &[Signal]) -> Signal {
        self.reduce_balanced(signals, false)
    }

    fn reduce_balanced(&mut self, signals: &[Signal], is_and: bool) -> Signal {
        match signals.len() {
            0 => self.constant(is_and),
            1 => signals[0],
            _ => {
                let mid = signals.len() / 2;
                let lo = self.reduce_balanced(&signals[..mid], is_and);
                let hi = self.reduce_balanced(&signals[mid..], is_and);
                if is_and {
                    self.and2(lo, hi)
                } else {
                    self.or2(lo, hi)
                }
            }
        }
    }

    /// Fast wide OR: alternating NOR4/NAND4 levels (the mapping a
    /// delay-driven synthesis run produces for a single-bit reduction cone,
    /// e.g. an error-detection flag). Roughly half the depth of the binary
    /// tree from [`NetlistBuilder::or_many`].
    pub fn or_many_wide(&mut self, signals: &[Signal]) -> Signal {
        self.reduce_wide(signals, false)
    }

    /// Fast wide AND: alternating NAND4/NOR4 levels.
    pub fn and_many_wide(&mut self, signals: &[Signal]) -> Signal {
        self.reduce_wide(signals, true)
    }

    /// Alternating inverting 4-ary reduction. `is_and` selects AND
    /// semantics. Polarity is tracked per level: positive levels use
    /// NOR4/NAND4 producing complemented partials, which the next level's
    /// dual gate re-absorbs (De Morgan).
    fn reduce_wide(&mut self, signals: &[Signal], is_and: bool) -> Signal {
        if signals.is_empty() {
            return self.constant(is_and);
        }
        let mut level: Vec<Signal> = signals.to_vec();
        // `inverted` tracks whether `level` currently holds complements.
        let mut inverted = false;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(4));
            // Positive AND level → NAND4; positive OR level → NOR4.
            // Inverted AND level (holding complements) → NOR4 (De Morgan);
            // inverted OR level → NAND4.
            let use_nand = is_and != inverted;
            for chunk in level.chunks(4) {
                let out = match (chunk.len(), use_nand) {
                    (4, true) => self.nand4(chunk[0], chunk[1], chunk[2], chunk[3]),
                    (4, false) => self.nor4(chunk[0], chunk[1], chunk[2], chunk[3]),
                    (3, true) => {
                        let t = self.and2(chunk[0], chunk[1]);
                        self.nand2(t, chunk[2])
                    }
                    (3, false) => {
                        let t = self.or2(chunk[0], chunk[1]);
                        self.nor2(t, chunk[2])
                    }
                    (2, true) => self.nand2(chunk[0], chunk[1]),
                    (2, false) => self.nor2(chunk[0], chunk[1]),
                    (_, _) => self.inv(chunk[0]),
                };
                next.push(out);
            }
            level = next;
            inverted = !inverted;
        }
        let out = level[0];
        if inverted {
            self.inv(out)
        } else {
            out
        }
    }

    /// Selects between two equal-width buses: `sel ? d1 : d0`, bitwise.
    ///
    /// # Panics
    ///
    /// Panics if the bus widths differ.
    pub fn mux_bus(&mut self, d0: &[Signal], d1: &[Signal], sel: Signal) -> Vec<Signal> {
        assert_eq!(d0.len(), d1.len(), "mux bus width mismatch");
        d0.iter()
            .zip(d1)
            .map(|(&x, &y)| self.mux2(x, y, sel))
            .collect()
    }

    /// Number of nodes created so far (including inputs and constants).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The cell kind producing `s`, if it is a cell (test/debug helper).
    pub fn clone_node_kind(&self, s: Signal) -> Option<CellKind> {
        match self.nodes.get(s.index()) {
            Some(Node::Cell { kind, .. }) => Some(*kind),
            _ => None,
        }
    }

    /// Finalizes the netlist: sweeps nodes not reachable from any output
    /// (dead-code elimination) while keeping every declared input bit.
    ///
    /// # Panics
    ///
    /// Panics if no output bus was declared.
    pub fn finish(self) -> Netlist {
        assert!(
            !self.outputs.is_empty(),
            "netlist {:?} has no outputs",
            self.name
        );
        let mut live = vec![false; self.nodes.len()];
        // Inputs are part of the interface; keep them all.
        for bus in &self.inputs {
            for s in &bus.signals {
                live[s.index()] = true;
            }
        }
        let mut stack: Vec<usize> = self
            .outputs
            .iter()
            .flat_map(|b| b.signals.iter().map(|s| s.index()))
            .collect();
        while let Some(i) = stack.pop() {
            if live[i] {
                continue;
            }
            live[i] = true;
            if let Node::Cell { kind, ins } = &self.nodes[i] {
                for s in ins.iter().take(kind.arity()) {
                    if !live[s.index()] {
                        stack.push(s.index());
                    }
                }
            }
        }
        // Mark cell inputs of live output nodes too (outputs pushed first
        // may have been marked live before their inputs were queued).
        // A second forward fix-up pass is unnecessary because the stack walk
        // above already visits all transitive inputs; but inputs of nodes
        // marked live prior to the walk (input buses) have no inputs.

        let mut remap = vec![Signal(0); self.nodes.len()];
        let mut nodes = Vec::with_capacity(self.nodes.len());
        for (i, node) in self.nodes.into_iter().enumerate() {
            if !live[i] {
                continue;
            }
            let new_node = match node {
                Node::Input { .. } => node,
                Node::Cell { kind, mut ins } => {
                    for s in ins.iter_mut().take(kind.arity()) {
                        *s = remap[s.index()];
                    }
                    Node::Cell { kind, ins }
                }
            };
            remap[i] = Signal(nodes.len() as u32);
            nodes.push(new_node);
        }
        let map_bus = |bus: Bus| Bus {
            name: bus.name,
            signals: bus.signals.iter().map(|s| remap[s.index()]).collect(),
        };
        Netlist {
            name: self.name,
            nodes,
            inputs: self.inputs.into_iter().map(map_bus).collect(),
            outputs: self.outputs.into_iter().map(map_bus).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding_and() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input_bit("x");
        let zero = b.const0();
        let one = b.const1();
        assert_eq!(b.and2(x, zero), zero);
        assert_eq!(b.and2(x, one), x);
        assert_eq!(b.and2(x, x), x);
        let nx = b.inv(x);
        assert_eq!(b.and2(x, nx), zero);
        assert_eq!(b.or2(x, nx), one);
        assert_eq!(b.xor2(x, nx), one);
    }

    #[test]
    fn double_inverter_cancels() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input_bit("x");
        let nx = b.inv(x);
        assert_eq!(b.inv(nx), x);
    }

    #[test]
    fn mux_folds() {
        let mut b = NetlistBuilder::new("t");
        let d0 = b.input_bit("d0");
        let d1 = b.input_bit("d1");
        let s = b.input_bit("s");
        let zero = b.const0();
        let one = b.const1();
        assert_eq!(b.mux2(d0, d1, zero), d0);
        assert_eq!(b.mux2(d0, d1, one), d1);
        assert_eq!(b.mux2(d0, d0, s), d0);
        assert_eq!(b.mux2(zero, one, s), s);
    }

    #[test]
    fn cse_shares_commutative() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input_bit("x");
        let y = b.input_bit("y");
        let g1 = b.and2(x, y);
        let g2 = b.and2(y, x);
        assert_eq!(g1, g2);
        let g3 = b.xor2(x, y);
        assert_ne!(g1, g3);
    }

    #[test]
    fn maj_folds() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input_bit("x");
        let y = b.input_bit("y");
        let zero = b.const0();
        let one = b.const1();
        let m0 = b.maj3(x, y, zero);
        let expect_and = b.and2(x, y);
        assert_eq!(m0, expect_and);
        let m1 = b.maj3(x, one, y);
        let expect_or = b.or2(x, y);
        assert_eq!(m1, expect_or);
        assert_eq!(b.maj3(x, y, x), x);
    }

    #[test]
    fn finish_sweeps_dead_logic() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input_bit("x");
        let y = b.input_bit("y");
        let used = b.and2(x, y);
        let _dead = b.xor2(x, y);
        b.output_bit("z", used);
        let n = b.finish();
        // input x, input y, and2 — the xor is gone.
        assert_eq!(n.nodes().len(), 3);
        assert_eq!(n.cell_count(), 1);
    }

    #[test]
    fn and_or_many_balanced() {
        let mut b = NetlistBuilder::new("t");
        let xs = b.input_bus("x", 9);
        let a = b.and_many(&xs);
        b.output_bit("a", a);
        let n = b.finish();
        // Depth of a balanced 9-input tree is 4.
        assert_eq!(n.depth(), 4);
    }

    #[test]
    #[should_panic(expected = "declared twice")]
    fn duplicate_bus_panics() {
        let mut b = NetlistBuilder::new("t");
        b.input_bus("x", 2);
        b.input_bus("x", 3);
    }

    #[test]
    fn wide_reduction_matches_binary_for_all_sizes() {
        use crate::{equiv, Netlist};
        let build = |width: usize, wide: bool, is_and: bool| -> Netlist {
            let mut b = NetlistBuilder::new("t");
            let xs = b.input_bus("x", width);
            let z = match (wide, is_and) {
                (true, true) => b.and_many_wide(&xs),
                (true, false) => b.or_many_wide(&xs),
                (false, true) => b.and_many(&xs),
                (false, false) => b.or_many(&xs),
            };
            b.output_bit("z", z);
            b.finish()
        };
        for width in 1..=14 {
            for is_and in [false, true] {
                let wide = build(width, true, is_and);
                let bin = build(width, false, is_and);
                assert_eq!(
                    equiv::check(&wide, &bin, 0, 0).unwrap(),
                    None,
                    "width {width} and={is_and}"
                );
            }
        }
    }

    #[test]
    fn wide_reduction_is_shallower() {
        let mut b = NetlistBuilder::new("t");
        let xs = b.input_bus("x", 32);
        let wide = b.or_many_wide(&xs);
        b.output_bit("z", wide);
        let n_wide = b.finish();
        let mut b = NetlistBuilder::new("t");
        let xs = b.input_bus("x", 32);
        let bin = b.or_many(&xs);
        b.output_bit("z", bin);
        let n_bin = b.finish();
        assert!(
            n_wide.depth() < n_bin.depth(),
            "{} vs {}",
            n_wide.depth(),
            n_bin.depth()
        );
    }

    #[test]
    fn wide_gate_constant_folding_lowers() {
        let mut b = NetlistBuilder::new("t");
        let xs = b.input_bus("x", 3);
        let one = b.const1();
        let zero = b.const0();
        let a4 = b.and4(xs[0], xs[1], xs[2], one);
        // Folded to a 2-input network, not an And4 cell.
        assert!(!matches!(b.clone_node_kind(a4), Some(CellKind::And4)));
        let z = b.or4(xs[0], zero, xs[1], xs[2]);
        assert!(!matches!(b.clone_node_kind(z), Some(CellKind::Or4)));
        let dead = b.nand4(xs[0], xs[0], xs[1], xs[2]); // duplicate input
        assert!(!matches!(b.clone_node_kind(dead), Some(CellKind::Nand4)));
    }
}

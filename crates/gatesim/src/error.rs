use std::error::Error;
use std::fmt;

/// Errors produced by netlist construction, simulation and checking.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GateError {
    /// A referenced bus name does not exist in the netlist.
    UnknownBus(String),
    /// A bus was declared twice.
    DuplicateBus(String),
    /// A supplied stimulus has the wrong number of bits for its bus.
    WidthMismatch {
        /// Bus name.
        bus: String,
        /// Width declared in the netlist.
        expected: usize,
        /// Width supplied by the caller.
        got: usize,
    },
    /// Two netlists cannot be compared (different interfaces).
    InterfaceMismatch(String),
}

impl fmt::Display for GateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateError::UnknownBus(name) => write!(f, "unknown bus {name:?}"),
            GateError::DuplicateBus(name) => write!(f, "bus {name:?} declared twice"),
            GateError::WidthMismatch { bus, expected, got } => {
                write!(f, "bus {bus:?} expects {expected} bits, got {got}")
            }
            GateError::InterfaceMismatch(msg) => write!(f, "interface mismatch: {msg}"),
        }
    }
}

impl Error for GateError {}

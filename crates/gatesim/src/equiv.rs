//! Combinational equivalence checking.
//!
//! Two netlists with the same interface (input and output buses matched by
//! name and width) are compared by simulation: exhaustively when the total
//! input width is small, otherwise with lane-parallel random vectors. This
//! is the workhorse check used throughout the workspace to validate adder
//! netlists against each other and against behavioral models.

use bitnum::rng::{RandomBits, Xoshiro256};
use bitnum::UBig;

use crate::error::GateError;
use crate::netlist::Netlist;
use crate::sim;

/// Exhaustive checking is used when the total input bit count is at most
/// this many bits.
pub const EXHAUSTIVE_LIMIT: usize = 16;

/// A concrete input assignment on which two netlists disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// Input assignment, one value per bus.
    pub inputs: Vec<(String, UBig)>,
    /// Name of a disagreeing output bus.
    pub output: String,
    /// Value produced by the first netlist.
    pub lhs: UBig,
    /// Value produced by the second netlist.
    pub rhs: UBig,
}

/// Checks equivalence of `a` and `b`.
///
/// Runs exhaustively if the joint input width is at most
/// [`EXHAUSTIVE_LIMIT`] bits; otherwise simulates at least `random_vectors`
/// random assignments (rounded up to multiples of 64), seeded with `seed`.
///
/// Returns `Ok(None)` when no difference was found, or the first
/// counterexample.
///
/// # Errors
///
/// Returns [`GateError::InterfaceMismatch`] if the designs do not have the
/// same buses.
pub fn check(
    a: &Netlist,
    b: &Netlist,
    random_vectors: usize,
    seed: u64,
) -> Result<Option<Counterexample>, GateError> {
    check_interfaces(a, b)?;
    let total_bits: usize = a.inputs().iter().map(|bus| bus.signals.len()).sum();
    if total_bits <= EXHAUSTIVE_LIMIT {
        exhaustive(a, b, total_bits)
    } else {
        random(a, b, random_vectors, seed)
    }
}

fn check_interfaces(a: &Netlist, b: &Netlist) -> Result<(), GateError> {
    for bus in a.inputs() {
        match b.input(&bus.name) {
            Some(other) if other.signals.len() == bus.signals.len() => {}
            _ => {
                return Err(GateError::InterfaceMismatch(format!(
                    "input bus {:?} missing or width-mismatched",
                    bus.name
                )))
            }
        }
    }
    if a.inputs().len() != b.inputs().len() {
        return Err(GateError::InterfaceMismatch(
            "different input bus counts".into(),
        ));
    }
    for bus in a.outputs() {
        match b.output(&bus.name) {
            Some(other) if other.signals.len() == bus.signals.len() => {}
            _ => {
                return Err(GateError::InterfaceMismatch(format!(
                    "output bus {:?} missing or width-mismatched",
                    bus.name
                )))
            }
        }
    }
    if a.outputs().len() != b.outputs().len() {
        return Err(GateError::InterfaceMismatch(
            "different output bus counts".into(),
        ));
    }
    Ok(())
}

/// Runs one batch of 64 lane-parallel vectors and extracts a counterexample
/// if any lane disagrees.
fn run_batch(
    a: &Netlist,
    b: &Netlist,
    stimuli: &[(String, Vec<u64>)],
    lanes: usize,
) -> Result<Option<Counterexample>, GateError> {
    let borrowed: Vec<(&str, &[u64])> = stimuli
        .iter()
        .map(|(n, w)| (n.as_str(), w.as_slice()))
        .collect();
    let out_a = sim::simulate(a, &borrowed)?;
    let out_b = sim::simulate(b, &borrowed)?;
    for bus in a.outputs() {
        let wa = &out_a[&bus.name];
        let wb = &out_b[&bus.name];
        let mut diff_lanes = 0u64;
        for (x, y) in wa.iter().zip(wb) {
            diff_lanes |= x ^ y;
        }
        let lane_mask = if lanes == 64 {
            u64::MAX
        } else {
            (1u64 << lanes) - 1
        };
        diff_lanes &= lane_mask;
        if diff_lanes != 0 {
            let lane = diff_lanes.trailing_zeros() as usize;
            let extract = |words: &[u64]| {
                let mut v = UBig::zero(words.len());
                for (i, w) in words.iter().enumerate() {
                    if (w >> lane) & 1 == 1 {
                        v.set_bit(i, true);
                    }
                }
                v
            };
            let inputs = stimuli
                .iter()
                .map(|(name, words)| (name.clone(), extract(words)))
                .collect();
            return Ok(Some(Counterexample {
                inputs,
                output: bus.name.clone(),
                lhs: extract(wa),
                rhs: extract(wb),
            }));
        }
    }
    Ok(None)
}

fn exhaustive(
    a: &Netlist,
    b: &Netlist,
    total_bits: usize,
) -> Result<Option<Counterexample>, GateError> {
    let total: u64 = 1u64 << total_bits;
    let mut assignment = 0u64;
    while assignment < total {
        let lanes = (total - assignment).min(64) as usize;
        // Bit j of bus-concatenated input for lane l is taken from the
        // integer (assignment + l).
        let mut stimuli: Vec<(String, Vec<u64>)> = Vec::new();
        let mut bit_base = 0usize;
        for bus in a.inputs() {
            let mut words = vec![0u64; bus.signals.len()];
            for l in 0..lanes {
                let value = assignment + l as u64;
                for (j, w) in words.iter_mut().enumerate() {
                    if (value >> (bit_base + j)) & 1 == 1 {
                        *w |= 1u64 << l;
                    }
                }
            }
            bit_base += bus.signals.len();
            stimuli.push((bus.name.clone(), words));
        }
        if let Some(cex) = run_batch(a, b, &stimuli, lanes)? {
            return Ok(Some(cex));
        }
        assignment += lanes as u64;
    }
    Ok(None)
}

fn random(
    a: &Netlist,
    b: &Netlist,
    vectors: usize,
    seed: u64,
) -> Result<Option<Counterexample>, GateError> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let batches = vectors.div_ceil(64).max(1);
    for _ in 0..batches {
        let stimuli: Vec<(String, Vec<u64>)> = a
            .inputs()
            .iter()
            .map(|bus| {
                (
                    bus.name.clone(),
                    (0..bus.signals.len()).map(|_| rng.next_u64()).collect(),
                )
            })
            .collect();
        if let Some(cex) = run_batch(a, b, &stimuli, 64)? {
            return Ok(Some(cex));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    fn make(f: impl Fn(&mut NetlistBuilder, Signal, Signal) -> Signal) -> Netlist {
        let mut b = NetlistBuilder::new("t");
        let x = b.input_bit("x");
        let y = b.input_bit("y");
        let z = f(&mut b, x, y);
        b.output_bit("z", z);
        b.finish()
    }
    use crate::netlist::Signal;

    #[test]
    fn demorgan_equivalence() {
        // !(x & y) == !x | !y
        let lhs = make(|b, x, y| b.nand2(x, y));
        let rhs = make(|b, x, y| {
            let nx = b.inv(x);
            let ny = b.inv(y);
            b.or2(nx, ny)
        });
        assert_eq!(check(&lhs, &rhs, 64, 0).unwrap(), None);
    }

    #[test]
    fn finds_counterexample_exhaustively() {
        let lhs = make(|b, x, y| b.and2(x, y));
        let rhs = make(|b, x, y| b.or2(x, y));
        let cex = check(&lhs, &rhs, 64, 0).unwrap().expect("must differ");
        // AND and OR differ exactly when x != y.
        let x = &cex.inputs.iter().find(|(n, _)| n == "x").unwrap().1;
        let y = &cex.inputs.iter().find(|(n, _)| n == "y").unwrap().1;
        assert_ne!(x, y);
        assert_ne!(cex.lhs, cex.rhs);
    }

    #[test]
    fn wide_designs_use_random_vectors() {
        // 2x 32-bit inputs: beyond exhaustive limit.
        let wide = |flip: bool| {
            let mut b = NetlistBuilder::new("w");
            let xs = b.input_bus("x", 32);
            let ys = b.input_bus("y", 32);
            let mut outs = Vec::new();
            for i in 0..32 {
                let z = if flip && i == 17 {
                    b.xnor2(xs[i], ys[i])
                } else {
                    b.xor2(xs[i], ys[i])
                };
                outs.push(z);
            }
            b.output_bus("z", &outs);
            b.finish()
        };
        assert_eq!(check(&wide(false), &wide(false), 256, 7).unwrap(), None);
        let cex = check(&wide(false), &wide(true), 256, 7)
            .unwrap()
            .expect("bit 17 differs");
        assert_eq!(cex.output, "z");
    }

    #[test]
    fn interface_mismatch_detected() {
        let lhs = make(|b, x, y| b.and2(x, y));
        let mut b = NetlistBuilder::new("other");
        let x = b.input_bit("x");
        b.output_bit("z", x);
        let rhs = b.finish();
        assert!(matches!(
            check(&lhs, &rhs, 64, 0),
            Err(GateError::InterfaceMismatch(_))
        ));
    }
}

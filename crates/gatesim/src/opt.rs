//! Netlist optimization passes.
//!
//! Passes are implemented as rebuilds: the netlist is re-emitted through a
//! fresh [`NetlistBuilder`], which re-applies hash-consing, constant folding
//! and dead-cone sweeping. This keeps the topological-order invariant intact
//! and makes every pass trivially composable.
//!
//! * [`sweep`] — CSE + constant folding + dead-logic removal.
//! * [`buffer_fanout`] — splits signals whose fanout exceeds a limit with a
//!   buffer tree (classic high-fanout-net synthesis fix; this is what lets
//!   the DesignWare-substitute baseline shed the fanout penalty of wide
//!   prefix networks).
//! * [`best_buffered`] — tries several fanout limits and keeps the variant
//!   with the lowest critical-path delay (ties broken by area), emulating a
//!   delay-driven synthesis sweep.

use crate::netlist::{Netlist, Node, Signal};
use crate::{area, sta, NetlistBuilder};

/// Re-emits the netlist through a fresh builder, applying sharing, folding
/// and dead-logic sweeping.
pub fn sweep(netlist: &Netlist) -> Netlist {
    rebuild(netlist, u32::MAX)
}

/// Inserts buffer trees on every signal whose fanout exceeds `max_fanout`.
///
/// # Panics
///
/// Panics if `max_fanout < 2`.
pub fn buffer_fanout(netlist: &Netlist, max_fanout: u32) -> Netlist {
    assert!(max_fanout >= 2, "max_fanout must be at least 2");
    rebuild(netlist, max_fanout)
}

/// Applies [`sweep`] and then tries `buffer_fanout` at each of the given
/// limits, returning the variant with the lowest critical-path delay
/// (area breaks ties). The unbuffered design competes too.
pub fn best_buffered(netlist: &Netlist, limits: &[u32]) -> Netlist {
    let base = sweep(netlist);
    let mut best_cost = cost(&base);
    let mut best = base.clone();
    for &limit in limits {
        let candidate = buffer_fanout(&base, limit);
        let c = cost(&candidate);
        if c < best_cost {
            best_cost = c;
            best = candidate;
        }
    }
    best
}

fn cost(netlist: &Netlist) -> (f64, f64) {
    (
        sta::analyze(netlist).critical_delay_tau(),
        area::analyze(netlist).total_nand2(),
    )
}

/// Shared rebuild engine. `max_fanout == u32::MAX` means "no buffering".
fn rebuild(netlist: &Netlist, max_fanout: u32) -> Netlist {
    let mut b = NetlistBuilder::new(netlist.name().to_string());

    // Fanout of the *source* netlist (cell pins + output pins) so we know
    // how many replicas each signal needs.
    let fanouts = netlist.fanouts();

    // Replicas of each source signal in the new netlist, with a rotating
    // cursor distributing consumers across them.
    struct Replicated {
        copies: Vec<Signal>,
        cursor: usize,
    }
    impl Replicated {
        fn next(&mut self) -> Signal {
            let s = self.copies[self.cursor];
            self.cursor = (self.cursor + 1) % self.copies.len();
            s
        }
    }
    let mut map: Vec<Option<Replicated>> = Vec::with_capacity(netlist.nodes().len());
    map.resize_with(netlist.nodes().len(), || None);

    // Declare all input buses first so their signals exist.
    let mut input_signals: Vec<Vec<Signal>> = Vec::new();
    for bus in netlist.inputs() {
        input_signals.push(b.input_bus(bus.name.clone(), bus.signals.len()));
    }

    // Builds the replica set for a newly created signal.
    fn replicate(b: &mut NetlistBuilder, src: Signal, fanout: u32, max_fanout: u32) -> Vec<Signal> {
        if fanout <= max_fanout {
            return vec![src];
        }
        let leaves = fanout.div_ceil(max_fanout);
        grow(b, src, leaves as usize, max_fanout as usize)
    }
    fn grow(b: &mut NetlistBuilder, src: Signal, count: usize, max: usize) -> Vec<Signal> {
        if count <= 1 {
            return vec![src];
        }
        let parents = grow(b, src, count.div_ceil(max), max);
        let mut out = Vec::with_capacity(count);
        b.set_sharing(false);
        'outer: for p in parents {
            for _ in 0..max {
                if out.len() == count {
                    break 'outer;
                }
                out.push(b.buf(p));
            }
        }
        b.set_sharing(true);
        out
    }

    for (i, node) in netlist.nodes().iter().enumerate() {
        let new_sig = match node {
            Node::Input { bus, bit } => input_signals[*bus as usize][*bit as usize],
            Node::Cell { kind, ins } => {
                let mapped: Vec<Signal> = ins
                    .iter()
                    .take(kind.arity())
                    .map(|s| {
                        map[s.index()]
                            .as_mut()
                            .expect("topological order violated")
                            .next()
                    })
                    .collect();
                b.cell(*kind, &mapped)
            }
        };
        let copies = replicate(&mut b, new_sig, fanouts[i], max_fanout);
        map[i] = Some(Replicated { copies, cursor: 0 });
    }

    for bus in netlist.outputs() {
        let signals: Vec<Signal> = bus
            .signals
            .iter()
            .map(|s| map[s.index()].as_mut().expect("dangling output").next())
            .collect();
        b.output_bus(bus.name.clone(), &signals);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{equiv, sta, NetlistBuilder};

    fn high_fanout_design() -> Netlist {
        // One XOR result drives 40 AND gates.
        let mut b = NetlistBuilder::new("hot");
        let x = b.input_bit("x");
        let y = b.input_bit("y");
        let hot = b.xor2(x, y);
        let loads = b.input_bus("l", 40);
        let outs: Vec<_> = loads.iter().map(|&l| b.and2(hot, l)).collect();
        b.output_bus("z", &outs);
        b.finish()
    }

    #[test]
    fn sweep_is_identity_on_clean_design() {
        let n = high_fanout_design();
        let s = sweep(&n);
        assert_eq!(n.cell_count(), s.cell_count());
        assert!(equiv::check(&n, &s, 256, 1).unwrap().is_none());
    }

    #[test]
    fn buffering_reduces_delay_and_preserves_function() {
        let n = high_fanout_design();
        let before = sta::analyze(&n).critical_delay_tau();
        let buffered = buffer_fanout(&n, 8);
        let after = sta::analyze(&buffered).critical_delay_tau();
        assert!(
            buffered.max_fanout() <= 8 + 1,
            "fanout {}",
            buffered.max_fanout()
        );
        assert!(after < before, "buffering should help: {after} vs {before}");
        assert!(equiv::check(&n, &buffered, 256, 2).unwrap().is_none());
    }

    #[test]
    fn best_buffered_never_worse() {
        let n = high_fanout_design();
        let base = sta::analyze(&sweep(&n)).critical_delay_tau();
        let best = best_buffered(&n, &[4, 8, 16]);
        let t = sta::analyze(&best).critical_delay_tau();
        assert!(t <= base);
        assert!(equiv::check(&n, &best, 256, 3).unwrap().is_none());
    }
}

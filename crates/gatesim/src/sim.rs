//! Bit-parallel logic simulation.
//!
//! The simulator evaluates a [`Netlist`] over 64 independent test vectors at
//! once: each signal is a `u64` whose lane *j* carries the value of the
//! signal under stimulus *j*. One linear pass over the (topologically
//! ordered) node array evaluates the whole design.
//!
//! Convenience wrappers accept `bool` vectors or [`UBig`] operands.

use std::collections::HashMap;

use bitnum::UBig;

use crate::error::GateError;
use crate::netlist::{Netlist, Node};

/// Simulates 64 vectors at once.
///
/// `stimuli` supplies, for every input bus, one `u64` per bit (LSB first);
/// lane *j* of each word belongs to test vector *j*. Returns the same
/// layout for every output bus.
///
/// # Errors
///
/// Returns [`GateError`] if a bus is missing, unknown, or has the wrong
/// width.
pub fn simulate(
    netlist: &Netlist,
    stimuli: &[(&str, &[u64])],
) -> Result<HashMap<String, Vec<u64>>, GateError> {
    let mut by_bus: HashMap<&str, &[u64]> = HashMap::new();
    for (name, words) in stimuli {
        by_bus.insert(name, words);
    }
    // Validate the interface both ways.
    for bus in netlist.inputs() {
        match by_bus.get(bus.name.as_str()) {
            None => return Err(GateError::UnknownBus(bus.name.clone())),
            Some(words) if words.len() != bus.signals.len() => {
                return Err(GateError::WidthMismatch {
                    bus: bus.name.clone(),
                    expected: bus.signals.len(),
                    got: words.len(),
                })
            }
            Some(_) => {}
        }
    }
    for (name, _) in stimuli {
        if netlist.input(name).is_none() {
            return Err(GateError::UnknownBus((*name).to_string()));
        }
    }

    let mut values = vec![0u64; netlist.nodes().len()];
    for (i, node) in netlist.nodes().iter().enumerate() {
        values[i] = match node {
            Node::Input { bus, bit } => {
                let bus_ref = &netlist.inputs()[*bus as usize];
                by_bus[bus_ref.name.as_str()][*bit as usize]
            }
            Node::Cell { kind, ins } => {
                let get = |slot: usize| {
                    if slot < kind.arity() {
                        values[ins[slot].index()]
                    } else {
                        0
                    }
                };
                kind.eval(get(0), get(1), get(2), get(3))
            }
        };
    }

    let mut out = HashMap::new();
    for bus in netlist.outputs() {
        out.insert(
            bus.name.clone(),
            bus.signals.iter().map(|s| values[s.index()]).collect(),
        );
    }
    Ok(out)
}

/// Simulates a single vector given as booleans per bus bit (LSB first).
///
/// # Errors
///
/// Propagates interface errors from [`simulate`].
pub fn simulate_bools(
    netlist: &Netlist,
    stimuli: &[(&str, &[bool])],
) -> Result<HashMap<String, Vec<bool>>, GateError> {
    let words: Vec<(&str, Vec<u64>)> = stimuli
        .iter()
        .map(|(name, bits)| {
            (
                *name,
                bits.iter().map(|&b| if b { u64::MAX } else { 0 }).collect(),
            )
        })
        .collect();
    let borrowed: Vec<(&str, &[u64])> = words.iter().map(|(n, w)| (*n, w.as_slice())).collect();
    let out = simulate(netlist, &borrowed)?;
    Ok(out
        .into_iter()
        .map(|(name, ws)| (name, ws.into_iter().map(|w| w & 1 == 1).collect()))
        .collect())
}

/// Simulates a single vector with [`UBig`] operands: each input bus takes a
/// `UBig` of matching width, each output bus is returned as a `UBig`.
///
/// # Errors
///
/// Propagates interface errors from [`simulate`].
pub fn simulate_ubig(
    netlist: &Netlist,
    stimuli: &[(&str, &UBig)],
) -> Result<HashMap<String, UBig>, GateError> {
    let words: Vec<(&str, Vec<u64>)> = stimuli
        .iter()
        .map(|(name, v)| {
            (
                *name,
                (0..v.width())
                    .map(|i| if v.bit(i) { u64::MAX } else { 0 })
                    .collect(),
            )
        })
        .collect();
    let borrowed: Vec<(&str, &[u64])> = words.iter().map(|(n, w)| (*n, w.as_slice())).collect();
    let out = simulate(netlist, &borrowed)?;
    Ok(out
        .into_iter()
        .map(|(name, ws)| {
            let mut v = UBig::zero(ws.len());
            for (i, w) in ws.iter().enumerate() {
                if w & 1 == 1 {
                    v.set_bit(i, true);
                }
            }
            (name, v)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    fn xor_netlist() -> Netlist {
        let mut b = NetlistBuilder::new("x");
        let a = b.input_bus("a", 2);
        let c = b.input_bus("b", 2);
        let z: Vec<_> = a.iter().zip(&c).map(|(&x, &y)| b.xor2(x, y)).collect();
        b.output_bus("z", &z);
        b.finish()
    }

    #[test]
    fn lane_parallel_matches_scalar() {
        let n = xor_netlist();
        let a = [0b1010_1010u64, 0xffff];
        let b = [0b0110_0110u64, 0x0f0f];
        let out = simulate(&n, &[("a", &a), ("b", &b)]).unwrap();
        assert_eq!(out["z"][0], a[0] ^ b[0]);
        assert_eq!(out["z"][1], a[1] ^ b[1]);
    }

    #[test]
    fn ubig_wrapper_roundtrip() {
        let n = xor_netlist();
        let a = UBig::from_u128(0b01, 2);
        let b = UBig::from_u128(0b11, 2);
        let out = simulate_ubig(&n, &[("a", &a), ("b", &b)]).unwrap();
        assert_eq!(out["z"], UBig::from_u128(0b10, 2));
    }

    #[test]
    fn missing_bus_is_error() {
        let n = xor_netlist();
        let a = [0u64, 0];
        assert!(matches!(
            simulate(&n, &[("a", &a)]),
            Err(GateError::UnknownBus(_))
        ));
    }

    #[test]
    fn wrong_width_is_error() {
        let n = xor_netlist();
        let a = [0u64];
        let b = [0u64, 0];
        assert!(matches!(
            simulate(&n, &[("a", &a), ("b", &b)]),
            Err(GateError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn extra_bus_is_error() {
        let n = xor_netlist();
        let a = [0u64, 0];
        let b = [0u64, 0];
        let c = [0u64];
        assert!(simulate(&n, &[("a", &a), ("b", &b), ("c", &c)]).is_err());
    }
}

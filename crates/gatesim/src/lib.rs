//! Gate-level netlist substrate: a tiny "Design Compiler" for adder research.
//!
//! The paper's evaluation (Ch. 7) generates Verilog for every adder design
//! and synthesizes it with Synopsys Design Compiler on a UMC 65 nm library,
//! then compares critical-path delay and cell area. This crate reproduces
//! that flow with an auditable, self-contained model:
//!
//! * [`cell`] — a small standard-cell library (INV … MUX2, AOI/OAI, MAJ3)
//!   with logical-effort timing parameters and NAND2-equivalent areas
//!   calibrated to a 65 nm process.
//! * [`Netlist`] / [`NetlistBuilder`] — a combinational netlist IR. The
//!   builder hash-conses structurally identical gates and constant-folds as
//!   it goes, which plays the role of the logic sharing a synthesis tool
//!   performs.
//! * [`sim`] — 64-way bit-parallel logic simulation.
//! * [`sta`] — load-aware static timing analysis
//!   (`arc delay = parasitic + Σ fanout pin capacitance`), so fanout
//!   penalties — central to the paper's critique of prior speculative
//!   adders — are modelled.
//! * [`area`] — cell-area accounting with per-kind breakdown.
//! * [`opt`] — netlist rebuilding passes: sweep (CSE + constant folding +
//!   dead-cone removal) and fanout buffering.
//! * [`equiv`] — random + exhaustive combinational equivalence checking.
//! * [`verilog`] — structural Verilog export (the artifact the paper's C++
//!   generators produced).
//!
//! # Example: build, simulate and time a 1-bit full adder
//!
//! ```
//! use gatesim::{NetlistBuilder, sim, sta};
//!
//! let mut b = NetlistBuilder::new("full_adder");
//! let a = b.input_bit("a");
//! let c = b.input_bit("b");
//! let cin = b.input_bit("cin");
//! let t = b.xor2(a, c);
//! let s = b.xor2(t, cin);
//! let co = b.maj3(a, c, cin);
//! b.output_bit("sum", s);
//! b.output_bit("cout", co);
//! let netlist = b.finish();
//!
//! let out = sim::simulate_bools(&netlist, &[("a", &[true]), ("b", &[true]), ("cin", &[false])])?;
//! assert_eq!(out["sum"], vec![false]);
//! assert_eq!(out["cout"], vec![true]);
//!
//! let timing = sta::analyze(&netlist);
//! assert!(timing.critical_delay_tau() > 0.0);
//! # Ok::<(), gatesim::GateError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
mod build;
pub mod cell;
pub mod equiv;
mod error;
mod netlist;
pub mod opt;
pub mod power;
pub mod sim;
pub mod sta;
pub mod verilog;

pub use build::NetlistBuilder;
pub use cell::CellKind;
pub use error::GateError;
pub use netlist::{Netlist, Node, Signal};

/// Area of one NAND2-equivalent in µm² for the modelled 65 nm process.
///
/// Used to convert the library's normalized areas into the µm² scale the
/// paper's figures use. (UMC 65LL NAND2X1 is ≈1.44 µm².)
pub const UM2_PER_NAND2: f64 = 1.44;

/// Picoseconds per logical-effort delay unit τ for the modelled process.
///
/// τ is the slope of the inverter delay-vs-fanout line; ~15 ps reproduces
/// the magnitude of the paper's 65 nm synthesis results (KS-512 ≈ 2 ns).
pub const PS_PER_TAU: f64 = 15.0;

//! Structural Verilog export.
//!
//! The paper's flow generated Verilog from C++ adder generators and fed it
//! to Design Compiler; [`emit`] produces the equivalent artifact from a
//! [`Netlist`] so designs can be inspected or pushed through an external
//! flow. The output is plain synthesizable combinational Verilog-2001 using
//! `assign` statements (one per cell, in topological order).

use std::fmt::Write as _;

use crate::netlist::{Netlist, Node};

/// Renders the netlist as a synthesizable Verilog module.
///
/// Bus names are used verbatim as port names; internal nets are named
/// `n<index>`.
pub fn emit(netlist: &Netlist) -> String {
    let mut v = String::new();
    let module = sanitize(netlist.name());
    let mut ports: Vec<String> = Vec::new();
    for bus in netlist.inputs() {
        ports.push(sanitize(&bus.name));
    }
    for bus in netlist.outputs() {
        ports.push(sanitize(&bus.name));
    }
    let _ = writeln!(v, "module {module} ({});", ports.join(", "));
    for bus in netlist.inputs() {
        let _ = writeln!(
            v,
            "  input  [{}:0] {};",
            bus.signals.len() - 1,
            sanitize(&bus.name)
        );
    }
    for bus in netlist.outputs() {
        let _ = writeln!(
            v,
            "  output [{}:0] {};",
            bus.signals.len() - 1,
            sanitize(&bus.name)
        );
    }

    // Name every node: inputs map to bus selects, cells to fresh wires.
    let mut names: Vec<String> = Vec::with_capacity(netlist.nodes().len());
    let mut wires: Vec<usize> = Vec::new();
    for (i, node) in netlist.nodes().iter().enumerate() {
        match node {
            Node::Input { bus, bit } => {
                let bus_ref = &netlist.inputs()[*bus as usize];
                names.push(format!("{}[{}]", sanitize(&bus_ref.name), bit));
            }
            Node::Cell { .. } => {
                names.push(format!("n{i}"));
                wires.push(i);
            }
        }
    }
    if !wires.is_empty() {
        for chunk in wires.chunks(16) {
            let list: Vec<&str> = chunk.iter().map(|&i| names[i].as_str()).collect();
            let _ = writeln!(v, "  wire {};", list.join(", "));
        }
    }
    for (i, node) in netlist.nodes().iter().enumerate() {
        if let Node::Cell { kind, ins } = node {
            let in_names: Vec<String> = ins
                .iter()
                .take(kind.arity())
                .map(|s| names[s.index()].clone())
                .collect();
            let _ = writeln!(
                v,
                "  assign {} = {};",
                names[i],
                kind.verilog_expr(&in_names)
            );
        }
    }
    for bus in netlist.outputs() {
        for (bit, sig) in bus.signals.iter().enumerate() {
            let _ = writeln!(
                v,
                "  assign {}[{}] = {};",
                sanitize(&bus.name),
                bit,
                names[sig.index()]
            );
        }
    }
    let _ = writeln!(v, "endmodule");
    v
}

/// Makes a string safe as a Verilog identifier.
fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.is_empty() || out.chars().next().unwrap().is_ascii_digit() {
        out.insert(0, 'm');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    #[test]
    fn full_adder_verilog_shape() {
        let mut b = NetlistBuilder::new("full adder 1");
        let a = b.input_bit("a");
        let c = b.input_bit("b");
        let cin = b.input_bit("cin");
        let t = b.xor2(a, c);
        let s = b.xor2(t, cin);
        let co = b.maj3(a, c, cin);
        b.output_bit("sum", s);
        b.output_bit("cout", co);
        let text = emit(&b.finish());
        assert!(text.starts_with("module full_adder_1 (a, b, cin, sum, cout);"));
        assert!(text.contains("input  [0:0] a;"));
        assert!(text.contains("output [0:0] sum;"));
        assert!(text.contains("^")); // xor cells present
        assert!(text.trim_end().ends_with("endmodule"));
        // Every internal wire that is assigned is declared.
        for line in text.lines() {
            if let Some(rest) = line.trim().strip_prefix("assign n") {
                let id: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
                assert!(text.contains(&format!("n{id}")), "wire n{id} declared");
            }
        }
    }

    #[test]
    fn sanitize_rules() {
        assert_eq!(sanitize("a b-c"), "a_b_c");
        assert_eq!(sanitize("1abc"), "m1abc");
    }
}

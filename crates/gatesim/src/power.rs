//! Switching-activity power estimation.
//!
//! Dynamic power in static CMOS is `½·α·C·V²·f` per net: proportional to
//! the toggle rate α times the switched capacitance C. This module
//! estimates the `α·C` sum by simulating randomized vector pairs and
//! counting, for every signal, how many lanes toggle between the two
//! vectors, weighted by the signal's load (fanout pin + wire capacitance)
//! plus its driver's internal (output) capacitance.
//!
//! The result is reported in normalized *switched-capacitance units per
//! operation* — like the delay/area models, only relative comparisons are
//! meaningful (speculative adders switch less than deep prefix trees
//! because most windows are narrow; the recovery logic adds standby
//! switching, which is why the paper's variable-latency designs care about
//! the detector's simplicity).

use bitnum::rng::{RandomBits, Xoshiro256};

use crate::netlist::{Netlist, Node};
use crate::sta::WIRE_CAP;

/// A power estimate for one netlist.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerReport {
    /// Mean switched capacitance per input transition (normalized units).
    pub switched_cap_per_op: f64,
    /// Mean number of toggling signals per input transition.
    pub toggles_per_op: f64,
    /// Number of vector transitions simulated.
    pub transitions: usize,
}

/// Estimates switching activity with `transitions` random vector pairs
/// (rounded up to lanes of 64), seeded deterministically.
///
/// # Panics
///
/// Panics if the netlist has no inputs.
pub fn estimate(netlist: &Netlist, transitions: usize, seed: u64) -> PowerReport {
    assert!(!netlist.inputs().is_empty(), "netlist has no inputs");
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let n = netlist.nodes().len();

    // Per-signal switched capacitance: the loads it drives plus its own
    // driver output parasitic (approximated by the cell's pin cap).
    let mut cap = vec![0.0f64; n];
    for node in netlist.nodes() {
        if let Node::Cell { kind, ins } = node {
            for s in ins.iter().take(kind.arity()) {
                cap[s.index()] += kind.pin_cap() + WIRE_CAP;
            }
        }
    }
    for bus in netlist.outputs() {
        for s in &bus.signals {
            cap[s.index()] += 1.0 + WIRE_CAP;
        }
    }

    let batches = transitions.div_ceil(64).max(1);
    let mut total_cap = 0.0f64;
    let mut total_toggles = 0.0f64;
    let mut prev = vec![0u64; n];
    let mut cur = vec![0u64; n];
    for batch in 0..=batches {
        // Evaluate one batch of random vectors in place.
        for (i, node) in netlist.nodes().iter().enumerate() {
            cur[i] = match node {
                Node::Input { .. } => rng.next_u64(),
                Node::Cell { kind, ins } => {
                    let get = |slot: usize| {
                        if slot < kind.arity() {
                            cur[ins[slot].index()]
                        } else {
                            0
                        }
                    };
                    kind.eval(get(0), get(1), get(2), get(3))
                }
            };
        }
        if batch > 0 {
            // Lane-wise toggles against the previous batch.
            for i in 0..n {
                let toggles = (prev[i] ^ cur[i]).count_ones() as f64;
                total_toggles += toggles;
                total_cap += toggles * cap[i];
            }
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let ops = (batches * 64) as f64;
    PowerReport {
        switched_cap_per_op: total_cap / ops,
        toggles_per_op: total_toggles / ops,
        transitions: batches * 64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    fn inverter_chain(len: usize) -> Netlist {
        let mut b = NetlistBuilder::new("chain");
        let x = b.input_bit("x");
        let mut s = x;
        b.set_sharing(false);
        for _ in 0..len {
            s = b.inv(s);
        }
        b.set_sharing(true);
        b.output_bit("z", s);
        b.finish()
    }

    #[test]
    fn longer_chains_switch_more() {
        let short = estimate(&inverter_chain(4), 1024, 1);
        let long = estimate(&inverter_chain(16), 1024, 1);
        assert!(long.switched_cap_per_op > short.switched_cap_per_op * 2.0);
        // An inverter chain toggles every node on ~half the transitions.
        assert!(long.toggles_per_op > 6.0);
    }

    #[test]
    fn constant_cone_switches_nothing() {
        let mut b = NetlistBuilder::new("const");
        let x = b.input_bit("x");
        let zero = b.const0();
        let z = b.and2(x, zero); // folds to constant 0
        b.output_bit("z", z);
        let net = b.finish();
        let p = estimate(&net, 512, 2);
        // Only the dangling input toggles; it drives nothing.
        assert!(p.switched_cap_per_op < 0.8, "cap {}", p.switched_cap_per_op);
    }

    #[test]
    fn deterministic_per_seed() {
        let net = inverter_chain(8);
        let a = estimate(&net, 512, 42);
        let b = estimate(&net, 512, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn adders_rank_plausibly() {
        // A ripple adder has fewer, lighter nodes than Kogge-Stone: less
        // switched capacitance per operation.
        let rca = crate::opt::sweep(&test_adder(false));
        let ks = crate::opt::sweep(&test_adder(true));
        let p_rca = estimate(&rca, 2048, 7);
        let p_ks = estimate(&ks, 2048, 7);
        assert!(p_rca.switched_cap_per_op < p_ks.switched_cap_per_op);
    }

    /// Local mini adders to avoid a dev-dependency cycle with `adders`.
    fn test_adder(prefix: bool) -> Netlist {
        let n = 16;
        let mut b = NetlistBuilder::new(if prefix { "ks" } else { "rca" });
        let a = b.input_bus("a", n);
        let bb = b.input_bus("b", n);
        let p: Vec<_> = a.iter().zip(&bb).map(|(&x, &y)| b.xor2(x, y)).collect();
        let g: Vec<_> = a.iter().zip(&bb).map(|(&x, &y)| b.and2(x, y)).collect();
        let mut carries = Vec::new();
        if prefix {
            // Kogge-Stone sweep on (g, p).
            let mut gg = g.clone();
            let mut pp = p.clone();
            let mut stride = 1;
            while stride < n {
                let (gs, ps) = (gg.clone(), pp.clone());
                for i in stride..n {
                    let t = b.and2(ps[i], gs[i - stride]);
                    gg[i] = b.or2(gs[i], t);
                    pp[i] = b.and2(ps[i], ps[i - stride]);
                }
                stride *= 2;
            }
            carries = gg;
        } else {
            let mut c = None;
            for i in 0..n {
                let next = match c {
                    None => g[i],
                    Some(cs) => {
                        let t = b.and2(p[i], cs);
                        b.or2(g[i], t)
                    }
                };
                carries.push(next);
                c = Some(next);
            }
        }
        let mut sums = vec![p[0]];
        for i in 1..n {
            sums.push(b.xor2(p[i], carries[i - 1]));
        }
        b.output_bus("sum", &sums);
        b.finish()
    }
}

//! Cell-area accounting.
//!
//! Areas are summed in NAND2 equivalents and convertible to µm² through
//! [`crate::UM2_PER_NAND2`], matching the scale of the paper's area figures.

use std::collections::BTreeMap;
use std::fmt;

use crate::cell::CellKind;
use crate::netlist::{Netlist, Node};
use crate::UM2_PER_NAND2;

/// Area summary of a netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaReport {
    by_kind: BTreeMap<CellKind, usize>,
    total_nand2: f64,
}

impl AreaReport {
    /// Total area in NAND2 equivalents.
    pub fn total_nand2(&self) -> f64 {
        self.total_nand2
    }

    /// Total area in µm² under the calibrated 65 nm process.
    pub fn total_um2(&self) -> f64 {
        self.total_nand2 * UM2_PER_NAND2
    }

    /// Instance count per cell kind (constants excluded).
    pub fn counts(&self) -> &BTreeMap<CellKind, usize> {
        &self.by_kind
    }

    /// Total number of cell instances.
    pub fn cell_count(&self) -> usize {
        self.by_kind.values().sum()
    }
}

impl fmt::Display for AreaReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} NAND2-eq ({:.1} um2): ",
            self.total_nand2,
            self.total_um2()
        )?;
        let mut first = true;
        for (kind, count) in &self.by_kind {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{kind:?}x{count}")?;
            first = false;
        }
        Ok(())
    }
}

/// Computes the area of a netlist.
pub fn analyze(netlist: &Netlist) -> AreaReport {
    let mut by_kind = BTreeMap::new();
    let mut total = 0.0;
    for node in netlist.nodes() {
        if let Node::Cell { kind, .. } = node {
            if matches!(kind, CellKind::Const0 | CellKind::Const1) {
                continue;
            }
            *by_kind.entry(*kind).or_insert(0) += 1;
            total += kind.area();
        }
    }
    AreaReport {
        by_kind,
        total_nand2: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    #[test]
    fn counts_and_total() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input_bit("x");
        let y = b.input_bit("y");
        let a = b.and2(x, y);
        let o = b.xor2(a, y);
        b.output_bit("z", o);
        let n = b.finish();
        let r = analyze(&n);
        assert_eq!(r.cell_count(), 2);
        assert!((r.total_nand2() - (CellKind::And2.area() + CellKind::Xor2.area())).abs() < 1e-12);
        assert!(r.total_um2() > r.total_nand2()); // 1.44 scale
    }

    #[test]
    fn constants_are_free() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input_bit("x");
        let one = b.const1();
        let z = b.xor2(x, one); // folds to inverter
        b.output_bit("z", z);
        let n = b.finish();
        let r = analyze(&n);
        assert_eq!(r.cell_count(), 1);
        assert!((r.total_nand2() - CellKind::Inv.area()).abs() < 1e-12);
    }
}

use std::fmt;

use crate::cell::CellKind;

/// A handle to a logic value inside a [`Netlist`] (the output net of a node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Signal(pub(crate) u32);

impl Signal {
    /// The node index this signal is produced by.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One node of the netlist DAG: a primary input bit or a cell instance.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Node {
    /// A primary input bit: `(bus index, bit index)`.
    Input {
        /// Index into [`Netlist::inputs`].
        bus: u32,
        /// Bit position within the bus.
        bit: u32,
    },
    /// A cell instance. Unused input slots hold `Signal(0)` and are ignored
    /// (slot count is given by [`CellKind::arity`]).
    Cell {
        /// The cell kind.
        kind: CellKind,
        /// Input signals; only the first `kind.arity()` entries are real.
        ins: [Signal; 4],
    },
}

/// A named bus (ordered list of signals, LSB first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bus {
    /// Bus name (a Verilog-compatible identifier).
    pub name: String,
    /// Signals of the bus, least-significant bit first.
    pub signals: Vec<Signal>,
}

/// An immutable combinational netlist.
///
/// Structural invariants (maintained by [`crate::NetlistBuilder`]):
/// * nodes are stored in topological order (a cell's inputs always precede
///   it), so simulation and timing are single linear passes;
/// * every [`Signal`] is produced by exactly one node;
/// * output buses reference existing signals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Netlist {
    pub(crate) name: String,
    pub(crate) nodes: Vec<Node>,
    pub(crate) inputs: Vec<Bus>,
    pub(crate) outputs: Vec<Bus>,
}

impl Netlist {
    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the same netlist under a different design name.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// All nodes in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Declared input buses, in declaration order.
    pub fn inputs(&self) -> &[Bus] {
        &self.inputs
    }

    /// Declared output buses, in declaration order.
    pub fn outputs(&self) -> &[Bus] {
        &self.outputs
    }

    /// Looks up an input bus by name.
    pub fn input(&self, name: &str) -> Option<&Bus> {
        self.inputs.iter().find(|b| b.name == name)
    }

    /// Looks up an output bus by name.
    pub fn output(&self, name: &str) -> Option<&Bus> {
        self.outputs.iter().find(|b| b.name == name)
    }

    /// Number of cell instances (excluding primary inputs and constants).
    pub fn cell_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| {
                matches!(
                    n,
                    Node::Cell { kind, .. }
                    if !matches!(kind, CellKind::Const0 | CellKind::Const1)
                )
            })
            .count()
    }

    /// Per-node fanout: how many cell input pins each signal drives, plus
    /// one per output-bus bit it feeds.
    pub fn fanouts(&self) -> Vec<u32> {
        let mut fanout = vec![0u32; self.nodes.len()];
        for node in &self.nodes {
            if let Node::Cell { kind, ins } = node {
                for &input in ins.iter().take(kind.arity()) {
                    fanout[input.index()] += 1;
                }
            }
        }
        for bus in &self.outputs {
            for sig in &bus.signals {
                fanout[sig.index()] += 1;
            }
        }
        fanout
    }

    /// Highest fanout of any internal signal (0 for an empty design).
    pub fn max_fanout(&self) -> u32 {
        self.fanouts().into_iter().max().unwrap_or(0)
    }

    /// Logic depth in cell stages along the deepest input→output cone
    /// (structural; see [`crate::sta`] for the load-aware delay).
    pub fn depth(&self) -> usize {
        let mut depth = vec![0usize; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            if let Node::Cell { kind, ins } = node {
                if kind.arity() == 0 {
                    continue;
                }
                depth[i] = 1 + ins
                    .iter()
                    .take(kind.arity())
                    .map(|s| depth[s.index()])
                    .max()
                    .unwrap_or(0);
            }
        }
        self.outputs
            .iter()
            .flat_map(|b| &b.signals)
            .map(|s| depth[s.index()])
            .max()
            .unwrap_or(0)
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} cells, depth {}, max fanout {}",
            self.name,
            self.cell_count(),
            self.depth(),
            self.max_fanout()
        )
    }
}

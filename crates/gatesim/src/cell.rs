//! The standard-cell library.
//!
//! Timing follows the logical-effort model: each cell has a *parasitic
//! delay* `p` (intrinsic, load-independent) and each input pin a
//! *capacitance* proportional to the pin's logical effort `g`. All cells are
//! minimum drive, so the delay of a cell instance is
//! `p + Σ (pin capacitance of fanout pins)` in units of τ
//! (see [`crate::sta`]). Areas are in NAND2 equivalents.
//!
//! The values below are the textbook logical-effort numbers (Sutherland,
//! Sproull & Harris) for static CMOS, with compound cells (AND2/OR2/MUX2/
//! XOR2/MAJ3) modelled as their standard two-stage realizations.

/// The kinds of cells available to netlists.
///
/// Input ordering conventions:
/// * [`CellKind::Mux2`]: `[d0, d1, sel]`, output `sel ? d1 : d0`.
/// * [`CellKind::Aoi21`]: `[a, b, c]`, output `!((a & b) | c)`.
/// * [`CellKind::Oai21`]: `[a, b, c]`, output `!((a | b) & c)`.
/// * [`CellKind::Maj3`]: majority of the three inputs (a full-adder carry).
/// * 4-input gates take `[a, b, c, d]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum CellKind {
    Const0,
    Const1,
    Buf,
    Inv,
    And2,
    Or2,
    Nand2,
    Nor2,
    Xor2,
    Xnor2,
    Mux2,
    Aoi21,
    Oai21,
    Maj3,
    And4,
    Or4,
    Nand4,
    Nor4,
}

/// Every cell kind, in a stable order (useful for reports).
pub const ALL_KINDS: [CellKind; 18] = [
    CellKind::Const0,
    CellKind::Const1,
    CellKind::Buf,
    CellKind::Inv,
    CellKind::And2,
    CellKind::Or2,
    CellKind::Nand2,
    CellKind::Nor2,
    CellKind::Xor2,
    CellKind::Xnor2,
    CellKind::Mux2,
    CellKind::Aoi21,
    CellKind::Oai21,
    CellKind::Maj3,
    CellKind::And4,
    CellKind::Or4,
    CellKind::Nand4,
    CellKind::Nor4,
];

impl CellKind {
    /// Number of input pins.
    pub fn arity(self) -> usize {
        use CellKind::*;
        match self {
            Const0 | Const1 => 0,
            Buf | Inv => 1,
            And2 | Or2 | Nand2 | Nor2 | Xor2 | Xnor2 => 2,
            Mux2 | Aoi21 | Oai21 | Maj3 => 3,
            And4 | Or4 | Nand4 | Nor4 => 4,
        }
    }

    /// Cell area in NAND2 equivalents.
    pub fn area(self) -> f64 {
        use CellKind::*;
        match self {
            Const0 | Const1 => 0.0,
            Inv => 0.67,
            Buf => 1.0,
            Nand2 | Nor2 => 1.0,
            And2 | Or2 => 1.33,
            Aoi21 | Oai21 => 1.33,
            Xor2 | Xnor2 => 2.0,
            Mux2 => 2.0,
            Maj3 => 2.33,
            Nand4 | Nor4 => 2.0,
            And4 | Or4 => 2.33,
        }
    }

    /// Parasitic (intrinsic) delay in τ.
    pub fn parasitic(self) -> f64 {
        use CellKind::*;
        match self {
            Const0 | Const1 => 0.0,
            Inv => 1.0,
            Buf => 2.0,
            Nand2 | Nor2 => 2.0,
            And2 | Or2 => 3.0,
            Aoi21 | Oai21 => 3.0,
            Xor2 | Xnor2 => 4.0,
            Mux2 => 4.0,
            Maj3 => 5.0,
            Nand4 | Nor4 => 4.0,
            And4 | Or4 => 5.0,
        }
    }

    /// Input pin capacitance in unit inverter capacitances (the logical
    /// effort of the pin). Uniform across pins of a cell in this library.
    pub fn pin_cap(self) -> f64 {
        use CellKind::*;
        match self {
            Const0 | Const1 => 0.0,
            Inv | Buf => 1.0,
            Nand2 | And2 => 4.0 / 3.0,
            Nor2 | Or2 => 5.0 / 3.0,
            Aoi21 | Oai21 => 2.0,
            Xor2 | Xnor2 => 4.0,
            Mux2 => 2.0,
            Maj3 => 2.0,
            Nand4 | And4 => 2.0,
            Nor4 | Or4 => 3.0,
        }
    }

    /// Bit-parallel evaluation over 64 lanes. Unused inputs must be 0.
    #[inline]
    pub fn eval(self, a: u64, b: u64, c: u64, d: u64) -> u64 {
        use CellKind::*;
        match self {
            Const0 => 0,
            Const1 => u64::MAX,
            Buf => a,
            Inv => !a,
            And2 => a & b,
            Or2 => a | b,
            Nand2 => !(a & b),
            Nor2 => !(a | b),
            Xor2 => a ^ b,
            Xnor2 => !(a ^ b),
            Mux2 => (c & b) | (!c & a),
            Aoi21 => !((a & b) | c),
            Oai21 => !((a | b) & c),
            Maj3 => (a & b) | (a & c) | (b & c),
            And4 => a & b & c & d,
            Or4 => a | b | c | d,
            Nand4 => !(a & b & c & d),
            Nor4 => !(a | b | c | d),
        }
    }

    /// The Verilog expression template for this cell (see
    /// [`crate::verilog`]).
    pub fn verilog_expr(self, ins: &[String]) -> String {
        use CellKind::*;
        match self {
            Const0 => "1'b0".into(),
            Const1 => "1'b1".into(),
            Buf => ins[0].clone(),
            Inv => format!("~{}", ins[0]),
            And2 => format!("{} & {}", ins[0], ins[1]),
            Or2 => format!("{} | {}", ins[0], ins[1]),
            Nand2 => format!("~({} & {})", ins[0], ins[1]),
            Nor2 => format!("~({} | {})", ins[0], ins[1]),
            Xor2 => format!("{} ^ {}", ins[0], ins[1]),
            Xnor2 => format!("~({} ^ {})", ins[0], ins[1]),
            Mux2 => format!("{2} ? {1} : {0}", ins[0], ins[1], ins[2]),
            Aoi21 => format!("~(({} & {}) | {})", ins[0], ins[1], ins[2]),
            Oai21 => format!("~(({} | {}) & {})", ins[0], ins[1], ins[2]),
            Maj3 => format!(
                "({0} & {1}) | ({0} & {2}) | ({1} & {2})",
                ins[0], ins[1], ins[2]
            ),
            And4 => format!("{} & {} & {} & {}", ins[0], ins[1], ins[2], ins[3]),
            Or4 => format!("{} | {} | {} | {}", ins[0], ins[1], ins[2], ins[3]),
            Nand4 => format!("~({} & {} & {} & {})", ins[0], ins[1], ins[2], ins[3]),
            Nor4 => format!("~({} | {} | {} | {})", ins[0], ins[1], ins[2], ins[3]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_eval_usage() {
        for kind in ALL_KINDS {
            assert!(kind.arity() <= 4);
            // Evaluating with all-zero inputs must not panic.
            let _ = kind.eval(0, 0, 0, 0);
        }
    }

    #[test]
    fn truth_tables() {
        // Exhaustive single-lane truth tables for the 3/4-input cells.
        for a in [0u64, 1] {
            for b in [0u64, 1] {
                for c in [0u64, 1] {
                    let (ab, bb, cb) = (a == 1, b == 1, c == 1);
                    assert_eq!(
                        CellKind::Mux2.eval(a, b, c, 0) & 1 == 1,
                        if cb { bb } else { ab }
                    );
                    assert_eq!(
                        CellKind::Aoi21.eval(a, b, c, 0) & 1 == 1,
                        !((ab && bb) || cb)
                    );
                    assert_eq!(
                        CellKind::Oai21.eval(a, b, c, 0) & 1 == 1,
                        !((ab || bb) && cb)
                    );
                    assert_eq!(
                        CellKind::Maj3.eval(a, b, c, 0) & 1 == 1,
                        (ab as u8 + bb as u8 + cb as u8) >= 2
                    );
                    for d in [0u64, 1] {
                        let db = d == 1;
                        assert_eq!(
                            CellKind::And4.eval(a, b, c, d) & 1 == 1,
                            ab && bb && cb && db
                        );
                        assert_eq!(
                            CellKind::Nor4.eval(a, b, c, d) & 1 == 1,
                            !(ab || bb || cb || db)
                        );
                        assert_eq!(
                            CellKind::Nand4.eval(a, b, c, d),
                            !CellKind::And4.eval(a, b, c, d)
                        );
                        assert_eq!(
                            CellKind::Or4.eval(a, b, c, d),
                            !CellKind::Nor4.eval(a, b, c, d)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn wide_gates_cost_less_than_two_levels() {
        // The reason synthesis maps reduction cones onto them: a two-level
        // NOR2 realization pays two parasitics plus the internal wire/pin
        // load, a single NOR4 only its own parasitic.
        let two_level = 2.0 * CellKind::Nor2.parasitic() + CellKind::Nor2.pin_cap();
        assert!(CellKind::Nor4.parasitic() < two_level);
        assert!(CellKind::Nand4.area() < 2.0 * CellKind::Nand2.area() + CellKind::Inv.area());
    }

    #[test]
    fn costs_are_positive_for_logic() {
        for kind in ALL_KINDS {
            if matches!(kind, CellKind::Const0 | CellKind::Const1) {
                continue;
            }
            assert!(kind.area() > 0.0);
            assert!(kind.parasitic() > 0.0);
            assert!(kind.pin_cap() > 0.0);
        }
    }
}

//! Property tests: random netlists survive optimization passes unchanged in
//! function, and the simulator is lane-consistent.

use gatesim::{equiv, opt, sim, CellKind, Netlist, NetlistBuilder, Signal};
use proptest::prelude::*;

/// A recipe for one random gate: kind selector plus three input selectors.
#[derive(Debug, Clone)]
struct GateRecipe {
    kind: u8,
    a: usize,
    b: usize,
    c: usize,
}

fn gate_recipe() -> impl Strategy<Value = GateRecipe> {
    (0u8..12, any::<usize>(), any::<usize>(), any::<usize>())
        .prop_map(|(kind, a, b, c)| GateRecipe { kind, a, b, c })
}

/// Builds a random 8-input netlist from recipes; every created signal is a
/// candidate input for later gates, so deep and reconvergent structures
/// appear.
fn build_random(recipes: &[GateRecipe], outputs: usize) -> Netlist {
    let mut b = NetlistBuilder::new("random");
    let mut pool: Vec<Signal> = b.input_bus("x", 8);
    for r in recipes {
        let pick = |sel: usize| pool[sel % pool.len()];
        let (x, y, z) = (pick(r.a), pick(r.b), pick(r.c));
        let s = match r.kind {
            0 => b.inv(x),
            1 => b.and2(x, y),
            2 => b.or2(x, y),
            3 => b.nand2(x, y),
            4 => b.nor2(x, y),
            5 => b.xor2(x, y),
            6 => b.xnor2(x, y),
            7 => b.mux2(x, y, z),
            8 => b.aoi21(x, y, z),
            9 => b.oai21(x, y, z),
            10 => b.maj3(x, y, z),
            _ => b.buf(x),
        };
        pool.push(s);
    }
    let outs: Vec<Signal> = (0..outputs)
        .map(|i| pool[pool.len() - 1 - (i % pool.len())])
        .collect();
    b.output_bus("z", &outs);
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sweep_preserves_function(recipes in prop::collection::vec(gate_recipe(), 1..120)) {
        let n = build_random(&recipes, 4);
        let swept = opt::sweep(&n);
        prop_assert!(equiv::check(&n, &swept, 128, 99).unwrap().is_none());
        prop_assert!(swept.cell_count() <= n.cell_count());
    }

    #[test]
    fn buffering_preserves_function(
        recipes in prop::collection::vec(gate_recipe(), 1..120),
        limit in 2u32..9,
    ) {
        let n = build_random(&recipes, 4);
        let buffered = opt::buffer_fanout(&n, limit);
        prop_assert!(equiv::check(&n, &buffered, 128, 123).unwrap().is_none());
    }

    #[test]
    fn simulation_is_lane_consistent(
        recipes in prop::collection::vec(gate_recipe(), 1..60),
        stim in prop::array::uniform8(any::<u64>()),
    ) {
        let n = build_random(&recipes, 4);
        let lanes = sim::simulate(&n, &[("x", &stim)]).unwrap();
        // Each lane must match an independent single-lane simulation.
        for lane in [0usize, 13, 63] {
            let scalar: Vec<u64> = stim
                .iter()
                .map(|w| if (w >> lane) & 1 == 1 { u64::MAX } else { 0 })
                .collect();
            let single = sim::simulate(&n, &[("x", &scalar)]).unwrap();
            for (a, b) in lanes["z"].iter().zip(&single["z"]) {
                prop_assert_eq!((a >> lane) & 1, b & 1);
            }
        }
    }

    #[test]
    fn verilog_emits_every_cell(recipes in prop::collection::vec(gate_recipe(), 1..60)) {
        let n = build_random(&recipes, 2);
        let text = gatesim::verilog::emit(&n);
        let assigns = text.lines().filter(|l| l.trim_start().starts_with("assign")).count();
        let const_cells = n
            .nodes()
            .iter()
            .filter(|nd| matches!(nd, gatesim::Node::Cell { kind: CellKind::Const0 | CellKind::Const1, .. }))
            .count();
        // one assign per cell (incl. constants) + one per output bit
        prop_assert_eq!(assigns, n.cell_count() + const_cells + 2);
    }
}

//! The shared measurement kernel of the recorded benches.
//!
//! Both recorded result files — `BENCH_batch.json` (the `batch` bench) and
//! `BENCH_throughput.json` (the `throughput` bench) — are produced by this
//! one timing routine, so their numbers are always comparable and a
//! calibration fix lands in both contracts at once.

use std::time::{Duration, Instant};

/// Best-of-3 nanoseconds per call of `f`, self-calibrating the repeat
/// count from a warm-up quarter of `target`.
///
/// The warm-up pass both heats caches and counts how many calls fit in
/// `target / 4`; each of the three samples then times that many calls and
/// the fastest sample wins (the standard "minimum is the signal" rule for
/// wall-clock microbenchmarks). The `u64` returned by `f` is folded into a
/// `black_box` sink so the measured work cannot be optimized away.
///
/// ```
/// use std::time::Duration;
/// let ns = vlcsa_bench::timing::ns_per_call(|| 42, Duration::from_millis(1));
/// assert!(ns >= 0.0);
/// ```
pub fn ns_per_call<F: FnMut() -> u64>(mut f: F, target: Duration) -> f64 {
    let mut sink = 0u64;
    let warm_until = Instant::now() + target / 4;
    let mut calls = 0u64;
    while Instant::now() < warm_until {
        sink = sink.wrapping_add(f());
        calls += 1;
    }
    let calls_per_sample = calls.max(1);
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..calls_per_sample {
            sink = sink.wrapping_add(f());
        }
        best = best.min(t.elapsed().as_nanos() as f64 / calls_per_sample as f64);
    }
    std::hint::black_box(sink);
    best
}

//! Two's-complement Gaussian experiments: Tables 7.1, 7.2 and 7.5, plus
//! the registry-driven sweep `ext.gaussian_engines` (every family, every
//! paper width, same workload).

use vlcsa::{detect, OverflowMode, Scsa, Scsa2};
use workloads::dist::{Distribution, OperandSource};

use crate::table::{pct, Table};
use crate::Config;

use super::{windows_0p01, WIDTHS};

/// Table 7.1: VLCSA 1 error rates on σ = 2³² Gaussian inputs.
pub fn tab7_1(config: &Config) -> Table {
    let mut t = Table::new(
        "tab7.1",
        "Experimental and nominal error rates in VLCSA 1 (2's complement Gaussian)",
        &["n", "k", "P_err (Monte Carlo)", "P_err (ERR = 1)", "paper"],
    );
    for (i, (n, k)) in windows_0p01().into_iter().enumerate() {
        let scsa = Scsa::new(n, k);
        let mut src = OperandSource::new(Distribution::paper_gaussian(), n, 0x0711 + i as u64);
        let (mut errors, mut flags) = (0usize, 0usize);
        for _ in 0..config.mc_samples {
            let (a, b) = src.next_pair();
            errors += scsa.is_error(&a, &b, OverflowMode::Truncate) as usize;
            flags += detect::err0(&scsa.window_pg(&a, &b)) as usize;
        }
        t.row(vec![
            n.to_string(),
            k.to_string(),
            pct(errors as f64 / config.mc_samples as f64),
            pct(flags as f64 / config.mc_samples as f64),
            "25.01%".into(),
        ]);
    }
    t.note(format!(
        "mu = 0, sigma = 2^32; {} trials per width",
        config.mc_samples
    ));
    t.note(
        "every fourth addition pairs a small positive with a small negative \
            of smaller magnitude: the chain runs to the MSB and VLCSA 1 stalls",
    );
    t
}

/// Table 7.2: VLCSA 2 error rates on the same inputs.
pub fn tab7_2(config: &Config) -> Table {
    let mut t = Table::new(
        "tab7.2",
        "Experimental and nominal error rates in VLCSA 2 (2's complement Gaussian)",
        &[
            "n",
            "k",
            "P_err (Monte Carlo)",
            "P_err (ERR0=1, ERR1=1)",
            "paper",
        ],
    );
    for (i, (n, k)) in windows_0p01().into_iter().enumerate() {
        let scsa2 = Scsa2::new(n, k);
        let mut src = OperandSource::new(Distribution::paper_gaussian(), n, 0x0722 + i as u64);
        let (mut errors, mut stalls) = (0usize, 0usize);
        for _ in 0..config.mc_samples {
            let (a, b) = src.next_pair();
            errors += scsa2.is_error(&a, &b, OverflowMode::Truncate) as usize;
            stalls += matches!(
                detect::select(&scsa2.window_pg(&a, &b)),
                detect::Selection::Recover
            ) as usize;
        }
        t.row(vec![
            n.to_string(),
            k.to_string(),
            pct(errors as f64 / config.mc_samples as f64),
            pct(stalls as f64 / config.mc_samples as f64),
            "0.01%".into(),
        ]);
    }
    t.note(format!(
        "mu = 0, sigma = 2^32; {} trials per width",
        config.mc_samples
    ));
    t.note(
        "the second speculative result absorbs MSB-reaching chains: the 25% \
            stall rate of Table 7.1 collapses to the uniform-input level",
    );
    t
}

/// Table 7.5: VLCSA 2 window sizes from simulation.
pub fn tab7_5(config: &Config) -> Table {
    let mut t = Table::new(
        "tab7.5",
        "Parameters of VLCSA 2 for error rates 0.01% and 0.25% (simulation)",
        &["n", "k @0.01%", "paper", "k @0.25%", "paper"],
    );
    for (i, &n) in WIDTHS.iter().enumerate() {
        let k01 = solve(n, 1e-4, config.mc_samples, 0x0733 + i as u64);
        let k25 = solve(n, 2.5e-3, config.mc_samples, 0x0744 + i as u64);
        t.row(vec![
            n.to_string(),
            k01.to_string(),
            "13".into(),
            k25.to_string(),
            "9".into(),
        ]);
    }
    t.note(format!(
        "mu = 0, sigma = 2^32; nominal (ERR0·ERR1) stall rate measured with {} \
         trials per candidate window size; rounds-to-2dp acceptance",
        config.mc_samples
    ));
    t.note(
        "the window size is width-independent: only chains inside the ~33 \
            Gaussian-significant low bits can die before the MSB",
    );
    t
}

/// Smallest window size whose nominal VLCSA 2 stall rate meets `target`.
fn solve(n: usize, target: f64, samples: usize, seed: u64) -> usize {
    for k in 4..=24usize {
        let scsa2 = Scsa2::new(n, k);
        let mut src = OperandSource::new(Distribution::paper_gaussian(), n, seed);
        let mut stalls = 0usize;
        for _ in 0..samples {
            let (a, b) = src.next_pair();
            stalls += matches!(
                detect::select(&scsa2.window_pg(&a, &b)),
                detect::Selection::Recover
            ) as usize;
        }
        let rate = stalls as f64 / samples as f64;
        let rounded = (rate * 1e4).round() / 1e4;
        if rounded <= target {
            return k;
        }
    }
    24
}

/// `ext.gaussian_engines`: Tables 7.1/7.2's Gaussian workload, swept
/// over every registry family at every paper width.
///
/// Where tab7.1/tab7.2 probe a hand-built SCSA/SCSA 2 pair, this table
/// answers the same σ = 2³² two's-complement Gaussian stream through
/// each family's scalar engine path, so the window-size choices baked
/// into the registry are measured on exactly the workload the paper
/// sizes them for.
pub fn ext_gaussian_engines(config: &Config) -> Table {
    use vlcsa::engine::Registry;

    let samples = (config.mc_samples / 8).clamp(500, 50_000);
    let mut t = Table::new(
        "ext.gaussian_engines",
        "Stall statistics across every engine family (2's complement Gaussian, all paper widths)",
        &["engine", "n", "stall rate (MC)", "mean cycles"],
    );
    for (i, &width) in WIDTHS.iter().enumerate() {
        let registry = Registry::for_width(width);
        for engine in registry.engines() {
            let mut src =
                OperandSource::new(Distribution::paper_gaussian(), width, 0x9a55 + i as u64);
            let (mut stalls, mut cycles) = (0u64, 0u64);
            for _ in 0..samples {
                let (a, b) = src.next_pair();
                let out = engine.add_one(&a, &b);
                stalls += u64::from(out.cycles == 2);
                cycles += u64::from(out.cycles);
            }
            t.row(vec![
                engine.name().to_string(),
                width.to_string(),
                pct(stalls as f64 / samples as f64),
                format!("{:.4}", cycles as f64 / samples as f64),
            ]);
        }
    }
    t.note(format!(
        "{samples} additions per cell, mu = 0, sigma = 2^32; every family \
            from Registry::for_width(n) is swept at each paper width"
    ));
    t
}

//! The experiment implementations, grouped by paper chapter.

pub mod chains;
pub mod error_model;
pub mod extensions;
pub mod gaussian;
pub mod netlists;
pub mod synthesis;

/// The adder widths of every Ch. 7 sweep.
pub const WIDTHS: [usize; 4] = [64, 128, 256, 512];

/// Window sizes for the 0.01% error-rate target (Table 7.3/7.4 row),
/// derived from the analytical solver with the paper's semantics.
pub fn windows_0p01() -> Vec<(usize, usize)> {
    WIDTHS
        .iter()
        .map(|&n| {
            (
                n,
                vlcsa::model::window_size_for(
                    n,
                    1e-4,
                    vlcsa::model::Semantics::RoundsTo2Dp,
                    vlcsa::OverflowMode::Truncate,
                    vlcsa::model::Model::Paper,
                ),
            )
        })
        .collect()
}

/// Window sizes for the 0.25% target (Table 7.4 row).
pub fn windows_0p25() -> Vec<(usize, usize)> {
    WIDTHS
        .iter()
        .map(|&n| {
            (
                n,
                vlcsa::model::window_size_for(
                    n,
                    2.5e-3,
                    vlcsa::model::Semantics::RoundsTo2Dp,
                    vlcsa::OverflowMode::Truncate,
                    vlcsa::model::Model::Paper,
                ),
            )
        })
        .collect()
}

/// VLSA chain lengths for 0.01% (Table 7.3 column), from the exact VLSA
/// model with the same rounding semantics.
pub fn vlsa_chains_0p01() -> Vec<(usize, usize)> {
    WIDTHS
        .iter()
        .map(|&n| {
            (
                n,
                vlsa::model::chain_length_for(n, 1e-4, vlsa::model::Semantics::RoundsTo2Dp),
            )
        })
        .collect()
}

/// VLCSA 2 window sizes (Table 7.5): width-independent per the paper; the
/// `tab7.5` experiment re-derives them by simulation.
pub const VLCSA2_WINDOW_0P01: usize = 13;
/// VLCSA 2 window size for the 0.25% target (Table 7.5).
pub const VLCSA2_WINDOW_0P25: usize = 9;

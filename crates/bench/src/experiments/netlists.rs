//! A netlist-side family registry mirroring `vlcsa::engine::Registry`.
//!
//! The synthesis experiments (Figs. 7.2–7.11) all follow one flow —
//! generate a family's netlist at `(width, parameter)`, tune it, measure
//! delay/area — but historically each figure hand-listed its family's
//! constructor, parameter table and timing buses. This registry is the
//! single source of truth for that triple: a figure asks for families by
//! name (or iterates them) instead of naming `vlcsa::netlist::*`
//! functions, so adding a netlist family extends every registry-driven
//! figure without touching the figures — the first slice of the ROADMAP
//! "registry-driven experiments" item.

use gatesim::Netlist;

use super::{vlsa_chains_0p01, windows_0p01, windows_0p25, WIDTHS};
use super::{VLCSA2_WINDOW_0P01, VLCSA2_WINDOW_0P25};

/// A `(width, parameter)` column producer — one entry per [`WIDTHS`]
/// width, parameter meaning per family (window size `k` or chain length
/// `l`).
pub type ParamColumn = fn() -> Vec<(usize, usize)>;

/// One synthesizable adder family: how to build it, which parameters hit
/// the paper's error-rate targets, and which output buses bound its
/// correct-operation delay.
pub struct NetlistFamily {
    /// Registry name (`scsa1`, `vlsa-spec`, `vlsa`, `vlcsa1`, `vlcsa2`).
    pub name: &'static str,
    /// Netlist constructor at `(width, parameter)` — window size `k` for
    /// the SCSA/VLCSA families, chain length `l` for the VLSA ones.
    pub build: fn(usize, usize) -> Netlist,
    /// `(width, parameter)` pairs for the 0.01% error-rate target, one per
    /// [`WIDTHS`] entry.
    pub params_0p01: ParamColumn,
    /// `(width, parameter)` pairs for the 0.25% target, where the paper
    /// evaluates one.
    pub params_0p25: Option<ParamColumn>,
    /// Output buses whose latest arrival is the correct-operation delay
    /// (`None`: the whole-netlist critical path is the figure's quantity).
    pub timing_buses: Option<&'static [&'static str]>,
}

impl NetlistFamily {
    /// The 0.01% parameter for `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not in [`WIDTHS`].
    pub fn param_0p01(&self, width: usize) -> usize {
        Self::param_at(&(self.params_0p01)(), width, self.name)
    }

    /// The 0.25% parameter for `width`.
    ///
    /// # Panics
    ///
    /// Panics if the family has no 0.25% column or `width` is not in
    /// [`WIDTHS`].
    pub fn param_0p25(&self, width: usize) -> usize {
        let params = self
            .params_0p25
            .unwrap_or_else(|| panic!("family `{}` has no 0.25%% parameter column", self.name));
        Self::param_at(&params(), width, self.name)
    }

    fn param_at(params: &[(usize, usize)], width: usize, name: &str) -> usize {
        params
            .iter()
            .find(|(n, _)| *n == width)
            .unwrap_or_else(|| panic!("family `{name}` has no parameter at width {width}"))
            .1
    }
}

fn vlcsa2_params_0p01() -> Vec<(usize, usize)> {
    WIDTHS.iter().map(|&n| (n, VLCSA2_WINDOW_0P01)).collect()
}

fn vlcsa2_params_0p25() -> Vec<(usize, usize)> {
    WIDTHS.iter().map(|&n| (n, VLCSA2_WINDOW_0P25)).collect()
}

/// Every synthesizable family, in the paper's presentation order:
/// speculation-only designs first (Figs. 7.2/7.3), then the complete
/// variable-latency adders (Figs. 7.4+).
pub fn families() -> Vec<NetlistFamily> {
    vec![
        NetlistFamily {
            name: "vlsa-spec",
            build: vlsa::netlist::vlsa_spec_netlist,
            params_0p01: vlsa_chains_0p01,
            params_0p25: None,
            timing_buses: Some(&["sum"]),
        },
        NetlistFamily {
            name: "scsa1",
            build: vlcsa::netlist::scsa1_netlist,
            params_0p01: windows_0p01,
            params_0p25: Some(windows_0p25),
            timing_buses: Some(&["sum"]),
        },
        NetlistFamily {
            name: "vlsa",
            build: vlsa::netlist::vlsa_netlist,
            params_0p01: vlsa_chains_0p01,
            params_0p25: None,
            // Correct-op: speculative sum and detection; recovery
            // (`sum_exact`) overlaps the stall cycle.
            timing_buses: Some(&["sum", "err"]),
        },
        NetlistFamily {
            name: "vlcsa1",
            build: vlcsa::netlist::vlcsa1_netlist,
            params_0p01: windows_0p01,
            params_0p25: Some(windows_0p25),
            timing_buses: Some(&["sum", "err"]),
        },
        NetlistFamily {
            name: "vlcsa2",
            build: vlcsa::netlist::vlcsa2_netlist,
            params_0p01: vlcsa2_params_0p01,
            params_0p25: Some(vlcsa2_params_0p25),
            // Sec. 6.7: T_clk > max(spec0, spec1, ERR0, ERR1); the output
            // steering mux overlaps the output register.
            timing_buses: Some(&["spec0", "spec1", "err", "err1"]),
        },
    ]
}

/// Looks a family up by name.
///
/// # Panics
///
/// Panics on an unknown name — the registry is the complete family list,
/// so a miss is a programming error in the calling figure.
pub fn family(name: &str) -> NetlistFamily {
    families()
        .into_iter()
        .find(|f| f.name == name)
        .unwrap_or_else(|| panic!("no netlist family named `{name}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_consistent() {
        let fams = families();
        let names: Vec<&str> = fams.iter().map(|f| f.name).collect();
        assert_eq!(names, ["vlsa-spec", "scsa1", "vlsa", "vlcsa1", "vlcsa2"]);
        for fam in &fams {
            let p01 = (fam.params_0p01)();
            assert_eq!(p01.len(), WIDTHS.len(), "{}", fam.name);
            for (i, (n, k)) in p01.iter().enumerate() {
                assert_eq!(*n, WIDTHS[i], "{}", fam.name);
                assert!(*k >= 1 && *k <= *n, "{} param {k} at width {n}", fam.name);
            }
            // Every family builds at the smallest width without panicking.
            let netlist = (fam.build)(WIDTHS[0], fam.param_0p01(WIDTHS[0]));
            assert!(netlist.cell_count() > 0, "{}", fam.name);
        }
        assert_eq!(family("vlcsa2").param_0p25(64), VLCSA2_WINDOW_0P25);
    }

    #[test]
    #[should_panic(expected = "no netlist family named")]
    fn unknown_family_panics() {
        let _ = family("no-such-family");
    }
}

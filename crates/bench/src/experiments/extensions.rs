//! Extension experiments beyond the paper's tables: error magnitude,
//! end-to-end latency, detection-overestimate and buffering ablations, and
//! Verilog export.

use bitnum::rng::Xoshiro256;
use bitnum::UBig;
use gatesim::{opt, sta, verilog};
use vlcsa::magnitude::MagnitudeStats;
use vlcsa::{detect, model, Engine, LatencyStats, OverflowMode, Scsa, Vlcsa1, Vlcsa2};
use vlsa::Vlsa;
use workloads::dist::{Distribution, OperandSource};

use crate::table::{pct, Table};
use crate::Config;

/// Sec. 3.3: error magnitudes of window-level vs per-bit speculation.
pub fn magnitude(config: &Config) -> Table {
    let n = 64;
    let mut t = Table::new(
        "ext.magnitude",
        "Relative error magnitude of wrong speculations (non-overflowing adds)",
        &[
            "design",
            "params",
            "errors",
            "mean magnitude",
            "max magnitude",
        ],
    );
    let mut rng = Xoshiro256::seed_from_u64(0xE001);
    let scsa = Scsa::new(n, 8);
    let vlsa = Vlsa::new(n, 8);
    let mut scsa_stats = MagnitudeStats::new();
    let mut vlsa_stats = MagnitudeStats::new();
    for _ in 0..config.mc_samples {
        let a = UBig::random(n, &mut rng);
        let b = UBig::random(n, &mut rng);
        let (exact, overflowed) = a.overflowing_add(&b);
        if overflowed {
            continue;
        }
        if scsa.is_error(&a, &b, OverflowMode::Truncate) {
            let spec = scsa.speculate(&a, &b);
            scsa_stats.record(&spec.sum, &exact);
        }
        let (spec_vlsa, _) = vlsa.speculative_add(&a, &b);
        if spec_vlsa != exact {
            vlsa_stats.record(&spec_vlsa, &exact);
        }
    }
    t.row(vec![
        "SCSA 1 (window)".into(),
        "n=64 k=8".into(),
        scsa_stats.errors().to_string(),
        format!("{:.4}", scsa_stats.mean()),
        format!("{:.4}", scsa_stats.max()),
    ]);
    t.row(vec![
        "VLSA (per-bit)".into(),
        "n=64 l=8".into(),
        vlsa_stats.errors().to_string(),
        format!("{:.4}", vlsa_stats.mean()),
        format!("{:.4}", vlsa_stats.max()),
    ]);
    t.note(
        "a wrong SCSA speculation misses one carry at a window boundary \
            contained in the exact result, so its relative magnitude is small; \
            per-bit speculation can corrupt isolated high-significance bits",
    );
    t
}

/// Average latency of VLCSA 1/2 across all four input distributions, with
/// the measured clock period (eq. 5.2 end-to-end).
pub fn latency(config: &Config) -> Table {
    let n = 64;
    let (k1, k2) = (14usize, 13usize);
    let mut t = Table::new(
        "ext.latency",
        "Average addition latency (64-bit): VLCSA 1 vs VLCSA 2 vs DesignWare",
        &[
            "distribution",
            "VLCSA1 stall",
            "VLCSA1 ns/add",
            "VLCSA2 stall",
            "VLCSA2 ns/add",
            "DW ns/add",
        ],
    );
    // Clock periods from the synthesized netlists: the max over the
    // speculative result(s) and detection stages (Secs. 5.3/6.7).
    let t_clk = |net: &gatesim::Netlist, buses: &[&str]| {
        let timing = sta::analyze(net);
        buses
            .iter()
            .filter_map(|bus| timing.output_arrival_tau(bus))
            .fold(0.0f64, f64::max)
            * gatesim::PS_PER_TAU
            / 1000.0
    };
    let tune = |net: &gatesim::Netlist| opt::best_buffered(net, &[4, 8, 16]);
    let clk1 = t_clk(
        &tune(&vlcsa::netlist::vlcsa1_netlist(n, k1)),
        &["sum", "err"],
    );
    let clk2 = t_clk(
        &tune(&vlcsa::netlist::vlcsa2_netlist(n, k2)),
        &["spec0", "spec1", "err", "err1"],
    );
    let dw = adders::designware::best(n);
    let dw_ns = dw.delay_tau * gatesim::PS_PER_TAU / 1000.0;

    // Both speculative adders behind the unified Engine trait: one driver
    // loop, per-engine clock periods zipped alongside.
    let engines: Vec<(Box<dyn Engine>, f64)> = vec![
        (Box::new(Vlcsa1::new(n, k1)), clk1),
        (Box::new(Vlcsa2::new(n, k2)), clk2),
    ];
    for dist in [
        Distribution::UnsignedUniform,
        Distribution::TwosComplementUniform,
        Distribution::UnsignedGaussian {
            sigma: (1u64 << 32) as f64,
        },
        Distribution::paper_gaussian(),
    ] {
        let mut src = OperandSource::new(dist, n, 0xE002);
        let mut stats: Vec<LatencyStats> = vec![LatencyStats::new(); engines.len()];
        for _ in 0..config.mc_samples.min(300_000) {
            let (a, b) = src.next_pair();
            for ((engine, _), stat) in engines.iter().zip(&mut stats) {
                stat.record(&engine.add_one(&a, &b));
            }
        }
        let mut row = vec![dist.name()];
        for ((_, clk), stat) in engines.iter().zip(&stats) {
            row.push(pct(stat.stall_rate()));
            row.push(format!("{:.3}", stat.avg_time(*clk)));
        }
        row.push(format!("{dw_ns:.3}"));
        t.row(row);
    }
    t.note(format!(
        "T_clk(VLCSA1, k={k1}) = {clk1:.3} ns; T_clk(VLCSA2, k={k2}) = {clk2:.3} ns"
    ));
    t.note(
        "T_ave = T_clk (1 + P_err), eq. 5.2; VLCSA 1 loses its advantage on \
            2's-complement Gaussian inputs, VLCSA 2 restores it",
    );
    t
}

/// How much the sound detector overestimates: flag rate vs true error rate.
pub fn detect_ablation(config: &Config) -> Table {
    let n = 128;
    let mut t = Table::new(
        "ext.detect",
        "Detection overestimate: ERR flag rate vs true error rate (uniform)",
        &[
            "k",
            "true error (model)",
            "flag rate (model)",
            "flag rate (MC)",
            "false-positive share",
        ],
    );
    let mut rng = Xoshiro256::seed_from_u64(0xE003);
    for k in [6usize, 8, 10, 12, 14] {
        let scsa = Scsa::new(n, k);
        let (mut flags, mut false_pos) = (0usize, 0usize);
        for _ in 0..config.mc_samples {
            let a = UBig::random(n, &mut rng);
            let b = UBig::random(n, &mut rng);
            let flagged = detect::err0(&scsa.window_pg(&a, &b));
            if flagged {
                flags += 1;
                if !scsa.is_error(&a, &b, OverflowMode::Truncate) {
                    false_pos += 1;
                }
            }
        }
        let err_model = model::exact_error_rate(n, k);
        let flag_model = model::err0_rate_exact(n, k);
        t.row(vec![
            k.to_string(),
            pct(err_model),
            pct(flag_model),
            pct(flags as f64 / config.mc_samples as f64),
            if flags > 0 {
                format!("{:.1}%", 100.0 * false_pos as f64 / flags as f64)
            } else {
                "-".into()
            },
        ]);
    }
    t.note(
        "ERR must be sound (no false negatives); the price is stalling on \
            some correct results — e.g. generate-propagate pairs whose carry \
            dies inside the next window",
    );
    t
}

/// The effect of the fanout-buffering pass on each design.
pub fn buffering_ablation(_config: &Config) -> Table {
    let mut t = Table::new(
        "ext.buffering",
        "Fanout buffering ablation (64-bit designs, delay in ns)",
        &[
            "design",
            "raw",
            "buffered(4)",
            "buffered(8)",
            "buffered(16)",
            "best",
        ],
    );
    let designs: Vec<(&str, gatesim::Netlist)> = vec![
        ("kogge-stone", adders::prefix::kogge_stone_adder(64)),
        ("sklansky", adders::prefix::sklansky_adder(64)),
        ("scsa1 k=14", vlcsa::netlist::scsa1_netlist(64, 14)),
        ("vlcsa1 k=14", vlcsa::netlist::vlcsa1_netlist(64, 14)),
    ];
    for (name, net) in designs {
        let raw = sta::analyze(&net).critical_delay_ns();
        let mut row = vec![name.to_string(), format!("{raw:.3}")];
        let mut best = raw;
        for limit in [4u32, 8, 16] {
            let d = sta::analyze(&opt::buffer_fanout(&net, limit)).critical_delay_ns();
            best = best.min(d);
            row.push(format!("{d:.3}"));
        }
        row.push(format!("{best:.3}"));
        t.row(row);
    }
    t.note(
        "high-fanout select lines and Sklansky's divide-and-conquer nodes \
            gain the most; Kogge-Stone is nearly load-balanced already",
    );
    t
}

/// DSP accumulation workload (the intro's signal-processing application):
/// chain profile of a traced FIR accumulator and engine latency on it.
pub fn dsp(config: &Config) -> Table {
    use workloads::chains::ChainHistogram;
    use workloads::crypto::{AddSink, PairCollector};
    use workloads::dsp;

    let width = dsp::ACC_WIDTH;
    let mut hist = ChainHistogram::new(width);
    let mut pairs = PairCollector::with_cap(Some(100_000));
    struct Tee<'a>(&'a mut ChainHistogram, &'a mut PairCollector);
    impl AddSink for Tee<'_> {
        fn record_add(&mut self, a: &UBig, b: &UBig) {
            self.0.record(a, b);
            self.1.record_add(a, b);
        }
    }
    let samples = (config.mc_samples / 15).clamp(500, 20_000);
    let _ = dsp::run_fir(
        samples,
        &dsp::default_taps(),
        0xE006,
        &mut Tee(&mut hist, &mut pairs),
    );

    let mut t = Table::new(
        "ext.dsp",
        "FIR accumulation workload: chain profile and engine latency (32-bit)",
        &["engine", "k", "stall rate", "avg cycles"],
    );
    for k in [8usize, 10, 13] {
        let v1 = Vlcsa1::new(width, k);
        let v2 = Vlcsa2::new(width, k);
        let mut s1 = LatencyStats::new();
        let mut s2 = LatencyStats::new();
        for (a, b) in pairs.pairs() {
            s1.record(&v1.add(a, b));
            s2.record(&v2.add(a, b));
        }
        t.row(vec![
            "VLCSA1".into(),
            k.to_string(),
            pct(s1.stall_rate()),
            format!("{:.4}", s1.avg_cycles()),
        ]);
        t.row(vec![
            "VLCSA2".into(),
            k.to_string(),
            pct(s2.stall_rate()),
            format!("{:.4}", s2.avg_cycles()),
        ]);
    }
    t.note(format!(
        "{} traced accumulator additions; {:.1}% contain a chain >= 8 bits \
         and {:.1}% >= 12 bits (sign-alternating products: chains cross the \
         window boundaries of small-k designs)",
        hist.additions(),
        100.0 * hist.additions_with_chain_at_least(8),
        100.0 * hist.additions_with_chain_at_least(12)
    ));
    t
}

/// Switching-activity power of the competing designs (extension: the
/// intro's low-power motivation, quantified with the gatesim power model).
pub fn power(config: &Config) -> Table {
    let n = 64;
    let mut t = Table::new(
        "ext.power",
        "Switching activity per addition (64-bit, normalized switched capacitance)",
        &["design", "cells", "switched cap/op", "vs KS"],
    );
    let transitions = config.mc_samples.clamp(2_048, 65_536);
    let tune = |net: &gatesim::Netlist| opt::best_buffered(net, &[4, 8, 16]);
    let designs: Vec<(String, gatesim::Netlist)> = vec![
        (
            "kogge-stone".into(),
            tune(&adders::prefix::kogge_stone_adder(n)),
        ),
        (
            "brent-kung".into(),
            tune(&adders::prefix::brent_kung_adder(n)),
        ),
        (
            "scsa1 k=14".into(),
            tune(&vlcsa::netlist::scsa1_netlist(n, 14)),
        ),
        (
            "vlcsa1 k=14".into(),
            tune(&vlcsa::netlist::vlcsa1_netlist(n, 14)),
        ),
        (
            "vlcsa2 k=13".into(),
            tune(&vlcsa::netlist::vlcsa2_netlist(n, 13)),
        ),
        (
            "vlsa l=17".into(),
            tune(&vlsa::netlist::vlsa_netlist(n, 17)),
        ),
    ];
    let ks_cap = gatesim::power::estimate(&designs[0].1, transitions, 0xE005).switched_cap_per_op;
    for (name, net) in &designs {
        let p = gatesim::power::estimate(net, transitions, 0xE005);
        t.row(vec![
            name.clone(),
            net.cell_count().to_string(),
            format!("{:.1}", p.switched_cap_per_op),
            format!("{:+.1}%", 100.0 * (p.switched_cap_per_op / ks_cap - 1.0)),
        ]);
    }
    t.note(format!(
        "{transitions} random vector transitions per design"
    ));
    t.note(
        "speculation does NOT save switching: the twin conditional sums \
            and select muxes toggle more than one full-width prefix tree, \
            and detection + recovery add more — SCSA buys delay and area, \
            not dynamic power (Brent-Kung is the low-power point)",
    );
    t
}

/// Window-adder style ablation: the paper picks Kogge–Stone windows for
/// speed (Ch. 4.1); quantify against Brent–Kung and Sklansky windows.
pub fn window_style(_config: &Config) -> Table {
    use vlcsa::netlist::WindowStyle;
    let mut t = Table::new(
        "ext.window_style",
        "SCSA 1 window-adder style ablation (delay ns / area um2)",
        &["n", "k", "kogge-stone", "brent-kung", "sklansky"],
    );
    let tune = |net: &gatesim::Netlist| opt::best_buffered(net, &[4, 8, 16]);
    for (n, k) in [(64usize, 14usize), (256, 16)] {
        let mut row = vec![n.to_string(), k.to_string()];
        for style in [
            WindowStyle::KoggeStone,
            WindowStyle::BrentKung,
            WindowStyle::Sklansky,
        ] {
            let net = tune(&vlcsa::netlist::scsa1_netlist_styled(n, k, style));
            let timing = sta::analyze(&net);
            let d = timing.output_arrival_tau("sum").unwrap() * gatesim::PS_PER_TAU / 1000.0;
            let a = gatesim::area::analyze(&net).total_um2();
            row.push(format!("{d:.3} / {a:.0}"));
        }
        t.row(row);
    }
    t.note(
        "even at 14-16 bit windows the style matters: Kogge-Stone \
            windows are ~20-30% faster than Brent-Kung ones (which win \
            area) — quantifying why the paper picks Kogge-Stone (Ch. 4.1)",
    );
    t
}

/// Exports Verilog for the headline designs.
pub fn verilog_export(config: &Config) -> Table {
    let mut t = Table::new(
        "ext.verilog",
        "Structural Verilog export",
        &["design", "cells", "verilog lines", "file"],
    );
    let designs: Vec<gatesim::Netlist> = vec![
        adders::prefix::kogge_stone_adder(64),
        vlcsa::netlist::scsa1_netlist(64, 14),
        vlcsa::netlist::vlcsa1_netlist(64, 14),
        vlcsa::netlist::vlcsa2_netlist(64, 13),
    ];
    let dir = config.out_dir.as_ref().map(|d| d.join("verilog"));
    if let Some(dir) = &dir {
        let _ = std::fs::create_dir_all(dir);
    }
    for net in designs {
        let text = verilog::emit(&net);
        let lines = text.lines().count();
        let file = match &dir {
            Some(dir) => {
                let path = dir.join(format!("{}.v", net.name()));
                match std::fs::write(&path, &text) {
                    Ok(()) => path.display().to_string(),
                    Err(e) => format!("write failed: {e}"),
                }
            }
            None => "(not written: no --out dir)".into(),
        };
        t.row(vec![
            net.name().to_string(),
            net.cell_count().to_string(),
            lines.to_string(),
            file,
        ]);
    }
    t.note(
        "the same artifact the paper's C++ generators produced for Design \
            Compiler; feed to any external flow for cross-validation",
    );
    t
}

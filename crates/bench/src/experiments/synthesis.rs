//! Synthesis (delay/area) experiments: Figs. 7.2–7.11.
//!
//! Every design goes through the same flow: generate the netlist, apply the
//! delay-driven optimization passes (`sweep` + fanout-buffering candidates),
//! then measure with the load-aware STA and the area model. Delays are
//! reported in ns and areas in µm² under the calibrated 65 nm-style library
//! (see `gatesim`).

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use gatesim::{area, opt, sta, Netlist};

use crate::table::Table;
use crate::Config;

use super::{
    vlsa_chains_0p01, windows_0p01, windows_0p25, VLCSA2_WINDOW_0P01, VLCSA2_WINDOW_0P25, WIDTHS,
};

/// The optimization pipeline applied to every candidate design.
fn tune(netlist: &Netlist) -> Netlist {
    opt::best_buffered(netlist, &[4, 8, 16])
}

fn delay_ns(netlist: &Netlist) -> f64 {
    sta::analyze(netlist).critical_delay_ns()
}

fn bus_delay_ns(netlist: &Netlist, bus: &str) -> f64 {
    sta::analyze(netlist)
        .output_arrival_tau(bus)
        .expect("bus exists")
        * gatesim::PS_PER_TAU
        / 1000.0
}

fn area_um2(netlist: &Netlist) -> f64 {
    area::analyze(netlist).total_um2()
}

fn pct_vs(x: f64, reference: f64) -> String {
    format!("{:+.1}%", 100.0 * (x - reference) / reference)
}

/// The tuned Kogge–Stone reference per width (cached).
fn kogge_stone(width: usize) -> Netlist {
    static CACHE: OnceLock<Mutex<HashMap<usize, Netlist>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().expect("cache lock");
    map.entry(width)
        .or_insert_with(|| tune(&adders::prefix::kogge_stone_adder(width)))
        .clone()
}

/// The DesignWare-substitute choice per width (cached — it synthesizes the
/// whole candidate family).
fn designware(width: usize) -> Netlist {
    static CACHE: OnceLock<Mutex<HashMap<usize, Netlist>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().expect("cache lock");
    map.entry(width)
        .or_insert_with(|| adders::designware::best(width).netlist)
        .clone()
}

/// Fig. 7.2: delay of the speculative adders vs Kogge–Stone.
pub fn fig7_2(_config: &Config) -> Table {
    let mut t = Table::new(
        "fig7.2",
        "Delay of speculative adders and Kogge-Stone adder",
        &[
            "n",
            "KS (ns)",
            "VLSA-spec (ns)",
            "SCSA 1 (ns)",
            "VLSA vs KS",
            "SCSA vs KS",
        ],
    );
    let ks01 = windows_0p01();
    let ls01 = vlsa_chains_0p01();
    for (i, &n) in WIDTHS.iter().enumerate() {
        let ks = delay_ns(&kogge_stone(n));
        let vl = bus_delay_ns(
            &tune(&vlsa::netlist::vlsa_spec_netlist(n, ls01[i].1)),
            "sum",
        );
        let sc = bus_delay_ns(&tune(&vlcsa::netlist::scsa1_netlist(n, ks01[i].1)), "sum");
        t.row(vec![
            n.to_string(),
            format!("{ks:.3}"),
            format!("{vl:.3}"),
            format!("{sc:.3}"),
            pct_vs(vl, ks),
            pct_vs(sc, ks),
        ]);
    }
    t.note(
        "0.01% designs (Table 7.3 parameters); paper: SCSA 18-38% below KS, \
            VLSA-spec 12-27% below KS",
    );
    t
}

/// Fig. 7.3: area of the speculative adders vs Kogge–Stone.
pub fn fig7_3(_config: &Config) -> Table {
    let mut t = Table::new(
        "fig7.3",
        "Area of speculative adders and Kogge-Stone adder",
        &[
            "n",
            "KS (um2)",
            "VLSA-spec (um2)",
            "SCSA 1 (um2)",
            "VLSA vs KS",
            "SCSA vs KS",
        ],
    );
    let ks01 = windows_0p01();
    let ls01 = vlsa_chains_0p01();
    for (i, &n) in WIDTHS.iter().enumerate() {
        let ks = area_um2(&kogge_stone(n));
        let vl = area_um2(&tune(&vlsa::netlist::vlsa_spec_netlist(n, ls01[i].1)));
        let sc = area_um2(&tune(&vlcsa::netlist::scsa1_netlist(n, ks01[i].1)));
        t.row(vec![
            n.to_string(),
            format!("{ks:.0}"),
            format!("{vl:.0}"),
            format!("{sc:.0}"),
            pct_vs(vl, ks),
            pct_vs(sc, ks),
        ]);
    }
    t.note("paper: SCSA 15-38% below KS and always smaller than VLSA-spec");
    t
}

/// Fig. 7.4: the three delays of each variable-latency adder vs KS.
pub fn fig7_4(_config: &Config) -> Table {
    let mut t = Table::new(
        "fig7.4",
        "Delay of variable latency adders and Kogge-Stone adder (ns)",
        &[
            "n",
            "KS",
            "VLSA spec",
            "VLSA detect",
            "VLSA recover",
            "VLCSA1 spec",
            "VLCSA1 detect",
            "VLCSA1 recover",
            "VLCSA1 vs VLSA (correct-op)",
        ],
    );
    let ks01 = windows_0p01();
    let ls01 = vlsa_chains_0p01();
    for (i, &n) in WIDTHS.iter().enumerate() {
        let ks = delay_ns(&kogge_stone(n));
        let vl = tune(&vlsa::netlist::vlsa_netlist(n, ls01[i].1));
        let vc = tune(&vlcsa::netlist::vlcsa1_netlist(n, ks01[i].1));
        let (vl_s, vl_d, vl_r) = (
            bus_delay_ns(&vl, "sum"),
            bus_delay_ns(&vl, "err"),
            bus_delay_ns(&vl, "sum_exact"),
        );
        let (vc_s, vc_d, vc_r) = (
            bus_delay_ns(&vc, "sum"),
            bus_delay_ns(&vc, "err"),
            bus_delay_ns(&vc, "sum_rec"),
        );
        let correct_vl = vl_s.max(vl_d);
        let correct_vc = vc_s.max(vc_d);
        t.row(vec![
            n.to_string(),
            format!("{ks:.3}"),
            format!("{vl_s:.3}"),
            format!("{vl_d:.3}"),
            format!("{vl_r:.3}"),
            format!("{vc_s:.3}"),
            format!("{vc_d:.3}"),
            format!("{vc_r:.3}"),
            pct_vs(correct_vc, correct_vl),
        ]);
    }
    t.note(
        "correct-op delay = max(speculation, detection) = the clock period \
            T_clk; recovery must close within 2 T_clk (it does, see rows)",
    );
    t.note(
        "paper: VLCSA 1 correct-op 6-19% below VLSA; our VLSA detector lands \
            slightly below its speculative sum instead of 4-8% above \
            (shared-plane mapping; see EXPERIMENTS.md deviations)",
    );
    t
}

/// Fig. 7.5: areas of the variable-latency adders vs KS.
pub fn fig7_5(_config: &Config) -> Table {
    let mut t = Table::new(
        "fig7.5",
        "Area of variable latency adders and Kogge-Stone adder",
        &[
            "n",
            "KS (um2)",
            "VLSA (um2)",
            "VLCSA1 (um2)",
            "VLSA vs KS",
            "VLCSA1 vs KS",
        ],
    );
    let ks01 = windows_0p01();
    let ls01 = vlsa_chains_0p01();
    for (i, &n) in WIDTHS.iter().enumerate() {
        let ks = area_um2(&kogge_stone(n));
        let vl = area_um2(&tune(&vlsa::netlist::vlsa_netlist(n, ls01[i].1)));
        let vc = area_um2(&tune(&vlcsa::netlist::vlcsa1_netlist(n, ks01[i].1)));
        t.row(vec![
            n.to_string(),
            format!("{ks:.0}"),
            format!("{vl:.0}"),
            format!("{vc:.0}"),
            pct_vs(vl, ks),
            pct_vs(vc, ks),
        ]);
    }
    t.note("paper: VLSA 14-32% above KS; VLCSA 1 between -6% and +17% of KS");
    t
}

/// `(n, parameter)` pairs for one error-rate column of a DesignWare
/// comparison.
type ParamColumn<'a> = &'a [(usize, usize)];

/// Shared body for the DesignWare comparisons (Figs. 7.6–7.11).
fn dw_comparison(
    id: &str,
    title: &str,
    is_delay: bool,
    design: impl Fn(usize, usize) -> Netlist,
    params: (ParamColumn, ParamColumn),
    timing_buses: Option<&[&str]>,
) -> Table {
    let unit = if is_delay { "ns" } else { "um2" };
    let mut t = Table::new(
        id,
        title,
        &[
            "n",
            &format!("DW ({unit})"),
            &format!("@0.01% ({unit})"),
            "vs DW",
            &format!("@0.25% ({unit})"),
            "vs DW",
        ],
    );
    let (p01, p25) = params;
    for (i, &n) in WIDTHS.iter().enumerate() {
        let dw_net = designware(n);
        let dw = if is_delay {
            delay_ns(&dw_net)
        } else {
            area_um2(&dw_net)
        };
        let measure = |k: usize| {
            let net = tune(&design(n, k));
            if is_delay {
                match timing_buses {
                    // Correct-operation delay: max over the named stages
                    // (speculative result(s) and detection).
                    Some(buses) => {
                        let timing = sta::analyze(&net);
                        buses
                            .iter()
                            .filter_map(|bus| timing.output_arrival_tau(bus))
                            .fold(0.0f64, f64::max)
                            * gatesim::PS_PER_TAU
                            / 1000.0
                    }
                    None => delay_ns(&net),
                }
            } else {
                area_um2(&net)
            }
        };
        let v01 = measure(p01[i].1);
        let v25 = measure(p25[i].1);
        let f = |v: f64| {
            if is_delay {
                format!("{v:.3}")
            } else {
                format!("{v:.0}")
            }
        };
        t.row(vec![
            n.to_string(),
            f(dw),
            f(v01),
            pct_vs(v01, dw),
            f(v25),
            pct_vs(v25, dw),
        ]);
    }
    t
}

/// Fig. 7.6: SCSA 1 delay vs the DesignWare substitute.
pub fn fig7_6(_config: &Config) -> Table {
    let k01 = windows_0p01();
    let k25 = windows_0p25();
    let mut t = dw_comparison(
        "fig7.6",
        "Delay of speculative addition in VLCSA 1 and DesignWare adder",
        true,
        vlcsa::netlist::scsa1_netlist,
        (&k01, &k25),
        Some(&["sum"]),
    );
    t.note("paper: SCSA 1 ~10% below the DW adder at both error rates");
    t
}

/// Fig. 7.7: SCSA 1 area vs the DesignWare substitute.
pub fn fig7_7(_config: &Config) -> Table {
    let k01 = windows_0p01();
    let k25 = windows_0p25();
    let mut t = dw_comparison(
        "fig7.7",
        "Area of speculative addition in VLCSA 1 and DesignWare adder",
        false,
        vlcsa::netlist::scsa1_netlist,
        (&k01, &k25),
        None,
    );
    t.note("paper: up to 43% (0.01%) and 21-56% (0.25%) below the DW adder");
    t
}

/// Fig. 7.8: VLCSA 1 correct-operation delay vs the DesignWare substitute.
pub fn fig7_8(_config: &Config) -> Table {
    let k01 = windows_0p01();
    let k25 = windows_0p25();
    let mut t = dw_comparison(
        "fig7.8",
        "Delay of VLCSA 1 and DesignWare adder (correct speculation)",
        true,
        vlcsa::netlist::vlcsa1_netlist,
        (&k01, &k25),
        Some(&["sum", "err"]),
    );
    t.note("paper: ~10% below the DW adder when speculation is correct");
    t
}

/// Fig. 7.9: VLCSA 1 area vs the DesignWare substitute.
pub fn fig7_9(_config: &Config) -> Table {
    let k01 = windows_0p01();
    let k25 = windows_0p25();
    let mut t = dw_comparison(
        "fig7.9",
        "Area of VLCSA 1 and DesignWare adder",
        false,
        vlcsa::netlist::vlcsa1_netlist,
        (&k01, &k25),
        None,
    );
    t.note(
        "paper: -6..+42% (0.01%) and -19..+16% (0.25%) of the DW adder, \
            shrinking with width",
    );
    t
}

/// Fig. 7.10: VLCSA 2 correct-operation delay vs the DesignWare substitute.
pub fn fig7_10(_config: &Config) -> Table {
    let p01: Vec<(usize, usize)> = WIDTHS.iter().map(|&n| (n, VLCSA2_WINDOW_0P01)).collect();
    let p25: Vec<(usize, usize)> = WIDTHS.iter().map(|&n| (n, VLCSA2_WINDOW_0P25)).collect();
    let mut t = dw_comparison(
        "fig7.10",
        "Delay of VLCSA 2 and DesignWare adder (correct speculation)",
        true,
        vlcsa::netlist::vlcsa2_netlist,
        (&p01, &p25),
        // Sec. 6.7: T_clk > max(spec0, spec1, ERR0, ERR1); the output
        // steering mux overlaps the output register.
        Some(&["spec0", "spec1", "err", "err1"]),
    );
    t.note("window sizes 13/9 per Table 7.5 (re-derived by the tab7.5 experiment)");
    t.note("paper: ~10% below the DW adder when speculation is correct");
    t
}

/// Fig. 7.11: VLCSA 2 area vs the DesignWare substitute.
pub fn fig7_11(_config: &Config) -> Table {
    let p01: Vec<(usize, usize)> = WIDTHS.iter().map(|&n| (n, VLCSA2_WINDOW_0P01)).collect();
    let p25: Vec<(usize, usize)> = WIDTHS.iter().map(|&n| (n, VLCSA2_WINDOW_0P25)).collect();
    let mut t = dw_comparison(
        "fig7.11",
        "Area of VLCSA 2 and DesignWare adder",
        false,
        vlcsa::netlist::vlcsa2_netlist,
        (&p01, &p25),
        None,
    );
    t.note(
        "paper: +1..62% (0.01%) and -17..+29% (0.25%) of the DW adder; \
            larger than VLCSA 1 due to the second speculative result",
    );
    t
}

//! Synthesis (delay/area) experiments: Figs. 7.2–7.11.
//!
//! Every design goes through the same flow: generate the netlist, apply the
//! delay-driven optimization passes (`sweep` + fanout-buffering candidates),
//! then measure with the load-aware STA and the area model. Delays are
//! reported in ns and areas in µm² under the calibrated 65 nm-style library
//! (see `gatesim`).
//!
//! The families themselves — constructor, error-rate parameter tables,
//! correct-operation timing buses — come from the
//! [`netlists`](super::netlists) registry; no figure hand-lists a
//! `vlcsa::netlist::*` constructor anymore. The speculation figures
//! iterate the registry, and the DesignWare comparisons are one shared
//! body parameterized by a family *name*.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use gatesim::{area, opt, sta, Netlist};

use crate::table::Table;
use crate::Config;

use super::netlists::{family, NetlistFamily};
use super::WIDTHS;

/// The optimization pipeline applied to every candidate design.
fn tune(netlist: &Netlist) -> Netlist {
    opt::best_buffered(netlist, &[4, 8, 16])
}

fn delay_ns(netlist: &Netlist) -> f64 {
    sta::analyze(netlist).critical_delay_ns()
}

fn bus_delay_ns(netlist: &Netlist, bus: &str) -> f64 {
    sta::analyze(netlist)
        .output_arrival_tau(bus)
        .expect("bus exists")
        * gatesim::PS_PER_TAU
        / 1000.0
}

/// Correct-operation delay of a registry family's tuned netlist: the
/// latest arrival over the family's registered timing buses (falling back
/// to the whole-netlist critical path when none are registered).
fn correct_op_delay_ns(fam: &NetlistFamily, netlist: &Netlist) -> f64 {
    match fam.timing_buses {
        Some(buses) => {
            let timing = sta::analyze(netlist);
            buses
                .iter()
                .filter_map(|bus| timing.output_arrival_tau(bus))
                .fold(0.0f64, f64::max)
                * gatesim::PS_PER_TAU
                / 1000.0
        }
        None => delay_ns(netlist),
    }
}

fn area_um2(netlist: &Netlist) -> f64 {
    area::analyze(netlist).total_um2()
}

fn pct_vs(x: f64, reference: f64) -> String {
    format!("{:+.1}%", 100.0 * (x - reference) / reference)
}

/// A family's tuned netlist at its 0.01% parameter for `width`.
fn tuned_0p01(fam: &NetlistFamily, width: usize) -> Netlist {
    tune(&(fam.build)(width, fam.param_0p01(width)))
}

/// The tuned Kogge–Stone reference per width (cached).
fn kogge_stone(width: usize) -> Netlist {
    static CACHE: OnceLock<Mutex<HashMap<usize, Netlist>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().expect("cache lock");
    map.entry(width)
        .or_insert_with(|| tune(&adders::prefix::kogge_stone_adder(width)))
        .clone()
}

/// The DesignWare-substitute choice per width (cached — it synthesizes the
/// whole candidate family).
fn designware(width: usize) -> Netlist {
    static CACHE: OnceLock<Mutex<HashMap<usize, Netlist>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().expect("cache lock");
    map.entry(width)
        .or_insert_with(|| adders::designware::best(width).netlist)
        .clone()
}

/// The registry families of the speculation-only comparison (Figs.
/// 7.2/7.3), in column order.
fn speculative_families() -> [NetlistFamily; 2] {
    [family("vlsa-spec"), family("scsa1")]
}

/// Shared body of Figs. 7.2/7.3: one measured column per speculative
/// registry family plus the Kogge–Stone reference and vs-KS percentages.
fn speculation_vs_ks(
    id: &str,
    title: &str,
    unit: &str,
    fmt: fn(f64) -> String,
    measure: impl Fn(&NetlistFamily, &Netlist) -> f64,
    ks_measure: impl Fn(&Netlist) -> f64,
) -> Table {
    let fams = speculative_families();
    let mut columns = vec!["n".to_string(), format!("KS ({unit})")];
    let labels = ["VLSA-spec", "SCSA 1"];
    for label in labels {
        columns.push(format!("{label} ({unit})"));
    }
    for label in ["VLSA", "SCSA"] {
        columns.push(format!("{label} vs KS"));
    }
    let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut t = Table::new(id, title, &column_refs);
    for &n in WIDTHS.iter() {
        let ks = ks_measure(&kogge_stone(n));
        let measured: Vec<f64> = fams
            .iter()
            .map(|fam| measure(fam, &tuned_0p01(fam, n)))
            .collect();
        let mut row = vec![n.to_string(), fmt(ks)];
        row.extend(measured.iter().map(|&v| fmt(v)));
        row.extend(measured.iter().map(|v| pct_vs(*v, ks)));
        t.row(row);
    }
    t
}

/// Fig. 7.2: delay of the speculative adders vs Kogge–Stone.
pub fn fig7_2(_config: &Config) -> Table {
    let mut t = speculation_vs_ks(
        "fig7.2",
        "Delay of speculative adders and Kogge-Stone adder",
        "ns",
        |v| format!("{v:.3}"),
        correct_op_delay_ns,
        delay_ns,
    );
    t.note(
        "0.01% designs (Table 7.3 parameters); paper: SCSA 18-38% below KS, \
            VLSA-spec 12-27% below KS",
    );
    t
}

/// Fig. 7.3: area of the speculative adders vs Kogge–Stone.
pub fn fig7_3(_config: &Config) -> Table {
    let mut t = speculation_vs_ks(
        "fig7.3",
        "Area of speculative adders and Kogge-Stone adder",
        "um2",
        |v| format!("{v:.0}"),
        |_, netlist| area_um2(netlist),
        area_um2,
    );
    t.note("paper: SCSA 15-38% below KS and always smaller than VLSA-spec");
    t
}

/// Fig. 7.4: the three delays of each variable-latency adder vs KS.
pub fn fig7_4(_config: &Config) -> Table {
    let mut t = Table::new(
        "fig7.4",
        "Delay of variable latency adders and Kogge-Stone adder (ns)",
        &[
            "n",
            "KS",
            "VLSA spec",
            "VLSA detect",
            "VLSA recover",
            "VLCSA1 spec",
            "VLCSA1 detect",
            "VLCSA1 recover",
            "VLCSA1 vs VLSA (correct-op)",
        ],
    );
    let (vlsa, vlcsa1) = (family("vlsa"), family("vlcsa1"));
    for &n in WIDTHS.iter() {
        let ks = delay_ns(&kogge_stone(n));
        let vl = tuned_0p01(&vlsa, n);
        let vc = tuned_0p01(&vlcsa1, n);
        let (vl_s, vl_d, vl_r) = (
            bus_delay_ns(&vl, "sum"),
            bus_delay_ns(&vl, "err"),
            bus_delay_ns(&vl, "sum_exact"),
        );
        let (vc_s, vc_d, vc_r) = (
            bus_delay_ns(&vc, "sum"),
            bus_delay_ns(&vc, "err"),
            bus_delay_ns(&vc, "sum_rec"),
        );
        // Correct-op delays via the registered bus sets.
        let correct_vl = correct_op_delay_ns(&vlsa, &vl);
        let correct_vc = correct_op_delay_ns(&vlcsa1, &vc);
        t.row(vec![
            n.to_string(),
            format!("{ks:.3}"),
            format!("{vl_s:.3}"),
            format!("{vl_d:.3}"),
            format!("{vl_r:.3}"),
            format!("{vc_s:.3}"),
            format!("{vc_d:.3}"),
            format!("{vc_r:.3}"),
            pct_vs(correct_vc, correct_vl),
        ]);
    }
    t.note(
        "correct-op delay = max(speculation, detection) = the clock period \
            T_clk; recovery must close within 2 T_clk (it does, see rows)",
    );
    t.note(
        "paper: VLCSA 1 correct-op 6-19% below VLSA; our VLSA detector lands \
            slightly below its speculative sum instead of 4-8% above \
            (shared-plane mapping; see EXPERIMENTS.md deviations)",
    );
    t
}

/// Fig. 7.5: areas of the variable-latency adders vs KS.
pub fn fig7_5(_config: &Config) -> Table {
    let mut t = Table::new(
        "fig7.5",
        "Area of variable latency adders and Kogge-Stone adder",
        &[
            "n",
            "KS (um2)",
            "VLSA (um2)",
            "VLCSA1 (um2)",
            "VLSA vs KS",
            "VLCSA1 vs KS",
        ],
    );
    let (vlsa, vlcsa1) = (family("vlsa"), family("vlcsa1"));
    for &n in WIDTHS.iter() {
        let ks = area_um2(&kogge_stone(n));
        let vl = area_um2(&tuned_0p01(&vlsa, n));
        let vc = area_um2(&tuned_0p01(&vlcsa1, n));
        t.row(vec![
            n.to_string(),
            format!("{ks:.0}"),
            format!("{vl:.0}"),
            format!("{vc:.0}"),
            pct_vs(vl, ks),
            pct_vs(vc, ks),
        ]);
    }
    t.note("paper: VLSA 14-32% above KS; VLCSA 1 between -6% and +17% of KS");
    t
}

/// Shared body for the DesignWare comparisons (Figs. 7.6–7.11): the
/// measured design comes from the named registry family at both
/// error-rate targets; delay figures bound correct operation with the
/// family's registered timing buses.
fn dw_comparison(id: &str, title: &str, is_delay: bool, family_name: &str) -> Table {
    let fam = family(family_name);
    let unit = if is_delay { "ns" } else { "um2" };
    let mut t = Table::new(
        id,
        title,
        &[
            "n",
            &format!("DW ({unit})"),
            &format!("@0.01% ({unit})"),
            "vs DW",
            &format!("@0.25% ({unit})"),
            "vs DW",
        ],
    );
    for &n in WIDTHS.iter() {
        let dw_net = designware(n);
        let dw = if is_delay {
            delay_ns(&dw_net)
        } else {
            area_um2(&dw_net)
        };
        let measure = |k: usize| {
            let net = tune(&(fam.build)(n, k));
            if is_delay {
                correct_op_delay_ns(&fam, &net)
            } else {
                area_um2(&net)
            }
        };
        let v01 = measure(fam.param_0p01(n));
        let v25 = measure(fam.param_0p25(n));
        let f = |v: f64| {
            if is_delay {
                format!("{v:.3}")
            } else {
                format!("{v:.0}")
            }
        };
        t.row(vec![
            n.to_string(),
            f(dw),
            f(v01),
            pct_vs(v01, dw),
            f(v25),
            pct_vs(v25, dw),
        ]);
    }
    t
}

/// Fig. 7.6: SCSA 1 delay vs the DesignWare substitute.
pub fn fig7_6(_config: &Config) -> Table {
    let mut t = dw_comparison(
        "fig7.6",
        "Delay of speculative addition in VLCSA 1 and DesignWare adder",
        true,
        "scsa1",
    );
    t.note("paper: SCSA 1 ~10% below the DW adder at both error rates");
    t
}

/// Fig. 7.7: SCSA 1 area vs the DesignWare substitute.
pub fn fig7_7(_config: &Config) -> Table {
    let mut t = dw_comparison(
        "fig7.7",
        "Area of speculative addition in VLCSA 1 and DesignWare adder",
        false,
        "scsa1",
    );
    t.note("paper: up to 43% (0.01%) and 21-56% (0.25%) below the DW adder");
    t
}

/// Fig. 7.8: VLCSA 1 correct-operation delay vs the DesignWare substitute.
pub fn fig7_8(_config: &Config) -> Table {
    let mut t = dw_comparison(
        "fig7.8",
        "Delay of VLCSA 1 and DesignWare adder (correct speculation)",
        true,
        "vlcsa1",
    );
    t.note("paper: ~10% below the DW adder when speculation is correct");
    t
}

/// Fig. 7.9: VLCSA 1 area vs the DesignWare substitute.
pub fn fig7_9(_config: &Config) -> Table {
    let mut t = dw_comparison(
        "fig7.9",
        "Area of VLCSA 1 and DesignWare adder",
        false,
        "vlcsa1",
    );
    t.note(
        "paper: -6..+42% (0.01%) and -19..+16% (0.25%) of the DW adder, \
            shrinking with width",
    );
    t
}

/// Fig. 7.10: VLCSA 2 correct-operation delay vs the DesignWare substitute.
pub fn fig7_10(_config: &Config) -> Table {
    let mut t = dw_comparison(
        "fig7.10",
        "Delay of VLCSA 2 and DesignWare adder (correct speculation)",
        true,
        "vlcsa2",
    );
    t.note("window sizes 13/9 per Table 7.5 (re-derived by the tab7.5 experiment)");
    t.note("paper: ~10% below the DW adder when speculation is correct");
    t
}

/// Fig. 7.11: VLCSA 2 area vs the DesignWare substitute.
pub fn fig7_11(_config: &Config) -> Table {
    let mut t = dw_comparison(
        "fig7.11",
        "Area of VLCSA 2 and DesignWare adder",
        false,
        "vlcsa2",
    );
    t.note(
        "paper: +1..62% (0.01%) and -17..+29% (0.25%) of the DW adder; \
            larger than VLCSA 1 due to the second speculative result",
    );
    t
}

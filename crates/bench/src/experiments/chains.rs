//! Carry-chain profiling experiments: Figs. 6.1–6.5, plus the
//! registry-driven sweeps `ext.chain_engines` (chained reductions) and
//! `ext.dist_engines` (per-distribution latency, every family).

use bitnum::batch::WideSlab;
use bitnum::UBig;
use vlcsa::engine::Registry;
use vlcsa::exec::Executor;
use vlcsa::program::Program;
use workloads::chains::ChainHistogram;
use workloads::crypto::CryptoBench;
use workloads::dist::{Distribution, OperandSource};

use crate::table::{pct, Table};
use crate::Config;

/// σ for the 32-bit profiling figures (the paper does not state the value
/// used for its 32-bit examples; 2⁸ keeps operands "small" relative to the
/// 32-bit range exactly as its Fig. 6.4/6.5 show).
const SIGMA_32: f64 = 256.0;

fn histogram(dist: Distribution, width: usize, samples: usize, seed: u64) -> ChainHistogram {
    let mut src = OperandSource::new(dist, width, seed);
    let mut hist = ChainHistogram::new(width);
    for _ in 0..samples {
        let (a, b) = src.next_pair();
        hist.record(&a, &b);
    }
    hist
}

fn histogram_table(id: &str, title: &str, dist: Distribution, config: &Config) -> Table {
    let width = 32;
    let hist = histogram(dist, width, config.mc_samples, 0x6001);
    let mut t = Table::new(
        id,
        title,
        &["chain length", "% of chains", "% of adds with chain >= len"],
    );
    for (len, share) in hist.rows() {
        t.row(vec![
            len.to_string(),
            format!("{share:.3}%"),
            format!("{:.3}%", 100.0 * hist.additions_with_chain_at_least(len)),
        ]);
    }
    t.note(format!(
        "{} additions of width {width}, distribution {}; mean chain length {:.2}",
        hist.additions(),
        dist.name(),
        hist.mean_len()
    ));
    t
}

/// Fig. 6.1: unsigned uniform inputs.
pub fn fig6_1(config: &Config) -> Table {
    histogram_table(
        "fig6.1",
        "Carry chain lengths for unsigned random inputs (32-bit adder)",
        Distribution::UnsignedUniform,
        config,
    )
}

/// Fig. 6.3: two's-complement uniform inputs.
pub fn fig6_3(config: &Config) -> Table {
    let mut t = histogram_table(
        "fig6.3",
        "Carry chain lengths for 2's complement random inputs (32-bit adder)",
        Distribution::TwosComplementUniform,
        config,
    );
    t.note("uniform bit patterns: statistics match Fig. 6.1, as the paper observes");
    t
}

/// Fig. 6.4: unsigned Gaussian inputs.
pub fn fig6_4(config: &Config) -> Table {
    histogram_table(
        "fig6.4",
        "Carry chain lengths for unsigned Gaussian inputs (32-bit adder)",
        Distribution::UnsignedGaussian { sigma: SIGMA_32 },
        config,
    )
}

/// Fig. 6.5: two's-complement Gaussian inputs — the bimodal case.
pub fn fig6_5(config: &Config) -> Table {
    let mut t = histogram_table(
        "fig6.5",
        "Carry chain lengths for 2's complement Gaussian inputs (32-bit adder)",
        Distribution::TwosComplementGaussian { sigma: SIGMA_32 },
        config,
    );
    t.note(
        "bimodal: a nontrivial share of chains is as long as the adder \
            (small positive + small negative additions)",
    );
    t
}

/// Extension: the chained N-operand reduction swept over every `Registry`
/// family — no hand-listed engine loop; the table grows automatically
/// when the registry does.
///
/// For each family and N ∈ {2, 4, 8}, the same Gaussian operand stream
/// (the Fig. 6.5 bimodal case, where variable-latency stalls actually
/// occur) is summed two ways: a sequential fold of N−1 dependent
/// carry-resolves through `Engine::add_one`, and the carry-save program
/// `Program::sum(N)` lowered by `run_csa` to a single resolve per lane.
/// Both paths are checked against each other lane for lane, so the table
/// doubles as an exactness sweep.
pub fn ext_chain_engines(config: &Config) -> Table {
    let width = 32;
    let sums = (config.mc_samples / 100).clamp(64, 20_000);
    let registry = Registry::for_width(width);
    let exec = Executor::new(2);
    let program_cache: Vec<(usize, Program)> = [2usize, 4, 8]
        .iter()
        .map(|&n| (n, Program::sum(n).expect("small sum program")))
        .collect();
    let mut t = Table::new(
        "ext.chain_engines",
        "Chained N-operand reduction across every engine family (32-bit, 2's-complement Gaussian)",
        &[
            "engine",
            "N",
            "fold cycles/sum",
            "csa cycles/sum",
            "fold/csa",
        ],
    );
    for engine in registry.engines() {
        for (n, program) in &program_cache {
            let mut src = OperandSource::new(
                Distribution::TwosComplementGaussian { sigma: SIGMA_32 },
                width,
                0x6005 + *n as u64,
            );
            let columns: Vec<Vec<UBig>> = (0..*n)
                .map(|_| (0..sums).map(|_| src.next_operand()).collect())
                .collect();
            let wide: Vec<WideSlab> = columns.iter().map(|c| WideSlab::from_lanes(c)).collect();
            let out = program.run_csa(engine.as_ref(), &exec, &wide);
            let csa_total = out.total_cycles();
            let mut fold_total = 0u64;
            for l in 0..sums {
                let mut acc = columns[0][l].clone();
                for column in &columns[1..] {
                    let one = engine.add_one(&acc, &column[l]);
                    fold_total += u64::from(one.cycles);
                    acc = one.sum;
                }
                assert_eq!(acc, out.sum.lane(l), "{} N={n} lane {l}", engine.name());
            }
            t.row(vec![
                engine.name().to_string(),
                n.to_string(),
                format!("{:.3}", fold_total as f64 / sums as f64),
                format!("{:.3}", csa_total as f64 / sums as f64),
                format!("{:.2}x", fold_total as f64 / csa_total.max(1) as f64),
            ]);
        }
    }
    t.note(format!(
        "{sums} sums per cell; the fold pays N-1 dependent resolves, the \
            carry-save program exactly one — every family from \
            Registry::for_width({width}) is swept"
    ));
    t
}

/// Fig. 6.2: the four cryptographic benchmarks.
pub fn fig6_2(config: &Config) -> Table {
    let width = CryptoBench::Rsa512.width();
    let mut hists = Vec::new();
    // Iterations scale with the sample budget (each run emits 10^5..10^7
    // traced additions depending on the benchmark).
    let iters = (config.mc_samples / 500_000).clamp(1, 4);
    for bench in CryptoBench::ALL {
        let mut hist = ChainHistogram::new(width);
        bench.run(iters, 0x6002, &mut hist);
        hists.push((bench, hist));
    }
    let mut t = Table::new(
        "fig6.2",
        "Carry chain lengths from cryptographic workloads (32-bit software adds)",
        &["chain length", "RSA", "DH", "ECELGP", "ECDSP"],
    );
    for len in 1..=width {
        let mut row = vec![len.to_string()];
        for (_, hist) in &hists {
            row.push(format!("{:.3}%", 100.0 * hist.share(len)));
        }
        t.row(row);
    }
    for (bench, hist) in &hists {
        t.note(format!(
            "{}: {} traced additions ({} field bits), {:.2}% of adds contain a chain >= 20",
            bench.name(),
            hist.additions(),
            bench.field_bits(),
            100.0 * hist.additions_with_chain_at_least(20)
        ));
    }
    t.note(
        "traces regenerated from our own RSA/DH/EC implementations \
            (word-level datapath + control-plane additions); see DESIGN.md §5",
    );
    t
}

/// `ext.dist_engines`: the four Fig. 6.1–6.5 input distributions, swept
/// over every registry family at the profiling width.
///
/// Figs. 6.1–6.5 profile carry chains per distribution; this table
/// closes the loop by measuring what those chain shapes do to each
/// family's latency: uniform inputs keep chains short and stalls rare,
/// the Gaussian (and especially the bimodal two's-complement Gaussian)
/// workloads push chains toward the MSB and the speculative families
/// into their 2-cycle recovery path.
pub fn ext_dist_engines(config: &Config) -> Table {
    let width = 32;
    let samples = (config.mc_samples / 4).clamp(1_000, 100_000);
    let distributions = [
        Distribution::UnsignedUniform,
        Distribution::TwosComplementUniform,
        Distribution::UnsignedGaussian { sigma: SIGMA_32 },
        Distribution::TwosComplementGaussian { sigma: SIGMA_32 },
    ];
    let registry = Registry::for_width(width);
    let mut t = Table::new(
        "ext.dist_engines",
        "Stall statistics across every engine family and Fig. 6 input distribution (32-bit)",
        &["engine", "distribution", "stall rate (MC)", "mean cycles"],
    );
    for engine in registry.engines() {
        for (i, &dist) in distributions.iter().enumerate() {
            let mut src = OperandSource::new(dist, width, 0xd157 + i as u64);
            let (mut stalls, mut cycles) = (0u64, 0u64);
            for _ in 0..samples {
                let (a, b) = src.next_pair();
                let out = engine.add_one(&a, &b);
                stalls += u64::from(out.cycles == 2);
                cycles += u64::from(out.cycles);
            }
            t.row(vec![
                engine.name().to_string(),
                dist.name().to_string(),
                pct(stalls as f64 / samples as f64),
                format!("{:.4}", cycles as f64 / samples as f64),
            ]);
        }
    }
    t.note(format!(
        "{samples} additions per cell; sigma = 2^8 for the Gaussian rows, \
            matching Figs. 6.4/6.5"
    ));
    t
}

//! Error-model experiments: Fig. 3.5, Fig. 7.1, Tables 7.3/7.4, plus the
//! registry-driven Monte-Carlo sweep `ext.model_engines`.

use bitnum::rng::Xoshiro256;
use bitnum::UBig;
use vlcsa::model::{self, Model, Semantics};
use vlcsa::{OverflowMode, Scsa};

use crate::table::{pct, Table};
use crate::Config;

use super::{vlsa_chains_0p01, windows_0p01, windows_0p25, WIDTHS};

/// Fig. 3.5: predicted error rates (eq. 3.13) for window sizes 4..18.
pub fn fig3_5(_config: &Config) -> Table {
    let mut t = Table::new(
        "fig3.5",
        "Predicted error rates for different adder widths and window sizes",
        &["k", "n=64", "n=128", "n=256", "n=512"],
    );
    for k in 4..=18usize {
        let mut row = vec![k.to_string()];
        for n in WIDTHS {
            // The union bound exceeds 1 at tiny windows; the paper's plot
            // saturates at 1 as a probability must.
            row.push(pct(
                model::paper_error_rate(n, k, OverflowMode::CarryOut).min(1.0)
            ));
        }
        t.row(row);
    }
    t.note(
        "eq. 3.13 as printed (⌈n/k⌉−1 terms), clamped to 1; reference point \
            n=256, k=16 ≈ 0.01%",
    );
    t
}

/// Fig. 7.1: analytical model vs Monte Carlo for unsigned uniform inputs.
pub fn fig7_1(config: &Config) -> Table {
    let mut t = Table::new(
        "fig7.1",
        "Analytical error model vs simulation (unsigned uniform inputs)",
        &[
            "n",
            "k",
            "eq. 3.13",
            "exact model",
            "Monte Carlo",
            "MC/exact",
        ],
    );
    let mut rng = Xoshiro256::seed_from_u64(0x0701);
    for n in WIDTHS {
        for k in [6usize, 8, 10, 12, 14, 16] {
            let scsa = Scsa::new(n, k);
            let mut errors = 0usize;
            for _ in 0..config.mc_samples {
                let a = UBig::random(n, &mut rng);
                let b = UBig::random(n, &mut rng);
                errors += scsa.is_error(&a, &b, OverflowMode::Truncate) as usize;
            }
            let mc = errors as f64 / config.mc_samples as f64;
            let exact = model::exact_error_rate(n, k);
            let paper = model::paper_error_rate(n, k, OverflowMode::CarryOut);
            let ratio = if exact > 0.0 { mc / exact } else { f64::NAN };
            t.row(vec![
                n.to_string(),
                k.to_string(),
                pct(paper),
                pct(exact),
                pct(mc),
                format!("{ratio:.3}"),
            ]);
        }
    }
    t.note(format!(
        "{} Monte Carlo trials per point (paper: 10^7)",
        config.mc_samples
    ));
    t.note(
        "the implemented adder's carry-out is never independently wrong, so MC \
            tracks the exact (truncated) model; eq. 3.13 as printed counts one extra \
            vacuous term (see DESIGN.md §6)",
    );
    t
}

/// Table 7.3: SCSA window size vs VLSA chain length for a 0.01% error rate.
pub fn tab7_3(_config: &Config) -> Table {
    let mut t = Table::new(
        "tab7.3",
        "Parameters of SCSA and the speculative adder in [17] for 0.01%",
        &[
            "n",
            "window size k (SCSA)",
            "paper k",
            "chain length l (VLSA)",
            "paper l",
        ],
    );
    let paper_k = [14usize, 15, 16, 17];
    let paper_l = [17usize, 18, 20, 21];
    let ks = windows_0p01();
    let ls = vlsa_chains_0p01();
    for (i, &n) in WIDTHS.iter().enumerate() {
        t.row(vec![
            n.to_string(),
            ks[i].1.to_string(),
            paper_k[i].to_string(),
            ls[i].1.to_string(),
            paper_l[i].to_string(),
        ]);
    }
    t.note(
        "k from eq. 3.13 (truncated-sum accounting, rounds-to-2dp semantics); \
            l from the exact VLSA chain model, same semantics; the paper's l values \
            mix model and simulation (±1 tolerated, see EXPERIMENTS.md)",
    );
    t
}

/// Table 7.4: SCSA/VLCSA 1 window sizes for 0.01% and 0.25%.
pub fn tab7_4(_config: &Config) -> Table {
    let mut t = Table::new(
        "tab7.4",
        "Parameters of SCSA and VLCSA 1 for error rates 0.01% and 0.25%",
        &["n", "k @0.01%", "paper", "k @0.25%", "paper"],
    );
    let paper_01 = [14usize, 15, 16, 17];
    let paper_25 = [10usize, 11, 12, 13];
    let k01 = windows_0p01();
    let k25 = windows_0p25();
    for (i, &n) in WIDTHS.iter().enumerate() {
        t.row(vec![
            n.to_string(),
            k01[i].1.to_string(),
            paper_01[i].to_string(),
            k25[i].1.to_string(),
            paper_25[i].to_string(),
        ]);
    }
    t.note(
        "solver: smallest k whose eq. 3.13 rate rounds to <= target at two \
            decimals in percent",
    );
    // Also show the exact-model alternative for transparency.
    for &n in &WIDTHS {
        let exact01 = model::window_size_for(
            n,
            1e-4,
            Semantics::RoundsTo2Dp,
            OverflowMode::Truncate,
            Model::Exact,
        );
        t.note(format!("exact-model solver @0.01% n={n}: k={exact01}"));
    }
    t
}

/// `ext.model_engines`: the Monte-Carlo half of the error model, swept
/// over every registry family instead of a hand-picked SCSA.
///
/// Each family answers the same 64-bit unsigned-uniform stream through
/// its scalar path; fixed-latency families must report a zero stall
/// rate, the speculative ones a rate in the neighbourhood their error
/// model predicts. Sums are cross-checked against the first (ripple)
/// family lane by lane, so the table doubles as a correctness sweep.
pub fn ext_model_engines(config: &Config) -> Table {
    use vlcsa::engine::Registry;
    use workloads::dist::{Distribution, OperandSource};

    let width = 64;
    let samples = (config.mc_samples / 4).clamp(1_000, 100_000);
    let registry = Registry::for_width(width);
    let reference = &registry.engines()[0];
    let mut t = Table::new(
        "ext.model_engines",
        "Monte-Carlo stall statistics across every engine family (64-bit, unsigned uniform)",
        &[
            "engine",
            "variable latency",
            "stall rate (MC)",
            "flag rate (MC)",
            "mean cycles",
        ],
    );
    for engine in registry.engines() {
        let mut src = OperandSource::new(Distribution::UnsignedUniform, width, 0x3e5a);
        let (mut stalls, mut flags, mut cycles) = (0u64, 0u64, 0u64);
        for _ in 0..samples {
            let (a, b) = src.next_pair();
            let out = engine.add_one(&a, &b);
            let want = reference.add_one(&a, &b);
            assert_eq!(out.sum, want.sum, "{} sum drift", engine.name());
            assert_eq!(out.cout, want.cout, "{} cout drift", engine.name());
            stalls += u64::from(out.cycles == 2);
            flags += u64::from(out.flagged);
            cycles += u64::from(out.cycles);
        }
        t.row(vec![
            engine.name().to_string(),
            engine.variable_latency().to_string(),
            pct(stalls as f64 / samples as f64),
            pct(flags as f64 / samples as f64),
            format!("{:.4}", cycles as f64 / samples as f64),
        ]);
    }
    t.note(format!(
        "{samples} additions per family, same operand stream for all; \
            sums pinned to the ripple family bit for bit"
    ));
    t
}

//! Command-line driver for the experiment suite.
//!
//! ```text
//! experiments --list                 # show every artifact id
//! experiments --run fig7.1,tab7.4    # run specific experiments
//! experiments --all                  # everything, in paper order
//! experiments --all --full           # 10^7 Monte Carlo samples
//! experiments --all --samples 50000  # custom sample count
//! experiments --all --out results    # also write .txt/.csv per artifact
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use vlcsa_bench::{registry, Config, Table};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = Config::default();
    let mut to_run: Vec<String> = Vec::new();
    let mut list = false;
    let mut all = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => list = true,
            "--all" => all = true,
            "--full" => config.mc_samples = 10_000_000,
            "--quick" => config.mc_samples = Config::quick().mc_samples,
            "--samples" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) => config.mc_samples = n,
                    None => return usage("--samples needs a number"),
                }
            }
            "--run" => {
                i += 1;
                match args.get(i) {
                    Some(ids) => to_run.extend(ids.split(',').map(|s| s.trim().to_string())),
                    None => return usage("--run needs a comma-separated id list"),
                }
            }
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => config.out_dir = Some(PathBuf::from(dir)),
                    None => return usage("--out needs a directory"),
                }
            }
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument {other:?}")),
        }
        i += 1;
    }

    let reg = registry();
    if list {
        for e in &reg {
            println!("{:14} {}", e.id, e.about);
        }
        return ExitCode::SUCCESS;
    }
    if all {
        to_run = reg.iter().map(|e| e.id.to_string()).collect();
    }
    if to_run.is_empty() {
        return usage("nothing to do: pass --list, --run <ids> or --all");
    }

    if let Some(dir) = &config.out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    let mut failed = false;
    for id in &to_run {
        match reg.iter().find(|e| e.id == id.as_str()) {
            None => {
                eprintln!("unknown experiment id {id:?} (use --list)");
                failed = true;
            }
            Some(e) => {
                let start = std::time::Instant::now();
                let table = (e.run)(&config);
                println!("{table}");
                println!("  [{} in {:.1}s]\n", e.id, start.elapsed().as_secs_f64());
                if let Some(dir) = &config.out_dir {
                    write_outputs(dir, &table);
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn write_outputs(dir: &std::path::Path, table: &Table) {
    let stem = table.id.replace('.', "_");
    let txt = dir.join(format!("{stem}.txt"));
    let csv = dir.join(format!("{stem}.csv"));
    if let Err(e) = std::fs::write(&txt, table.to_string()) {
        eprintln!("cannot write {}: {e}", txt.display());
    }
    if let Err(e) = std::fs::write(&csv, table.to_csv()) {
        eprintln!("cannot write {}: {e}", csv.display());
    }
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("error: {error}\n");
    }
    eprintln!(
        "usage: experiments [--list] [--run id1,id2] [--all] [--quick|--full|--samples N] [--out DIR]"
    );
    if error.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

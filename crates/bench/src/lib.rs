//! The experiment harness: one runnable generator per table/figure of the
//! paper's evaluation (Ch. 7) plus the Ch. 3/6 model and profiling figures
//! and several extension studies.
//!
//! Every experiment is a pure function `fn(&Config) -> Table`; the
//! [`registry`] maps the paper's artifact ids (`fig3.5`, `tab7.4`, …) to
//! them. The `experiments` binary runs them from the command line and the
//! `figures` bench target replays the whole suite with a reduced sample
//! count.
//!
//! ```
//! use vlcsa_bench::{registry, Config};
//!
//! let config = Config { mc_samples: 10_000, ..Config::default() };
//! let exp = registry().into_iter().find(|e| e.id == "fig3.5").unwrap();
//! let table = (exp.run)(&config);
//! assert!(!table.rows.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
mod table;
pub mod timing;

pub use table::{fnum, pct, Table};

/// Runtime configuration for the experiment suite.
#[derive(Debug, Clone)]
pub struct Config {
    /// Monte Carlo trials per measured point. The paper uses 10⁶ for the
    /// Gaussian tables and 10⁷ for the model validation; the default is
    /// 10⁶ (pass `--full` to the binary for 10⁷).
    pub mc_samples: usize,
    /// Where result files are written (`None`: print only).
    pub out_dir: Option<std::path::PathBuf>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            mc_samples: 1_000_000,
            out_dir: None,
        }
    }
}

impl Config {
    /// A fast configuration for smoke runs and `cargo bench`.
    pub fn quick() -> Self {
        Self {
            mc_samples: 100_000,
            out_dir: None,
        }
    }
}

/// One registered experiment.
pub struct Experiment {
    /// The paper artifact id (`fig7.1`, `tab7.5`, `ext.latency`, …).
    pub id: &'static str,
    /// One-line description.
    pub about: &'static str,
    /// The generator.
    pub run: fn(&Config) -> Table,
}

/// All experiments, in paper order.
pub fn registry() -> Vec<Experiment> {
    use experiments::*;
    macro_rules! exp {
        ($id:literal, $about:literal, $f:path) => {
            Experiment {
                id: $id,
                about: $about,
                run: $f,
            }
        };
    }
    vec![
        exp!(
            "fig3.5",
            "predicted SCSA error rates vs window size (eq. 3.13)",
            error_model::fig3_5
        ),
        exp!(
            "fig6.1",
            "carry-chain histogram: unsigned uniform, 32-bit",
            chains::fig6_1
        ),
        exp!(
            "fig6.2",
            "carry-chain histograms: cryptographic workload traces",
            chains::fig6_2
        ),
        exp!(
            "fig6.3",
            "carry-chain histogram: 2's-complement uniform",
            chains::fig6_3
        ),
        exp!(
            "fig6.4",
            "carry-chain histogram: unsigned Gaussian",
            chains::fig6_4
        ),
        exp!(
            "fig6.5",
            "carry-chain histogram: 2's-complement Gaussian (bimodal)",
            chains::fig6_5
        ),
        exp!(
            "fig7.1",
            "analytical error model vs Monte Carlo",
            error_model::fig7_1
        ),
        exp!(
            "tab7.1",
            "VLCSA 1 error rates on 2's-complement Gaussian inputs",
            gaussian::tab7_1
        ),
        exp!(
            "tab7.2",
            "VLCSA 2 error rates on 2's-complement Gaussian inputs",
            gaussian::tab7_2
        ),
        exp!(
            "tab7.3",
            "window size (SCSA) vs chain length (VLSA) @0.01%",
            error_model::tab7_3
        ),
        exp!(
            "tab7.4",
            "SCSA/VLCSA 1 window sizes @0.01% and @0.25%",
            error_model::tab7_4
        ),
        exp!(
            "tab7.5",
            "VLCSA 2 window sizes from Gaussian simulation",
            gaussian::tab7_5
        ),
        exp!(
            "fig7.2",
            "delay: speculative adders vs Kogge-Stone",
            synthesis::fig7_2
        ),
        exp!(
            "fig7.3",
            "area: speculative adders vs Kogge-Stone",
            synthesis::fig7_3
        ),
        exp!(
            "fig7.4",
            "delay: variable-latency adders vs Kogge-Stone",
            synthesis::fig7_4
        ),
        exp!(
            "fig7.5",
            "area: variable-latency adders vs Kogge-Stone",
            synthesis::fig7_5
        ),
        exp!(
            "fig7.6",
            "delay: SCSA 1 vs DesignWare-substitute",
            synthesis::fig7_6
        ),
        exp!(
            "fig7.7",
            "area: SCSA 1 vs DesignWare-substitute",
            synthesis::fig7_7
        ),
        exp!(
            "fig7.8",
            "delay: VLCSA 1 vs DesignWare-substitute",
            synthesis::fig7_8
        ),
        exp!(
            "fig7.9",
            "area: VLCSA 1 vs DesignWare-substitute",
            synthesis::fig7_9
        ),
        exp!(
            "fig7.10",
            "delay: VLCSA 2 vs DesignWare-substitute",
            synthesis::fig7_10
        ),
        exp!(
            "fig7.11",
            "area: VLCSA 2 vs DesignWare-substitute",
            synthesis::fig7_11
        ),
        exp!(
            "ext.chain_engines",
            "chained N-operand reduction swept over every registry family",
            chains::ext_chain_engines
        ),
        exp!(
            "ext.model_engines",
            "Monte-Carlo stall statistics swept over every registry family",
            error_model::ext_model_engines
        ),
        exp!(
            "ext.gaussian_engines",
            "Gaussian-workload stalls: every registry family at every width",
            gaussian::ext_gaussian_engines
        ),
        exp!(
            "ext.dist_engines",
            "Fig. 6 distributions vs every registry family's latency",
            chains::ext_dist_engines
        ),
        exp!(
            "ext.magnitude",
            "error magnitude: SCSA vs per-bit speculation (Sec. 3.3)",
            extensions::magnitude
        ),
        exp!(
            "ext.latency",
            "average latency of VLCSA 1/2 across input distributions",
            extensions::latency
        ),
        exp!(
            "ext.detect",
            "detection overestimate (false-positive) ablation",
            extensions::detect_ablation
        ),
        exp!(
            "ext.buffering",
            "fanout-buffering ablation on the synthesis flow",
            extensions::buffering_ablation
        ),
        exp!(
            "ext.dsp",
            "FIR accumulation workload profile and engine latency",
            extensions::dsp
        ),
        exp!(
            "ext.power",
            "switching-activity power of the competing designs",
            extensions::power
        ),
        exp!(
            "ext.window_style",
            "window-adder style ablation (KS/BK/Sklansky windows)",
            extensions::window_style
        ),
        exp!(
            "ext.verilog",
            "Verilog export of the main designs",
            extensions::verilog_export
        ),
    ]
}

/// Runs one experiment by id.
///
/// Returns `None` for an unknown id.
pub fn run_by_id(id: &str, config: &Config) -> Option<Table> {
    registry()
        .into_iter()
        .find(|e| e.id == id)
        .map(|e| (e.run)(config))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_known() {
        let reg = registry();
        let mut ids: Vec<_> = reg.iter().map(|e| e.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), reg.len());
        assert!(reg.len() >= 22, "every paper artifact registered");
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(run_by_id("fig99.9", &Config::quick()).is_none());
    }
}

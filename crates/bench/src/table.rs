//! Plain-text/CSV result tables.

use std::fmt;

/// A rendered experiment result: a titled table plus free-form notes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Artifact id (`fig7.1`, `tab7.4`, …).
    pub id: String,
    /// Human title (what the paper's caption says).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Commentary: parameters, paper-expected values, deviations.
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: impl Into<String>, title: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row (must match the column count).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width mismatch in {}",
            self.id
        );
        self.rows.push(cells);
    }

    /// Appends a note line.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Renders as CSV (headers + rows; notes as `#` comments).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for n in &self.notes {
            out.push_str("# ");
            out.push_str(n);
            out.push('\n');
        }
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(
            &self
                .columns
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut first = true;
            for (w, cell) in widths.iter().zip(cells) {
                if !first {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>w$}", w = w)?;
                first = false;
            }
            writeln!(f)
        };
        line(f, &self.columns)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

/// Formats a float with engineering-style precision for tables.
pub fn fnum(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else if v.abs() >= 1e-3 {
        format!("{v:.4}")
    } else {
        format!("{v:.3e}")
    }
}

/// Formats a probability as a percentage string like the paper's tables.
pub fn pct(v: f64) -> String {
    format!("{:.4}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_csv() {
        let mut t = Table::new("tabX", "demo", &["n", "rate"]);
        t.row(vec!["64".into(), pct(0.25)]);
        t.note("just a demo");
        let text = t.to_string();
        assert!(text.contains("tabX"));
        assert!(text.contains("25.0000%"));
        assert!(text.contains("note: just a demo"));
        let csv = t.to_csv();
        assert!(csv.starts_with("# just a demo\nn,rate\n"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("t", "demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn number_formats() {
        assert_eq!(fnum(1234.6), "1235");
        assert_eq!(fnum(12.345), "12.35");
        assert_eq!(fnum(0.012), "0.0120");
        assert_eq!(fnum(1.2e-5), "1.200e-5");
    }
}

//! End-to-end service throughput and latency over TCP loopback, with a
//! machine-readable result file.
//!
//! This is the serving-shaped benchmark the batching front-end exists
//! for: a `vlcsa_serve::Server` on a loopback port, several concurrent
//! client connections, each keeping a bounded number of pipelined `ADD`s
//! in flight, Gaussian operands (the paper's practical operand model) at
//! width 64. Per engine it records aggregate requests/s, per-request
//! latency percentiles (submit-to-response, measured at the client), and
//! the served stall rate — so the variable-latency engines' extra
//! recovery cycles are visible next to their fixed-latency baselines
//! under identical traffic.
//!
//! The second dimension is the reduction path: the same traffic shape
//! drives pipelined `SUM`s of [`SUM_N`] operands, where the server
//! compresses carry-save style and resolves carries exactly once per
//! request. Each engine's sums/s is compared against the rate the same
//! engine completes 8-operand reductions as 8 independent `ADD`s
//! (`adds_per_sec / 8`) — the `vs_independent_adds` ratio recorded per
//! engine, with a ≥2× floor on full runs (EXPERIMENTS.md).
//!
//! The third dimension is delegation: the same `ADD` and `SUM` traffic
//! once more, naming the `auto` pseudo-engine instead of a concrete
//! family, so the router's EWMA-driven pick is measured under identical
//! load. On full runs the `auto` rows carry floors: requests/s must beat
//! the worst static engine and reach ≥90% of the best (routing overhead
//! must not eat the win it selects).
//!
//! The fourth dimension is the wire format: the identical `ADD` engine
//! mix once more over clients that negotiated the binary protocol
//! ([`Client::connect_binary`]), so operands travel as raw little-endian
//! limbs into the zero-copy ingress path instead of hex text. The
//! `binary_vs_text` summary records the aggregate req/s of each framing
//! over the same mix; on full runs binary must clear ≥1.2× text — the
//! framing has to pay for its existence.
//!
//! The fifth dimension is head-of-line isolation — the claim the
//! per-lane runtime exists for. A second server carries the production
//! registry plus a synthetic `sleepy` engine whose `add_batch` holds its
//! lane's worker for [`STALL_MS`] per batch; a background client keeps
//! the sleepy lane saturated while every static engine is re-measured
//! under identical traffic. Per engine the run records unstalled vs
//! stalled req/s and p99 and their `retained` ratio, with a ≥80%
//! retention floor on full runs — under the old shared worker pool the
//! sleepy batches would serialize everyone behind [`STALL_MS`] naps.
//!
//! Every response is verified against exact addition while it is timed;
//! a wrong sum aborts the bench. The full run writes `BENCH_serve.json`
//! (schema `vlcsa-bench/serve/v5`, documented in EXPERIMENTS.md).
//! `-- --smoke` (the CI loopback smoke, run at both word widths) shrinks
//! the op counts to milliseconds, keeps the exactness assertions (the
//! throughput floors need real budgets), and skips the JSON write.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bitnum::batch::{BitSlab, DefaultWord};
use bitnum::UBig;
use vlcsa::batch::BatchOutcome;
use vlcsa::engine::{Engine, Registry, ScalarEngine};
use vlcsa::route::{RouteConfig, Router};
use vlcsa::AddOutcome;
use vlcsa_serve::{Client, Program, RegistryCache, ServeConfig, Server, Service};
use workloads::dist::{Distribution, OperandSource};

const WIDTH: usize = 64;
const ENGINES: [&str; 4] = ["ripple", "carry-select", "vlcsa1", "vlcsa2"];
/// The router-delegated row, measured after the static engines so the
/// registry families the statics exercised are already warm estimates.
const AUTO: &str = "auto";
const CLIENTS: usize = 4;
const IN_FLIGHT: usize = 64;
/// Operand count of the reduction dimension (the acceptance shape).
const SUM_N: usize = 8;

/// How long the synthetic stalled engine parks its lane's worker inside
/// every `add_batch`, server-side.
const STALL_MS: u64 = 2;
/// Registry name of the synthetic stalled engine.
const STALLED: &str = "sleepy";
/// Full-run floor: each engine must retain at least this fraction of its
/// unstalled req/s while the sleepy lane is saturated.
const RETAINED_FLOOR: f64 = 0.8;

/// What each pipelined request carries.
#[derive(Clone, Copy, PartialEq)]
enum Kind {
    /// v1 `ADD`: one addition per request.
    Add,
    /// `SUM` of [`SUM_N`] operands: one whole reduction per request.
    Sum,
}

/// Which wire format the measuring clients speak.
#[derive(Clone, Copy, PartialEq)]
enum Proto {
    /// Newline-delimited hex text (protocol v1).
    Text,
    /// `HELLO`-negotiated limb frames (protocol v2).
    Binary,
}

/// One engine's measured service point.
struct Point {
    engine: &'static str,
    ops: usize,
    elapsed: Duration,
    /// Per-request submit→response latencies, seconds.
    latencies: Vec<f64>,
    stalls: u64,
}

impl Point {
    fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64()
    }

    fn percentile_us(&self, q: f64) -> f64 {
        // `latencies` is sorted by `measure` before the point is returned.
        let idx = ((self.latencies.len() - 1) as f64 * q).round() as usize;
        self.latencies[idx] * 1e6
    }

    fn stall_rate(&self) -> f64 {
        self.stalls as f64 / self.ops as f64
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "    {{\"engine\": \"{}\", \"ops\": {}, \"ops_per_sec\": {:.0}, ",
                "\"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}, ",
                "\"stall_rate\": {:.4}}}"
            ),
            self.engine,
            self.ops,
            self.ops_per_sec(),
            self.percentile_us(0.50),
            self.percentile_us(0.95),
            self.percentile_us(0.99),
            self.stall_rate(),
        )
    }
}

/// The synthetic stalled engine of the isolation dimension: correct
/// sums (it delegates to ripple), but every batch parks its lane's
/// worker for [`STALL_MS`] first.
struct SleepyEngine {
    inner: Box<dyn Engine<DefaultWord>>,
}

impl ScalarEngine for SleepyEngine {
    fn name(&self) -> &'static str {
        STALLED
    }

    fn width(&self) -> usize {
        self.inner.width()
    }

    fn add_one(&self, a: &UBig, b: &UBig) -> AddOutcome {
        self.inner.add_one(a, b)
    }
}

impl Engine<DefaultWord> for SleepyEngine {
    fn add_batch(
        &self,
        a: &BitSlab<DefaultWord>,
        b: &BitSlab<DefaultWord>,
    ) -> BatchOutcome<DefaultWord> {
        std::thread::sleep(Duration::from_millis(STALL_MS));
        self.inner.add_batch(a, b)
    }
}

/// The production registry plus the `sleepy` engine at every width.
fn sleepy_cache() -> RegistryCache {
    RegistryCache::with_factory(|width| {
        let mut engines = Registry::for_width(width).into_engines();
        let inner = Registry::for_width(width)
            .into_engines()
            .into_iter()
            .find(|e| e.name() == "ripple")
            .expect("ripple registered at every width");
        engines.push(Box::new(SleepyEngine { inner }));
        Registry::from_engines(width, engines)
    })
}

/// One engine's isolation comparison: the same traffic with the sleepy
/// lane idle and with it saturated.
struct IsolationRow {
    unstalled: Point,
    stalled: Point,
}

impl IsolationRow {
    fn retained(&self) -> f64 {
        self.stalled.ops_per_sec() / self.unstalled.ops_per_sec()
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "    {{\"engine\": \"{}\", \"unstalled_ops_per_sec\": {:.0}, ",
                "\"stalled_ops_per_sec\": {:.0}, \"unstalled_p99_us\": {:.1}, ",
                "\"stalled_p99_us\": {:.1}, \"retained\": {:.3}}}"
            ),
            self.unstalled.engine,
            self.unstalled.ops_per_sec(),
            self.stalled.ops_per_sec(),
            self.unstalled.percentile_us(0.99),
            self.stalled.percentile_us(0.99),
            self.retained(),
        )
    }
}

/// Keeps the sleepy lane saturated (a few pipelined requests, each
/// holding the lane's worker for [`STALL_MS`]) until `stop`, verifying
/// every response. Returns how many stalled requests were served.
fn drive_stalled_lane(addr: SocketAddr, stop: &AtomicBool) -> usize {
    let mut client = Client::connect(addr).expect("stall driver connect");
    let mut src = OperandSource::new(Distribution::paper_gaussian(), WIDTH, 0xD1E);
    let mut pending: HashMap<u64, UBig> = HashMap::new();
    let mut served = 0usize;
    while !stop.load(Ordering::Relaxed) {
        while pending.len() < 4 {
            let (a, b) = src.next_pair();
            let (sum, _) = a.overflowing_add(&b);
            pending.insert(client.submit(STALLED, &a, &b).expect("stall submit"), sum);
        }
        let (seq, response) = client.recv().expect("stall recv");
        let response = response.expect("stalled lane error");
        let sum = pending.remove(&seq).expect("known stall seq");
        assert_eq!(response.sum, sum, "stalled lane returned a wrong sum");
        served += 1;
    }
    while !pending.is_empty() {
        let (seq, response) = client.recv().expect("stall drain");
        let sum = pending.remove(&seq).expect("known stall seq");
        assert_eq!(
            response.expect("stalled lane error").sum,
            sum,
            "stalled lane returned a wrong sum on drain"
        );
    }
    client.close();
    served
}

/// Drives `ops_per_client` verified requests per client against one
/// engine and collects every request's latency. For [`Kind::Sum`] each
/// request is a whole [`SUM_N`]-operand reduction, verified against the
/// scalar carry-save lowering (exact sum *and* the single resolve's
/// carry-out).
fn measure(
    addr: SocketAddr,
    engine: &'static str,
    ops_per_client: usize,
    kind: Kind,
    proto: Proto,
) -> Point {
    let sum_program = Program::sum(SUM_N).expect("small sum program");
    let sum_program = &sum_program;
    let start = Instant::now();
    let worker = |c: usize| {
        let mut client = match proto {
            Proto::Text => Client::connect(addr).expect("connect"),
            Proto::Binary => Client::connect_binary(addr).expect("binary handshake"),
        };
        let mut src = OperandSource::new(Distribution::paper_gaussian(), WIDTH, 0x5EB7E + c as u64);
        let mut submitted_at: HashMap<u64, (Instant, UBig, bool)> = HashMap::new();
        let mut latencies = Vec::with_capacity(ops_per_client);
        let mut stalls = 0u64;
        let drain = |client: &mut Client,
                     submitted_at: &mut HashMap<u64, (Instant, UBig, bool)>,
                     latencies: &mut Vec<f64>,
                     stalls: &mut u64| {
            let (seq, response) = client.recv().expect("recv");
            let response = response.expect("request error under benchmark traffic");
            let (at, sum, cout) = submitted_at.remove(&seq).expect("known seq");
            latencies.push(at.elapsed().as_secs_f64());
            assert_eq!(response.sum, sum, "{engine} seq {seq}: wrong sum");
            assert_eq!(response.cout, cout, "{engine} seq {seq}: wrong cout");
            *stalls += u64::from(response.cycles == 2);
        };
        for _ in 0..ops_per_client {
            if submitted_at.len() >= IN_FLIGHT {
                drain(&mut client, &mut submitted_at, &mut latencies, &mut stalls);
            }
            let (seq, sum, cout) = match kind {
                Kind::Add => {
                    let (a, b) = src.next_pair();
                    let (sum, cout) = a.overflowing_add(&b);
                    let seq = client.submit(engine, &a, &b).expect("submit");
                    (seq, sum, cout)
                }
                Kind::Sum => {
                    let ops: Vec<UBig> = (0..SUM_N).map(|_| src.next_operand()).collect();
                    let (x, y) = sum_program.csa_pair_scalar(&ops);
                    let (sum, cout) = x.overflowing_add(&y);
                    let seq = client.submit_sum(engine, &ops).expect("submit sum");
                    (seq, sum, cout)
                }
            };
            submitted_at.insert(seq, (Instant::now(), sum, cout));
        }
        while !submitted_at.is_empty() {
            drain(&mut client, &mut submitted_at, &mut latencies, &mut stalls);
        }
        client.close();
        (latencies, stalls)
    };
    let results: Vec<(Vec<f64>, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| scope.spawn(move || worker(c)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed = start.elapsed();
    let mut latencies = Vec::with_capacity(CLIENTS * ops_per_client);
    let mut stalls = 0;
    for (lats, s) in results {
        latencies.extend(lats);
        stalls += s;
    }
    latencies.sort_by(f64::total_cmp);
    Point {
        engine,
        ops: CLIENTS * ops_per_client,
        elapsed,
        latencies,
        stalls,
    }
}

/// Aggregate req/s of a sequence of runs over one engine mix: total
/// requests over total wall-clock (the runs are sequential).
fn aggregate_ops_per_sec(points: &[Point]) -> f64 {
    let ops: usize = points.iter().map(|p| p.ops).sum();
    let secs: f64 = points.iter().map(|p| p.elapsed.as_secs_f64()).sum();
    ops as f64 / secs
}

fn write_json(
    points: &[Point],
    binary_points: &[Point],
    sum_points: &[Point],
    isolation: &[IsolationRow],
    host_cpus: usize,
    path: &std::path::Path,
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"vlcsa-bench/serve/v5\",\n");
    out.push_str("  \"generated_by\": \"cargo bench -p vlcsa-bench --bench serve\",\n");
    out.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    out.push_str(&format!("  \"width\": {WIDTH},\n"));
    out.push_str(&format!("  \"clients\": {CLIENTS},\n"));
    out.push_str(&format!("  \"in_flight_per_client\": {IN_FLIGHT},\n"));
    out.push_str("  \"distribution\": \"gaussian(sigma=2^24)\",\n");
    out.push_str("  \"units\": {\"ops_per_sec\": \"requests/s over TCP loopback\", \"p50_us\": \"microseconds submit-to-response\", \"stall_rate\": \"fraction of requests served in 2 cycles\", \"vs_independent_adds\": \"sums/s over (adds/s / n): reductions served per second vs issuing n independent ADDs\", \"binary_vs_text\": \"aggregate binary-framing ADD req/s over aggregate text req/s, same engine mix\", \"retained\": \"stalled_ops_per_sec over unstalled_ops_per_sec while the sleepy lane is saturated\"},\n");
    // The v4 wire-format summary: the same ADD engine mix over both
    // framings, so the ≥1.2× floor is checkable from the JSON alone.
    out.push_str(&format!(
        concat!(
            "  \"binary_vs_text\": {{\"text_ops_per_sec\": {:.0}, ",
            "\"binary_ops_per_sec\": {:.0}, \"ratio\": {:.3}}},\n"
        ),
        aggregate_ops_per_sec(points),
        aggregate_ops_per_sec(binary_points),
        aggregate_ops_per_sec(binary_points) / aggregate_ops_per_sec(points),
    ));
    // The v3 delegation summary: the `auto` row against the static
    // envelope, so the EXPERIMENTS.md floors are checkable from the JSON
    // alone (entries still carry the full per-engine rows).
    let auto = points
        .iter()
        .find(|p| p.engine == AUTO)
        .expect("auto point measured");
    let statics: Vec<&Point> = points.iter().filter(|p| p.engine != AUTO).collect();
    let worst = statics
        .iter()
        .map(|p| p.ops_per_sec())
        .fold(f64::INFINITY, f64::min);
    let best = statics.iter().map(|p| p.ops_per_sec()).fold(0.0, f64::max);
    out.push_str(&format!(
        concat!(
            "  \"auto_vs_static\": {{\"auto_ops_per_sec\": {:.0}, ",
            "\"worst_static_ops_per_sec\": {:.0}, \"best_static_ops_per_sec\": {:.0}, ",
            "\"fraction_of_best\": {:.3}}},\n"
        ),
        auto.ops_per_sec(),
        worst,
        best,
        auto.ops_per_sec() / best,
    ));
    // The v5 isolation dimension: per-engine req/s and p99 with the
    // sleepy lane idle vs saturated, so the ≥80% retention floor is
    // checkable from the JSON alone.
    out.push_str(&format!(
        "  \"lane_isolation\": {{\"stalled_engine\": \"{STALLED}\", \"stall_ms\": {STALL_MS}, \"floor_retained\": {RETAINED_FLOOR}, \"entries\": [\n"
    ));
    for (i, row) in isolation.iter().enumerate() {
        out.push_str(&row.to_json());
        out.push_str(if i + 1 < isolation.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]},\n");
    out.push_str("  \"entries\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&p.to_json());
        out.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"binary_entries\": [\n");
    for (i, p) in binary_points.iter().enumerate() {
        out.push_str(&p.to_json());
        out.push_str(if i + 1 < binary_points.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"sum_n\": {SUM_N},\n"));
    out.push_str("  \"sum_entries\": [\n");
    for (i, p) in sum_points.iter().enumerate() {
        let add = points
            .iter()
            .find(|a| a.engine == p.engine)
            .expect("matching ADD point");
        out.push_str(&format!(
            concat!(
                "    {{\"engine\": \"{}\", \"n\": {}, \"sums\": {}, \"sums_per_sec\": {:.0}, ",
                "\"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}, ",
                "\"stall_rate\": {:.4}, \"vs_independent_adds\": {:.2}}}"
            ),
            p.engine,
            SUM_N,
            p.ops,
            p.ops_per_sec(),
            p.percentile_us(0.50),
            p.percentile_us(0.95),
            p.percentile_us(0.99),
            p.stall_rate(),
            p.ops_per_sec() / (add.ops_per_sec() / SUM_N as f64),
        ));
        out.push_str(if i + 1 < sum_points.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let ops_per_client = if smoke { 256 } else { 8192 };
    let host_cpus = std::thread::available_parallelism().map_or(1, usize::from);

    let server = Server::start(
        "127.0.0.1:0",
        ServeConfig {
            max_lanes: 256,
            max_wait: Duration::from_micros(300),
            workers: 2,
            exec_threads: 1,
            queue_depth: 1024,
            route: Default::default(),
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    println!(
        "{:<14} {:>8} {:>12} {:>9} {:>9} {:>9} {:>11}",
        "engine", "ops", "ops/s", "p50 µs", "p95 µs", "p99 µs", "stall rate"
    );
    let mut points = Vec::new();
    for engine in ENGINES.into_iter().chain(std::iter::once(AUTO)) {
        let point = measure(addr, engine, ops_per_client, Kind::Add, Proto::Text);
        println!(
            "{:<14} {:>8} {:>12.0} {:>9.1} {:>9.1} {:>9.1} {:>11.4}",
            point.engine,
            point.ops,
            point.ops_per_sec(),
            point.percentile_us(0.50),
            point.percentile_us(0.95),
            point.percentile_us(0.99),
            point.stall_rate(),
        );
        points.push(point);
    }

    println!(
        "\n{:<14} {:>8} {:>12} {:>9} {:>9} {:>9} {:>11}",
        "engine (bin)", "ops", "ops/s", "p50 µs", "p95 µs", "p99 µs", "stall rate"
    );
    let mut binary_points = Vec::new();
    for engine in ENGINES.into_iter().chain(std::iter::once(AUTO)) {
        let point = measure(addr, engine, ops_per_client, Kind::Add, Proto::Binary);
        println!(
            "{:<14} {:>8} {:>12.0} {:>9.1} {:>9.1} {:>9.1} {:>11.4}",
            point.engine,
            point.ops,
            point.ops_per_sec(),
            point.percentile_us(0.50),
            point.percentile_us(0.95),
            point.percentile_us(0.99),
            point.stall_rate(),
        );
        binary_points.push(point);
    }

    println!(
        "\n{:<14} {:>8} {:>12} {:>9} {:>9} {:>9} {:>11} {:>8}",
        "engine", "sums", "sums/s", "p50 µs", "p95 µs", "p99 µs", "stall rate", "vs 8×ADD"
    );
    let mut sum_points = Vec::new();
    for add in &points {
        let point = measure(addr, add.engine, ops_per_client, Kind::Sum, Proto::Text);
        println!(
            "{:<14} {:>8} {:>12.0} {:>9.1} {:>9.1} {:>9.1} {:>11.4} {:>7.2}x",
            point.engine,
            point.ops,
            point.ops_per_sec(),
            point.percentile_us(0.50),
            point.percentile_us(0.95),
            point.percentile_us(0.99),
            point.stall_rate(),
            point.ops_per_sec() / (add.ops_per_sec() / SUM_N as f64),
        );
        sum_points.push(point);
    }

    let shutdown_started = Instant::now();
    server.shutdown();
    assert!(
        shutdown_started.elapsed() < Duration::from_secs(10),
        "server shutdown exceeded its bound"
    );
    println!(
        "\nserver shut down cleanly in {:?}",
        shutdown_started.elapsed()
    );

    // Fifth dimension: head-of-line isolation. A fresh server whose
    // registry carries the sleepy engine; each static engine is measured
    // with the sleepy lane idle, then again while a background client
    // keeps it saturated with [`STALL_MS`]-per-batch requests.
    let iso_service = Service::start_custom(
        ServeConfig {
            max_lanes: 256,
            max_wait: Duration::from_micros(300),
            workers: 2,
            exec_threads: 1,
            queue_depth: 1024,
            route: Default::default(),
        },
        Arc::new(Router::new(RouteConfig::default())),
        Arc::new(sleepy_cache()),
    );
    let iso_server =
        Server::start_with_service("127.0.0.1:0", iso_service).expect("bind isolation server");
    let iso_addr = iso_server.local_addr();
    println!(
        "\n{:<14} {:>14} {:>14} {:>12} {:>12} {:>9}",
        "engine", "unstalled/s", "stalled/s", "p99 µs", "p99 µs (st)", "retained"
    );
    let unstalled: Vec<Point> = ENGINES
        .into_iter()
        .map(|engine| measure(iso_addr, engine, ops_per_client, Kind::Add, Proto::Text))
        .collect();
    let stop = Arc::new(AtomicBool::new(false));
    let driver = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || drive_stalled_lane(iso_addr, &stop))
    };
    let isolation: Vec<IsolationRow> = unstalled
        .into_iter()
        .map(|unstalled| {
            let stalled = measure(
                iso_addr,
                unstalled.engine,
                ops_per_client,
                Kind::Add,
                Proto::Text,
            );
            let row = IsolationRow { unstalled, stalled };
            println!(
                "{:<14} {:>14.0} {:>14.0} {:>12.1} {:>12.1} {:>8.1}%",
                row.unstalled.engine,
                row.unstalled.ops_per_sec(),
                row.stalled.ops_per_sec(),
                row.unstalled.percentile_us(0.99),
                row.stalled.percentile_us(0.99),
                100.0 * row.retained(),
            );
            row
        })
        .collect();
    stop.store(true, Ordering::Relaxed);
    let stalled_served = driver.join().expect("stall driver");
    iso_server.shutdown();
    println!("sleepy lane served {stalled_served} requests at {STALL_MS}ms per batch");
    assert!(
        stalled_served > 0,
        "the stalled lane never served — the isolation runs measured nothing"
    );
    if !smoke {
        for row in &isolation {
            assert!(
                row.retained() >= RETAINED_FLOOR,
                "{}: retained {:.1}% of unstalled throughput with the sleepy lane \
                 saturated, below the {:.0}% floor",
                row.unstalled.engine,
                100.0 * row.retained(),
                100.0 * RETAINED_FLOOR,
            );
        }
    }

    // The variable-latency engines must show their latency model under
    // this traffic: Gaussian operands stall VLCSA 1 but are absorbed by
    // VLCSA 2's second speculative result (Ch. 6).
    let stall = |name: &str| {
        points
            .iter()
            .find(|p| p.engine == name)
            .expect("measured")
            .stall_rate()
    };
    assert!(stall("ripple") == 0.0 && stall("carry-select") == 0.0);
    assert!(
        stall("vlcsa1") > 0.0,
        "vlcsa1 must stall on Gaussian traffic"
    );
    assert!(stall("vlcsa2") < stall("vlcsa1"));

    // The reduction dimension must actually pay: one SUM request carries
    // a whole 8-operand reduction through the batching window as a single
    // lane, so it has to beat issuing 8 independent ADDs — by ≥2× served
    // reductions/s on full runs (the EXPERIMENTS.md floor), and strictly
    // at all on smoke budgets.
    for (add, sum) in points.iter().zip(&sum_points) {
        let ratio = sum.ops_per_sec() / (add.ops_per_sec() / SUM_N as f64);
        assert!(
            ratio > 1.0,
            "{}: sum-of-{SUM_N} ({:.0}/s) slower than {SUM_N} independent adds ({:.0}/s ÷ {SUM_N})",
            add.engine,
            sum.ops_per_sec(),
            add.ops_per_sec(),
        );
        if !smoke {
            assert!(
                ratio >= 2.0,
                "{}: sum-of-{SUM_N} ratio {ratio:.2} below the 2x floor",
                add.engine
            );
        }
    }

    // The delegation dimension must pay for itself: under identical
    // traffic, routing overhead plus whatever the router picked has to
    // beat the worst static engine outright and stay within 10% of the
    // best (EXPERIMENTS.md floors). Only on full runs — smoke budgets are
    // milliseconds of noise.
    let auto = points
        .iter()
        .find(|p| p.engine == AUTO)
        .expect("auto measured");
    let statics: Vec<&Point> = points.iter().filter(|p| p.engine != AUTO).collect();
    let worst = statics
        .iter()
        .map(|p| p.ops_per_sec())
        .fold(f64::INFINITY, f64::min);
    let best = statics.iter().map(|p| p.ops_per_sec()).fold(0.0, f64::max);
    println!(
        "\nauto: {:.0} req/s vs static [{:.0}, {:.0}] ({:.1}% of best)",
        auto.ops_per_sec(),
        worst,
        best,
        100.0 * auto.ops_per_sec() / best,
    );
    if !smoke {
        assert!(
            auto.ops_per_sec() > worst,
            "auto ({:.0} req/s) does not beat the worst static engine ({worst:.0} req/s)",
            auto.ops_per_sec(),
        );
        assert!(
            auto.ops_per_sec() >= 0.9 * best,
            "auto ({:.0} req/s) below 90% of the best static engine ({best:.0} req/s)",
            auto.ops_per_sec(),
        );
    }

    // The wire format must pay for itself: the binary framing strips hex
    // parsing and formatting from both ends of every request, so over the
    // identical ADD engine mix it has to aggregate ≥1.2× the text req/s on
    // full runs (smoke budgets are milliseconds of noise — exactness was
    // still asserted per response above).
    let text_rate = aggregate_ops_per_sec(&points);
    let binary_rate = aggregate_ops_per_sec(&binary_points);
    println!(
        "\nbinary vs text: {binary_rate:.0} req/s vs {text_rate:.0} req/s ({:.2}x)",
        binary_rate / text_rate,
    );
    if !smoke {
        assert!(
            binary_rate >= 1.2 * text_rate,
            "binary framing ({binary_rate:.0} req/s) below the 1.2x floor over text ({text_rate:.0} req/s)",
        );
    }

    if smoke {
        println!("--smoke: skipping BENCH_serve.json write (budgets too small to be meaningful)");
        return;
    }
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    match write_json(
        &points,
        &binary_points,
        &sum_points,
        &isolation,
        host_cpus,
        &path,
    ) {
        Ok(()) => println!("wrote {} (host_cpus = {host_cpus})", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}

//! Multi-thread scaling of the sharded executor, per registered engine,
//! with a machine-readable result file.
//!
//! For every engine in `vlcsa::engine::Registry` (no per-family dispatch),
//! a fixed `WideSlab` workload is run through `vlcsa::exec::Executor` at
//! 1, 2, 4 and 8 threads, and two speedups over the 1-thread run are
//! recorded per point:
//!
//! * **wall** — measured wall-clock of the sharded run. This is the
//!   contract number on hosts with at least as many CPUs as threads; on
//!   smaller hosts the OS serializes the shards and the curve is flat by
//!   construction.
//! * **critical path** — each shard's chunk range (the exact production
//!   partition, `Executor::shard_ranges`) is timed *serially*, and the
//!   speedup is the shards' summed time over their maximum. Numerator and
//!   denominator come from the same per-shard methodology, so cache
//!   effects cancel (timing a 1/N-size shard in isolation keeps its slice
//!   cache-resident; dividing a full-serial pass by such a shard time
//!   would overstate scaling) and the ratio is structurally ≤ the thread
//!   count. It measures what the executor controls — shard balance and
//!   span — independent of how many CPUs the recording host has; an
//!   unloaded N-core host with the workload partitioned this way is
//!   bounded by the same slowest shard.
//!
//! The full run writes `BENCH_throughput.json` (schema
//! `vlcsa-bench/throughput/v1`, documented in EXPERIMENTS.md) with the
//! recording host's CPU count, so readers can judge which speedup is the
//! measured one. `-- --smoke` (the CI mode) shrinks the workload and every
//! budget to milliseconds and skips the JSON write.

use std::time::Duration;

use vlcsa_bench::timing::ns_per_call;

use bitnum::batch::WideSlab;
use vlcsa::engine::{Engine, Registry};
use vlcsa::exec::Executor;
use workloads::dist::{Distribution, OperandSource};

const WIDTH: usize = 64;
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// One `(engine, threads)` point of the scaling curve.
struct Point {
    engine: &'static str,
    threads: usize,
    wall_ns_per_op: f64,
    wall_speedup: f64,
    critical_path_speedup: f64,
}

impl Point {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "    {{\"engine\": \"{}\", \"threads\": {}, ",
                "\"wall_ns_per_op\": {:.3}, \"wall_speedup\": {:.2}, ",
                "\"critical_path_speedup\": {:.2}}}"
            ),
            self.engine,
            self.threads,
            self.wall_ns_per_op,
            self.wall_speedup,
            self.critical_path_speedup,
        )
    }
}

/// Serial per-shard times for the exact chunk partition `Executor::run`
/// uses at this thread count; the critical-path speedup is their sum over
/// their maximum.
fn shard_times(
    engine: &dyn Engine,
    a: &WideSlab,
    b: &WideSlab,
    threads: usize,
    target: Duration,
) -> Vec<f64> {
    Executor::new(threads)
        .shard_ranges(a.chunks().len())
        .into_iter()
        .map(|range| {
            ns_per_call(
                || {
                    let mut acc = 0u64;
                    for i in range.clone() {
                        acc = acc.wrapping_add(
                            engine
                                .add_batch(&a.chunks()[i], &b.chunks()[i])
                                .total_cycles(),
                        );
                    }
                    acc
                },
                target,
            )
        })
        .collect()
}

fn scaling_curve(engine: &dyn Engine, a: &WideSlab, b: &WideSlab, target: Duration) -> Vec<Point> {
    let lanes = a.lanes() as f64;
    let wall_1 = ns_per_call(|| Executor::new(1).run(engine, a, b).total_cycles(), target);
    THREADS
        .iter()
        .map(|&threads| {
            let wall = if threads == 1 {
                wall_1
            } else {
                ns_per_call(
                    || Executor::new(threads).run(engine, a, b).total_cycles(),
                    target,
                )
            };
            let shards = shard_times(engine, a, b, threads, target);
            let work: f64 = shards.iter().sum();
            let span = shards.into_iter().fold(f64::MIN, f64::max);
            Point {
                engine: engine.name(),
                threads,
                wall_ns_per_op: wall / lanes,
                wall_speedup: wall_1 / wall,
                critical_path_speedup: work / span,
            }
        })
        .collect()
}

fn write_json(
    points: &[Point],
    lanes: usize,
    host_cpus: usize,
    path: &std::path::Path,
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"vlcsa-bench/throughput/v1\",\n");
    out.push_str("  \"generated_by\": \"cargo bench -p vlcsa-bench --bench throughput\",\n");
    out.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    out.push_str(&format!("  \"width\": {WIDTH},\n"));
    out.push_str(&format!("  \"lanes\": {lanes},\n"));
    out.push_str("  \"units\": {\"wall_ns_per_op\": \"ns\", \"wall_speedup\": \"ratio vs 1 thread (wall clock)\", \"critical_path_speedup\": \"ratio vs 1 thread (serial work / slowest shard)\"},\n");
    out.push_str("  \"entries\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&p.to_json());
        out.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // 2^20 lanes = 16384 chunks: divisible by every thread count in the
    // curve, and several milliseconds of work per run so thread-spawn
    // overhead (~tens of µs) stays in the noise of the wall numbers.
    let lanes = if smoke { 512 } else { 1 << 20 };
    let target = if smoke {
        Duration::from_millis(2)
    } else {
        Duration::from_millis(250)
    };
    let host_cpus = std::thread::available_parallelism().map_or(1, usize::from);

    let mut src = OperandSource::new(Distribution::UnsignedUniform, WIDTH, 1);
    let (a, b) = src.next_wide(lanes);

    let registry = Registry::for_width(WIDTH);
    let mut points = Vec::new();
    println!(
        "{:<16} {:>7} {:>14} {:>13} {:>15}",
        "engine", "threads", "wall ns/op", "wall speedup", "critpath speedup"
    );
    for engine in registry.engines() {
        for p in scaling_curve(engine.as_ref(), &a, &b, target) {
            println!(
                "{:<16} {:>7} {:>14.3} {:>12.2}x {:>14.2}x",
                p.engine, p.threads, p.wall_ns_per_op, p.wall_speedup, p.critical_path_speedup
            );
            points.push(p);
        }
    }

    if smoke {
        println!(
            "\n--smoke: skipping BENCH_throughput.json write (budgets too small to be meaningful)"
        );
        return;
    }
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_throughput.json");
    match write_json(&points, lanes, host_cpus, &path) {
        Ok(()) => println!("\nwrote {} (host_cpus = {host_cpus})", path.display()),
        Err(e) => eprintln!("\nfailed to write {}: {e}", path.display()),
    }
}

//! Criterion micro-benchmarks: throughput of the behavioral kernels and the
//! EDA substrate (simulation, timing, synthesis sweep).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use bitnum::rng::Xoshiro256;
use bitnum::UBig;
use gatesim::{opt, sim, sta};
use vlcsa::{OverflowMode, Scsa, Scsa2, Vlcsa1};
use workloads::dist::{Distribution, OperandSource};

fn operand_batch(n: usize, count: usize, seed: u64) -> Vec<(UBig, UBig)> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    (0..count)
        .map(|_| (UBig::random(n, &mut rng), UBig::random(n, &mut rng)))
        .collect()
}

fn bench_behavioral(c: &mut Criterion) {
    let mut g = c.benchmark_group("behavioral");
    for n in [64usize, 512] {
        let pairs = operand_batch(n, 1024, 1);
        g.throughput(Throughput::Elements(pairs.len() as u64));

        g.bench_function(format!("exact_add_{n}"), |b| {
            b.iter(|| {
                let mut acc = false;
                for (x, y) in &pairs {
                    acc ^= x.overflowing_add(y).1;
                }
                acc
            })
        });

        let scsa = Scsa::new(n, 14.min(n));
        g.bench_function(format!("scsa1_speculate_{n}"), |b| {
            b.iter(|| {
                let mut acc = false;
                for (x, y) in &pairs {
                    acc ^= scsa.speculate(x, y).cout;
                }
                acc
            })
        });
        g.bench_function(format!("scsa1_is_error_{n}"), |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for (x, y) in &pairs {
                    acc += scsa.is_error(x, y, OverflowMode::Truncate) as usize;
                }
                acc
            })
        });

        let scsa2 = Scsa2::new(n, 13.min(n));
        g.bench_function(format!("scsa2_speculate_{n}"), |b| {
            b.iter(|| {
                let mut acc = false;
                for (x, y) in &pairs {
                    acc ^= scsa2.speculate(x, y).cout1;
                }
                acc
            })
        });

        let vlcsa1 = Vlcsa1::new(n, 14.min(n));
        g.bench_function(format!("vlcsa1_add_{n}"), |b| {
            b.iter(|| {
                let mut cycles = 0u64;
                for (x, y) in &pairs {
                    cycles += vlcsa1.add(x, y).cycles as u64;
                }
                cycles
            })
        });
    }
    g.finish();
}

fn bench_substrate(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate");
    let ks = adders::prefix::kogge_stone_adder(64);

    let mut rng = Xoshiro256::seed_from_u64(7);
    let stim_a: Vec<u64> = (0..64)
        .map(|_| bitnum::rng::RandomBits::next_u64(&mut rng))
        .collect();
    let stim_b: Vec<u64> = (0..64)
        .map(|_| bitnum::rng::RandomBits::next_u64(&mut rng))
        .collect();
    g.throughput(Throughput::Elements(64));
    g.bench_function("netlist_sim_ks64_64vectors", |b| {
        b.iter(|| sim::simulate(&ks, &[("a", &stim_a), ("b", &stim_b)]).unwrap())
    });

    g.throughput(Throughput::Elements(1));
    g.bench_function("sta_ks64", |b| {
        b.iter(|| sta::analyze(&ks).critical_delay_tau())
    });

    g.bench_function("generate_vlcsa1_64", |b| {
        b.iter(|| vlcsa::netlist::vlcsa1_netlist(64, 14).cell_count())
    });

    g.bench_function("optimize_scsa1_64", |b| {
        b.iter_batched(
            || vlcsa::netlist::scsa1_netlist(64, 14),
            |net| opt::best_buffered(&net, &[4, 8, 16]).cell_count(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_workloads(c: &mut Criterion) {
    let mut g = c.benchmark_group("workloads");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("gaussian_pairs_64", |b| {
        let mut src = OperandSource::new(Distribution::paper_gaussian(), 64, 3);
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..1024 {
                acc += src.next_pair().0.count_ones();
            }
            acc
        })
    });
    g.bench_function("chain_histogram_record_32", |b| {
        let pairs = operand_batch(32, 1024, 9);
        b.iter_batched(
            || workloads::chains::ChainHistogram::new(32),
            |mut h| {
                for (x, y) in &pairs {
                    h.record(x, y);
                }
                h.chains()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_behavioral, bench_substrate, bench_workloads
}
criterion_main!(benches);

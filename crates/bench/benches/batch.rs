//! Scalar vs bit-sliced throughput for every batch engine, with a
//! machine-readable result file.
//!
//! Two passes share one workload setup:
//!
//! 1. a criterion group (`batch_vs_scalar/...`) printing per-benchmark
//!    wall-clock and elements/s rates, and
//! 2. a recording pass that re-times each scalar/batch pair with a
//!    best-of-3 measurement and writes `BENCH_batch.json` at the
//!    repository root — the benchmark contract documented in
//!    EXPERIMENTS.md ("Batched throughput: the `batch` bench and
//!    `BENCH_batch.json`").
//!
//! `cargo bench -p vlcsa-bench --bench batch` runs both passes;
//! `-- --smoke` (the CI mode) shrinks every budget to milliseconds and
//! skips the JSON write so a checked-in result file is never clobbered by
//! a throwaway run. Free arguments filter the criterion pass by substring,
//! as in the other bench targets.

use std::time::{Duration, Instant};

use adders::batch::{BatchAdd, BatchCarrySelect, BatchCla, BatchRipple};
use bitnum::batch::BitSlab;
use bitnum::UBig;
use criterion::{Criterion, Throughput};
use vlcsa::{Vlcsa1, Vlcsa2};
use workloads::dist::{Distribution, OperandSource};

const LANES: usize = 64;

/// One scalar-vs-batch comparison, serialized into `BENCH_batch.json`.
struct Entry {
    engine: &'static str,
    width: usize,
    distribution: String,
    scalar_ns_per_op: f64,
    batch_ns_per_op: f64,
}

impl Entry {
    fn speedup(&self) -> f64 {
        self.scalar_ns_per_op / self.batch_ns_per_op
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "    {{\"engine\": \"{}\", \"width\": {}, \"lanes\": {}, ",
                "\"distribution\": \"{}\", \"scalar_ns_per_op\": {:.2}, ",
                "\"batch_ns_per_op\": {:.2}, \"scalar_ops_per_sec\": {:.0}, ",
                "\"batch_ops_per_sec\": {:.0}, \"speedup\": {:.2}}}"
            ),
            self.engine,
            self.width,
            LANES,
            self.distribution,
            self.scalar_ns_per_op,
            self.batch_ns_per_op,
            1e9 / self.scalar_ns_per_op,
            1e9 / self.batch_ns_per_op,
            self.speedup(),
        )
    }
}

/// Best-of-3 nanoseconds per call of `f`, self-calibrating the batch count
/// from a warm-up quarter of `target`.
fn ns_per_call<F: FnMut() -> u64>(mut f: F, target: Duration) -> f64 {
    let mut sink = 0u64;
    let warm_until = Instant::now() + target / 4;
    let mut calls = 0u64;
    while Instant::now() < warm_until {
        sink = sink.wrapping_add(f());
        calls += 1;
    }
    let calls_per_sample = calls.max(1);
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..calls_per_sample {
            sink = sink.wrapping_add(f());
        }
        best = best.min(t.elapsed().as_nanos() as f64 / calls_per_sample as f64);
    }
    std::hint::black_box(sink);
    best
}

fn operand_group(dist: Distribution, width: usize, seed: u64) -> (Vec<(UBig, UBig)>, BitSlab, BitSlab) {
    let mut src = OperandSource::new(dist, width, seed);
    let pairs: Vec<(UBig, UBig)> = (0..LANES).map(|_| src.next_pair()).collect();
    let mut src = OperandSource::new(dist, width, seed);
    let (a, b) = src.next_batch(LANES);
    (pairs, a, b)
}

fn family_engines(width: usize) -> Vec<Box<dyn BatchAdd>> {
    vec![
        Box::new(BatchRipple::new(width)),
        Box::new(BatchCla::new(width)),
        Box::new(BatchCarrySelect::new(width, (width as f64).sqrt().ceil() as usize)),
    ]
}

/// Times one scalar/batch pair of closures, each processing `LANES`
/// additions per call, and returns the per-operation numbers.
fn record<S, B>(engine: &'static str, width: usize, dist: Distribution, target: Duration, mut scalar: S, mut batch: B) -> Entry
where
    S: FnMut() -> u64,
    B: FnMut() -> u64,
{
    let scalar_ns = ns_per_call(&mut scalar, target) / LANES as f64;
    let batch_ns = ns_per_call(&mut batch, target) / LANES as f64;
    Entry {
        engine,
        width,
        distribution: dist.name(),
        scalar_ns_per_op: scalar_ns,
        batch_ns_per_op: batch_ns,
    }
}

fn record_all(target: Duration) -> Vec<Entry> {
    let mut entries = Vec::new();
    // Baseline adder families: uniform operands at two widths.
    for width in [64usize, 256] {
        let (pairs, a, b) = operand_group(Distribution::UnsignedUniform, width, 1);
        for engine in family_engines(width) {
            let name = engine.name();
            entries.push(record(
                name,
                width,
                Distribution::UnsignedUniform,
                target,
                || {
                    let mut acc = 0u64;
                    for (x, y) in &pairs {
                        acc = acc.wrapping_add(engine.add_one(x, y).1 as u64);
                    }
                    acc
                },
                || engine.add_batch(&a, &b).cout,
            ));
        }
    }
    // Variable-latency engines: uniform and the paper's Gaussian.
    for dist in [Distribution::UnsignedUniform, Distribution::paper_gaussian()] {
        let (pairs, a, b) = operand_group(dist, 64, 2);
        let v1 = Vlcsa1::new(64, 14);
        entries.push(record(
            "vlcsa1",
            64,
            dist,
            target,
            || {
                let mut cycles = 0u64;
                for (x, y) in &pairs {
                    cycles += v1.add(x, y).cycles as u64;
                }
                cycles
            },
            || v1.add_batch(&a, &b).total_cycles(),
        ));
        let v2 = Vlcsa2::new(64, 13);
        entries.push(record(
            "vlcsa2",
            64,
            dist,
            target,
            || {
                let mut cycles = 0u64;
                for (x, y) in &pairs {
                    cycles += v2.add(x, y).cycles as u64;
                }
                cycles
            },
            || v2.add_batch(&a, &b).total_cycles(),
        ));
    }
    entries
}

fn criterion_pass(c: &mut Criterion) {
    let mut g = c.benchmark_group("batch_vs_scalar");
    g.throughput(Throughput::Elements(LANES as u64));
    let (pairs, a, b) = operand_group(Distribution::UnsignedUniform, 64, 1);
    for engine in family_engines(64) {
        let name = engine.name();
        g.bench_function(format!("{name}_64/scalar"), |bch| {
            bch.iter(|| {
                let mut acc = 0u64;
                for (x, y) in &pairs {
                    acc = acc.wrapping_add(engine.add_one(x, y).1 as u64);
                }
                acc
            })
        });
        g.bench_function(format!("{name}_64/batch"), |bch| {
            bch.iter(|| engine.add_batch(&a, &b).cout)
        });
    }
    let v1 = Vlcsa1::new(64, 14);
    g.bench_function("vlcsa1_64/scalar", |bch| {
        bch.iter(|| {
            let mut cycles = 0u64;
            for (x, y) in &pairs {
                cycles += v1.add(x, y).cycles as u64;
            }
            cycles
        })
    });
    g.bench_function("vlcsa1_64/batch", |bch| {
        bch.iter(|| v1.add_batch(&a, &b).total_cycles())
    });
    let (gpairs, ga, gb) = operand_group(Distribution::paper_gaussian(), 64, 2);
    let v2 = Vlcsa2::new(64, 13);
    g.bench_function("vlcsa2_64_gaussian/scalar", |bch| {
        bch.iter(|| {
            let mut cycles = 0u64;
            for (x, y) in &gpairs {
                cycles += v2.add(x, y).cycles as u64;
            }
            cycles
        })
    });
    g.bench_function("vlcsa2_64_gaussian/batch", |bch| {
        bch.iter(|| v2.add_batch(&ga, &gb).total_cycles())
    });
    g.finish();
}

fn write_json(entries: &[Entry], path: &std::path::Path) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"vlcsa-bench/batch/v1\",\n");
    out.push_str("  \"generated_by\": \"cargo bench -p vlcsa-bench --bench batch\",\n");
    out.push_str("  \"units\": {\"scalar_ns_per_op\": \"ns\", \"batch_ns_per_op\": \"ns\", \"scalar_ops_per_sec\": \"additions/s\", \"batch_ops_per_sec\": \"additions/s\", \"speedup\": \"ratio\"},\n");
    out.push_str(&format!("  \"lanes\": {LANES},\n"));
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&e.to_json());
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut c = if smoke {
        Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5))
    } else {
        Criterion::default()
            .sample_size(10)
            .measurement_time(Duration::from_millis(700))
            .warm_up_time(Duration::from_millis(150))
    }
    .configure_from_args();
    criterion_pass(&mut c);

    let target = if smoke { Duration::from_millis(4) } else { Duration::from_millis(400) };
    let entries = record_all(target);
    println!("\n{:<14} {:>5} {:>22} {:>14} {:>13} {:>9}", "engine", "width", "distribution", "scalar ns/op", "batch ns/op", "speedup");
    for e in &entries {
        println!(
            "{:<14} {:>5} {:>22} {:>14.1} {:>13.2} {:>8.1}x",
            e.engine, e.width, e.distribution, e.scalar_ns_per_op, e.batch_ns_per_op, e.speedup()
        );
    }
    if smoke {
        println!("\n--smoke: skipping BENCH_batch.json write (budgets too small to be meaningful)");
        return;
    }
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_batch.json");
    match write_json(&entries, &path) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nfailed to write {}: {e}", path.display()),
    }
}

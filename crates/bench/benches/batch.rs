//! Scalar vs bit-sliced throughput for every registered engine, with a
//! machine-readable result file.
//!
//! Both passes are driven entirely by `vlcsa::engine::Registry` — there is
//! no per-family dispatch here; adding an engine to the registry adds it
//! to the bench and to `BENCH_batch.json` automatically:
//!
//! 1. a criterion group (`batch_vs_scalar/...`) printing per-benchmark
//!    wall-clock and elements/s rates, and
//! 2. a recording pass that re-times each scalar/batch pair with a
//!    best-of-3 measurement and writes `BENCH_batch.json` at the
//!    repository root — the benchmark contract documented in
//!    EXPERIMENTS.md ("Batched throughput: the `batch` bench and
//!    `BENCH_batch.json`").
//!
//! `cargo bench -p vlcsa-bench --bench batch` runs both passes;
//! `-- --smoke` (the CI mode) shrinks every budget to milliseconds and
//! skips the JSON write so a checked-in result file is never clobbered by
//! a throwaway run. Free arguments filter the criterion pass by substring,
//! as in the other bench targets.

use std::time::Duration;

use vlcsa_bench::timing::ns_per_call;

use bitnum::batch::BitSlab;
use bitnum::UBig;
use criterion::{Criterion, Throughput};
use vlcsa::engine::{Engine, Registry};
use workloads::dist::{Distribution, OperandSource};

const LANES: usize = 64;

/// One scalar-vs-batch comparison, serialized into `BENCH_batch.json`.
struct Entry {
    engine: &'static str,
    width: usize,
    distribution: String,
    scalar_ns_per_op: f64,
    batch_ns_per_op: f64,
}

impl Entry {
    fn speedup(&self) -> f64 {
        self.scalar_ns_per_op / self.batch_ns_per_op
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "    {{\"engine\": \"{}\", \"width\": {}, \"lanes\": {}, ",
                "\"distribution\": \"{}\", \"scalar_ns_per_op\": {:.2}, ",
                "\"batch_ns_per_op\": {:.2}, \"scalar_ops_per_sec\": {:.0}, ",
                "\"batch_ops_per_sec\": {:.0}, \"speedup\": {:.2}}}"
            ),
            self.engine,
            self.width,
            LANES,
            self.distribution,
            self.scalar_ns_per_op,
            self.batch_ns_per_op,
            1e9 / self.scalar_ns_per_op,
            1e9 / self.batch_ns_per_op,
            self.speedup(),
        )
    }
}

fn operand_group(
    dist: Distribution,
    width: usize,
    seed: u64,
) -> (Vec<(UBig, UBig)>, BitSlab, BitSlab) {
    let mut src = OperandSource::new(dist, width, seed);
    let pairs: Vec<(UBig, UBig)> = (0..LANES).map(|_| src.next_pair()).collect();
    let mut src = OperandSource::new(dist, width, seed);
    let (a, b) = src.next_batch(LANES);
    (pairs, a, b)
}

/// Times one engine's scalar/batch pair on one operand group. Both sides
/// count cycles (the variable-latency engines' latency model showing
/// through; constant 1 per lane for the fixed-latency families).
fn record(
    engine: &dyn Engine,
    dist: Distribution,
    target: Duration,
    pairs: &[(UBig, UBig)],
    a: &BitSlab,
    b: &BitSlab,
) -> Entry {
    let scalar_ns = ns_per_call(
        || {
            let mut cycles = 0u64;
            for (x, y) in pairs {
                cycles += engine.add_one(x, y).cycles as u64;
            }
            cycles
        },
        target,
    ) / LANES as f64;
    let batch_ns = ns_per_call(|| engine.add_batch(a, b).total_cycles(), target) / LANES as f64;
    Entry {
        engine: engine.name(),
        width: engine.width(),
        distribution: dist.name(),
        scalar_ns_per_op: scalar_ns,
        batch_ns_per_op: batch_ns,
    }
}

fn record_all(target: Duration) -> Vec<Entry> {
    let mut entries = Vec::new();
    // Every registered engine on uniform operands at two widths …
    for width in [64usize, 256] {
        let (pairs, a, b) = operand_group(Distribution::UnsignedUniform, width, 1);
        for engine in Registry::for_width(width).engines() {
            entries.push(record(
                engine.as_ref(),
                Distribution::UnsignedUniform,
                target,
                &pairs,
                &a,
                &b,
            ));
        }
    }
    // … and on the paper's Gaussian at 64 bits, where the speculative
    // engines' stall rates (Table 7.1) show through the throughput.
    let dist = Distribution::paper_gaussian();
    let (pairs, a, b) = operand_group(dist, 64, 2);
    for engine in Registry::for_width(64).engines() {
        entries.push(record(engine.as_ref(), dist, target, &pairs, &a, &b));
    }
    entries
}

fn criterion_pass(c: &mut Criterion) {
    let mut g = c.benchmark_group("batch_vs_scalar");
    g.throughput(Throughput::Elements(LANES as u64));
    let registry = Registry::for_width(64);
    for (dist, tag, seed) in [
        (Distribution::UnsignedUniform, "", 1u64),
        (Distribution::paper_gaussian(), "_gaussian", 2),
    ] {
        let (pairs, a, b) = operand_group(dist, 64, seed);
        for engine in registry.engines() {
            let name = engine.name();
            g.bench_function(format!("{name}_64{tag}/scalar"), |bch| {
                bch.iter(|| {
                    let mut cycles = 0u64;
                    for (x, y) in &pairs {
                        cycles += engine.add_one(x, y).cycles as u64;
                    }
                    cycles
                })
            });
            g.bench_function(format!("{name}_64{tag}/batch"), |bch| {
                bch.iter(|| engine.add_batch(&a, &b).total_cycles())
            });
        }
    }
    g.finish();
}

fn write_json(entries: &[Entry], path: &std::path::Path) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"vlcsa-bench/batch/v1\",\n");
    out.push_str("  \"generated_by\": \"cargo bench -p vlcsa-bench --bench batch\",\n");
    out.push_str("  \"units\": {\"scalar_ns_per_op\": \"ns\", \"batch_ns_per_op\": \"ns\", \"scalar_ops_per_sec\": \"additions/s\", \"batch_ops_per_sec\": \"additions/s\", \"speedup\": \"ratio\"},\n");
    out.push_str(&format!("  \"lanes\": {LANES},\n"));
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&e.to_json());
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut c = if smoke {
        Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5))
    } else {
        Criterion::default()
            .sample_size(10)
            .measurement_time(Duration::from_millis(700))
            .warm_up_time(Duration::from_millis(150))
    }
    .configure_from_args();
    criterion_pass(&mut c);

    let target = if smoke {
        Duration::from_millis(4)
    } else {
        Duration::from_millis(400)
    };
    let entries = record_all(target);
    println!(
        "\n{:<16} {:>5} {:>22} {:>14} {:>13} {:>9}",
        "engine", "width", "distribution", "scalar ns/op", "batch ns/op", "speedup"
    );
    for e in &entries {
        println!(
            "{:<16} {:>5} {:>22} {:>14.1} {:>13.2} {:>8.1}x",
            e.engine,
            e.width,
            e.distribution,
            e.scalar_ns_per_op,
            e.batch_ns_per_op,
            e.speedup()
        );
    }
    if smoke {
        println!("\n--smoke: skipping BENCH_batch.json write (budgets too small to be meaningful)");
        return;
    }
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_batch.json");
    match write_json(&entries, &path) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nfailed to write {}: {e}", path.display()),
    }
}

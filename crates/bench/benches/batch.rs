//! Scalar vs bit-sliced throughput for every registered engine, at both
//! slab word widths, with a machine-readable result file.
//!
//! Both passes are driven entirely by `vlcsa::engine::Registry` — there is
//! no per-family dispatch here; adding an engine to the registry adds it
//! to the bench and to `BENCH_batch.json` automatically:
//!
//! 1. a criterion group (`batch_vs_scalar/...`) printing per-benchmark
//!    wall-clock and elements/s rates over the default slab word, and
//! 2. a recording pass that re-times each scalar/batch pair with a
//!    best-of-3 measurement — once per slab word (`u64` = 64 lanes,
//!    `W256` = 256 lanes) — and writes `BENCH_batch.json` at the
//!    repository root (schema `vlcsa-bench/batch/v3`, the benchmark
//!    contract documented in EXPERIMENTS.md, including the ≥2× ripple
//!    word-widening floor), together with a `multiop` row: an 8-operand
//!    carry-save reduction (Wallace tree + one batch resolve) against the
//!    scalar sequential fold of the same operands.
//!
//! The recording pass also times the `W512` scaling probe for every
//! family, but its rows are admitted into `BENCH_batch.json` only when
//! the probe beats `W256` per-op by at least [`W512_FLOOR`]; otherwise
//! the run prints the measured ratios and the negative result lives in
//! EXPERIMENTS.md instead of the result file (the expected outcome on
//! AVX2 hosts, where an eight-limb lane map compiles to two 256-bit ops
//! per gate).
//!
//! `cargo bench -p vlcsa-bench --bench batch` runs both passes;
//! `-- --smoke` (the CI mode) shrinks every budget to milliseconds and
//! skips the JSON write so a checked-in result file is never clobbered by
//! a throwaway run. Free arguments filter the criterion pass by substring,
//! as in the other bench targets.

use std::time::Duration;

use vlcsa_bench::timing::ns_per_call;

use adders::batch::{sum_batch, BatchRipple};
use bitnum::batch::{BitSlab, DefaultWord, Word, W256, W512};
use bitnum::UBig;
use criterion::{Criterion, Throughput};
use vlcsa::engine::{Engine, Registry};
use workloads::dist::{Distribution, OperandSource};

/// Scalar-baseline operand pairs per timed call (one `u64` slab's worth).
const SCALAR_OPS: usize = 64;

/// Operand count of the multiop (carry-save reduction) row.
const MULTIOP_N: usize = 8;

/// Admission floor for `W512` probe rows: a `word_bits: 512` entry is
/// recorded only when its batch ns/op beats the same family's `W256`
/// entry by at least this ratio.
const W512_FLOOR: f64 = 1.2;

/// One scalar-vs-batch comparison at one slab word width, serialized into
/// `BENCH_batch.json`.
struct Entry {
    engine: &'static str,
    width: usize,
    word_bits: usize,
    lanes: usize,
    distribution: String,
    scalar_ns_per_op: f64,
    batch_ns_per_op: f64,
}

impl Entry {
    fn speedup(&self) -> f64 {
        self.scalar_ns_per_op / self.batch_ns_per_op
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "    {{\"engine\": \"{}\", \"width\": {}, \"word_bits\": {}, ",
                "\"lanes\": {}, \"distribution\": \"{}\", ",
                "\"scalar_ns_per_op\": {:.2}, \"batch_ns_per_op\": {:.2}, ",
                "\"scalar_ops_per_sec\": {:.0}, \"batch_ops_per_sec\": {:.0}, ",
                "\"speedup\": {:.2}}}"
            ),
            self.engine,
            self.width,
            self.word_bits,
            self.lanes,
            self.distribution,
            self.scalar_ns_per_op,
            self.batch_ns_per_op,
            1e9 / self.scalar_ns_per_op,
            1e9 / self.batch_ns_per_op,
            self.speedup(),
        )
    }
}

/// One distribution × width operand set: scalar pairs plus a full slab for
/// each word width, all drawn from the same stream.
struct OperandSet {
    pairs: Vec<(UBig, UBig)>,
    narrow_a: BitSlab<u64>,
    narrow_b: BitSlab<u64>,
    wide_a: BitSlab<W256>,
    wide_b: BitSlab<W256>,
    probe_a: BitSlab<W512>,
    probe_b: BitSlab<W512>,
}

fn operand_set(dist: Distribution, width: usize, seed: u64) -> OperandSet {
    let mut src = OperandSource::new(dist, width, seed);
    let pairs: Vec<(UBig, UBig)> = (0..W512::LANES).map(|_| src.next_pair()).collect();
    let lanes =
        |n: usize, side: fn(&(UBig, UBig)) -> UBig| pairs[..n].iter().map(side).collect::<Vec<_>>();
    OperandSet {
        narrow_a: BitSlab::from_lanes(&lanes(64, |p| p.0.clone())),
        narrow_b: BitSlab::from_lanes(&lanes(64, |p| p.1.clone())),
        wide_a: BitSlab::from_lanes(&lanes(W256::LANES, |p| p.0.clone())),
        wide_b: BitSlab::from_lanes(&lanes(W256::LANES, |p| p.1.clone())),
        probe_a: BitSlab::from_lanes(&lanes(W512::LANES, |p| p.0.clone())),
        probe_b: BitSlab::from_lanes(&lanes(W512::LANES, |p| p.1.clone())),
        pairs,
    }
}

/// Times one word width's batch path, amortized per addition.
fn batch_ns<W: Word>(
    engine: &dyn Engine<W>,
    a: &BitSlab<W>,
    b: &BitSlab<W>,
    target: Duration,
) -> f64 {
    ns_per_call(|| engine.add_batch(a, b).total_cycles(), target) / a.lanes() as f64
}

/// Records one engine family at one width/distribution: a shared scalar
/// baseline plus one entry per slab word width.
fn record_family(
    narrow: &dyn Engine<u64>,
    wide: &dyn Engine<W256>,
    probe: &dyn Engine<W512>,
    dist: Distribution,
    target: Duration,
    set: &OperandSet,
) -> [Entry; 3] {
    let scalar_ns = ns_per_call(
        || {
            let mut cycles = 0u64;
            for (x, y) in &set.pairs[..SCALAR_OPS] {
                cycles += narrow.add_one(x, y).cycles as u64;
            }
            cycles
        },
        target,
    ) / SCALAR_OPS as f64;
    let entry = |word_bits: usize, lanes: usize, batch_ns_per_op: f64| Entry {
        engine: narrow.name(),
        width: narrow.width(),
        word_bits,
        lanes,
        distribution: dist.name(),
        scalar_ns_per_op: scalar_ns,
        batch_ns_per_op,
    };
    [
        entry(
            64,
            64,
            batch_ns(narrow, &set.narrow_a, &set.narrow_b, target),
        ),
        entry(
            W256::LANES,
            W256::LANES,
            batch_ns(wide, &set.wide_a, &set.wide_b, target),
        ),
        entry(
            W512::LANES,
            W512::LANES,
            batch_ns(probe, &set.probe_a, &set.probe_b, target),
        ),
    ]
}

fn record_all(target: Duration) -> Vec<Entry> {
    let mut entries = Vec::new();
    // Every registered engine on uniform operands at two widths, and on
    // the paper's Gaussian at 64 bits, where the speculative engines'
    // stall rates (Table 7.1) show through the throughput.
    let configs = [
        (Distribution::UnsignedUniform, 64usize, 1u64),
        (Distribution::UnsignedUniform, 256, 1),
        (Distribution::paper_gaussian(), 64, 2),
    ];
    for (dist, width, seed) in configs {
        let set = operand_set(dist, width, seed);
        let narrow_registry = Registry::<u64>::for_width_word(width);
        let wide_registry = Registry::<W256>::for_width_word(width);
        let probe_registry = Registry::<W512>::for_width_word(width);
        for ((narrow, wide), probe) in narrow_registry
            .engines()
            .iter()
            .zip(wide_registry.engines())
            .zip(probe_registry.engines())
        {
            entries.extend(record_family(
                narrow.as_ref(),
                wide.as_ref(),
                probe.as_ref(),
                dist,
                target,
                &set,
            ));
        }
    }
    entries
}

/// One multiop (8-operand carry-save reduction) measurement at one slab
/// word width: scalar sequential fold (`MULTIOP_N − 1` dependent
/// `add_one` resolves per reduction) vs bit-sliced Wallace reduction with
/// exactly one `sum_batch` resolve for the whole slab.
struct MultiopEntry {
    word_bits: usize,
    lanes: usize,
    scalar_ns_per_reduction: f64,
    batch_ns_per_reduction: f64,
}

impl MultiopEntry {
    fn speedup(&self) -> f64 {
        self.scalar_ns_per_reduction / self.batch_ns_per_reduction
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "    {{\"word_bits\": {}, \"lanes\": {}, ",
                "\"scalar_ns_per_reduction\": {:.2}, ",
                "\"batch_ns_per_reduction\": {:.2}, \"speedup\": {:.2}}}"
            ),
            self.word_bits,
            self.lanes,
            self.scalar_ns_per_reduction,
            self.batch_ns_per_reduction,
            self.speedup(),
        )
    }
}

/// Records the multiop row at width 64 on uniform operands, ripple
/// resolve, at both slab word widths. The scalar baseline folds the same
/// reductions through the registry's scalar ripple path.
fn record_multiop(target: Duration) -> Vec<MultiopEntry> {
    let width = 64;
    let mut src = OperandSource::new(Distribution::UnsignedUniform, width, 3);
    let columns: Vec<Vec<UBig>> = (0..MULTIOP_N)
        .map(|_| (0..W256::LANES).map(|_| src.next_operand()).collect())
        .collect();
    let scalar = Registry::<u64>::for_width_word(width);
    let scalar = scalar.get("ripple").expect("ripple registered");
    let scalar_ns = ns_per_call(
        || {
            let mut cycles = 0u64;
            for l in 0..SCALAR_OPS {
                let mut acc = columns[0][l].clone();
                for column in &columns[1..] {
                    let out = scalar.add_one(&acc, &column[l]);
                    cycles += out.cycles as u64;
                    acc = out.sum;
                }
            }
            cycles
        },
        target,
    ) / SCALAR_OPS as f64;
    let resolver = BatchRipple::new(width);
    fn batch_side<W: Word>(
        resolver: &BatchRipple,
        columns: &[Vec<UBig>],
        lanes: usize,
        target: Duration,
    ) -> f64 {
        let slabs: Vec<BitSlab<W>> = columns
            .iter()
            .map(|c| BitSlab::from_lanes(&c[..lanes]))
            .collect();
        ns_per_call(|| sum_batch(resolver, &slabs).sum.width() as u64, target) / lanes as f64
    }
    let entry = |word_bits: usize, lanes: usize, batch_ns_per_reduction: f64| MultiopEntry {
        word_bits,
        lanes,
        scalar_ns_per_reduction: scalar_ns,
        batch_ns_per_reduction,
    };
    vec![
        entry(64, 64, batch_side::<u64>(&resolver, &columns, 64, target)),
        entry(
            W256::LANES,
            W256::LANES,
            batch_side::<W256>(&resolver, &columns, W256::LANES, target),
        ),
    ]
}

/// The recorded word-widening win the EXPERIMENTS.md floor is about:
/// ripple at width 64 on uniform operands, `u64` batch ns/op over `W256`
/// batch ns/op.
fn ripple64_word_improvement(entries: &[Entry]) -> Option<f64> {
    let find = |word_bits: usize| {
        entries.iter().find(|e| {
            e.engine == "ripple"
                && e.width == 64
                && e.word_bits == word_bits
                && e.distribution == Distribution::UnsignedUniform.name()
        })
    };
    Some(find(64)?.batch_ns_per_op / find(W256::LANES)?.batch_ns_per_op)
}

/// Applies the [`W512_FLOOR`] admission rule: prints every probe-vs-`W256`
/// ratio, then drops the `word_bits: 512` rows that did not clear the
/// floor so they never reach `BENCH_batch.json`. Returns the surviving
/// entries and how many probe rows were admitted.
fn admit_probe_rows(entries: Vec<Entry>) -> (Vec<Entry>, usize) {
    let wide_ns = |probe: &Entry| {
        entries
            .iter()
            .find(|e| {
                e.engine == probe.engine
                    && e.width == probe.width
                    && e.distribution == probe.distribution
                    && e.word_bits == W256::LANES
            })
            .map(|e| e.batch_ns_per_op)
    };
    println!(
        "\n{:<16} {:>5} {:>22} {:>18} {:>10}",
        "W512 probe", "width", "distribution", "vs W256 ns/op", "admitted"
    );
    let admitted: Vec<bool> = entries
        .iter()
        .map(|e| {
            if e.word_bits != W512::LANES {
                return true;
            }
            let Some(wide) = wide_ns(e) else { return false };
            let ratio = wide / e.batch_ns_per_op;
            let keep = ratio >= W512_FLOOR;
            println!(
                "{:<16} {:>5} {:>22} {:>17.2}x {:>10}",
                e.engine,
                e.width,
                e.distribution,
                ratio,
                if keep { "yes" } else { "no" }
            );
            keep
        })
        .collect();
    let mut admitted = admitted.into_iter();
    let total = entries.len();
    let kept: Vec<Entry> = entries
        .into_iter()
        .filter(|_| admitted.next().expect("one flag per entry"))
        .collect();
    let probes_kept = kept.iter().filter(|e| e.word_bits == W512::LANES).count();
    let dropped = total - kept.len();
    if dropped > 0 {
        println!(
            "{dropped} W512 probe row(s) below the {W512_FLOOR}x floor — \
             not recorded (see the negative result in EXPERIMENTS.md)"
        );
    }
    (kept, probes_kept)
}

fn criterion_pass(c: &mut Criterion) {
    let mut g = c.benchmark_group("batch_vs_scalar");
    g.throughput(Throughput::Elements(DefaultWord::LANES as u64));
    let registry = Registry::for_width(64);
    for (dist, tag, seed) in [
        (Distribution::UnsignedUniform, "", 1u64),
        (Distribution::paper_gaussian(), "_gaussian", 2),
    ] {
        let mut src = OperandSource::new(dist, 64, seed);
        let pairs: Vec<(UBig, UBig)> = (0..DefaultWord::LANES).map(|_| src.next_pair()).collect();
        let mut src = OperandSource::new(dist, 64, seed);
        let (a, b) = src.next_batch(DefaultWord::LANES);
        for engine in registry.engines() {
            let name = engine.name();
            g.bench_function(format!("{name}_64{tag}/scalar"), |bch| {
                bch.iter(|| {
                    let mut cycles = 0u64;
                    for (x, y) in &pairs {
                        cycles += engine.add_one(x, y).cycles as u64;
                    }
                    cycles
                })
            });
            g.bench_function(format!("{name}_64{tag}/batch"), |bch| {
                bch.iter(|| engine.add_batch(&a, &b).total_cycles())
            });
        }
    }
    g.finish();
}

fn write_json(
    entries: &[Entry],
    multiop: &[MultiopEntry],
    path: &std::path::Path,
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"vlcsa-bench/batch/v3\",\n");
    out.push_str("  \"generated_by\": \"cargo bench -p vlcsa-bench --bench batch\",\n");
    out.push_str("  \"units\": {\"scalar_ns_per_op\": \"ns\", \"batch_ns_per_op\": \"ns\", \"scalar_ops_per_sec\": \"additions/s\", \"batch_ops_per_sec\": \"additions/s\", \"speedup\": \"ratio\", \"word_bits\": \"slab lane-word width (= lanes per batch call)\", \"scalar_ns_per_reduction\": \"ns per 8-operand sum, sequential fold\", \"batch_ns_per_reduction\": \"ns per 8-operand sum, carry-save + one resolve\"},\n");
    if let Some(improvement) = ripple64_word_improvement(entries) {
        out.push_str(&format!(
            "  \"ripple64_w256_improvement\": {improvement:.2},\n"
        ));
    }
    out.push_str(&format!(
        "  \"multiop\": {{\"n\": {MULTIOP_N}, \"engine\": \"ripple\", \"width\": 64, \"distribution\": \"unsigned uniform\", \"entries\": [\n"
    ));
    for (i, e) in multiop.iter().enumerate() {
        out.push_str(&e.to_json());
        out.push_str(if i + 1 < multiop.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]},\n");
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&e.to_json());
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut c = if smoke {
        Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5))
    } else {
        Criterion::default()
            .sample_size(10)
            .measurement_time(Duration::from_millis(700))
            .warm_up_time(Duration::from_millis(150))
    }
    .configure_from_args();
    criterion_pass(&mut c);

    let target = if smoke {
        Duration::from_millis(4)
    } else {
        Duration::from_millis(400)
    };
    let entries = record_all(target);
    println!(
        "\n{:<16} {:>5} {:>5} {:>22} {:>14} {:>13} {:>9}",
        "engine", "width", "word", "distribution", "scalar ns/op", "batch ns/op", "speedup"
    );
    for e in &entries {
        println!(
            "{:<16} {:>5} {:>5} {:>22} {:>14.1} {:>13.2} {:>8.1}x",
            e.engine,
            e.width,
            e.word_bits,
            e.distribution,
            e.scalar_ns_per_op,
            e.batch_ns_per_op,
            e.speedup()
        );
    }
    if let Some(improvement) = ripple64_word_improvement(&entries) {
        println!(
            "\nripple@64 word widening (u64 -> W256 batch ns/op): {improvement:.2}x \
             (EXPERIMENTS.md floor: >= 2x on full runs)"
        );
    }
    let (entries, probes_kept) = admit_probe_rows(entries);
    if probes_kept > 0 {
        println!(
            "{probes_kept} W512 probe row(s) cleared the {W512_FLOOR}x floor and will be recorded"
        );
    }

    let multiop = record_multiop(target);
    println!(
        "\n{:<28} {:>5} {:>5} {:>18} {:>17} {:>9}",
        "multiop (8-operand sum)", "width", "word", "scalar ns/sum", "batch ns/sum", "speedup"
    );
    for e in &multiop {
        println!(
            "{:<28} {:>5} {:>5} {:>18.1} {:>17.2} {:>8.1}x",
            "ripple resolve, uniform",
            64,
            e.word_bits,
            e.scalar_ns_per_reduction,
            e.batch_ns_per_reduction,
            e.speedup()
        );
        assert!(
            e.speedup() > 1.0,
            "carry-save reduction slower than the scalar fold at word_bits {}",
            e.word_bits
        );
    }

    if smoke {
        println!("\n--smoke: skipping BENCH_batch.json write (budgets too small to be meaningful)");
        return;
    }
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_batch.json");
    match write_json(&entries, &multiop, &path) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nfailed to write {}: {e}", path.display()),
    }
}

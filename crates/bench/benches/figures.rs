//! `cargo bench --bench figures` — replays the complete table/figure suite
//! with a reduced Monte Carlo budget, so a single `cargo bench` run
//! regenerates every artifact of the paper's evaluation (at lower
//! statistical resolution than `experiments --all --full`).

use vlcsa_bench::{registry, Config};

fn main() {
    // Respect Criterion-style filter arguments minimally: any free argument
    // filters experiment ids by substring. `--bench` is passed by cargo.
    let filters: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with("--"))
        .collect();
    let config = Config::quick();
    let start = std::time::Instant::now();
    let mut ran = 0;
    for e in registry() {
        if !filters.is_empty() && !filters.iter().any(|f| e.id.contains(f.as_str())) {
            continue;
        }
        let t0 = std::time::Instant::now();
        let table = (e.run)(&config);
        println!("{table}");
        println!("  [{} in {:.1}s]\n", e.id, t0.elapsed().as_secs_f64());
        ran += 1;
    }
    println!(
        "figures: {ran} experiments regenerated in {:.1}s (mc_samples = {}; run \
         `cargo run --release -p vlcsa-bench --bin experiments -- --all` for \
         paper-scale sampling)",
        start.elapsed().as_secs_f64(),
        config.mc_samples
    );
}

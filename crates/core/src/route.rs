//! Adaptive engine routing: the `auto` pseudo-engine's decision core.
//!
//! Every serve request so far had to name a concrete engine, freezing the
//! paper's variable-latency/throughput tradeoff at request time. This
//! module makes it a runtime decision: a [`Router`] keeps one
//! exponentially-weighted moving average (EWMA) of cycles/op and stall
//! rate per `(engine, width)` pair, fed by the per-group lane/stall
//! counts a [`BatchOutcome`](crate::batch::BatchOutcome) /
//! [`WideOutcome`](crate::exec::WideOutcome) already accounts, plus a
//! sliding window of observed service latencies per pair from which a
//! p99 derives. [`Router::route`] answers "which engine should the next
//! `auto` group at this width run on":
//!
//! 1. **Explore** — while any candidate at the width has fewer than
//!    [`RouteConfig::min_batches`] observed batches, route to the first
//!    such candidate (in candidate order), so every family gets a
//!    baseline estimate before the router commits.
//! 2. **Exploit** — route to the candidate with the lowest EWMA
//!    cycles/op (eq. 5.2's accept-rate-driven average latency, measured
//!    instead of modeled). Ties keep the earlier candidate, so decisions
//!    are deterministic.
//! 3. **Degrade** — if an SLO budget is set and the winner is a
//!    variable-latency family whose tracked p99 exceeds the budget, fall
//!    back to the best fixed-latency candidate instead (the synchronous
//!    adders never stall, so their latency is the predictable floor).
//!    Latency samples expire after [`RouteConfig::sample_ttl_micros`],
//!    so a degraded family whose storm has passed loses its stale p99
//!    and becomes routable again — recovery needs no manual reset.
//!
//! Determinism is the design center: the router never reads wall-clock
//! time or randomness itself. Time comes from an injected [`Clock`]
//! ([`MonotonicClock`] in production, [`ManualClock`] in tests) and every
//! statistic comes from explicit [`Router::record`] calls, so a test can
//! script a stall storm and assert the exact batch at which routing
//! flips — see `tests/routing.rs`.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use vlcsa::route::{Candidate, FixedCandidates, ManualClock, RouteConfig, Router};
//!
//! let clock = Arc::new(ManualClock::new());
//! let candidates = FixedCandidates::new(vec![
//!     Candidate::variable("speculative"),
//!     Candidate::fixed("synchronous"),
//! ]);
//! let router = Router::with_sources(RouteConfig::default(), clock, Arc::new(candidates));
//! // Exploration first: each candidate gets observed.
//! for _ in 0..2 * RouteConfig::default().min_batches {
//!     let decision = router.route(64).expect("two candidates");
//!     let stalls = if decision.engine == "speculative" { 2 } else { 0 };
//!     router.record(&decision.engine, 64, 256, stalls, 100);
//! }
//! // `speculative` stalls 2/256 ≈ 1.008 cycles/op but that still beats
//! // nothing: the fixed candidate's exact 1.0 wins the exploit phase.
//! assert_eq!(router.route(64).expect("two candidates").engine, "synchronous");
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::engine::Registry;

/// The engine name clients use to delegate the choice to the router.
/// Not a [`Registry`] name: front-ends resolve it per issue group via
/// [`Router::route`] before the group reaches an executor.
pub const AUTO_ENGINE: &str = "auto";

/// The router's time source. Only used to timestamp latency samples (so
/// stale ones expire) — routing itself never reads the clock directly,
/// which is what makes decisions replayable under [`ManualClock`].
pub trait Clock: Send + Sync {
    /// Microseconds since an arbitrary fixed origin, monotone.
    fn now_micros(&self) -> u64;
}

/// Production clock: microseconds since the clock's construction.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// Starts the clock at zero, now.
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_micros(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

/// Test clock: advances only when told to, so sample expiry (and with it
/// SLO recovery) happens at scripted instants instead of wall time.
#[derive(Debug, Default)]
pub struct ManualClock {
    micros: AtomicU64,
}

impl ManualClock {
    /// Starts the clock at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves the clock forward.
    pub fn advance(&self, micros: u64) {
        self.micros.fetch_add(micros, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_micros(&self) -> u64 {
        self.micros.load(Ordering::SeqCst)
    }
}

/// One engine the router may choose at a width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// The engine's display name (a [`Registry`] name in production).
    pub name: String,
    /// Whether the family can stall (2-cycle recovery path). SLO
    /// degradation only ever falls back to `false` candidates.
    pub variable_latency: bool,
}

impl Candidate {
    /// A fixed-latency candidate (never stalls).
    pub fn fixed(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            variable_latency: false,
        }
    }

    /// A variable-latency candidate (1-or-2-cycle).
    pub fn variable(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            variable_latency: true,
        }
    }
}

/// Where the router learns which engines exist at a width. Injected so
/// tests can script a candidate universe (e.g. an all-variable one) that
/// the real registry would never produce.
pub trait CandidateSource: Send + Sync {
    /// The candidates at `width`, in preference order (ties in the
    /// routing score keep the earlier candidate).
    fn candidates(&self, width: usize) -> Vec<Candidate>;
}

/// The production source: every [`Registry`] family at the width, in the
/// registry's table order, with each engine's own latency class.
#[derive(Debug, Default)]
pub struct RegistryCandidates;

impl CandidateSource for RegistryCandidates {
    fn candidates(&self, width: usize) -> Vec<Candidate> {
        Registry::for_width(width)
            .engines()
            .iter()
            .map(|e| Candidate {
                name: e.name().to_string(),
                variable_latency: e.variable_latency(),
            })
            .collect()
    }
}

/// A scripted source: the same candidate list at every width.
#[derive(Debug, Clone)]
pub struct FixedCandidates {
    list: Vec<Candidate>,
}

impl FixedCandidates {
    /// Wraps a candidate list.
    pub fn new(list: Vec<Candidate>) -> Self {
        Self { list }
    }
}

impl CandidateSource for FixedCandidates {
    fn candidates(&self, _width: usize) -> Vec<Candidate> {
        self.list.clone()
    }
}

/// Tuning knobs of the router.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteConfig {
    /// EWMA weight of the newest batch, in `(0, 1]`. Higher reacts to a
    /// stall storm in fewer batches; lower smooths noise.
    pub alpha: f64,
    /// Batches each candidate must serve before the router exploits.
    pub min_batches: u64,
    /// The p99 latency budget in microseconds; `None` disables SLO
    /// degradation entirely.
    pub slo_micros: Option<u64>,
    /// Latency samples kept per `(engine, width)` for the p99.
    pub p99_window: usize,
    /// Samples older than this fall out of the p99 — the SLO recovery
    /// horizon.
    pub sample_ttl_micros: u64,
}

impl Default for RouteConfig {
    /// A reactive default: a storm dominates the EWMA within ~5 batches
    /// (`alpha` 0.3), three exploration batches per family, no SLO until
    /// one is configured, 64-sample p99 windows expiring after 2 s.
    fn default() -> Self {
        Self {
            alpha: 0.3,
            min_batches: 3,
            slo_micros: None,
            p99_window: 64,
            sample_ttl_micros: 2_000_000,
        }
    }
}

/// One routing decision, as [`Router::route`] returns it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decision {
    /// The concrete engine to run the group on.
    pub engine: String,
    /// True when the SLO forced a fixed-latency fallback over the
    /// best-scoring (variable-latency) candidate.
    pub degraded: bool,
}

/// A read-only snapshot of one `(engine, width)` estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateSnapshot {
    /// EWMA cycles per lane (≥ 1.0; exactly 1.0 for a family that has
    /// never stalled).
    pub cycles_per_op: f64,
    /// EWMA fraction of lanes that took the 2-cycle recovery path.
    pub stall_rate: f64,
    /// Batches observed so far.
    pub batches: u64,
    /// The 99th-percentile service latency over the live sample window,
    /// `None` when every sample has expired (or none was ever recorded).
    pub p99_micros: Option<u64>,
}

/// The last decision the router took at one width — what a `STATS`
/// snapshot reports as the width's current route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteStat {
    /// The width the decision was for.
    pub width: usize,
    /// The engine the last `auto` group at this width ran on.
    pub engine: String,
    /// Whether that decision was an SLO degradation.
    pub degraded: bool,
}

/// One `(engine, width)` pair's live estimate.
struct Estimate {
    cycles_per_op: f64,
    stall_rate: f64,
    batches: u64,
    /// `(recorded_at_micros, service_micros)`, oldest first.
    samples: VecDeque<(u64, u64)>,
}

impl Estimate {
    fn new() -> Self {
        Self {
            cycles_per_op: 0.0,
            stall_rate: 0.0,
            batches: 0,
            samples: VecDeque::new(),
        }
    }

    fn observe(&mut self, config: &RouteConfig, lanes: u64, stalls: u64, micros: u64, now: u64) {
        if lanes == 0 {
            return;
        }
        let cycles = (lanes + stalls) as f64 / lanes as f64;
        let stall = stalls as f64 / lanes as f64;
        if self.batches == 0 {
            // Seed with the first batch instead of decaying up from zero,
            // so one exploration batch already yields a usable estimate.
            self.cycles_per_op = cycles;
            self.stall_rate = stall;
        } else {
            self.cycles_per_op = config.alpha * cycles + (1.0 - config.alpha) * self.cycles_per_op;
            self.stall_rate = config.alpha * stall + (1.0 - config.alpha) * self.stall_rate;
        }
        self.batches += 1;
        self.samples.push_back((now, micros));
        while self.samples.len() > config.p99_window {
            self.samples.pop_front();
        }
    }

    fn expire(&mut self, config: &RouteConfig, now: u64) {
        let horizon = now.saturating_sub(config.sample_ttl_micros);
        while matches!(self.samples.front(), Some(&(at, _)) if at < horizon) {
            self.samples.pop_front();
        }
    }

    /// Nearest-rank p99 over the live samples.
    fn p99(&self) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut latencies: Vec<u64> = self.samples.iter().map(|&(_, micros)| micros).collect();
        latencies.sort_unstable();
        let rank = (latencies.len() * 99).div_ceil(100).max(1);
        Some(latencies[rank - 1])
    }
}

/// Per-width routing state: the candidate list (resolved once per width)
/// and one estimate per candidate, same index.
struct WidthState {
    candidates: Vec<Candidate>,
    estimates: Vec<Estimate>,
    last: Option<Decision>,
}

struct RouterState {
    widths: Vec<(usize, WidthState)>,
}

impl RouterState {
    fn width_state(
        &mut self,
        width: usize,
        source: &dyn CandidateSource,
    ) -> Option<&mut WidthState> {
        if let Some(i) = self.widths.iter().position(|(w, _)| *w == width) {
            return Some(&mut self.widths[i].1);
        }
        let candidates = source.candidates(width);
        if candidates.is_empty() {
            return None;
        }
        let estimates = candidates.iter().map(|_| Estimate::new()).collect();
        self.widths.push((
            width,
            WidthState {
                candidates,
                estimates,
                last: None,
            },
        ));
        Some(&mut self.widths.last_mut().expect("just pushed").1)
    }
}

/// The adaptive router — see the module docs for the decision procedure.
pub struct Router {
    config: RouteConfig,
    slo_micros: Mutex<Option<u64>>,
    clock: Arc<dyn Clock>,
    source: Arc<dyn CandidateSource>,
    state: Mutex<RouterState>,
}

impl Router {
    /// The production router: wall-clock time, registry candidates.
    pub fn new(config: RouteConfig) -> Self {
        Self::with_sources(
            config,
            Arc::new(MonotonicClock::new()),
            Arc::new(RegistryCandidates),
        )
    }

    /// A router over injected time and candidate seams — the deterministic
    /// constructor the routing test harness scripts against.
    ///
    /// # Panics
    ///
    /// Panics if `config.alpha` is outside `(0, 1]` or `p99_window` is 0.
    pub fn with_sources(
        config: RouteConfig,
        clock: Arc<dyn Clock>,
        source: Arc<dyn CandidateSource>,
    ) -> Self {
        assert!(
            config.alpha > 0.0 && config.alpha <= 1.0,
            "EWMA alpha must be in (0, 1]"
        );
        assert!(config.p99_window >= 1, "the p99 needs at least one sample");
        Self {
            slo_micros: Mutex::new(config.slo_micros),
            config,
            clock,
            source,
            state: Mutex::new(RouterState { widths: Vec::new() }),
        }
    }

    /// The current SLO budget (`None` = no budget, never degrade).
    pub fn slo(&self) -> Option<u64> {
        *self.slo_micros.lock().expect("router slo lock")
    }

    /// Replaces the SLO budget; takes effect on the next [`Router::route`].
    pub fn set_slo(&self, micros: Option<u64>) {
        *self.slo_micros.lock().expect("router slo lock") = micros;
    }

    /// Feeds one completed batch's statistics into the `(engine, width)`
    /// estimate: `lanes`/`stalls` as a [`BatchOutcome`](crate::batch::BatchOutcome)
    /// counts them, `micros` the batch's observed service latency.
    /// Statistics for an engine the candidate source does not list at
    /// `width` are ignored.
    pub fn record(&self, engine: &str, width: usize, lanes: u64, stalls: u64, micros: u64) {
        let now = self.clock.now_micros();
        let mut state = self.state.lock().expect("router state lock");
        let Some(ws) = state.width_state(width, self.source.as_ref()) else {
            return;
        };
        if let Some(i) = ws.candidates.iter().position(|c| c.name == engine) {
            ws.estimates[i].observe(&self.config, lanes, stalls, micros, now);
        }
    }

    /// Decides which engine the next `auto` group at `width` should run
    /// on — explore, exploit, or degrade (module docs). Returns `None`
    /// only when the candidate source lists nothing at the width.
    pub fn route(&self, width: usize) -> Option<Decision> {
        let slo = self.slo();
        let now = self.clock.now_micros();
        let mut state = self.state.lock().expect("router state lock");
        let ws = state.width_state(width, self.source.as_ref())?;
        for e in &mut ws.estimates {
            e.expire(&self.config, now);
        }

        let decision = if let Some(i) = ws
            .estimates
            .iter()
            .position(|e| e.batches < self.config.min_batches)
        {
            Decision {
                engine: ws.candidates[i].name.clone(),
                degraded: false,
            }
        } else {
            let best = lowest_score(ws, |_| true).expect("candidate list is non-empty");
            let breached = slo.is_some_and(|budget| {
                ws.candidates[best].variable_latency
                    && ws.estimates[best].p99().is_some_and(|p99| p99 > budget)
            });
            match lowest_score(ws, |i| !ws.candidates[i].variable_latency) {
                Some(fallback) if breached => Decision {
                    engine: ws.candidates[fallback].name.clone(),
                    degraded: true,
                },
                // A breach with no fixed-latency candidate to fall back
                // to keeps the best variable one: degrading to nothing
                // would be an outage, not a mitigation.
                _ => Decision {
                    engine: ws.candidates[best].name.clone(),
                    degraded: false,
                },
            }
        };
        ws.last = Some(decision.clone());
        Some(decision)
    }

    /// The estimate snapshot of one `(engine, width)` pair, expiry
    /// applied — `None` when the pair is unknown to the router.
    pub fn estimate(&self, engine: &str, width: usize) -> Option<EstimateSnapshot> {
        let now = self.clock.now_micros();
        let mut state = self.state.lock().expect("router state lock");
        let ws = state.width_state(width, self.source.as_ref())?;
        let i = ws.candidates.iter().position(|c| c.name == engine)?;
        ws.estimates[i].expire(&self.config, now);
        let e = &ws.estimates[i];
        Some(EstimateSnapshot {
            cycles_per_op: e.cycles_per_op,
            stall_rate: e.stall_rate,
            batches: e.batches,
            p99_micros: e.p99(),
        })
    }

    /// The last decision per width, ascending by width — the `STATS`
    /// surface. Widths the router has never decided for are absent.
    pub fn routes(&self) -> Vec<RouteStat> {
        let state = self.state.lock().expect("router state lock");
        let mut routes: Vec<RouteStat> = state
            .widths
            .iter()
            .filter_map(|(width, ws)| {
                ws.last.as_ref().map(|d| RouteStat {
                    width: *width,
                    engine: d.engine.clone(),
                    degraded: d.degraded,
                })
            })
            .collect();
        routes.sort_by_key(|r| r.width);
        routes
    }
}

/// The index of the lowest-EWMA-cycles/op candidate among those `keep`
/// admits; strict `<` keeps the earliest on ties.
fn lowest_score(ws: &WidthState, keep: impl Fn(usize) -> bool) -> Option<usize> {
    let mut best: Option<usize> = None;
    for i in 0..ws.candidates.len() {
        if !keep(i) {
            continue;
        }
        match best {
            Some(b) if ws.estimates[i].cycles_per_op >= ws.estimates[b].cycles_per_op => {}
            _ => best = Some(i),
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scripted(list: Vec<Candidate>) -> (Arc<ManualClock>, Router) {
        let clock = Arc::new(ManualClock::new());
        let router = Router::with_sources(
            RouteConfig::default(),
            Arc::clone(&clock) as Arc<dyn Clock>,
            Arc::new(FixedCandidates::new(list)),
        );
        (clock, router)
    }

    #[test]
    fn exploration_visits_every_candidate_in_order() {
        let (_clock, router) = scripted(vec![
            Candidate::fixed("a"),
            Candidate::variable("b"),
            Candidate::fixed("c"),
        ]);
        let min = RouteConfig::default().min_batches;
        let mut visits = vec![0u64; 3];
        for _ in 0..3 * min {
            let d = router.route(32).unwrap();
            let i = ["a", "b", "c"].iter().position(|n| *n == d.engine).unwrap();
            visits[i] += 1;
            router.record(&d.engine, 32, 16, 0, 50);
        }
        assert_eq!(visits, vec![min; 3]);
    }

    #[test]
    fn exploit_picks_the_lowest_cycles_per_op() {
        let (_clock, router) = scripted(vec![
            Candidate::variable("slow"),
            Candidate::variable("fast"),
        ]);
        for _ in 0..8 {
            let d = router.route(64).unwrap();
            let stalls = if d.engine == "slow" { 64 } else { 2 };
            router.record(&d.engine, 64, 256, stalls, 100);
        }
        let d = router.route(64).unwrap();
        assert_eq!(d.engine, "fast");
        assert!(!d.degraded);
        let snap = router.estimate("fast", 64).unwrap();
        assert!(snap.cycles_per_op < 1.05, "{snap:?}");
        assert_eq!(
            router.routes(),
            vec![RouteStat {
                width: 64,
                engine: "fast".into(),
                degraded: false,
            }]
        );
    }

    #[test]
    fn ties_keep_the_earlier_candidate() {
        let (_clock, router) = scripted(vec![Candidate::fixed("x"), Candidate::fixed("y")]);
        for _ in 0..6 {
            let d = router.route(16).unwrap();
            router.record(&d.engine, 16, 8, 0, 10);
        }
        assert_eq!(router.route(16).unwrap().engine, "x");
    }

    #[test]
    fn slo_breach_degrades_and_ttl_expiry_recovers() {
        let (clock, router) = scripted(vec![
            Candidate::variable("speculative"),
            Candidate::fixed("synchronous"),
        ]);
        router.set_slo(Some(1_000));
        for _ in 0..6 {
            let d = router.route(64).unwrap();
            router.record(&d.engine, 64, 256, 0, 200);
        }
        // Both estimates tie at 1.0 cycles/op; the variable candidate is
        // earlier, wins the tie, and its p99 (200 µs) is within budget.
        assert_eq!(
            router.route(64).unwrap(),
            Decision {
                engine: "speculative".into(),
                degraded: false
            }
        );
        // A latency storm: p99 shoots past the budget.
        for _ in 0..4 {
            router.record("speculative", 64, 256, 0, 5_000);
        }
        assert_eq!(
            router.route(64).unwrap(),
            Decision {
                engine: "synchronous".into(),
                degraded: true
            }
        );
        // The storm samples expire after the TTL; the variable family is
        // routable again without any manual reset.
        clock.advance(RouteConfig::default().sample_ttl_micros + 1);
        assert_eq!(router.estimate("speculative", 64).unwrap().p99_micros, None);
        assert_eq!(
            router.route(64).unwrap(),
            Decision {
                engine: "speculative".into(),
                degraded: false
            }
        );
    }

    #[test]
    fn breach_without_a_fixed_fallback_keeps_the_best_variable() {
        let (_clock, router) = scripted(vec![
            Candidate::variable("only-a"),
            Candidate::variable("only-b"),
        ]);
        router.set_slo(Some(10));
        for _ in 0..6 {
            let d = router.route(8).unwrap();
            router.record(&d.engine, 8, 32, 0, 9_999);
        }
        let d = router.route(8).unwrap();
        assert!(!d.degraded);
        assert_eq!(d.engine, "only-a");
    }

    #[test]
    fn registry_candidates_match_the_registry() {
        let router = Router::new(RouteConfig::default());
        let d = router.route(48).unwrap();
        let registry = Registry::for_width(48);
        assert!(registry.names().contains(&d.engine.as_str()));
        // Unknown-engine records are ignored, not tracked.
        router.record("no-such", 48, 10, 0, 5);
        assert!(router.estimate("no-such", 48).is_none());
    }

    #[test]
    fn empty_candidate_source_routes_to_none() {
        let (_clock, router) = scripted(vec![]);
        assert!(router.route(64).is_none());
        router.record("ripple", 64, 1, 0, 1); // must not panic
        assert!(router.routes().is_empty());
    }
}

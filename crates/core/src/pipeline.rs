//! Cycle-accurate pipeline model of a variable-latency adder in a datapath.
//!
//! Eq. 5.2 gives the *average* latency, but a real integration cares about
//! throughput under back-pressure: when an addition stalls, the next one
//! cannot issue (the paper's Fig. 5.3 design holds `STALL` high for one
//! extra cycle). This module simulates a stream of additions through that
//! protocol and reports cycle-exact throughput, stall statistics and the
//! achieved speedup over a fixed-latency adder clocked at the traditional
//! adder's slower period.
//!
//! # Example
//!
//! ```
//! use vlcsa::pipeline::{Pipeline, StreamReport};
//! use vlcsa::Vlcsa1;
//! use workloads::dist::{Distribution, OperandSource};
//!
//! let mut pipe = Pipeline::new(Vlcsa1::new(64, 14));
//! let mut src = OperandSource::new(Distribution::UnsignedUniform, 64, 1);
//! let report: StreamReport = pipe.run((0..1000).map(|_| src.next_pair()));
//! assert_eq!(report.operations, 1000);
//! assert!(report.cycles >= 1000);
//! ```

use bitnum::batch::WideSlab;
use bitnum::UBig;

use crate::vlcsa1::Vlcsa1;

/// Cycle-exact statistics for one simulated stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamReport {
    /// Operations retired.
    pub operations: u64,
    /// Total cycles consumed (issue-limited, in-order).
    pub cycles: u64,
    /// Operations that took the recovery path.
    pub stalls: u64,
    /// The longest run of consecutive stalls (worst-case back-pressure).
    pub max_stall_run: u64,
}

impl StreamReport {
    /// Average cycles per operation.
    pub fn cpi(&self) -> f64 {
        if self.operations == 0 {
            0.0
        } else {
            self.cycles as f64 / self.operations as f64
        }
    }

    /// Throughput speedup over a single-cycle adder with a `ratio`-times
    /// longer clock period (`ratio = T_traditional / T_clk`): the net win
    /// eq. 5.2 promises, now cycle-exact.
    pub fn speedup_vs_fixed(&self, ratio: f64) -> f64 {
        ratio / self.cpi()
    }
}

/// A one-deep in-order pipeline around a [`Vlcsa1`] engine.
#[derive(Debug, Clone)]
pub struct Pipeline {
    engine: Vlcsa1,
}

impl Pipeline {
    /// Wraps an engine.
    pub fn new(engine: Vlcsa1) -> Self {
        Self { engine }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &Vlcsa1 {
        &self.engine
    }

    /// Runs a stream of operand pairs to completion and reports
    /// cycle-exact statistics. Results are checked against the exact sum
    /// (debug builds assert; all builds count).
    pub fn run<I: IntoIterator<Item = (UBig, UBig)>>(&mut self, pairs: I) -> StreamReport {
        let mut report = StreamReport::default();
        let mut stall_run = 0u64;
        for (a, b) in pairs {
            let outcome = self.engine.add(&a, &b);
            debug_assert_eq!(outcome.sum, a.wrapping_add(&b));
            report.operations += 1;
            report.cycles += outcome.cycles as u64;
            if outcome.cycles > 1 {
                report.stalls += 1;
                stall_run += 1;
                report.max_stall_run = report.max_stall_run.max(stall_run);
            } else {
                stall_run = 0;
            }
        }
        report
    }

    /// Runs a stream of bit-sliced **issue groups** (any number of operand
    /// pairs per step — ≤64-lane [`BitSlab`](bitnum::batch::BitSlab)s and
    /// arbitrary-lane [`WideSlab`]s both work) through a bank of parallel
    /// adder units, one unit per lane. Groups wider than 64 lanes are
    /// evaluated chunk by chunk — the 64-lane kernel cap is an internal
    /// chunking detail, not an issue-width limit.
    ///
    /// Accounting matches [`Pipeline::run`] lane-for-lane: `operations`
    /// and `stalls` count lanes, `cycles` sums per-lane cycles (each lane
    /// is an independent unit, so group throughput is lanes per cycle
    /// minus recovery bubbles). `max_stall_run` counts consecutive
    /// *groups* containing at least one stalled lane — the group-level
    /// back-pressure a lock-step issue front observes.
    ///
    /// ```
    /// use vlcsa::pipeline::Pipeline;
    /// use vlcsa::Vlcsa1;
    /// use workloads::dist::{Distribution, OperandSource};
    ///
    /// let mut pipe = Pipeline::new(Vlcsa1::new(64, 14));
    /// let mut src = OperandSource::new(Distribution::UnsignedUniform, 64, 1);
    /// // 16 issue groups of 100 lanes each (chunked internally as 64+36).
    /// let report = pipe.run_batches((0..16).map(|_| src.next_wide(100)));
    /// assert_eq!(report.operations, 16 * 100);
    /// assert!(report.cpi() >= 1.0);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if a group's slabs disagree on lane count.
    pub fn run_batches<W, I>(&mut self, groups: I) -> StreamReport
    where
        W: Into<WideSlab>,
        I: IntoIterator<Item = (W, W)>,
    {
        let mut report = StreamReport::default();
        let mut stall_run = 0u64;
        for (a, b) in groups {
            let (a, b): (WideSlab, WideSlab) = (a.into(), b.into());
            assert_eq!(a.lanes(), b.lanes(), "issue group lane count mismatch");
            let mut group_stalls = 0u64;
            for (ca, cb) in a.chunks().iter().zip(b.chunks()) {
                let outcome = self.engine.add_batch(ca, cb);
                report.operations += outcome.lanes() as u64;
                report.cycles += outcome.total_cycles();
                group_stalls += u64::from(outcome.stalls());
            }
            report.stalls += group_stalls;
            if group_stalls > 0 {
                stall_run += 1;
                report.max_stall_run = report.max_stall_run.max(stall_run);
            } else {
                stall_run = 0;
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::dist::{Distribution, OperandSource};

    #[test]
    fn uniform_stream_nearly_single_cycle() {
        let mut pipe = Pipeline::new(Vlcsa1::new(64, 14));
        let mut src = OperandSource::new(Distribution::UnsignedUniform, 64, 2);
        let report = pipe.run((0..50_000).map(|_| src.next_pair()));
        assert_eq!(report.operations, 50_000);
        assert!(report.cpi() < 1.01, "cpi {}", report.cpi());
        // With T_trad/T_clk ~ 1.12 (Fig. 7.8), the stream nets a speedup.
        assert!(report.speedup_vs_fixed(1.12) > 1.1);
    }

    #[test]
    fn gaussian_stream_erodes_the_win() {
        let mut pipe = Pipeline::new(Vlcsa1::new(64, 14));
        let mut src = OperandSource::new(Distribution::paper_gaussian(), 64, 3);
        let report = pipe.run((0..50_000).map(|_| src.next_pair()));
        assert!((1.2..1.3).contains(&report.cpi()), "cpi {}", report.cpi());
        // At cpi 1.25 the 12% clock advantage is gone — the Ch. 6
        // motivation in one assertion.
        assert!(report.speedup_vs_fixed(1.12) < 1.0);
        assert!(
            report.max_stall_run >= 2,
            "Gaussian streams stall in bursts"
        );
    }

    #[test]
    fn batch_stream_matches_scalar_stream_accounting() {
        // The same 3200 operand pairs, issued scalar vs in 64-lane groups,
        // must retire with identical operation/stall/cycle totals.
        let mut scalar_src = OperandSource::new(Distribution::paper_gaussian(), 64, 5);
        let mut batch_src = OperandSource::new(Distribution::paper_gaussian(), 64, 5);
        let mut scalar_pipe = Pipeline::new(Vlcsa1::new(64, 14));
        let mut batch_pipe = Pipeline::new(Vlcsa1::new(64, 14));
        let scalar = scalar_pipe.run((0..3200).map(|_| scalar_src.next_pair()));
        let batch = batch_pipe.run_batches((0..50).map(|_| batch_src.next_batch(64)));
        assert_eq!(batch.operations, scalar.operations);
        assert_eq!(batch.stalls, scalar.stalls);
        assert_eq!(batch.cycles, scalar.cycles);
        assert!(batch.stalls > 0, "Gaussian at k=14 stalls ~25% of lanes");
    }

    #[test]
    fn wide_issue_groups_match_scalar_stream_accounting() {
        // Regression for the former 64-lane cap: 100-lane issue groups
        // must retire with totals identical to the same 3000 pairs issued
        // scalar — the cap is now an internal chunking detail.
        let mut scalar_src = OperandSource::new(Distribution::paper_gaussian(), 64, 21);
        let mut wide_src = OperandSource::new(Distribution::paper_gaussian(), 64, 21);
        let mut scalar_pipe = Pipeline::new(Vlcsa1::new(64, 14));
        let mut wide_pipe = Pipeline::new(Vlcsa1::new(64, 14));
        let scalar = scalar_pipe.run((0..3000).map(|_| scalar_src.next_pair()));
        let wide = wide_pipe.run_batches((0..30).map(|_| wide_src.next_wide(100)));
        assert_eq!(wide.operations, 3000);
        assert_eq!(wide.operations, scalar.operations);
        assert_eq!(wide.stalls, scalar.stalls);
        assert_eq!(wide.cycles, scalar.cycles);
        assert!(wide.stalls > 0, "Gaussian at k=14 stalls ~25% of lanes");
    }

    #[test]
    fn empty_stream() {
        let mut pipe = Pipeline::new(Vlcsa1::new(32, 8));
        let report = pipe.run(std::iter::empty());
        assert_eq!(report.operations, 0);
        assert_eq!(report.cpi(), 0.0);
    }
}

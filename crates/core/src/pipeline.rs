//! Cycle-accurate pipeline model of a variable-latency adder in a datapath.
//!
//! Eq. 5.2 gives the *average* latency, but a real integration cares about
//! throughput under back-pressure: when an addition stalls, the next one
//! cannot issue (the paper's Fig. 5.3 design holds `STALL` high for one
//! extra cycle). This module simulates a stream of additions through that
//! protocol and reports cycle-exact throughput, stall statistics and the
//! achieved speedup over a fixed-latency adder clocked at the traditional
//! adder's slower period.
//!
//! # Example
//!
//! ```
//! use vlcsa::pipeline::{Pipeline, StreamReport};
//! use vlcsa::Vlcsa1;
//! use workloads::dist::{Distribution, OperandSource};
//!
//! let mut pipe = Pipeline::new(Vlcsa1::new(64, 14));
//! let mut src = OperandSource::new(Distribution::UnsignedUniform, 64, 1);
//! let report: StreamReport = pipe.run((0..1000).map(|_| src.next_pair()));
//! assert_eq!(report.operations, 1000);
//! assert!(report.cycles >= 1000);
//! ```

use bitnum::batch::BitSlab;
use bitnum::UBig;

use crate::vlcsa1::Vlcsa1;

/// Cycle-exact statistics for one simulated stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamReport {
    /// Operations retired.
    pub operations: u64,
    /// Total cycles consumed (issue-limited, in-order).
    pub cycles: u64,
    /// Operations that took the recovery path.
    pub stalls: u64,
    /// The longest run of consecutive stalls (worst-case back-pressure).
    pub max_stall_run: u64,
}

impl StreamReport {
    /// Average cycles per operation.
    pub fn cpi(&self) -> f64 {
        if self.operations == 0 {
            0.0
        } else {
            self.cycles as f64 / self.operations as f64
        }
    }

    /// Throughput speedup over a single-cycle adder with a `ratio`-times
    /// longer clock period (`ratio = T_traditional / T_clk`): the net win
    /// eq. 5.2 promises, now cycle-exact.
    pub fn speedup_vs_fixed(&self, ratio: f64) -> f64 {
        ratio / self.cpi()
    }
}

/// A one-deep in-order pipeline around a [`Vlcsa1`] engine.
#[derive(Debug, Clone)]
pub struct Pipeline {
    engine: Vlcsa1,
}

impl Pipeline {
    /// Wraps an engine.
    pub fn new(engine: Vlcsa1) -> Self {
        Self { engine }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &Vlcsa1 {
        &self.engine
    }

    /// Runs a stream of operand pairs to completion and reports
    /// cycle-exact statistics. Results are checked against the exact sum
    /// (debug builds assert; all builds count).
    pub fn run<I: IntoIterator<Item = (UBig, UBig)>>(&mut self, pairs: I) -> StreamReport {
        let mut report = StreamReport::default();
        let mut stall_run = 0u64;
        for (a, b) in pairs {
            let outcome = self.engine.add(&a, &b);
            debug_assert_eq!(outcome.sum, a.wrapping_add(&b));
            report.operations += 1;
            report.cycles += outcome.cycles as u64;
            if outcome.cycles > 1 {
                report.stalls += 1;
                stall_run += 1;
                report.max_stall_run = report.max_stall_run.max(stall_run);
            } else {
                stall_run = 0;
            }
        }
        report
    }

    /// Runs a stream of bit-sliced **issue groups** (up to 64 operand
    /// pairs per step) through a bank of parallel adder units, one unit
    /// per lane.
    ///
    /// Accounting matches [`Pipeline::run`] lane-for-lane: `operations`
    /// and `stalls` count lanes, `cycles` sums per-lane cycles (each lane
    /// is an independent unit, so group throughput is lanes per cycle
    /// minus recovery bubbles). `max_stall_run` counts consecutive
    /// *groups* containing at least one stalled lane — the group-level
    /// back-pressure a lock-step issue front observes.
    ///
    /// ```
    /// use vlcsa::pipeline::Pipeline;
    /// use vlcsa::Vlcsa1;
    /// use workloads::dist::{Distribution, OperandSource};
    ///
    /// let mut pipe = Pipeline::new(Vlcsa1::new(64, 14));
    /// let mut src = OperandSource::new(Distribution::UnsignedUniform, 64, 1);
    /// let report = pipe.run_batches((0..16).map(|_| src.next_batch(64)));
    /// assert_eq!(report.operations, 16 * 64);
    /// assert!(report.cpi() >= 1.0);
    /// ```
    pub fn run_batches<I: IntoIterator<Item = (BitSlab, BitSlab)>>(
        &mut self,
        groups: I,
    ) -> StreamReport {
        let mut report = StreamReport::default();
        let mut stall_run = 0u64;
        for (a, b) in groups {
            let outcome = self.engine.add_batch(&a, &b);
            report.operations += outcome.lanes() as u64;
            report.cycles += outcome.total_cycles();
            report.stalls += outcome.stalls() as u64;
            if outcome.stalls() > 0 {
                stall_run += 1;
                report.max_stall_run = report.max_stall_run.max(stall_run);
            } else {
                stall_run = 0;
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::dist::{Distribution, OperandSource};

    #[test]
    fn uniform_stream_nearly_single_cycle() {
        let mut pipe = Pipeline::new(Vlcsa1::new(64, 14));
        let mut src = OperandSource::new(Distribution::UnsignedUniform, 64, 2);
        let report = pipe.run((0..50_000).map(|_| src.next_pair()));
        assert_eq!(report.operations, 50_000);
        assert!(report.cpi() < 1.01, "cpi {}", report.cpi());
        // With T_trad/T_clk ~ 1.12 (Fig. 7.8), the stream nets a speedup.
        assert!(report.speedup_vs_fixed(1.12) > 1.1);
    }

    #[test]
    fn gaussian_stream_erodes_the_win() {
        let mut pipe = Pipeline::new(Vlcsa1::new(64, 14));
        let mut src = OperandSource::new(Distribution::paper_gaussian(), 64, 3);
        let report = pipe.run((0..50_000).map(|_| src.next_pair()));
        assert!((1.2..1.3).contains(&report.cpi()), "cpi {}", report.cpi());
        // At cpi 1.25 the 12% clock advantage is gone — the Ch. 6
        // motivation in one assertion.
        assert!(report.speedup_vs_fixed(1.12) < 1.0);
        assert!(report.max_stall_run >= 2, "Gaussian streams stall in bursts");
    }

    #[test]
    fn batch_stream_matches_scalar_stream_accounting() {
        // The same 3200 operand pairs, issued scalar vs in 64-lane groups,
        // must retire with identical operation/stall/cycle totals.
        let mut scalar_src = OperandSource::new(Distribution::paper_gaussian(), 64, 5);
        let mut batch_src = OperandSource::new(Distribution::paper_gaussian(), 64, 5);
        let mut scalar_pipe = Pipeline::new(Vlcsa1::new(64, 14));
        let mut batch_pipe = Pipeline::new(Vlcsa1::new(64, 14));
        let scalar = scalar_pipe.run((0..3200).map(|_| scalar_src.next_pair()));
        let batch = batch_pipe.run_batches((0..50).map(|_| batch_src.next_batch(64)));
        assert_eq!(batch.operations, scalar.operations);
        assert_eq!(batch.stalls, scalar.stalls);
        assert_eq!(batch.cycles, scalar.cycles);
        assert!(batch.stalls > 0, "Gaussian at k=14 stalls ~25% of lanes");
    }

    #[test]
    fn empty_stream() {
        let mut pipe = Pipeline::new(Vlcsa1::new(32, 8));
        let report = pipe.run(std::iter::empty());
        assert_eq!(report.operations, 0);
        assert_eq!(report.cpi(), 0.0);
    }
}

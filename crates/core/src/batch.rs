//! Bit-sliced batch evaluation of the speculative and variable-latency
//! adders.
//!
//! The scalar engines ([`Scsa::speculate`], [`Vlcsa1::add`], …) evaluate
//! one operand pair at a time; this module evaluates a whole lane word of
//! pairs — 64 per `u64` word, 256 per [`W256`](bitnum::batch::W256) word,
//! the workspace default — word-parallel over [`BitSlab`] operands. Each window runs its two
//! conditional legs (carry-in 0 / carry-in 1) as bit-sliced ripple chains —
//! exactly the carry-select structure of the hardware — and the per-lane
//! select words are the speculated carries, so the group signals
//! ([`WindowPgWords`]) fall out of the same pass: `G = c0`, `G∨P = c1`,
//! `P = c0 ⊕ c1`. Detection is a handful of word AND/OR operations
//! ([`crate::detect::err0_word`], [`crate::detect::err1_word`]), and
//! recovery is one full-width bit-sliced ripple shared by all stalled
//! lanes.
//!
//! Lane-exact agreement with the scalar path on every distribution is
//! enforced by the `batch_properties` proptest suite; the throughput gap
//! (≥ 10× at 64 lanes) is recorded by the `batch` bench in `vlcsa-bench`
//! (see the benchmark contract in EXPERIMENTS.md).
//!
//! # Example
//!
//! ```
//! use bitnum::batch::BitSlab;
//! use vlcsa::Vlcsa1;
//! use workloads::dist::{Distribution, OperandSource};
//!
//! let adder = Vlcsa1::new(64, 14);
//! let mut src = OperandSource::new(Distribution::UnsignedUniform, 64, 1);
//! let (a, b) = src.next_batch(64); // one 64-lane issue group
//! let out = adder.add_batch(&a, &b);
//! for l in 0..64 {
//!     assert_eq!(out.sum.lane(l), a.lane(l).wrapping_add(&b.lane(l)));
//! }
//! ```

use bitnum::batch::{ripple_words, BitSlab, DefaultWord, Word};

use crate::detect;
use crate::scsa::Scsa;
use crate::scsa2::Scsa2;
use crate::vlcsa1::Vlcsa1;
use crate::vlcsa2::Vlcsa2;
use crate::window::WindowLayout;

/// Per-window group signals of a whole batch: bit `l` of each word is
/// lane `l`'s scalar [`WindowPg`](crate::WindowPg) signal.
///
/// ```
/// use bitnum::batch::{BitSlab, Word};
/// use bitnum::UBig;
/// use vlcsa::Scsa;
///
/// let scsa = Scsa::new(8, 4);
/// // Lane 0: window 0 all-propagates (0xf + 0x0); lane 1: it generates.
/// let a: BitSlab = BitSlab::from_lanes(&[UBig::from_u128(0x0f, 8), UBig::from_u128(0x09, 8)]);
/// let b = BitSlab::from_lanes(&[UBig::from_u128(0x00, 8), UBig::from_u128(0x08, 8)]);
/// let pgs = scsa.window_pg_batch(&a, &b);
/// assert_eq!(pgs[0].p.limb(0), 0b01);
/// assert_eq!(pgs[0].g.limb(0), 0b10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowPgWords<W: Word = DefaultWord> {
    /// Group propagate word `P^i`.
    pub p: W,
    /// Group generate word `G^i` (carry-out assuming carry-in 0).
    pub g: W,
    /// Carry-out word assuming carry-in 1: `G^i ∨ P^i`.
    pub gp: W,
}

/// The batched SCSA 1 speculative result.
///
/// ```
/// use bitnum::batch::{BitSlab, Word};
/// use bitnum::UBig;
/// use vlcsa::Scsa;
///
/// let scsa = Scsa::new(64, 14);
/// let a: BitSlab = BitSlab::from_lanes(&vec![UBig::from_u128(1000, 64); 8]);
/// let b = BitSlab::from_lanes(&vec![UBig::from_u128(2000, 64); 8]);
/// let spec = scsa.speculate_batch(&a, &b);
/// assert_eq!(spec.sum.lane(3).to_u128(), Some(3000));
/// assert!(spec.cout.is_zero());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchSpec<W: Word = DefaultWord> {
    /// The speculative sums (lane `l` matches
    /// [`Scsa::speculate`]`(a.lane(l), b.lane(l)).sum`).
    pub sum: BitSlab<W>,
    /// Per-lane speculative carry-out word.
    pub cout: W,
}

/// The batched SCSA 2 speculative results (both legs).
///
/// ```
/// use bitnum::batch::BitSlab;
/// use bitnum::UBig;
/// use vlcsa::Scsa2;
///
/// // Small positive + small negative: the MSB-reaching chain makes S*,1
/// // exact where S*,0 is not — per lane, as in the scalar engine.
/// let scsa2 = Scsa2::new(64, 13);
/// let a: BitSlab = BitSlab::from_lanes(&[UBig::from_u128(100, 64)]);
/// let b = BitSlab::from_lanes(&[UBig::from_i128(-3, 64)]);
/// let spec = scsa2.speculate_batch(&a, &b);
/// assert_eq!(spec.sum1.lane(0).to_u128(), Some(97));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch2Spec<W: Word = DefaultWord> {
    /// `S*,0` lanes (window carries speculated as `G^{i-1}`).
    pub sum0: BitSlab<W>,
    /// Per-lane carry-out word of `S*,0`.
    pub cout0: W,
    /// `S*,1` lanes (window carries speculated as `G^{i-1} ∨ P^{i-1}`).
    pub sum1: BitSlab<W>,
    /// Per-lane carry-out word of `S*,1`.
    pub cout1: W,
}

/// The outcome of one batched variable-latency addition: always-exact sums
/// plus per-lane latency bookkeeping.
///
/// ```
/// use bitnum::batch::BitSlab;
/// use bitnum::UBig;
/// use vlcsa::Vlcsa1;
///
/// let adder = Vlcsa1::new(32, 4);
/// // Lane 1 hits the classic mis-speculation pattern; lane 0 does not.
/// let a: BitSlab = BitSlab::from_lanes(&[UBig::from_u128(1, 32), UBig::from_u128(0x0ff8, 32)]);
/// let b = BitSlab::from_lanes(&[UBig::from_u128(2, 32), UBig::from_u128(0x0008, 32)]);
/// let out = adder.add_batch(&a, &b);
/// assert_eq!(out.cycles(0), 1);
/// assert_eq!(out.cycles(1), 2);
/// assert_eq!(out.stalls(), 1);
/// assert_eq!(out.total_cycles(), 3);
/// assert_eq!(out.sum.lane(1).to_u128(), Some(0x1000));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchOutcome<W: Word = DefaultWord> {
    /// The (always exact) sums.
    pub sum: BitSlab<W>,
    /// The (always exact) per-lane carry-out word.
    pub cout: W,
    /// Per-lane stall word: bit `l` set iff lane `l` took the 2-cycle
    /// recovery path.
    pub flagged: W,
}

impl<W: Word> BatchOutcome<W> {
    /// Number of lanes in the batch.
    pub fn lanes(&self) -> usize {
        self.sum.lanes()
    }

    /// Cycles lane `l` consumed: 1 (speculation accepted) or 2 (recovery).
    ///
    /// # Panics
    ///
    /// Panics if `l >= lanes()`.
    pub fn cycles(&self, l: usize) -> u8 {
        assert!(l < self.lanes(), "lane {l} out of range");
        1 + self.flagged.bit(l) as u8
    }

    /// Per-lane cycle counts, lane 0 first.
    pub fn cycles_per_lane(&self) -> Vec<u8> {
        (0..self.lanes()).map(|l| self.cycles(l)).collect()
    }

    /// Number of lanes that stalled for recovery.
    pub fn stalls(&self) -> u32 {
        self.flagged.count_ones()
    }

    /// Total cycles across all lanes (`lanes + stalls`), the quantity a
    /// bank of independent adder units consumes for this issue group.
    pub fn total_cycles(&self) -> u64 {
        self.lanes() as u64 + self.stalls() as u64
    }

    /// Fraction of lanes that stalled.
    pub fn stall_rate(&self) -> f64 {
        self.stalls() as f64 / self.lanes() as f64
    }
}

/// One bit-sliced speculation pass: per window, both conditional legs and
/// the select-chain muxes, yielding the group-signal words and the
/// speculative sum(s).
struct SpecPass<W: Word> {
    pgs: Vec<WindowPgWords<W>>,
    sum0: BitSlab<W>,
    cout0: W,
    sum1: Option<BitSlab<W>>,
    cout1: W,
}

fn check_batch<W: Word>(layout: &WindowLayout, a: &BitSlab<W>, b: &BitSlab<W>) {
    assert_eq!(a.width(), layout.width(), "operand slab width mismatch");
    assert_eq!(b.width(), layout.width(), "operand slab width mismatch");
    assert_eq!(a.lanes(), b.lanes(), "operand slab lane count mismatch");
}

fn spec_pass<W: Word>(
    layout: &WindowLayout,
    a: &BitSlab<W>,
    b: &BitSlab<W>,
    want_sum1: bool,
) -> SpecPass<W> {
    check_batch(layout, a, b);
    let width = layout.width();
    let lanes = a.lanes();
    let mask = a.lane_mask();
    let mut pgs = Vec::with_capacity(layout.count());
    let mut sum0 = BitSlab::zero(width, lanes);
    let mut sum1 = want_sum1.then(|| BitSlab::zero(width, lanes));
    let window = layout.window();
    let mut s0 = vec![W::ZERO; window];
    let mut s1 = vec![W::ZERO; window];
    // Select chains: cin0 follows G^{i-1}, cin1 follows G^{i-1} ∨ P^{i-1}
    // (window 0 is not speculative: both start at the real carry-in 0 and
    // leave window 0 with the true G⁰).
    let (mut cin0, mut cin1) = (W::ZERO, W::ZERO);
    let (mut cout0, mut cout1) = (W::ZERO, W::ZERO);
    for (i, (lo, len)) in layout.iter().enumerate() {
        let aw = &a.words()[lo..lo + len];
        let bw = &b.words()[lo..lo + len];
        let c0 = ripple_words(aw, bw, W::ZERO, mask, &mut s0[..len]);
        let c1 = ripple_words(aw, bw, mask, mask, &mut s1[..len]);
        pgs.push(WindowPgWords {
            p: c0 ^ c1,
            g: c0,
            gp: c1,
        });
        for j in 0..len {
            sum0.set_word(lo + j, (s0[j] & !cin0) | (s1[j] & cin0));
        }
        cout0 = (c0 & !cin0) | (c1 & cin0);
        if let Some(sum1) = sum1.as_mut() {
            for j in 0..len {
                sum1.set_word(lo + j, (s0[j] & !cin1) | (s1[j] & cin1));
            }
            cout1 = (c0 & !cin1) | (c1 & cin1);
        }
        cin0 = c0;
        cin1 = if i == 0 { c0 } else { c1 };
    }
    SpecPass {
        pgs,
        sum0,
        cout0,
        sum1,
        cout1,
    }
}

/// Full-width exact bit-sliced addition (the shared recovery adder).
fn exact_batch<W: Word>(a: &BitSlab<W>, b: &BitSlab<W>) -> (BitSlab<W>, W) {
    let mut sum = BitSlab::zero(a.width(), a.lanes());
    let cout = ripple_words(
        a.words(),
        b.words(),
        W::ZERO,
        a.lane_mask(),
        sum.words_mut(),
    );
    (sum, cout)
}

impl Scsa {
    /// Computes the group `(P, G, G∨P)` signal words of every window for a
    /// whole batch — the bit-sliced [`Scsa::window_pg`].
    ///
    /// ```
    /// use bitnum::batch::{BitSlab, Word};
    /// use bitnum::rng::Xoshiro256;
    /// use vlcsa::Scsa;
    ///
    /// let scsa = Scsa::new(100, 13);
    /// let mut rng = Xoshiro256::seed_from_u64(3);
    /// let a: BitSlab = BitSlab::random(100, 64, &mut rng);
    /// let b = BitSlab::random(100, 64, &mut rng);
    /// let pgs = scsa.window_pg_batch(&a, &b);
    /// let scalar = scsa.window_pg(&a.lane(7), &b.lane(7));
    /// for (w, s) in pgs.iter().zip(&scalar) {
    ///     assert_eq!(w.p.bit(7), s.p);
    ///     assert_eq!(w.g.bit(7), s.g);
    /// }
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the slabs disagree with the adder width or with each
    /// other's lane count.
    pub fn window_pg_batch<W: Word>(
        &self,
        a: &BitSlab<W>,
        b: &BitSlab<W>,
    ) -> Vec<WindowPgWords<W>> {
        check_batch(self.layout(), a, b);
        let mask = a.lane_mask();
        let mut scratch = vec![W::ZERO; self.layout().window()];
        self.layout()
            .iter()
            .map(|(lo, len)| {
                let aw = &a.words()[lo..lo + len];
                let bw = &b.words()[lo..lo + len];
                let c0 = ripple_words(aw, bw, W::ZERO, mask, &mut scratch[..len]);
                let c1 = ripple_words(aw, bw, mask, mask, &mut scratch[..len]);
                WindowPgWords {
                    p: c0 ^ c1,
                    g: c0,
                    gp: c1,
                }
            })
            .collect()
    }

    /// The SCSA 1 speculative addition of a whole batch — the bit-sliced
    /// [`Scsa::speculate`], lane-exact with the scalar path.
    ///
    /// ```
    /// use bitnum::batch::BitSlab;
    /// use bitnum::rng::Xoshiro256;
    /// use vlcsa::Scsa;
    ///
    /// let scsa = Scsa::new(64, 8);
    /// let mut rng = Xoshiro256::seed_from_u64(5);
    /// let a: BitSlab = BitSlab::random(64, 32, &mut rng);
    /// let b = BitSlab::random(64, 32, &mut rng);
    /// let spec = scsa.speculate_batch(&a, &b);
    /// for l in 0..32 {
    ///     assert_eq!(spec.sum.lane(l), scsa.speculate(&a.lane(l), &b.lane(l)).sum);
    /// }
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the slabs disagree with the adder width or with each
    /// other's lane count.
    pub fn speculate_batch<W: Word>(&self, a: &BitSlab<W>, b: &BitSlab<W>) -> BatchSpec<W> {
        let pass = spec_pass(self.layout(), a, b, false);
        BatchSpec {
            sum: pass.sum0,
            cout: pass.cout0,
        }
    }
}

impl Scsa2 {
    /// Group signal words per window for a whole batch (same hardware as
    /// SCSA 1; see [`Scsa::window_pg_batch`]).
    pub fn window_pg_batch<W: Word>(
        &self,
        a: &BitSlab<W>,
        b: &BitSlab<W>,
    ) -> Vec<WindowPgWords<W>> {
        self.scsa1().window_pg_batch(a, b)
    }

    /// Both speculative results of a whole batch — the bit-sliced
    /// [`Scsa2::speculate`], lane-exact with the scalar path.
    ///
    /// ```
    /// use bitnum::batch::BitSlab;
    /// use bitnum::rng::Xoshiro256;
    /// use vlcsa::Scsa2;
    ///
    /// let scsa2 = Scsa2::new(96, 11);
    /// let mut rng = Xoshiro256::seed_from_u64(8);
    /// let a: BitSlab = BitSlab::random(96, 16, &mut rng);
    /// let b = BitSlab::random(96, 16, &mut rng);
    /// let spec = scsa2.speculate_batch(&a, &b);
    /// let scalar = scsa2.speculate(&a.lane(5), &b.lane(5));
    /// assert_eq!(spec.sum0.lane(5), scalar.sum0);
    /// assert_eq!(spec.sum1.lane(5), scalar.sum1);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the slabs disagree with the adder width or with each
    /// other's lane count.
    pub fn speculate_batch<W: Word>(&self, a: &BitSlab<W>, b: &BitSlab<W>) -> Batch2Spec<W> {
        let pass = spec_pass(self.layout(), a, b, true);
        Batch2Spec {
            sum0: pass.sum0,
            cout0: pass.cout0,
            sum1: pass.sum1.expect("sum1 requested"),
            cout1: pass.cout1,
        }
    }
}

impl Vlcsa1 {
    /// One batched variable-latency addition: up to 64 lanes speculate,
    /// detect and (where flagged) recover word-parallel. Every lane's sum
    /// is exact; flagged lanes cost 2 cycles, the rest 1 — identical
    /// per-lane behavior to [`Vlcsa1::add`].
    ///
    /// ```
    /// use bitnum::batch::BitSlab;
    /// use vlcsa::Vlcsa1;
    /// use workloads::dist::{Distribution, OperandSource};
    ///
    /// let adder = Vlcsa1::new(64, 6); // small window: frequent stalls
    /// let mut src = OperandSource::new(Distribution::UnsignedUniform, 64, 3);
    /// let (a, b) = src.next_batch(64);
    /// let out = adder.add_batch(&a, &b);
    /// for l in 0..out.lanes() {
    ///     let scalar = adder.add(&a.lane(l), &b.lane(l));
    ///     assert_eq!(out.sum.lane(l), scalar.sum);
    ///     assert_eq!(out.cycles(l), scalar.cycles);
    /// }
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the slabs disagree with the adder width or with each
    /// other's lane count.
    pub fn add_batch<W: Word>(&self, a: &BitSlab<W>, b: &BitSlab<W>) -> BatchOutcome<W> {
        let pass = spec_pass(self.layout(), a, b, false);
        let flagged = detect::err0_word(&pass.pgs);
        let mut sum = pass.sum0;
        let mut cout = pass.cout0;
        // The shared recovery adder runs only when some lane stalled —
        // the no-stall common case stays at two ripple legs per window.
        if !flagged.is_zero() {
            let (exact, exact_cout) = exact_batch(a, b);
            for i in 0..sum.width() {
                sum.set_word(i, (sum.word(i) & !flagged) | (exact.word(i) & flagged));
            }
            cout = (cout & !flagged) | (exact_cout & flagged);
        }
        #[cfg(debug_assertions)]
        {
            let (exact, exact_cout) = exact_batch(a, b);
            debug_assert_eq!(sum.words(), exact.words(), "reliability invariant");
            debug_assert_eq!(cout, exact_cout, "reliability invariant");
        }
        BatchOutcome { sum, cout, flagged }
    }
}

impl Vlcsa2 {
    /// One batched variable-latency addition through the VLCSA 2 selection
    /// logic: per lane, `ERR0 = 0` accepts `S*,0`, `ERR0 ∧ ¬ERR1` accepts
    /// `S*,1`, and only `ERR0 ∧ ERR1` lanes pay the 2-cycle recovery —
    /// identical per-lane behavior to [`Vlcsa2::add`].
    ///
    /// ```
    /// use bitnum::batch::BitSlab;
    /// use bitnum::UBig;
    /// use vlcsa::Vlcsa2;
    ///
    /// let adder = Vlcsa2::new(64, 13);
    /// // Small positive + small negative: VLCSA 1 would stall; the S*,1
    /// // leg absorbs it in one cycle — here for a whole lane group.
    /// let a: BitSlab = BitSlab::from_lanes(&vec![UBig::from_u128(1000, 64); 16]);
    /// let b = BitSlab::from_lanes(&vec![UBig::from_i128(-1, 64); 16]);
    /// let out = adder.add_batch(&a, &b);
    /// assert_eq!(out.stalls(), 0);
    /// assert_eq!(out.sum.lane(9).to_u128(), Some(999));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the slabs disagree with the adder width or with each
    /// other's lane count.
    pub fn add_batch<W: Word>(&self, a: &BitSlab<W>, b: &BitSlab<W>) -> BatchOutcome<W> {
        let pass = spec_pass(self.layout(), a, b, true);
        let err0 = detect::err0_word(&pass.pgs);
        let err1 = detect::err1_word(&pass.pgs);
        let use1 = err0 & !err1;
        let recover = err0 & err1;
        let sum1 = pass.sum1.expect("sum1 requested");
        let mut sum = pass.sum0;
        let mut cout = pass.cout0;
        if !err0.is_zero() {
            // The shared recovery adder runs only when some lane needs it
            // (both detectors high); S*,1-corrected lanes stay word-muxed.
            let exact = (!recover.is_zero()).then(|| exact_batch(a, b));
            for i in 0..sum.width() {
                let mut w = (sum.word(i) & !err0) | (sum1.word(i) & use1);
                if let Some((ex, _)) = &exact {
                    w = w | (ex.word(i) & recover);
                }
                sum.set_word(i, w);
            }
            cout = (cout & !err0) | (pass.cout1 & use1);
            if let Some((_, ex_cout)) = &exact {
                cout = cout | (*ex_cout & recover);
            }
        }
        #[cfg(debug_assertions)]
        {
            let (exact, exact_cout) = exact_batch(a, b);
            debug_assert_eq!(sum.words(), exact.words(), "reliability invariant");
            debug_assert_eq!(cout, exact_cout, "reliability invariant");
        }
        BatchOutcome {
            sum,
            cout,
            flagged: recover,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::Selection;
    use bitnum::rng::Xoshiro256;
    use workloads::dist::{Distribution, OperandSource};

    #[test]
    fn window_pg_batch_matches_scalar() {
        let scsa = Scsa::new(100, 13);
        let mut rng = Xoshiro256::seed_from_u64(31);
        let a = BitSlab::<DefaultWord>::random(100, 37, &mut rng);
        let b = BitSlab::<DefaultWord>::random(100, 37, &mut rng);
        let words = scsa.window_pg_batch(&a, &b);
        for l in 0..37 {
            let scalar = scsa.window_pg(&a.lane(l), &b.lane(l));
            for (i, s) in scalar.iter().enumerate() {
                assert_eq!(words[i].p.bit(l), s.p, "P window {i} lane {l}");
                assert_eq!(words[i].g.bit(l), s.g, "G window {i} lane {l}");
                assert_eq!(words[i].gp.bit(l), s.gp, "GP window {i} lane {l}");
            }
        }
    }

    #[test]
    fn speculate_batch_matches_scalar_both_engines() {
        let mut rng = Xoshiro256::seed_from_u64(32);
        for (n, k, lanes) in [
            (64usize, 14usize, 64usize),
            (65, 9, 3),
            (128, 15, 64),
            (33, 33, 7),
        ] {
            let scsa = Scsa::new(n, k);
            let scsa2 = Scsa2::new(n, k);
            let a = BitSlab::<DefaultWord>::random(n, lanes, &mut rng);
            let b = BitSlab::<DefaultWord>::random(n, lanes, &mut rng);
            let one = scsa.speculate_batch(&a, &b);
            let two = scsa2.speculate_batch(&a, &b);
            for l in 0..lanes {
                let s1 = scsa.speculate(&a.lane(l), &b.lane(l));
                assert_eq!(one.sum.lane(l), s1.sum, "n={n} k={k} lane={l}");
                assert_eq!(one.cout.bit(l), s1.cout);
                let s2 = scsa2.speculate(&a.lane(l), &b.lane(l));
                assert_eq!(two.sum0.lane(l), s2.sum0);
                assert_eq!(two.sum1.lane(l), s2.sum1);
                assert_eq!(two.cout0.bit(l), s2.cout0);
                assert_eq!(two.cout1.bit(l), s2.cout1);
            }
        }
    }

    #[test]
    fn vlcsa1_batch_lane_behavior_matches_scalar() {
        let adder = Vlcsa1::new(64, 6);
        let mut src = OperandSource::new(Distribution::UnsignedUniform, 64, 7);
        let mut stalls = 0u32;
        for _ in 0..100 {
            let (a, b) = src.next_batch(64);
            let out = adder.add_batch(&a, &b);
            stalls += out.stalls();
            for l in 0..64 {
                let scalar = adder.add(&a.lane(l), &b.lane(l));
                assert_eq!(out.sum.lane(l), scalar.sum);
                assert_eq!(out.cout.bit(l), scalar.cout);
                assert_eq!(out.cycles(l), scalar.cycles);
                assert_eq!(out.flagged.bit(l), scalar.flagged);
            }
        }
        assert!(stalls > 0, "k=6 must stall in 6400 uniform trials");
    }

    #[test]
    fn vlcsa2_batch_selection_matches_scalar() {
        let adder = Vlcsa2::new(64, 13);
        let mut src = OperandSource::new(Distribution::paper_gaussian(), 64, 9);
        let (mut spec1_lanes, mut recover_lanes) = (0u32, 0u32);
        for _ in 0..100 {
            let (a, b) = src.next_batch(64);
            let out = adder.add_batch(&a, &b);
            let pgs = adder.scsa2().window_pg_batch(&a, &b);
            let err0 = detect::err0_word(&pgs);
            let err1 = detect::err1_word(&pgs);
            for l in 0..64 {
                let scalar = adder.add(&a.lane(l), &b.lane(l));
                assert_eq!(out.sum.lane(l), scalar.sum);
                assert_eq!(out.cycles(l), scalar.cycles);
                // The word detectors agree with the scalar selection.
                let sel = detect::select(&adder.scsa2().window_pg(&a.lane(l), &b.lane(l)));
                match sel {
                    Selection::Spec0 => assert!(!err0.bit(l)),
                    Selection::Spec1 => {
                        assert!(err0.bit(l));
                        assert!(!err1.bit(l));
                        spec1_lanes += 1;
                    }
                    Selection::Recover => {
                        assert!(err0.bit(l));
                        assert!(err1.bit(l));
                        recover_lanes += 1;
                    }
                }
            }
        }
        assert!(spec1_lanes > 500, "Gaussian batches should exercise S*,1");
        let _ = recover_lanes;
    }

    #[test]
    fn single_lane_batch() {
        let adder = Vlcsa1::new(40, 40);
        let mut rng = Xoshiro256::seed_from_u64(3);
        let a = BitSlab::<DefaultWord>::random(40, 1, &mut rng);
        let b = BitSlab::<DefaultWord>::random(40, 1, &mut rng);
        let out = adder.add_batch(&a, &b);
        assert_eq!(out.lanes(), 1);
        assert_eq!(out.sum.lane(0), a.lane(0).wrapping_add(&b.lane(0)));
        assert_eq!(out.cycles_per_lane(), vec![1]); // one window: never stalls
        assert_eq!(out.stall_rate(), 0.0);
    }
}

//! SCSA 2 — modified speculative addition for practical inputs (Ch. 6.5).
//!
//! SCSA 1's window adder computes two conditional sums (carry-in 0/1) and
//! selects with the previous window's `G` — discarding the other carry-out
//! select signal `G ∨ P` (the carry-out *assuming carry-in 1*). SCSA 2
//! keeps both: it produces a second speculative result `S*,1` whose windows
//! are selected by `G^{i-1} ∨ P^{i-1}`. When a carry chain runs from some
//! generate all the way to the MSB (the dominant error pattern of
//! two's-complement Gaussian inputs), every window along the chain
//! propagates, `G ∨ P` equals the true carry, and `S*,1` is exact — turning
//! a 25% stall rate back into 0.01% (Tables 7.1/7.2).

use bitnum::pg;
use bitnum::UBig;

use crate::scsa::{Scsa, WindowPg};
use crate::window::WindowLayout;
use crate::OverflowMode;

/// The two speculative results of SCSA 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spec2Result {
    /// `S*,0`: window carries speculated as `G^{i-1}` (identical to
    /// SCSA 1's result).
    pub sum0: UBig,
    /// Carry-out of `S*,0`.
    pub cout0: bool,
    /// `S*,1`: window carries speculated as `G^{i-1} ∨ P^{i-1}`.
    pub sum1: UBig,
    /// Carry-out of `S*,1`.
    pub cout1: bool,
}

/// An SCSA 2 speculative adder instance.
///
/// # Example
///
/// ```
/// use bitnum::UBig;
/// use vlcsa::Scsa2;
///
/// // Small positive + small negative: the chain runs to the MSB, S*,1 is
/// // exact where S*,0 is not.
/// let scsa2 = Scsa2::new(64, 13);
/// let a = UBig::from_u128(100, 64);
/// let b = UBig::from_i128(-3, 64);
/// let spec = scsa2.speculate(&a, &b);
/// assert_eq!(spec.sum1, a.wrapping_add(&b));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scsa2 {
    inner: Scsa,
}

impl Scsa2 {
    /// Creates an SCSA 2 of the given width and window size.
    ///
    /// # Panics
    ///
    /// Panics on the conditions of [`WindowLayout::new`].
    pub fn new(width: usize, window: usize) -> Self {
        Self {
            inner: Scsa::new(width, window),
        }
    }

    /// Adder width.
    pub fn width(&self) -> usize {
        self.inner.width()
    }

    /// Window size `k`.
    pub fn window(&self) -> usize {
        self.inner.window()
    }

    /// The window decomposition.
    pub fn layout(&self) -> &WindowLayout {
        self.inner.layout()
    }

    /// The underlying SCSA 1 (shared window adders).
    pub fn scsa1(&self) -> &Scsa {
        &self.inner
    }

    /// Group signals per window (same hardware as SCSA 1).
    pub fn window_pg(&self, a: &UBig, b: &UBig) -> Vec<WindowPg> {
        self.inner.window_pg(a, b)
    }

    /// Computes both speculative results.
    ///
    /// # Panics
    ///
    /// Panics if operand widths do not match the adder width.
    pub fn speculate(&self, a: &UBig, b: &UBig) -> Spec2Result {
        assert_eq!(a.width(), self.width(), "operand width mismatch");
        assert_eq!(b.width(), self.width(), "operand width mismatch");
        let width = self.width();
        let mut sum0 = UBig::zero(width);
        let mut sum1 = UBig::zero(width);
        let (mut cin0, mut cin1) = (false, false); // window 0: real cin = 0
        let (mut cout0, mut cout1) = (false, false);
        for (i, (lo, len)) in self.layout().iter().enumerate() {
            let aw = pg::extract_window_u64(a, lo, len);
            let bw = pg::extract_window_u64(b, lo, len);
            let base = aw + bw;
            let s0 = base + cin0 as u64;
            let s1 = base + cin1 as u64;
            sum0.deposit_bits(lo, len, s0);
            sum1.deposit_bits(lo, len, s1);
            cout0 = (s0 >> len) & 1 == 1;
            cout1 = (s1 >> len) & 1 == 1;
            // Next speculations from THIS window's select signals:
            // G (carry-in truncated to 0) and G|P (carry-in forced to 1).
            // Window 0 is not speculative — its carry-in is the real 0 —
            // so BOTH chains leave it with the true carry-out G⁰.
            cin0 = (base >> len) & 1 == 1;
            cin1 = if i == 0 {
                cin0
            } else {
                ((base + 1) >> len) & 1 == 1
            };
        }
        Spec2Result {
            sum0,
            cout0,
            sum1,
            cout1,
        }
    }

    /// True iff **both** speculative results differ from the exact sum
    /// (the SCSA 2 error event of Table 7.2).
    pub fn is_error(&self, a: &UBig, b: &UBig, mode: OverflowMode) -> bool {
        let spec = self.speculate(a, b);
        let (exact, exact_cout) = a.overflowing_add(b);
        let wrong0 =
            spec.sum0 != exact || (mode == OverflowMode::CarryOut && spec.cout0 != exact_cout);
        let wrong1 =
            spec.sum1 != exact || (mode == OverflowMode::CarryOut && spec.cout1 != exact_cout);
        wrong0 && wrong1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitnum::rng::Xoshiro256;

    #[test]
    fn sum0_matches_scsa1() {
        let scsa2 = Scsa2::new(96, 11);
        let scsa1 = Scsa::new(96, 11);
        let mut rng = Xoshiro256::seed_from_u64(8);
        for _ in 0..500 {
            let a = UBig::random(96, &mut rng);
            let b = UBig::random(96, &mut rng);
            let two = scsa2.speculate(&a, &b);
            let one = scsa1.speculate(&a, &b);
            assert_eq!(two.sum0, one.sum);
            assert_eq!(two.cout0, one.cout);
        }
    }

    #[test]
    fn msb_reaching_chain_is_corrected_by_sum1() {
        // Small positive + small negative with |pos| > |neg|: a generate
        // fires in the low windows and every higher window propagates
        // (upward-closed), so ERR1 = 0 and S*,1 is exact. (Patterns whose
        // propagate run is broken midway — e.g. 2^40 − 2^20 — raise ERR1
        // and go to recovery instead; see `detect::select`.)
        let scsa2 = Scsa2::new(64, 13);
        for (x, y) in [(100i128, -3i128), (1_000_000, -1), (5, -4), (123_456, -7)] {
            let a = UBig::from_i128(x, 64);
            let b = UBig::from_i128(y, 64);
            let exact = a.wrapping_add(&b);
            let spec = scsa2.speculate(&a, &b);
            assert_eq!(spec.sum1, exact, "S*,1 must fix {x} + {y}");
        }
    }

    #[test]
    fn gaussian_error_rate_collapses_vs_scsa1() {
        // Table 7.1 vs 7.2: ~25% for SCSA 1, ~0.01% for SCSA 2.
        use workloads::dist::{Distribution, OperandSource};
        let n = 64;
        let scsa1 = Scsa::new(n, 14);
        let scsa2 = Scsa2::new(n, 14);
        let mut src = OperandSource::new(Distribution::paper_gaussian(), n, 11);
        let trials = 20_000;
        let (mut e1, mut e2) = (0usize, 0usize);
        for _ in 0..trials {
            let (a, b) = src.next_pair();
            if scsa1.is_error(&a, &b, OverflowMode::Truncate) {
                e1 += 1;
            }
            if scsa2.is_error(&a, &b, OverflowMode::Truncate) {
                e2 += 1;
            }
        }
        let r1 = e1 as f64 / trials as f64;
        let r2 = e2 as f64 / trials as f64;
        assert!((0.2..0.3).contains(&r1), "SCSA1 rate {r1}");
        assert!(r2 < 0.005, "SCSA2 rate {r2}");
    }

    #[test]
    fn uniform_error_rate_not_worse_than_scsa1() {
        let scsa1 = Scsa::new(64, 8);
        let scsa2 = Scsa2::new(64, 8);
        let mut rng = Xoshiro256::seed_from_u64(13);
        let (mut e1, mut e2) = (0usize, 0usize);
        for _ in 0..30_000 {
            let a = UBig::random(64, &mut rng);
            let b = UBig::random(64, &mut rng);
            e1 += scsa1.is_error(&a, &b, OverflowMode::Truncate) as usize;
            e2 += scsa2.is_error(&a, &b, OverflowMode::Truncate) as usize;
        }
        assert!(e2 <= e1, "SCSA2 ({e2}) must not err more than SCSA1 ({e1})");
        assert!(e1 > 0, "window 8 at n=64 should err in 30k uniform trials");
    }
}

//! Dataflow add-programs: a chain/DAG of additions over named temporaries,
//! reduced to a **single** carry-resolve.
//!
//! One served request today is one addition, so a client computing
//! `a+b+c+...+h` pays the round-trip, the batching window and a full carry
//! propagation once per operand. A [`Program`] lets one request carry the
//! whole computation: a list of steps, each adding two operands (an input
//! `iK` or an earlier temporary `tK`), whose last temporary is the result
//! — the shapes [`multiop`](crate::multiop) and `workloads::chains`
//! already model, now as a first-class value the serve protocol can ship.
//!
//! Because every step is an addition, the result is a nonnegative integer
//! combination of the inputs (mod 2<sup>width</sup>):
//! `result ≡ Σ cₖ·iₖ`. The execution paths exploit that algebra:
//!
//! * [`Program::run_steps`] — the baseline: one sharded
//!   [`Executor::run`] per step, i.e. one carry-resolve per step, with
//!   per-lane sequential cycle accounting exactly like
//!   [`MultiAdder::sum_sequential`](crate::multiop::MultiAdder);
//! * [`Program::run_csa`] — the fast path: each `cₖ·iₖ` is decomposed
//!   into shifted addends (`iₖ << j` for every set bit `j` of `cₖ`), the
//!   whole addend list collapses through the bit-sliced Wallace tree
//!   ([`adders::batch::reduce_csa`]) to two slabs, and **one** executor
//!   run resolves the only carry chain of the entire program;
//! * [`Program::eval_scalar`] / [`Program::csa_pair_scalar`] — the
//!   scalar fold reference and the scalar carry-save pair the serve
//!   front-end submits as a single batching-window lane.
//!
//! # Example
//!
//! ```
//! use bitnum::UBig;
//! use vlcsa::program::Program;
//!
//! // (i0 + i1) + (t0 + i2): a 3-input chain with a reused temporary.
//! let program = Program::from_spec("i0+i1,t0+t0,t1+i2", 3).unwrap();
//! let inputs: Vec<UBig> = [10u128, 20, 3]
//!     .iter()
//!     .map(|&v| UBig::from_u128(v, 16))
//!     .collect();
//! assert_eq!(program.eval_scalar(&inputs).to_u128(), Some(63)); // 2*(10+20)+3
//! let (x, y) = program.csa_pair_scalar(&inputs);
//! assert_eq!(x.wrapping_add(&y).to_u128(), Some(63)); // one resolve left
//! ```

use std::fmt;

use adders::batch::{reduce_csa, reduce_csa_one};
use bitnum::batch::{BitSlab, DefaultWord, WideSlab, Word};
use bitnum::UBig;

use crate::engine::Engine;
use crate::exec::{Executor, WideOutcome};

/// Most inputs a [`Program`] may name — bounds the wire format and the
/// expanded addend count (see [`Program::run_csa`]).
pub const MAX_PROGRAM_INPUTS: usize = 64;

/// Most steps a [`Program`] may hold. Together with
/// [`MAX_PROGRAM_INPUTS`] this caps every coefficient at
/// 2<sup>[`MAX_PROGRAM_STEPS`]</sup>, so coefficients fit a `u128` and the
/// shifted-addend expansion stays small.
pub const MAX_PROGRAM_STEPS: usize = 64;

/// One operand of a program step: a request input or an earlier step's
/// temporary.
///
/// ```
/// use vlcsa::program::Operand;
/// assert_eq!(Operand::Input(3).to_string(), "i3");
/// assert_eq!(Operand::Temp(0).to_string(), "t0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// The `K`-th request input (`iK` in spec syntax).
    Input(usize),
    /// The `K`-th step's result (`tK` in spec syntax; only earlier steps
    /// may be named).
    Temp(usize),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Input(k) => write!(f, "i{k}"),
            Operand::Temp(k) => write!(f, "t{k}"),
        }
    }
}

/// A malformed program: bad shape or bad spec syntax — see
/// [`Program::new`], [`Program::push`] and [`Program::from_spec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// Zero inputs, or more than [`MAX_PROGRAM_INPUTS`].
    BadInputCount(usize),
    /// More steps than [`MAX_PROGRAM_STEPS`].
    TooManySteps,
    /// A step names an input or temporary that does not exist (yet).
    OperandOutOfRange(Operand),
    /// A spec token is not `iK`, `tK`, or a `+`-joined pair of them.
    BadSpecToken(String),
    /// The spec string has no steps.
    EmptySpec,
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::BadInputCount(n) => {
                write!(f, "program input count {n} not in 1..={MAX_PROGRAM_INPUTS}")
            }
            ProgramError::TooManySteps => {
                write!(f, "program exceeds {MAX_PROGRAM_STEPS} steps")
            }
            ProgramError::OperandOutOfRange(op) => {
                write!(f, "operand {op} is not defined at its use site")
            }
            ProgramError::BadSpecToken(t) => write!(f, "bad program spec token `{t}`"),
            ProgramError::EmptySpec => write!(f, "empty program spec"),
        }
    }
}

impl std::error::Error for ProgramError {}

/// A dataflow program: `inputs` named inputs and a list of add-steps, each
/// defining the next temporary; the last temporary (or input 0 for a
/// step-less program) is the result. See the [module docs](self) for the
/// execution paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    inputs: usize,
    steps: Vec<(Operand, Operand)>,
}

impl Program {
    /// Creates an empty program over `inputs` inputs (result: input 0
    /// until a step is pushed).
    ///
    /// ```
    /// use vlcsa::program::{Operand, Program};
    /// let mut p = Program::new(2).unwrap();
    /// let t0 = p.push(Operand::Input(0), Operand::Input(1)).unwrap();
    /// assert_eq!(t0, Operand::Temp(0));
    /// assert_eq!(p.spec(), "i0+i1");
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::BadInputCount`] unless
    /// `1 <= inputs <= MAX_PROGRAM_INPUTS`.
    pub fn new(inputs: usize) -> Result<Self, ProgramError> {
        if !(1..=MAX_PROGRAM_INPUTS).contains(&inputs) {
            return Err(ProgramError::BadInputCount(inputs));
        }
        Ok(Self {
            inputs,
            steps: Vec::new(),
        })
    }

    /// Appends the step `x + y`, returning the temporary it defines.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::OperandOutOfRange`] if an operand names a
    /// missing input or a not-yet-defined temporary, and
    /// [`ProgramError::TooManySteps`] past [`MAX_PROGRAM_STEPS`].
    pub fn push(&mut self, x: Operand, y: Operand) -> Result<Operand, ProgramError> {
        if self.steps.len() >= MAX_PROGRAM_STEPS {
            return Err(ProgramError::TooManySteps);
        }
        for op in [x, y] {
            let defined = match op {
                Operand::Input(k) => k < self.inputs,
                Operand::Temp(k) => k < self.steps.len(),
            };
            if !defined {
                return Err(ProgramError::OperandOutOfRange(op));
            }
        }
        self.steps.push((x, y));
        Ok(Operand::Temp(self.steps.len() - 1))
    }

    /// The left-fold sum program over `n` inputs:
    /// `t0 = i0+i1, t1 = t0+i2, …` — what a `SUM` request means. A single
    /// input yields the step-less identity program.
    ///
    /// ```
    /// use vlcsa::program::Program;
    /// assert_eq!(Program::sum(4).unwrap().spec(), "i0+i1,t0+i2,t1+i3");
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::BadInputCount`] unless
    /// `1 <= n <= MAX_PROGRAM_INPUTS`.
    pub fn sum(n: usize) -> Result<Self, ProgramError> {
        let mut p = Self::new(n)?;
        if n >= 2 {
            let mut acc = p.push(Operand::Input(0), Operand::Input(1))?;
            for k in 2..n {
                acc = p.push(acc, Operand::Input(k))?;
            }
        }
        Ok(p)
    }

    /// Parses the wire spec syntax: comma-separated steps, each
    /// `<op>+<op>` with operands `iK` (input) or `tK` (earlier step) —
    /// `"i0+i1,t0+i2"` is [`Program::sum`]`(3)`.
    ///
    /// ```
    /// use vlcsa::program::Program;
    /// let p = Program::from_spec("i0+i0,t0+t0", 1).unwrap();
    /// assert_eq!(p.spec(), "i0+i0,t0+t0"); // 4·i0, round-trips
    /// assert!(Program::from_spec("t0+i0", 1).is_err()); // forward reference
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramError`] describing the first offense: bad input
    /// count, empty spec, malformed token, forward/out-of-range operand,
    /// or too many steps.
    pub fn from_spec(spec: &str, inputs: usize) -> Result<Self, ProgramError> {
        let mut p = Self::new(inputs)?;
        if spec.is_empty() {
            return Err(ProgramError::EmptySpec);
        }
        for step in spec.split(',') {
            let (x, y) = step
                .split_once('+')
                .ok_or_else(|| ProgramError::BadSpecToken(step.to_string()))?;
            p.push(parse_operand(x)?, parse_operand(y)?)?;
        }
        Ok(p)
    }

    /// The spec-syntax rendering of this program (empty for a step-less
    /// program); [`Program::from_spec`] round-trips it.
    pub fn spec(&self) -> String {
        self.steps
            .iter()
            .map(|(x, y)| format!("{x}+{y}"))
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Number of inputs the program names.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// The add-steps, in definition order.
    pub fn steps(&self) -> &[(Operand, Operand)] {
        &self.steps
    }

    /// The result operand: the last temporary, or input 0 when no step
    /// exists.
    pub fn result(&self) -> Operand {
        match self.steps.len() {
            0 => Operand::Input(0),
            n => Operand::Temp(n - 1),
        }
    }

    /// How many times each input contributes to the result:
    /// `result ≡ Σ coefficients[k]·input[k] (mod 2^width)`. Bounded by
    /// 2<sup>[`MAX_PROGRAM_STEPS`]</sup>, so `u128` never overflows.
    ///
    /// ```
    /// use vlcsa::program::Program;
    /// let p = Program::from_spec("i0+i1,t0+t0,t1+i0", 2).unwrap();
    /// assert_eq!(p.coefficients(), vec![3, 2]); // 2(i0+i1)+i0 = 3·i0 + 2·i1
    /// ```
    pub fn coefficients(&self) -> Vec<u128> {
        let mut input_coef = vec![0u128; self.inputs];
        let mut temp_coef: Vec<Vec<u128>> = Vec::with_capacity(self.steps.len());
        for &(x, y) in &self.steps {
            let mut c = vec![0u128; self.inputs];
            for op in [x, y] {
                match op {
                    Operand::Input(k) => c[k] += 1,
                    Operand::Temp(k) => {
                        for (ck, tk) in c.iter_mut().zip(&temp_coef[k]) {
                            *ck += tk;
                        }
                    }
                }
            }
            temp_coef.push(c);
        }
        match self.result() {
            Operand::Input(k) => input_coef[k] = 1,
            Operand::Temp(k) => input_coef.clone_from(&temp_coef[k]),
        }
        input_coef
    }

    /// Evaluates the program by folding every step with
    /// [`UBig::wrapping_add`] — the scalar reference every other path must
    /// match bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` does not match [`Program::inputs`] in count or
    /// the operands disagree in width.
    pub fn eval_scalar(&self, inputs: &[UBig]) -> UBig {
        assert_eq!(inputs.len(), self.inputs, "program input count mismatch");
        let width = inputs[0].width();
        for i in inputs {
            assert_eq!(i.width(), width, "program input width mismatch");
        }
        let mut temps: Vec<UBig> = Vec::with_capacity(self.steps.len());
        for &(x, y) in &self.steps {
            let pick = |op: Operand, temps: &[UBig]| match op {
                Operand::Input(k) => inputs[k].clone(),
                Operand::Temp(k) => temps[k].clone(),
            };
            let sum = pick(x, &temps).wrapping_add(&pick(y, &temps));
            temps.push(sum);
        }
        match self.result() {
            Operand::Input(k) => inputs[k].clone(),
            Operand::Temp(k) => temps[k].clone(),
        }
    }

    /// The shifted-addend expansion of `Σ cₖ·iₖ`: one addend `iₖ << j` per
    /// set bit `j < width` of each coefficient `cₖ` (never empty — a
    /// vanishing combination yields one zero addend). This is the list the
    /// carry-save tree collapses.
    fn expanded_scalar(&self, inputs: &[UBig]) -> Vec<UBig> {
        let width = inputs[0].width();
        let mut addends = Vec::new();
        for (input, c) in inputs.iter().zip(self.coefficients()) {
            for j in 0..width.min(128) {
                if c >> j & 1 == 1 {
                    addends.push(input.shl(j));
                }
            }
        }
        if addends.is_empty() {
            addends.push(UBig::zero(width));
        }
        addends
    }

    /// Reduces the whole program to one scalar carry-save pair `(x, y)`
    /// with `x + y ≡ result (mod 2^width)` — the pair the serve front-end
    /// submits as a **single** batching-window lane, so the one
    /// carry-resolve happens inside whichever engine the request named.
    ///
    /// # Panics
    ///
    /// As [`Program::eval_scalar`].
    pub fn csa_pair_scalar(&self, inputs: &[UBig]) -> (UBig, UBig) {
        assert_eq!(inputs.len(), self.inputs, "program input count mismatch");
        let width = inputs[0].width();
        for i in inputs {
            assert_eq!(i.width(), width, "program input width mismatch");
        }
        reduce_csa_one(&self.expanded_scalar(inputs))
    }

    /// Executes the program over wide workloads with **one carry-resolve
    /// for all lanes**: per chunk, the shifted-addend expansion collapses
    /// through the bit-sliced Wallace tree to two slabs, and a single
    /// [`Executor::run`] on `engine` resolves the only carry chain. The
    /// returned outcome's per-lane cycles are that one resolve's cycles.
    ///
    /// ```
    /// use bitnum::batch::WideSlab;
    /// use bitnum::UBig;
    /// use vlcsa::engine::Registry;
    /// use vlcsa::exec::Executor;
    /// use vlcsa::program::Program;
    ///
    /// let program = Program::sum(3).unwrap();
    /// let registry = Registry::for_width(16);
    /// let ops: Vec<WideSlab> = (1..=3)
    ///     .map(|v| WideSlab::from_lanes(&[UBig::from_u128(v, 16)]))
    ///     .collect();
    /// let out = program.run_csa(
    ///     registry.get("carry-select").unwrap(),
    ///     &Executor::new(1),
    ///     &ops,
    /// );
    /// assert_eq!(out.sum.lane(0).to_u128(), Some(6));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the input count, widths or lane counts disagree with the
    /// program or the engine.
    pub fn run_csa<W: Word>(
        &self,
        engine: &dyn Engine<W>,
        exec: &Executor,
        inputs: &[WideSlab<W>],
    ) -> WideOutcome<W> {
        self.check_wide(engine.width(), inputs);
        let coefficients = self.coefficients();
        let width = inputs[0].width();
        let chunk_count = inputs[0].chunks().len();
        let mut x_chunks = Vec::with_capacity(chunk_count);
        let mut y_chunks = Vec::with_capacity(chunk_count);
        for c in 0..chunk_count {
            let mut addends: Vec<BitSlab<W>> = Vec::new();
            for (input, &coef) in inputs.iter().zip(&coefficients) {
                let chunk = &input.chunks()[c];
                for j in 0..width.min(128) {
                    if coef >> j & 1 == 1 {
                        addends.push(shifted_chunk(chunk, j));
                    }
                }
            }
            if addends.is_empty() {
                addends.push(BitSlab::zero(width, inputs[0].chunks()[c].lanes()));
            }
            let (x, y) = reduce_csa(&addends);
            x_chunks.push(x);
            y_chunks.push(y);
        }
        exec.run(
            engine,
            &WideSlab::from_chunks(x_chunks),
            &WideSlab::from_chunks(y_chunks),
        )
    }

    /// Executes the program step by step — one sharded [`Executor::run`]
    /// (one carry-resolve) **per step** — with sequential per-lane cycle
    /// accounting: lane `l` costs the sum over steps of that step's 1 or 2
    /// cycles, exactly like
    /// [`MultiAdder::sum_sequential`](crate::multiop::MultiAdder). The
    /// baseline [`Program::run_csa`] is measured against.
    ///
    /// # Panics
    ///
    /// As [`Program::run_csa`].
    pub fn run_steps<W: Word>(
        &self,
        engine: &dyn Engine<W>,
        exec: &Executor,
        inputs: &[WideSlab<W>],
    ) -> ProgramOutcome<W> {
        self.check_wide(engine.width(), inputs);
        let lanes = inputs[0].lanes();
        let mut cycles = vec![0u64; lanes];
        let mut temps: Vec<WideSlab<W>> = Vec::with_capacity(self.steps.len());
        for &(x, y) in &self.steps {
            let pick = |op: Operand, temps: &[WideSlab<W>]| match op {
                Operand::Input(k) => inputs[k].clone(),
                Operand::Temp(k) => temps[k].clone(),
            };
            let out = exec.run(engine, &pick(x, &temps), &pick(y, &temps));
            for (l, c) in cycles.iter_mut().enumerate() {
                *c += u64::from(out.cycles(l));
            }
            temps.push(out.sum);
        }
        let sum = match self.result() {
            Operand::Input(k) => inputs[k].clone(),
            Operand::Temp(k) => temps[k].clone(),
        };
        ProgramOutcome {
            sum,
            cycles,
            resolves: self.steps.len() as u64,
        }
    }

    fn check_wide<W: Word>(&self, engine_width: usize, inputs: &[WideSlab<W>]) {
        assert_eq!(inputs.len(), self.inputs, "program input count mismatch");
        let (width, lanes) = (inputs[0].width(), inputs[0].lanes());
        assert_eq!(width, engine_width, "program width disagrees with engine");
        for i in inputs {
            assert_eq!(i.width(), width, "program input width mismatch");
            assert_eq!(i.lanes(), lanes, "program input lane count mismatch");
        }
    }
}

fn parse_operand(token: &str) -> Result<Operand, ProgramError> {
    let bad = || ProgramError::BadSpecToken(token.to_string());
    let idx = |s: &str| s.parse::<usize>().map_err(|_| bad());
    match token.split_at_checked(1) {
        Some(("i", rest)) => Ok(Operand::Input(idx(rest)?)),
        Some(("t", rest)) => Ok(Operand::Temp(idx(rest)?)),
        _ => Err(bad()),
    }
}

fn shifted_chunk<W: Word>(chunk: &BitSlab<W>, k: usize) -> BitSlab<W> {
    let mut out = BitSlab::zero(chunk.width(), chunk.lanes());
    for i in k..chunk.width() {
        out.set_word(i, chunk.word(i - k));
    }
    out
}

/// The outcome of a step-by-step program execution
/// ([`Program::run_steps`]): wrapped result lanes plus sequential cycle
/// accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramOutcome<W: Word = DefaultWord> {
    /// The result lanes (always the exact wrapped program value).
    pub sum: WideSlab<W>,
    /// Per-lane total cycles across every step.
    cycles: Vec<u64>,
    /// Carry-resolves performed (= the step count).
    pub resolves: u64,
}

impl<W: Word> ProgramOutcome<W> {
    /// Number of lanes in the workload.
    pub fn lanes(&self) -> usize {
        self.sum.lanes()
    }

    /// Total cycles lane `l` consumed across all steps.
    ///
    /// # Panics
    ///
    /// Panics if `l >= lanes()`.
    pub fn cycles(&self, l: usize) -> u64 {
        self.cycles[l]
    }

    /// Total cycles across all lanes and steps.
    pub fn total_cycles(&self) -> u64 {
        self.cycles.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Registry;
    use bitnum::rng::{RandomBits, Xoshiro256};
    use workloads::dist::{Distribution, OperandSource};

    fn random_program(rng: &mut Xoshiro256, inputs: usize, steps: usize) -> Program {
        let mut p = Program::new(inputs).unwrap();
        for s in 0..steps {
            let draw = |rng: &mut Xoshiro256, defined: usize| {
                let pool = inputs + defined;
                let pick = (rng.next_u64() % pool as u64) as usize;
                if pick < inputs {
                    Operand::Input(pick)
                } else {
                    Operand::Temp(pick - inputs)
                }
            };
            let (x, y) = (draw(rng, s), draw(rng, s));
            p.push(x, y).unwrap();
        }
        p
    }

    #[test]
    fn spec_round_trips_and_rejects_garbage() {
        for spec in ["i0+i1", "i0+i1,t0+i2,t1+t1", "i0+i0"] {
            let p = Program::from_spec(spec, 3).unwrap();
            assert_eq!(p.spec(), spec);
            assert_eq!(Program::from_spec(&p.spec(), 3).unwrap(), p);
        }
        for (spec, inputs) in [
            ("", 2),
            ("i0", 2),
            ("i0+", 2),
            ("+i0", 2),
            ("i0+i2", 2),
            ("t0+i0", 2),
            ("i0+t5", 2),
            ("x0+i1", 2),
            ("i0+i1,", 2),
            ("i-1+i0", 2),
            ("i0+i1", 0),
            ("i0+i1", MAX_PROGRAM_INPUTS + 1),
        ] {
            assert!(
                Program::from_spec(spec, inputs).is_err(),
                "accepted `{spec}` with {inputs} inputs"
            );
        }
        // Step cap: a chain one past MAX_PROGRAM_STEPS.
        let long: Vec<String> = (0..=MAX_PROGRAM_STEPS)
            .map(|s| {
                if s == 0 {
                    "i0+i0".into()
                } else {
                    format!("t{}+t{}", s - 1, s - 1)
                }
            })
            .collect();
        assert_eq!(
            Program::from_spec(&long.join(","), 1),
            Err(ProgramError::TooManySteps)
        );
    }

    #[test]
    fn sum_program_is_the_fold() {
        let mut src = OperandSource::new(Distribution::UnsignedUniform, 48, 4);
        for n in [1usize, 2, 3, 8, 64] {
            let p = Program::sum(n).unwrap();
            assert_eq!(p.coefficients(), vec![1u128; n]);
            let ops: Vec<UBig> = (0..n).map(|_| src.next_operand()).collect();
            let expect = ops[1..]
                .iter()
                .fold(ops[0].clone(), |acc, o| acc.wrapping_add(o));
            assert_eq!(p.eval_scalar(&ops), expect, "n={n}");
            let (x, y) = p.csa_pair_scalar(&ops);
            assert_eq!(x.wrapping_add(&y), expect, "n={n}");
        }
    }

    #[test]
    fn random_dags_agree_on_every_path() {
        // Scalar fold == scalar CSA pair == batched one-resolve executor
        // path == step-by-step executor path, on random DAGs with reused
        // temporaries, for every registry engine family.
        let mut rng = Xoshiro256::seed_from_u64(0xDA6);
        for width in [8usize, 33, 64] {
            let registry = Registry::for_width(width);
            let exec = Executor::new(2);
            for case in 0..6 {
                let inputs = 1 + (rng.next_u64() % 6) as usize;
                let steps = (rng.next_u64() % 9) as usize;
                let p = random_program(&mut rng, inputs, steps);
                let lanes = 1 + (rng.next_u64() % 130) as usize;
                let mut src = OperandSource::new(Distribution::paper_gaussian(), width, case ^ 77);
                let wide: Vec<WideSlab> = (0..inputs)
                    .map(|_| {
                        let ops: Vec<UBig> = (0..lanes).map(|_| src.next_operand()).collect();
                        WideSlab::from_lanes(&ops)
                    })
                    .collect();
                for engine in registry.engines() {
                    let csa = p.run_csa(engine.as_ref(), &exec, &wide);
                    let stepped = p.run_steps(engine.as_ref(), &exec, &wide);
                    assert_eq!(stepped.resolves, steps as u64);
                    for l in 0..lanes {
                        let ops: Vec<UBig> = wide.iter().map(|w| w.lane(l)).collect();
                        let expect = p.eval_scalar(&ops);
                        assert_eq!(
                            csa.sum.lane(l),
                            expect,
                            "{} csa width={width} case={case} lane={l}",
                            engine.name()
                        );
                        assert_eq!(
                            stepped.sum.lane(l),
                            expect,
                            "{} steps width={width} case={case} lane={l}",
                            engine.name()
                        );
                        let (x, y) = p.csa_pair_scalar(&ops);
                        assert_eq!(x.wrapping_add(&y), expect);
                        // The one resolve is the engine resolving (x, y):
                        // cycles must match the scalar engine on the pair.
                        assert_eq!(
                            u64::from(csa.cycles(l)),
                            u64::from(engine.add_one(&x, &y).cycles),
                            "{} resolve cycles lane={l}",
                            engine.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn doubling_chain_coefficients_saturate_the_width() {
        // t0=i0+i0, t1=t0+t0, ...: coefficient 2^steps; addends past the
        // width vanish, so a long chain over a narrow width sums to 0.
        let p = Program::from_spec("i0+i0,t0+t0,t1+t1", 1).unwrap();
        assert_eq!(p.coefficients(), vec![8]);
        let narrow = [UBig::from_u128(5, 3)];
        assert_eq!(p.eval_scalar(&narrow).to_u128(), Some(0)); // 40 mod 8
        let (x, y) = p.csa_pair_scalar(&narrow);
        assert!(x.wrapping_add(&y).is_zero());
    }

    #[test]
    fn stepless_program_is_identity() {
        let p = Program::new(2).unwrap();
        assert_eq!(p.result(), Operand::Input(0));
        assert_eq!(p.spec(), "");
        let ops = [UBig::from_u128(9, 8), UBig::from_u128(4, 8)];
        assert_eq!(p.eval_scalar(&ops).to_u128(), Some(9));
        assert_eq!(p.coefficients(), vec![1, 0]);
    }
}

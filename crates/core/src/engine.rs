//! The unified adder-engine abstraction and its registry.
//!
//! Before this module, every layer dispatched on adder families ad hoc:
//! `adders::batch::BatchAdd` for the fixed-latency baselines, inherent
//! `Vlcsa1::add_batch`/`Vlcsa2::add_batch` for the variable-latency
//! engines, and string-matched names in the bench layer. [`Engine`] folds
//! all of them into one object-safe trait — a scalar path, a bit-sliced
//! batch path, and uniform latency accounting — and [`Registry`]
//! enumerates every family at a width so drivers (benches, the exhaustive
//! test suite, the sharded [`Executor`](crate::exec::Executor)) iterate
//! engines instead of hand-listing them.
//!
//! Fixed-latency families report 1 cycle per lane and an empty stall word;
//! the speculative engines (`vlcsa1`, `vlcsa2`, and the prior-art `vlsa`
//! baseline) report their real per-lane 1-or-2-cycle latency, so the
//! paper's accept-rate-driven average latency (eq. 5.2) is measurable for
//! any engine through the same interface.
//!
//! # Example
//!
//! ```
//! use bitnum::UBig;
//! use vlcsa::engine::Registry;
//!
//! let registry = Registry::for_width(64);
//! assert!(registry.engines().len() >= 9);
//! let a = UBig::from_u128(123, 64);
//! let b = UBig::from_u128(877, 64);
//! for engine in registry.engines() {
//!     let one = engine.add_one(&a, &b);
//!     assert_eq!(one.sum.to_u128(), Some(1000), "{}", engine.name());
//! }
//! ```

use std::fmt;

use adders::batch::{
    BatchAdd, BatchCarrySelect, BatchCarrySkip, BatchCla, BatchCondSum, BatchPrefix, BatchRipple,
    ScalarAdd,
};
use bitnum::batch::{ripple_words, BitSlab, DefaultWord, Word};
use bitnum::UBig;
use vlsa::engine::VlsaEngine;
use vlsa::Vlsa;

use crate::batch::BatchOutcome;
use crate::vlcsa1::{AddOutcome, Vlcsa1};
use crate::vlcsa2::Vlcsa2;

/// A behavioral adder engine: one scalar path, one bit-sliced batch path,
/// uniform latency accounting.
///
/// Implementations must make the two paths compute the same function —
/// `add_batch(a, b)` lane `l` must equal `add_one(&a.lane(l), &b.lane(l))`
/// in sum, carry-out **and** cycle count — and both must equal exact
/// addition (every engine in this workspace is reliable; the speculative
/// ones recover). The registry-driven exhaustive suite
/// (`tests/exhaustive_small_widths.rs`) pins this over the full input
/// space at small widths.
///
/// The trait is object-safe and `Send + Sync` so a `&dyn Engine` can be
/// shared across the shards of [`Executor`](crate::exec::Executor). It is
/// generic over the slab lane word `W` ([`Word`]): every engine family
/// implements it for both `u64` (64 lanes) and
/// [`W256`](bitnum::batch::W256) (256 lanes, the [`DefaultWord`]), and
/// the word-independent scalar half lives in the [`ScalarEngine`]
/// supertrait so scalar call sites need no word annotation.
pub trait Engine<W: Word = DefaultWord>: ScalarEngine {
    /// Adds all lanes of `a` and `b` bit-sliced.
    ///
    /// # Panics
    ///
    /// Panics if the slabs disagree with the engine width or with each
    /// other's lane count.
    fn add_batch(&self, a: &BitSlab<W>, b: &BitSlab<W>) -> BatchOutcome<W>;
}

/// The word-independent half of an [`Engine`]: identity plus the scalar
/// evaluation path with uniform latency accounting.
pub trait ScalarEngine: Send + Sync {
    /// Short display name (e.g. `"carry-select"`, `"vlcsa1"`).
    fn name(&self) -> &'static str;

    /// The operand width the engine was built for.
    fn width(&self) -> usize;

    /// Adds one operand pair through the scalar path.
    ///
    /// # Panics
    ///
    /// Panics if the operand widths disagree with the engine width.
    fn add_one(&self, a: &UBig, b: &UBig) -> AddOutcome;

    /// Whether the family can take the 2-cycle recovery path. Fixed-
    /// latency families (the default) always answer in 1 cycle; the
    /// speculative engines override this, and the adaptive router
    /// ([`crate::route`]) only falls back to `false` families when a
    /// latency SLO is at risk.
    fn variable_latency(&self) -> bool {
        false
    }
}

/// Adapts a fixed-latency [`BatchAdd`] family to the [`Engine`] protocol:
/// every addition takes 1 cycle and never stalls.
///
/// ```
/// use adders::batch::BatchRipple;
/// use vlcsa::engine::{FixedLatency, ScalarEngine};
/// use bitnum::UBig;
///
/// let engine = FixedLatency::new(BatchRipple::new(16));
/// let one = engine.add_one(&UBig::from_u128(9, 16), &UBig::from_u128(8, 16));
/// assert_eq!(one.cycles, 1);
/// assert!(!one.flagged);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedLatency<A> {
    inner: A,
}

impl<A: ScalarAdd> FixedLatency<A> {
    /// Wraps a batch adder family.
    pub fn new(inner: A) -> Self {
        Self { inner }
    }

    /// The wrapped family.
    pub fn inner(&self) -> &A {
        &self.inner
    }
}

impl<A: ScalarAdd + Send + Sync> ScalarEngine for FixedLatency<A> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn width(&self) -> usize {
        self.inner.width()
    }

    fn add_one(&self, a: &UBig, b: &UBig) -> AddOutcome {
        let (sum, cout) = self.inner.add_one(a, b);
        AddOutcome {
            sum,
            cout,
            cycles: 1,
            flagged: false,
        }
    }
}

impl<W: Word, A: BatchAdd<W> + Send + Sync> Engine<W> for FixedLatency<A> {
    fn add_batch(&self, a: &BitSlab<W>, b: &BitSlab<W>) -> BatchOutcome<W> {
        let out = self.inner.add_batch(a, b);
        BatchOutcome {
            sum: out.sum,
            cout: out.cout,
            flagged: W::ZERO,
        }
    }
}

impl ScalarEngine for Vlcsa1 {
    fn name(&self) -> &'static str {
        "vlcsa1"
    }

    fn width(&self) -> usize {
        Vlcsa1::width(self)
    }

    fn add_one(&self, a: &UBig, b: &UBig) -> AddOutcome {
        self.add(a, b)
    }

    fn variable_latency(&self) -> bool {
        true
    }
}

impl<W: Word> Engine<W> for Vlcsa1 {
    fn add_batch(&self, a: &BitSlab<W>, b: &BitSlab<W>) -> BatchOutcome<W> {
        Vlcsa1::add_batch(self, a, b)
    }
}

impl ScalarEngine for Vlcsa2 {
    fn name(&self) -> &'static str {
        "vlcsa2"
    }

    fn width(&self) -> usize {
        Vlcsa2::width(self)
    }

    fn add_one(&self, a: &UBig, b: &UBig) -> AddOutcome {
        self.add(a, b)
    }

    fn variable_latency(&self) -> bool {
        true
    }
}

impl<W: Word> Engine<W> for Vlcsa2 {
    fn add_batch(&self, a: &BitSlab<W>, b: &BitSlab<W>) -> BatchOutcome<W> {
        Vlcsa2::add_batch(self, a, b)
    }
}

/// The VLSA prior-art baseline (per-bit speculation, DATE 2008) as an
/// [`Engine`]: scalar additions go through [`VlsaEngine`], batches run the
/// detector bit-sliced (a word-parallel scan for full `l`-bit propagate
/// windows with a carry-capable precursor) and one shared exact ripple.
///
/// ```
/// use bitnum::UBig;
/// use vlcsa::engine::{ScalarEngine, VlsaBaseline};
///
/// let engine = VlsaBaseline::new(64, 17);
/// assert_eq!(engine.name(), "vlsa");
/// let one = engine.add_one(&UBig::from_u128(3, 64), &UBig::from_u128(5, 64));
/// assert_eq!(one.sum.to_u128(), Some(8));
/// assert_eq!(one.cycles, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VlsaBaseline {
    engine: VlsaEngine,
}

impl VlsaBaseline {
    /// Creates a VLSA baseline of the given width and speculative chain
    /// length `l`.
    ///
    /// # Panics
    ///
    /// Panics on the conditions of [`Vlsa::new`].
    pub fn new(width: usize, chain_len: usize) -> Self {
        Self {
            engine: VlsaEngine::new(Vlsa::new(width, chain_len)),
        }
    }

    /// The wrapped scalar engine.
    pub fn vlsa_engine(&self) -> &VlsaEngine {
        &self.engine
    }

    /// The bit-sliced VLSA detector: bit `l` of the result is lane `l`'s
    /// [`Vlsa::detect`] — a full `chain_len`-bit propagate window ending at
    /// some `i >= chain_len`, preceded by a carry-capable bit.
    fn detect_word<W: Word>(&self, a: &BitSlab<W>, b: &BitSlab<W>) -> W {
        let vlsa = self.engine.vlsa();
        let (width, l) = (vlsa.width(), vlsa.chain_len());
        if l >= width {
            return W::ZERO;
        }
        // Windowed AND by span-doubling (the same sweep shape as the
        // prefix engines): after growing the span to `l`, `win[i]` is the
        // AND of `p[i-l+1..=i]` for every `i >= l-1` — O(width·log l) word
        // operations instead of the naive O(width·l) rescan per position.
        let mut win: Vec<W> = (0..width).map(|i| a.word(i) ^ b.word(i)).collect();
        let mut span = 1;
        while span < l {
            let step = span.min(l - span);
            // Descending, so `win[i - step]` still holds the previous
            // span's value when `win[i]` consumes it.
            for i in (step..width).rev() {
                win[i] = win[i] & win[i - step];
            }
            span += step;
        }
        let mut flagged = W::ZERO;
        for (i, &w) in win.iter().enumerate().skip(l) {
            flagged = flagged | (w & (a.word(i - l) | b.word(i - l)));
        }
        flagged
    }
}

impl ScalarEngine for VlsaBaseline {
    fn name(&self) -> &'static str {
        "vlsa"
    }

    fn width(&self) -> usize {
        self.engine.vlsa().width()
    }

    fn add_one(&self, a: &UBig, b: &UBig) -> AddOutcome {
        let out = self.engine.add(a, b);
        AddOutcome {
            sum: out.sum,
            cout: out.cout,
            cycles: out.cycles,
            flagged: out.flagged,
        }
    }

    fn variable_latency(&self) -> bool {
        true
    }
}

impl<W: Word> Engine<W> for VlsaBaseline {
    fn add_batch(&self, a: &BitSlab<W>, b: &BitSlab<W>) -> BatchOutcome<W> {
        let width = self.width();
        assert_eq!(a.width(), width, "operand slab width mismatch");
        assert_eq!(b.width(), width, "operand slab width mismatch");
        assert_eq!(a.lanes(), b.lanes(), "operand slab lane count mismatch");
        let flagged = self.detect_word(a, b);
        // Unflagged lanes' speculative sums are provably exact (the
        // detector is sound) and flagged lanes recover to the exact sum,
        // so one shared bit-sliced ripple produces every lane's result.
        let mut sum = BitSlab::zero(width, a.lanes());
        let cout = ripple_words(
            a.words(),
            b.words(),
            W::ZERO,
            a.lane_mask(),
            sum.words_mut(),
        );
        BatchOutcome { sum, cout, flagged }
    }
}

/// Every engine family at one width, with the workspace's default
/// parameters — the single source of truth the benches and the exhaustive
/// suite iterate instead of hand-listing families.
///
/// Families (and default parameters at width `n`):
///
/// | name | family | parameters |
/// |---|---|---|
/// | `ripple` | ripple-carry | — |
/// | `cla4` | blocked carry-lookahead | 4-bit groups |
/// | `carry-select` | carry-select | `⌈√n⌉`-bit blocks |
/// | `carry-skip` | carry-skip | `⌈√n⌉`-bit blocks |
/// | `conditional-sum` | conditional-sum | — |
/// | `kogge-stone` | parallel prefix | — |
/// | `vlsa` | per-bit speculation (DATE 2008) | `l = min(17, n)` (Table 7.3) |
/// | `vlcsa1` | window speculation + recovery | `k = min(14, n)` (Table 7.1) |
/// | `vlcsa2` | two-result speculation | `k = min(13, n)` (Table 7.5) |
///
/// # Example
///
/// ```
/// use vlcsa::engine::Registry;
///
/// let registry = Registry::for_width(32);
/// let names: Vec<&str> = registry.engines().iter().map(|e| e.name()).collect();
/// assert!(names.contains(&"carry-select") && names.contains(&"vlcsa2"));
/// assert_eq!(registry.get("vlsa").unwrap().width(), 32);
/// assert!(registry.get("no-such-engine").is_none());
/// ```
pub struct Registry<W: Word = DefaultWord> {
    width: usize,
    engines: Vec<Box<dyn Engine<W>>>,
}

impl Registry {
    /// Builds the full registry at a width over the [`DefaultWord`] slab
    /// word, using each family's default parameters (see the table above).
    /// This is the constructor the benches and the serve front-end use, so
    /// the default word choice is made in exactly one place.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`bitnum::MAX_WIDTH`].
    pub fn for_width(width: usize) -> Self {
        Self::for_width_word(width)
    }
}

impl<W: Word> Registry<W> {
    /// Builds the full registry at a width over an explicit slab word `W`
    /// — `Registry::<u64>::for_width_word(n)` is the 64-lane registry the
    /// word-equivalence suites compare against.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`bitnum::MAX_WIDTH`].
    pub fn for_width_word(width: usize) -> Self {
        let block = (width as f64).sqrt().ceil() as usize;
        let engines: Vec<Box<dyn Engine<W>>> = vec![
            Box::new(FixedLatency::new(BatchRipple::new(width))),
            Box::new(FixedLatency::new(BatchCla::new(width))),
            Box::new(FixedLatency::new(BatchCarrySelect::new(width, block))),
            Box::new(FixedLatency::new(BatchCarrySkip::new(width, block))),
            Box::new(FixedLatency::new(BatchCondSum::new(width))),
            Box::new(FixedLatency::new(BatchPrefix::new(width))),
            Box::new(VlsaBaseline::new(width, 17.min(width))),
            Box::new(Vlcsa1::new(width, 14.min(width).min(63))),
            Box::new(Vlcsa2::new(width, 13.min(width).min(63))),
        ];
        Self { width, engines }
    }

    /// Builds a registry from an explicit engine table — the injection
    /// seam for synthetic families: head-of-line isolation tests and the
    /// serve bench's `lane_isolation` dimension wrap a real engine in a
    /// gate (or a sleep) and register it alongside the production table.
    /// Lookups are first-match by name, so do not register duplicates.
    ///
    /// ```
    /// use vlcsa::engine::Registry;
    ///
    /// let mut engines = Registry::for_width(16).into_engines();
    /// engines.truncate(2);
    /// let registry = Registry::from_engines(16, engines);
    /// assert_eq!(registry.names(), ["ripple", "cla4"]);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `engines` is empty or any engine's width is not `width`.
    pub fn from_engines(width: usize, engines: Vec<Box<dyn Engine<W>>>) -> Self {
        assert!(!engines.is_empty(), "a registry needs at least one engine");
        for engine in &engines {
            assert_eq!(
                engine.width(),
                width,
                "engine {} is built for another width",
                engine.name()
            );
        }
        Self { width, engines }
    }

    /// Unwraps the engine table, so callers can extend the production
    /// table and rebuild via [`Registry::from_engines`].
    pub fn into_engines(self) -> Vec<Box<dyn Engine<W>>> {
        self.engines
    }

    /// The width every engine was built for.
    pub fn width(&self) -> usize {
        self.width
    }

    /// All engines, in the table's order.
    pub fn engines(&self) -> &[Box<dyn Engine<W>>] {
        &self.engines
    }

    /// Looks an engine up by display name.
    pub fn get(&self, name: &str) -> Option<&dyn Engine<W>> {
        self.engines
            .iter()
            .find(|e| e.name() == name)
            .map(|e| e.as_ref())
    }

    /// Looks an engine up by display name, returning a structured
    /// [`EngineLookupError`] that carries the full name list on a miss —
    /// the error a request/response front-end can send back verbatim so
    /// clients learn the valid names instead of guessing.
    ///
    /// ```
    /// use vlcsa::engine::Registry;
    ///
    /// let registry = Registry::for_width(16);
    /// assert_eq!(registry.lookup("ripple").unwrap().name(), "ripple");
    /// let err = registry.lookup("riple").err().unwrap();
    /// assert_eq!(err.requested, "riple");
    /// assert_eq!(err.known, registry.names());
    /// assert!(err.to_string().contains("known engines: ripple"));
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`EngineLookupError`] when no engine is named `name`.
    pub fn lookup(&self, name: &str) -> Result<&dyn Engine<W>, EngineLookupError> {
        self.get(name).ok_or_else(|| EngineLookupError {
            requested: name.to_string(),
            known: self.names(),
        })
    }

    /// The display names, in the table's order.
    pub fn names(&self) -> Vec<&'static str> {
        self.engines.iter().map(|e| e.name()).collect()
    }
}

/// A by-name engine lookup miss, carrying the requested name and every
/// name the registry does know — see [`Registry::lookup`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineLookupError {
    /// The name that was asked for.
    pub requested: String,
    /// Every name the registry knows, in the table's order.
    pub known: Vec<&'static str>,
}

impl fmt::Display for EngineLookupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown engine `{}`; known engines: {}",
            self.requested,
            self.known.join(", ")
        )
    }
}

impl std::error::Error for EngineLookupError {}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::dist::{Distribution, OperandSource};

    #[test]
    fn registry_has_all_families() {
        let registry = Registry::for_width(64);
        assert!(registry.engines().len() >= 9, "fewer than 9 engines");
        let names = registry.names();
        for expect in [
            "ripple",
            "cla4",
            "carry-select",
            "carry-skip",
            "conditional-sum",
            "kogge-stone",
            "vlsa",
            "vlcsa1",
            "vlcsa2",
        ] {
            assert!(names.contains(&expect), "missing engine {expect}");
        }
        // Names are unique — `get` is unambiguous.
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate engine names");
    }

    #[test]
    fn lookup_miss_reports_every_known_name() {
        let registry = Registry::for_width(64);
        let err = registry.lookup("no-such-adder").err().unwrap();
        assert_eq!(err.requested, "no-such-adder");
        assert_eq!(err.known, registry.names());
        let msg = err.to_string();
        for name in registry.names() {
            assert!(msg.contains(name), "message lacks {name}: {msg}");
        }
        // And the hit path returns the same engine `get` does.
        assert_eq!(
            registry.lookup("vlcsa2").unwrap().name(),
            registry.get("vlcsa2").unwrap().name()
        );
    }

    #[test]
    fn every_engine_agrees_with_exact_addition() {
        for width in [7usize, 64, 100] {
            let registry = Registry::for_width(width);
            let mut src = OperandSource::new(Distribution::UnsignedUniform, width, 3);
            let (a, b) = src.next_batch(33);
            for engine in registry.engines() {
                assert_eq!(engine.width(), width);
                let out = engine.add_batch(&a, &b);
                for l in 0..33 {
                    let (al, bl) = (a.lane(l), b.lane(l));
                    let (exact, exact_cout) = al.overflowing_add(&bl);
                    assert_eq!(out.sum.lane(l), exact, "{} width {width}", engine.name());
                    assert_eq!(out.cout.bit(l), exact_cout, "{}", engine.name());
                    let one = engine.add_one(&al, &bl);
                    assert_eq!(one.sum, exact, "{} scalar", engine.name());
                    assert_eq!(one.cout, exact_cout);
                    assert_eq!(
                        out.cycles(l),
                        one.cycles,
                        "{} cycles lane {l}",
                        engine.name()
                    );
                }
            }
        }
    }

    #[test]
    fn vlsa_baseline_batch_flags_match_scalar() {
        // The bit-sliced detector must agree with Vlsa::detect per lane —
        // on uniform and Gaussian operands, including chain-end cases.
        for (width, l) in [(64usize, 8usize), (64, 17), (40, 40), (65, 9)] {
            let engine = VlsaBaseline::new(width, l);
            for (s, dist) in [
                Distribution::UnsignedUniform,
                Distribution::paper_gaussian(),
            ]
            .into_iter()
            .enumerate()
            {
                let mut src = OperandSource::new(dist, width, 11 ^ s as u64);
                let (a, b) = src.next_batch(64);
                let out = engine.add_batch(&a, &b);
                for lane in 0..64 {
                    let scalar = engine.add_one(&a.lane(lane), &b.lane(lane));
                    assert_eq!(
                        out.flagged.bit(lane),
                        scalar.flagged,
                        "width={width} l={l} lane={lane}"
                    );
                    assert_eq!(out.cycles(lane), scalar.cycles);
                    assert_eq!(out.sum.lane(lane), scalar.sum);
                }
            }
        }
    }

    #[test]
    fn variable_latency_engines_stall_fixed_ones_do_not() {
        let registry = Registry::for_width(64);
        let mut src = OperandSource::new(Distribution::paper_gaussian(), 64, 5);
        let (a, b) = src.next_batch(64);
        for engine in registry.engines() {
            let out = engine.add_batch(&a, &b);
            match engine.name() {
                "vlsa" | "vlcsa1" | "vlcsa2" => {}
                _ => assert_eq!(out.stalls(), 0, "{} must not stall", engine.name()),
            }
        }
        // Gaussian operands at the paper's parameters stall VLCSA 1 ~25%.
        let v1 = registry.get("vlcsa1").unwrap();
        let mut stalls = 0;
        for _ in 0..20 {
            let (a, b) = src.next_batch(64);
            stalls += v1.add_batch(&a, &b).stalls();
        }
        assert!(
            stalls > 100,
            "vlcsa1 stalls {stalls} of 1280 Gaussian lanes"
        );
    }
}

//! Multi-operand variable-latency addition — the paper's future work
//! ("we plan to generalize the speculative and reliable variable latency
//! carry select addition for ... multi-operand addition", Ch. 8).
//!
//! Summing `m` operands with a reliable variable-latency adder is not just
//! a fold: every intermediate addition can stall independently, so the
//! expected latency is `(m−1)·T_clk·(1 + P_err)` and the worst case twice
//! that. Two reduction schedules are provided:
//!
//! * [`MultiAdder::sum_sequential`] — a linear fold (minimal hardware, one
//!   adder reused);
//! * [`MultiAdder::sum_tree`] — a balanced binary reduction, modelling
//!   `⌈m/2⌉` adders operating in parallel per level: the *cycle count* is
//!   the maximum over each level's slowest addition, which is where
//!   variable latency gets interesting — one stall holds up the level.
//!
//! Both return exact sums (the reliability invariant composes) plus the
//! cycle accounting needed to size a schedule.

use bitnum::UBig;

use crate::vlcsa1::Vlcsa1;
use crate::vlcsa2::Vlcsa2;

/// The engine a reduction runs on.
#[derive(Debug, Clone)]
pub enum Engine {
    /// VLCSA 1 (uniform-input tuned).
    V1(Vlcsa1),
    /// VLCSA 2 (practical-input tuned).
    V2(Vlcsa2),
}

impl Engine {
    fn add(&self, a: &UBig, b: &UBig) -> crate::AddOutcome {
        match self {
            Engine::V1(e) => e.add(a, b),
            Engine::V2(e) => e.add(a, b),
        }
    }

    fn width(&self) -> usize {
        match self {
            Engine::V1(e) => e.width(),
            Engine::V2(e) => e.width(),
        }
    }
}

/// The result of a multi-operand reduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiOutcome {
    /// The exact (wrapping) sum of all operands.
    pub sum: UBig,
    /// Total cycles under the schedule's model (see module docs).
    pub cycles: u64,
    /// Number of two-input additions performed.
    pub additions: u64,
    /// How many of them stalled.
    pub stalls: u64,
}

/// A multi-operand adder built on a variable-latency engine.
#[derive(Debug, Clone)]
pub struct MultiAdder {
    engine: Engine,
}

impl MultiAdder {
    /// Wraps a VLCSA 1 engine.
    pub fn with_vlcsa1(engine: Vlcsa1) -> Self {
        Self {
            engine: Engine::V1(engine),
        }
    }

    /// Wraps a VLCSA 2 engine.
    pub fn with_vlcsa2(engine: Vlcsa2) -> Self {
        Self {
            engine: Engine::V2(engine),
        }
    }

    /// Operand width.
    pub fn width(&self) -> usize {
        self.engine.width()
    }

    /// Sequential fold: one adder, `m−1` dependent additions; cycles are
    /// the sum of each addition's latency.
    ///
    /// # Panics
    ///
    /// Panics if `operands` is empty or widths mismatch.
    pub fn sum_sequential(&self, operands: &[UBig]) -> MultiOutcome {
        assert!(!operands.is_empty(), "need at least one operand");
        let mut acc = operands[0].clone();
        let mut cycles = 0u64;
        let mut additions = 0u64;
        let mut stalls = 0u64;
        for operand in &operands[1..] {
            let outcome = self.engine.add(&acc, operand);
            cycles += outcome.cycles as u64;
            additions += 1;
            stalls += (outcome.cycles > 1) as u64;
            acc = outcome.sum;
        }
        MultiOutcome {
            sum: acc,
            cycles,
            additions,
            stalls,
        }
    }

    /// Balanced tree reduction: each level runs its additions in parallel
    /// on separate adders; a level takes as long as its slowest addition
    /// (2 cycles if *any* of them stalls, else 1).
    ///
    /// # Panics
    ///
    /// Panics if `operands` is empty or widths mismatch.
    pub fn sum_tree(&self, operands: &[UBig]) -> MultiOutcome {
        assert!(!operands.is_empty(), "need at least one operand");
        let mut level: Vec<UBig> = operands.to_vec();
        let mut cycles = 0u64;
        let mut additions = 0u64;
        let mut stalls = 0u64;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            let mut level_cycles = 0u64;
            let mut chunks = level.chunks_exact(2);
            for pair in &mut chunks {
                let outcome = self.engine.add(&pair[0], &pair[1]);
                additions += 1;
                stalls += (outcome.cycles > 1) as u64;
                level_cycles = level_cycles.max(outcome.cycles as u64);
                next.push(outcome.sum);
            }
            if let [odd] = chunks.remainder() {
                next.push(odd.clone());
            }
            cycles += level_cycles.max(1);
            level = next;
        }
        MultiOutcome {
            sum: level.pop().expect("non-empty"),
            cycles,
            additions,
            stalls,
        }
    }
}

/// Reference wrapping sum for checking reductions.
pub fn exact_sum(operands: &[UBig]) -> UBig {
    let mut acc = operands[0].clone();
    for x in &operands[1..] {
        acc = acc.wrapping_add(x);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitnum::rng::Xoshiro256;
    use workloads::dist::{Distribution, OperandSource};

    fn operands(n: usize, count: usize, seed: u64) -> Vec<UBig> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        (0..count).map(|_| UBig::random(n, &mut rng)).collect()
    }

    #[test]
    fn both_schedules_are_exact() {
        let adder = MultiAdder::with_vlcsa1(Vlcsa1::new(64, 8));
        for count in [1usize, 2, 3, 7, 16, 33] {
            let ops = operands(64, count, count as u64);
            let want = exact_sum(&ops);
            let seq = adder.sum_sequential(&ops);
            let tree = adder.sum_tree(&ops);
            assert_eq!(seq.sum, want, "sequential m={count}");
            assert_eq!(tree.sum, want, "tree m={count}");
            assert_eq!(seq.additions, count as u64 - 1);
            assert_eq!(tree.additions, count as u64 - 1);
        }
    }

    #[test]
    fn tree_uses_fewer_cycles_than_sequence() {
        let adder = MultiAdder::with_vlcsa1(Vlcsa1::new(64, 10));
        let ops = operands(64, 64, 9);
        let seq = adder.sum_sequential(&ops);
        let tree = adder.sum_tree(&ops);
        // 63 dependent adds vs ~6 levels.
        assert!(tree.cycles <= 2 * 7);
        assert!(seq.cycles >= 63);
        assert!(tree.cycles < seq.cycles / 3);
    }

    #[test]
    fn cycle_accounting_matches_stall_counts() {
        let adder = MultiAdder::with_vlcsa1(Vlcsa1::new(64, 6));
        let ops = operands(64, 40, 11);
        let seq = adder.sum_sequential(&ops);
        assert_eq!(seq.cycles, seq.additions + seq.stalls);
        let tree = adder.sum_tree(&ops);
        assert!(tree.cycles >= 6, "at least one cycle per level");
        assert!(tree.stalls <= tree.additions);
    }

    #[test]
    fn vlcsa2_engine_handles_gaussian_streams() {
        let adder = MultiAdder::with_vlcsa2(Vlcsa2::new(64, 13));
        let mut src = OperandSource::new(Distribution::paper_gaussian(), 64, 5);
        let ops: Vec<UBig> = (0..64).map(|_| src.next_operand()).collect();
        let tree = adder.sum_tree(&ops);
        assert_eq!(tree.sum, exact_sum(&ops));
        // Sign-mixed Gaussian operands barely stall VLCSA 2.
        assert!(tree.stalls <= 3, "stalls {}", tree.stalls);
    }
}

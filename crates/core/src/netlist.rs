//! Gate-level SCSA/VLCSA datapaths (Figs. 4.1–4.2, 5.1–5.3, 6.6–6.8).
//!
//! Construction mirrors the paper's hardware:
//!
//! * **Window adders** (Fig. 4.2/6.6) — each window computes Kogge–Stone
//!   carries twice, for carry-in 0 and carry-in 1; the builder's
//!   hash-consing shares the generate tree between the two, so only the
//!   carry-in-1 propagate chain is extra. The window's group signals come
//!   for free: `G = cout₀`, `G∨P = cout₁`, `P = cout₀ ⊕ cout₁`.
//! * **Speculative selection** — window `i`'s multiplexers are steered by
//!   window `i−1`'s `cout₀` (= `G`, SCSA 1 / `S*,0`) and `cout₁`
//!   (= `G∨P`, the SCSA 2 second result).
//! * **Error detection** (Fig. 5.1/6.7) — 2-input AND–OR trees over the
//!   window group signals.
//! * **Error recovery** (Fig. 5.2) — an ⌈n/k⌉-bit Kogge–Stone prefix adder
//!   over the window `(G, P)` pairs computes the exact window carries; the
//!   exact sum is then *selected* from the conditional sums the window
//!   adders already produced. Isolation buffers decouple the recovery
//!   stage's loads from the single-cycle speculative path.
//!
//! Output buses (names shared across variants so experiments can treat
//! them uniformly): `sum`/`cout` (speculative), `err` (+`err1` for
//! VLCSA 2), `stall`, `sum_rec`/`cout_rec` (recovery), and `sum1` for the
//! bare SCSA 2.

use adders::pg::{self, PgBit};
use adders::prefix;
use gatesim::{Netlist, NetlistBuilder, Signal};

use crate::window::WindowLayout;

/// All per-window signals produced by one window adder.
#[derive(Debug, Clone)]
struct WindowParts {
    /// Conditional sums for carry-in 0.
    sum0: Vec<Signal>,
    /// Conditional sums for carry-in 1.
    sum1: Vec<Signal>,
    /// Carry-out with carry-in 0 — the group generate `G`.
    cout0: Signal,
    /// Carry-out with carry-in 1 — `G ∨ P`.
    cout1: Signal,
    /// Group propagate `P = cout₀ ⊕ cout₁`.
    group_p: Signal,
}

/// How each window's internal carry tree is implemented. The paper notes
/// the window adder "can be implemented using any traditional adder" and
/// picks Kogge–Stone for speed (Ch. 4.1); the alternatives quantify that
/// choice (see the `ext.window_style` experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WindowStyle {
    /// Kogge–Stone window trees (the paper's choice).
    #[default]
    KoggeStone,
    /// Brent–Kung window trees (smaller, one to two levels deeper).
    BrentKung,
    /// Sklansky window trees (small, high internal fanout).
    Sklansky,
}

impl WindowStyle {
    fn network(self, len: usize) -> prefix::PrefixNetwork {
        match self {
            WindowStyle::KoggeStone => prefix::kogge_stone(len),
            WindowStyle::BrentKung => prefix::brent_kung(len),
            WindowStyle::Sklansky => prefix::sklansky(len),
        }
    }
}

/// Builds every window adder (Fig. 4.2): shared PG plane, dual prefix
/// carry trees, conditional sums.
fn build_windows(
    b: &mut NetlistBuilder,
    a_bus: &[Signal],
    b_bus: &[Signal],
    layout: &WindowLayout,
    style: WindowStyle,
) -> Vec<WindowParts> {
    let plane = pg::pg_bits(b, a_bus, b_bus);
    let mut parts = Vec::with_capacity(layout.count());
    for (lo, len) in layout.iter() {
        let slice = &plane[lo..lo + len];
        let network = style.network(len);
        // One prefix tree serves both conditional adders: carry-in 0 reads
        // the group generates directly, carry-in 1 folds the constant in
        // (`G ∨ P` per position). The group propagates are byproducts of
        // the same tree — in particular the full-window `P` the detectors
        // need, available at AND-chain (not carry-chain) depth.
        let groups = prefix::realize_groups(b, slice, &network, true);
        let one = b.const1();
        let carries0: Vec<Signal> = groups.iter().map(|g| g.g).collect();
        let carries1 = pg::apply_cin(b, &groups, Some(one));
        let sum0 = pg::sum_bits(b, slice, &carries0, None);
        let sum1 = pg::sum_bits(b, slice, &carries1, Some(one));
        let cout0 = carries0[len - 1];
        let cout1 = carries1[len - 1];
        let group_p = groups[len - 1].p.expect("keep_all_p tree retains P");
        parts.push(WindowParts {
            sum0,
            sum1,
            cout0,
            cout1,
            group_p,
        });
    }
    parts
}

/// Selects the speculative result whose window carries are taken from the
/// given per-window select signals (`selects[i]` steers window `i+1`;
/// window 0 always uses carry-in 0). Returns `(sum bus, cout)`.
fn select_spec(
    b: &mut NetlistBuilder,
    parts: &[WindowParts],
    selects: &[Signal],
) -> (Vec<Signal>, Signal) {
    let mut sum = parts[0].sum0.clone();
    let mut cout = parts[0].cout0;
    for (i, part) in parts.iter().enumerate().skip(1) {
        let sel = selects[i - 1];
        sum.extend(b.mux_bus(&part.sum0, &part.sum1, sel));
        cout = b.mux2(part.cout0, part.cout1, sel);
    }
    (sum, cout)
}

/// The `ERR0` AND–OR tree (Fig. 5.1): `∨ P^{i+1}·G^i`.
fn err0_tree(b: &mut NetlistBuilder, parts: &[WindowParts]) -> Signal {
    let terms: Vec<Signal> = parts
        .windows(2)
        .map(|w| b.and2(w[1].group_p, w[0].cout0))
        .collect();
    b.or_many_wide(&terms)
}

/// The `ERR1` AND–OR tree (Fig. 6.7): `∨ P^i·¬P^{i+1}` for `i ≥ 1`.
/// Window 0 is excluded because it is not speculative (see
/// [`crate::detect::err1`]).
fn err1_tree(b: &mut NetlistBuilder, parts: &[WindowParts]) -> Signal {
    if parts.len() < 3 {
        return b.const0();
    }
    let terms: Vec<Signal> = parts[1..]
        .windows(2)
        .map(|w| {
            let not_next = b.inv(w[1].group_p);
            b.and2(w[0].group_p, not_next)
        })
        .collect();
    b.or_many_wide(&terms)
}

/// The recovery stage (Fig. 5.2): an ⌈n/k⌉-bit prefix adder over the
/// window `(G, P)` pairs, then re-selection of the conditional sums.
/// Returns `(exact sum bus, exact cout)`.
fn recovery(b: &mut NetlistBuilder, parts: &[WindowParts]) -> (Vec<Signal>, Signal) {
    // Isolation buffers: the recovery prefix and muxes must not load the
    // speculative single-cycle path.
    let groups: Vec<PgBit> = parts
        .iter()
        .map(|part| PgBit {
            p: b.isolation_buf(part.group_p),
            g: b.isolation_buf(part.cout0),
        })
        .collect();
    let network = prefix::kogge_stone(groups.len());
    let window_couts = prefix::realize_carries(b, &groups, &network, None);
    let mut sum = Vec::new();
    for (i, part) in parts.iter().enumerate() {
        if i == 0 {
            let buffered: Vec<Signal> = part.sum0.iter().map(|&s| b.isolation_buf(s)).collect();
            sum.extend(buffered);
        } else {
            let cin = window_couts[i - 1];
            let s0: Vec<Signal> = part.sum0.iter().map(|&s| b.isolation_buf(s)).collect();
            let s1: Vec<Signal> = part.sum1.iter().map(|&s| b.isolation_buf(s)).collect();
            sum.extend(b.mux_bus(&s0, &s1, cin));
        }
    }
    (sum, window_couts[parts.len() - 1])
}

/// The bare SCSA 1 speculative adder (Fig. 4.1): `a`, `b` → `sum`, `cout`.
///
/// # Panics
///
/// Panics on the conditions of [`WindowLayout::new`].
pub fn scsa1_netlist(width: usize, window: usize) -> Netlist {
    scsa1_netlist_styled(width, window, WindowStyle::default())
}

/// [`scsa1_netlist`] with an explicit window-adder style (the ablation of
/// the paper's Kogge–Stone choice).
///
/// # Panics
///
/// Panics on the conditions of [`WindowLayout::new`].
pub fn scsa1_netlist_styled(width: usize, window: usize, style: WindowStyle) -> Netlist {
    let layout = WindowLayout::new(width, window);
    let mut b = NetlistBuilder::new(format!("scsa1_{width}_k{window}_{style:?}"));
    let a_bus = b.input_bus("a", width);
    let b_bus = b.input_bus("b", width);
    let parts = build_windows(&mut b, &a_bus, &b_bus, &layout, style);
    let selects: Vec<Signal> = parts.iter().map(|p| p.cout0).collect();
    let (sum, cout) = select_spec(&mut b, &parts, &selects);
    b.output_bus("sum", &sum);
    b.output_bit("cout", cout);
    b.finish()
}

/// The bare SCSA 2 speculative adder (Fig. 6.6): `a`, `b` →
/// `sum` (= `S*,0`), `sum1` (= `S*,1`), `cout`, `cout1`.
///
/// # Panics
///
/// Panics on the conditions of [`WindowLayout::new`].
pub fn scsa2_netlist(width: usize, window: usize) -> Netlist {
    let layout = WindowLayout::new(width, window);
    let mut b = NetlistBuilder::new(format!("scsa2_{width}_k{window}"));
    let a_bus = b.input_bus("a", width);
    let b_bus = b.input_bus("b", width);
    let parts = build_windows(&mut b, &a_bus, &b_bus, &layout, WindowStyle::default());
    let selects0: Vec<Signal> = parts.iter().map(|p| p.cout0).collect();
    let (sum0, cout0) = select_spec(&mut b, &parts, &selects0);
    // Window 0 is not speculative: both chains leave it with G⁰.
    let selects1: Vec<Signal> = parts
        .iter()
        .enumerate()
        .map(|(i, p)| if i == 0 { p.cout0 } else { p.cout1 })
        .collect();
    let (sum1, cout1) = select_spec(&mut b, &parts, &selects1);
    b.output_bus("sum", &sum0);
    b.output_bit("cout", cout0);
    b.output_bus("sum1", &sum1);
    b.output_bit("cout1", cout1);
    b.finish()
}

/// The complete VLCSA 1 (Fig. 5.3): speculative path, `ERR` detector,
/// recovery stage and handshake bits.
///
/// Outputs: `sum`, `cout` (speculative), `err`, `valid`, `stall`,
/// `sum_rec`, `cout_rec` (exact).
///
/// # Panics
///
/// Panics on the conditions of [`WindowLayout::new`].
pub fn vlcsa1_netlist(width: usize, window: usize) -> Netlist {
    let layout = WindowLayout::new(width, window);
    let mut b = NetlistBuilder::new(format!("vlcsa1_{width}_k{window}"));
    let a_bus = b.input_bus("a", width);
    let b_bus = b.input_bus("b", width);
    let parts = build_windows(&mut b, &a_bus, &b_bus, &layout, WindowStyle::default());
    let selects: Vec<Signal> = parts.iter().map(|p| p.cout0).collect();
    let (sum, cout) = select_spec(&mut b, &parts, &selects);
    b.output_bus("sum", &sum);
    b.output_bit("cout", cout);
    let err = err0_tree(&mut b, &parts);
    b.output_bit("err", err);
    let valid = b.inv(err);
    b.output_bit("valid", valid);
    b.output_bit("stall", err);
    let (sum_rec, cout_rec) = recovery(&mut b, &parts);
    b.output_bus("sum_rec", &sum_rec);
    b.output_bit("cout_rec", cout_rec);
    b.finish()
}

/// The complete VLCSA 2 (Fig. 6.8): both speculative results with output
/// steering, `ERR0`/`ERR1`, recovery and handshake bits.
///
/// Outputs: `sum`, `cout` (the *selected* speculative result:
/// `S*,1` when `ERR0` is raised, else `S*,0`), `err` (= `ERR0`), `err1`,
/// `valid`, `stall` (= `ERR0·ERR1`), `sum_rec`, `cout_rec`.
///
/// # Panics
///
/// Panics on the conditions of [`WindowLayout::new`].
pub fn vlcsa2_netlist(width: usize, window: usize) -> Netlist {
    let layout = WindowLayout::new(width, window);
    let mut b = NetlistBuilder::new(format!("vlcsa2_{width}_k{window}"));
    let a_bus = b.input_bus("a", width);
    let b_bus = b.input_bus("b", width);
    let parts = build_windows(&mut b, &a_bus, &b_bus, &layout, WindowStyle::default());
    let selects0: Vec<Signal> = parts.iter().map(|p| p.cout0).collect();
    let (sum0, cout0) = select_spec(&mut b, &parts, &selects0);
    // Window 0 is not speculative: both chains leave it with G⁰.
    let selects1: Vec<Signal> = parts
        .iter()
        .enumerate()
        .map(|(i, p)| if i == 0 { p.cout0 } else { p.cout1 })
        .collect();
    let (sum1, cout1) = select_spec(&mut b, &parts, &selects1);
    let err0 = err0_tree(&mut b, &parts);
    let err1 = err1_tree(&mut b, &parts);
    let sum = b.mux_bus(&sum0, &sum1, err0);
    let cout = b.mux2(cout0, cout1, err0);
    b.output_bus("sum", &sum);
    b.output_bit("cout", cout);
    // Observation taps for timing: the paper's clock constraint is
    // T_clk > max(τ*,0, τ*,1, T_ERR) (Sec. 6.7) — the output-steering mux
    // above overlaps with the output register and is not part of the
    // cycle. These buses let STA report the three stage arrivals.
    b.output_bus("spec0", &sum0);
    b.output_bus("spec1", &sum1);
    b.output_bit("err", err0);
    b.output_bit("err1", err1);
    let stall = b.and2(err0, err1);
    b.output_bit("stall", stall);
    let valid = b.inv(stall);
    b.output_bit("valid", valid);
    let (sum_rec, cout_rec) = recovery(&mut b, &parts);
    b.output_bus("sum_rec", &sum_rec);
    b.output_bit("cout_rec", cout_rec);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::{self, Selection};
    use crate::{Scsa, Scsa2};
    use bitnum::rng::Xoshiro256;
    use bitnum::UBig;
    use gatesim::{area, sim, sta};

    fn bit(out: &std::collections::HashMap<String, UBig>, name: &str) -> bool {
        out[name].bit(0)
    }

    #[test]
    fn scsa1_netlist_matches_behavioral() {
        let mut rng = Xoshiro256::seed_from_u64(61);
        for (n, k) in [(32usize, 8usize), (64, 14), (65, 9)] {
            let net = scsa1_netlist(n, k);
            let model = Scsa::new(n, k);
            for _ in 0..200 {
                let a = UBig::random(n, &mut rng);
                let b = UBig::random(n, &mut rng);
                let out = sim::simulate_ubig(&net, &[("a", &a), ("b", &b)]).unwrap();
                let spec = model.speculate(&a, &b);
                assert_eq!(out["sum"], spec.sum, "n={n} k={k}");
                assert_eq!(bit(&out, "cout"), spec.cout);
            }
        }
    }

    #[test]
    fn scsa2_netlist_matches_behavioral() {
        let mut rng = Xoshiro256::seed_from_u64(62);
        let (n, k) = (64usize, 13usize);
        let net = scsa2_netlist(n, k);
        let model = Scsa2::new(n, k);
        for _ in 0..300 {
            let a = UBig::random(n, &mut rng);
            let b = UBig::random(n, &mut rng);
            let out = sim::simulate_ubig(&net, &[("a", &a), ("b", &b)]).unwrap();
            let spec = model.speculate(&a, &b);
            assert_eq!(out["sum"], spec.sum0);
            assert_eq!(out["sum1"], spec.sum1);
            assert_eq!(bit(&out, "cout"), spec.cout0);
            assert_eq!(bit(&out, "cout1"), spec.cout1);
        }
    }

    #[test]
    fn vlcsa1_netlist_full_protocol() {
        let mut rng = Xoshiro256::seed_from_u64(63);
        let (n, k) = (64usize, 8usize); // small window: frequent errors
        let net = vlcsa1_netlist(n, k);
        let model = Scsa::new(n, k);
        let mut flagged = 0;
        for _ in 0..500 {
            let a = UBig::random(n, &mut rng);
            let b = UBig::random(n, &mut rng);
            let out = sim::simulate_ubig(&net, &[("a", &a), ("b", &b)]).unwrap();
            let (exact, exact_cout) = a.overflowing_add(&b);
            // Recovery output is always exact.
            assert_eq!(out["sum_rec"], exact);
            assert_eq!(bit(&out, "cout_rec"), exact_cout);
            // err matches the behavioral detector; valid/stall consistent.
            let want_err = detect::err0(&model.window_pg(&a, &b));
            assert_eq!(bit(&out, "err"), want_err);
            assert_eq!(bit(&out, "stall"), want_err);
            assert_eq!(bit(&out, "valid"), !want_err);
            if want_err {
                flagged += 1;
            } else {
                // Unflagged speculative output must be exact.
                assert_eq!(out["sum"], exact);
                assert_eq!(bit(&out, "cout"), exact_cout);
            }
        }
        assert!(flagged > 0, "k=8 should flag within 500 trials");
    }

    #[test]
    fn vlcsa2_netlist_full_protocol() {
        use workloads::dist::{Distribution, OperandSource};
        let (n, k) = (64usize, 13usize);
        let net = vlcsa2_netlist(n, k);
        let model = Scsa2::new(n, k);
        let mut src = OperandSource::new(Distribution::paper_gaussian(), n, 64);
        let mut spec1 = 0;
        for _ in 0..500 {
            let (a, b) = src.next_pair();
            let out = sim::simulate_ubig(&net, &[("a", &a), ("b", &b)]).unwrap();
            let (exact, exact_cout) = a.overflowing_add(&b);
            assert_eq!(out["sum_rec"], exact);
            assert_eq!(bit(&out, "cout_rec"), exact_cout);
            let selection = detect::select(&model.window_pg(&a, &b));
            match selection {
                Selection::Spec0 | Selection::Spec1 => {
                    assert!(bit(&out, "valid"));
                    assert!(!bit(&out, "stall"));
                    assert_eq!(out["sum"], exact, "selected spec must be exact");
                    assert_eq!(bit(&out, "cout"), exact_cout);
                    if selection == Selection::Spec1 {
                        spec1 += 1;
                    }
                }
                Selection::Recover => {
                    assert!(bit(&out, "stall"));
                    assert!(!bit(&out, "valid"));
                }
            }
        }
        assert!(spec1 > 50, "Gaussian inputs should exercise the S*,1 path");
    }

    #[test]
    fn delay_and_area_shapes_vs_kogge_stone() {
        // Fig. 7.2/7.3: SCSA 1 is substantially faster and smaller than a
        // full-width Kogge–Stone; Fig. 7.4: VLCSA 1 detection delay is
        // comparable to (not worse than) speculation.
        // Both designs go through the same delay-driven buffering pass the
        // experiments use (a raw SCSA select line drives every mux of its
        // window, which a synthesis run would always buffer).
        let n = 64;
        let k = 14;
        let tune = |net: &gatesim::Netlist| gatesim::opt::best_buffered(net, &[4, 8, 16]);
        let ks = tune(&adders::prefix::kogge_stone_adder(n));
        let scsa = tune(&scsa1_netlist(n, k));
        let t_ks = sta::analyze(&ks).critical_delay_tau();
        let t_scsa = sta::analyze(&scsa).output_arrival_tau("sum").unwrap();
        assert!(
            t_scsa < 0.9 * t_ks,
            "SCSA ({t_scsa:.0}) should be >10% faster than KS ({t_ks:.0})"
        );
        let a_ks = area::analyze(&ks).total_nand2();
        let a_scsa = area::analyze(&scsa).total_nand2();
        assert!(a_scsa < a_ks, "SCSA area {a_scsa:.0} vs KS {a_ks:.0}");

        let vlcsa = tune(&vlcsa1_netlist(n, k));
        let t = sta::analyze(&vlcsa);
        let spec = t.output_arrival_tau("sum").unwrap();
        let det = t.output_arrival_tau("err").unwrap();
        let rec = t.output_arrival_tau("sum_rec").unwrap();
        assert!(
            det < spec * 1.15,
            "detection ({det:.0}) ~ speculation ({spec:.0})"
        );
        let t_clk = spec.max(det);
        assert!(
            rec < 2.0 * t_clk,
            "recovery ({rec:.0}) within two cycles of {t_clk:.0}"
        );
    }
}

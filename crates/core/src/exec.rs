//! Sharded multi-core execution of any [`Engine`] over a [`WideSlab`]
//! workload.
//!
//! The bit-sliced kernels process one lane word (64 or 256 lanes, see
//! [`Word`]) per word operation on one thread; this module scales them
//! across cores. A [`WideSlab`] workload
//! is split into contiguous per-thread shards of whole chunks, each shard
//! runs the engine's `add_batch` chunk by chunk on its own scoped thread
//! (`std::thread::scope` — no extra dependencies, no detached threads),
//! and the per-chunk [`BatchOutcome`]s are merged **in chunk order**, so
//! the merged result is bit-identical whatever the thread count. The
//! determinism is pinned by `one_thread_equals_many` in this module's
//! tests and re-checked over the full small-width input space by the
//! registry-driven exhaustive suite.
//!
//! # Example
//!
//! ```
//! use vlcsa::engine::Registry;
//! use vlcsa::exec::Executor;
//! use workloads::dist::{Distribution, OperandSource};
//!
//! let registry = Registry::for_width(64);
//! let engine = registry.get("carry-select").unwrap();
//! let mut src = OperandSource::new(Distribution::UnsignedUniform, 64, 1);
//! let (a, b) = src.next_wide(200); // 4 chunks of 64/64/64/8 lanes
//! let out = Executor::new(4).run(engine, &a, &b);
//! assert_eq!(out.lanes(), 200);
//! assert_eq!(out.sum.lane(137), a.lane(137).wrapping_add(&b.lane(137)));
//! ```

use bitnum::batch::{DefaultWord, WideSlab, Word};

use crate::batch::BatchOutcome;
use crate::engine::Engine;

/// The merged outcome of one sharded wide addition: exact sums for every
/// lane plus per-chunk carry-out and stall words.
///
/// Lane `l` of the workload lives in chunk `l / W::LANES` at bit
/// `l % W::LANES` of that chunk's words — the same addressing as
/// [`WideSlab`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WideOutcome<W: Word = DefaultWord> {
    /// The (always exact) sums.
    pub sum: WideSlab<W>,
    /// Per-chunk carry-out words, chunk 0 first.
    pub cout: Vec<W>,
    /// Per-chunk stall words: bit `l` of word `c` set iff lane
    /// `c * W::LANES + l` took the 2-cycle recovery path.
    pub flagged: Vec<W>,
}

impl<W: Word> WideOutcome<W> {
    /// Number of lanes in the workload.
    pub fn lanes(&self) -> usize {
        self.sum.lanes()
    }

    /// Whether lane `l` carried out of the most significant bit.
    ///
    /// # Panics
    ///
    /// Panics if `l >= lanes()`.
    pub fn cout(&self, l: usize) -> bool {
        assert!(l < self.lanes(), "lane {l} out of range");
        self.cout[l / W::LANES].bit(l % W::LANES)
    }

    /// Cycles lane `l` consumed: 1 (speculation accepted) or 2 (recovery).
    ///
    /// # Panics
    ///
    /// Panics if `l >= lanes()`.
    pub fn cycles(&self, l: usize) -> u8 {
        assert!(l < self.lanes(), "lane {l} out of range");
        1 + self.flagged[l / W::LANES].bit(l % W::LANES) as u8
    }

    /// Number of lanes that stalled for recovery.
    pub fn stalls(&self) -> u64 {
        self.flagged
            .iter()
            .map(|&w| u64::from(w.count_ones()))
            .sum()
    }

    /// Total cycles across all lanes (`lanes + stalls`).
    pub fn total_cycles(&self) -> u64 {
        self.lanes() as u64 + self.stalls()
    }

    /// Fraction of lanes that stalled.
    pub fn stall_rate(&self) -> f64 {
        self.stalls() as f64 / self.lanes() as f64
    }
}

/// A sharded executor: runs any [`Engine`] over [`WideSlab`] workloads
/// with a fixed worker-thread count.
///
/// ```
/// use vlcsa::exec::Executor;
/// assert_eq!(Executor::new(4).threads(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    threads: usize,
}

impl Executor {
    /// Creates an executor with `threads` worker threads. One thread means
    /// inline execution (no spawning) — by the determinism guarantee, the
    /// result of any other thread count is identical.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "an executor needs at least one thread");
        Self { threads }
    }

    /// An executor sized to the host (`std::thread::available_parallelism`,
    /// falling back to 1 when the host cannot say).
    pub fn host_sized() -> Self {
        Self::new(std::thread::available_parallelism().map_or(1, usize::from))
    }

    /// The worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `engine` over every lane of `a + b`, sharded across the
    /// executor's threads, and merges the per-chunk outcomes in chunk
    /// order. The merged result is deterministic: identical sums, carry
    /// words, stall words and therefore aggregate statistics for every
    /// thread count, including 1.
    ///
    /// Threads are spawned only when there is enough work for more than
    /// one shard: a single-chunk workload (at most one lane word's worth
    /// of lanes) always runs inline on the calling thread. The zero-lane case cannot reach here at all —
    /// [`WideSlab`] holds at least one lane, and a batching window that
    /// expires with no requests drains to no groups
    /// ([`GroupBuilder::drain`](crate::group::GroupBuilder::drain) returns
    /// an empty vector), so a 0-request expiry never constructs a slab,
    /// never calls `run`, and never spawns a thread.
    ///
    /// # Panics
    ///
    /// Panics if the slabs disagree with the engine width or with each
    /// other's lane count.
    pub fn run<W: Word>(
        &self,
        engine: &dyn Engine<W>,
        a: &WideSlab<W>,
        b: &WideSlab<W>,
    ) -> WideOutcome<W> {
        assert_eq!(a.width(), engine.width(), "operand slab width mismatch");
        assert_eq!(b.width(), engine.width(), "operand slab width mismatch");
        assert_eq!(a.lanes(), b.lanes(), "operand slab lane count mismatch");
        let chunk_count = a.chunks().len();
        let mut outcomes: Vec<Option<BatchOutcome<W>>> = vec![None; chunk_count];
        let workers = self.threads.min(chunk_count);
        if workers <= 1 {
            for (slot, (ca, cb)) in outcomes.iter_mut().zip(a.chunks().iter().zip(b.chunks())) {
                *slot = Some(engine.add_batch(ca, cb));
            }
        } else {
            // Contiguous shards of whole chunks; each shard fills its own
            // slice of the outcome table, so the merge below reads pure
            // chunk order and never observes scheduling. Shard 0 runs on
            // the calling thread — a serve lane worker contributes its own
            // core instead of parking in `scope` while `threads` children
            // do all the work, so N configured threads spawn N-1.
            let shard = chunk_count.div_ceil(workers);
            let run_shard = |base: usize, slots: &mut [Option<BatchOutcome<W>>]| {
                for (off, slot) in slots.iter_mut().enumerate() {
                    let i = base + off;
                    *slot = Some(engine.add_batch(&a.chunks()[i], &b.chunks()[i]));
                }
            };
            std::thread::scope(|scope| {
                let mut shards = outcomes.chunks_mut(shard).enumerate();
                let first = shards.next().expect("workers > 1 implies chunks > 1");
                for (t, slots) in shards {
                    let base = t * shard;
                    scope.spawn(move || run_shard(base, slots));
                }
                run_shard(0, first.1);
            });
        }
        let mut chunks = Vec::with_capacity(chunk_count);
        let mut cout = Vec::with_capacity(chunk_count);
        let mut flagged = Vec::with_capacity(chunk_count);
        for outcome in outcomes {
            let outcome = outcome.expect("every chunk was assigned to a shard");
            chunks.push(outcome.sum);
            cout.push(outcome.cout);
            flagged.push(outcome.flagged);
        }
        WideOutcome {
            sum: WideSlab::from_chunks(chunks),
            cout,
            flagged,
        }
    }

    /// The contiguous chunk ranges [`Executor::run`] assigns to each
    /// thread for a workload of `chunk_count` chunks — exposed so scaling
    /// harnesses (the `throughput` bench) can time per-shard work with the
    /// exact production partition.
    pub fn shard_ranges(&self, chunk_count: usize) -> Vec<std::ops::Range<usize>> {
        let workers = self.threads.min(chunk_count).max(1);
        let shard = chunk_count.div_ceil(workers);
        (0..workers)
            .map(|t| (t * shard).min(chunk_count)..((t + 1) * shard).min(chunk_count))
            .filter(|r| !r.is_empty())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Registry;
    use workloads::dist::{Distribution, OperandSource};

    #[test]
    fn one_thread_equals_many() {
        // The determinism contract: identical merged outcomes (sums, carry
        // words, stall words — hence all stats) for 1 vs N threads, for
        // every engine, on a workload that does not divide evenly.
        let registry = Registry::for_width(64);
        let mut src = OperandSource::new(Distribution::paper_gaussian(), 64, 42);
        let (a, b) = src.next_wide(250); // chunks of 64/64/64/58
        for engine in registry.engines() {
            let serial = Executor::new(1).run(engine.as_ref(), &a, &b);
            for threads in [2usize, 3, 4, 8, 32] {
                let sharded = Executor::new(threads).run(engine.as_ref(), &a, &b);
                assert_eq!(serial, sharded, "{} at {threads} threads", engine.name());
            }
        }
    }

    #[test]
    fn merged_lanes_are_exact_and_cycles_match_scalar() {
        let registry = Registry::for_width(64);
        let mut src = OperandSource::new(Distribution::paper_gaussian(), 64, 9);
        let (a, b) = src.next_wide(100);
        for engine in registry.engines() {
            let out = Executor::new(3).run(engine.as_ref(), &a, &b);
            assert_eq!(out.lanes(), 100);
            assert_eq!(out.total_cycles(), 100 + out.stalls());
            for l in 0..100 {
                let one = engine.add_one(&a.lane(l), &b.lane(l));
                assert_eq!(out.sum.lane(l), one.sum, "{} lane {l}", engine.name());
                assert_eq!(out.cout(l), one.cout, "{} lane {l}", engine.name());
                assert_eq!(out.cycles(l), one.cycles, "{} lane {l}", engine.name());
            }
        }
    }

    #[test]
    fn more_threads_than_chunks() {
        let registry = Registry::for_width(32);
        let engine = registry.get("vlcsa1").unwrap();
        let mut src = OperandSource::new(Distribution::UnsignedUniform, 32, 2);
        let (a, b) = src.next_wide(10); // a single chunk
        let out = Executor::new(16).run(engine, &a, &b);
        assert_eq!(out.lanes(), 10);
        assert_eq!(out, Executor::new(1).run(engine, &a, &b));
    }

    #[test]
    fn shard_ranges_cover_exactly() {
        for (threads, chunks) in [(1usize, 5usize), (2, 5), (4, 5), (8, 3), (3, 12)] {
            let ranges = Executor::new(threads).shard_ranges(chunks);
            let mut covered = vec![false; chunks];
            for r in &ranges {
                for i in r.clone() {
                    assert!(!covered[i], "chunk {i} covered twice");
                    covered[i] = true;
                }
            }
            assert!(
                covered.iter().all(|&c| c),
                "threads={threads} chunks={chunks}"
            );
            assert!(ranges.len() <= threads);
        }
    }

    #[test]
    fn host_sized_executor_runs() {
        let registry = Registry::for_width(16);
        let engine = registry.get("ripple").unwrap();
        let mut src = OperandSource::new(Distribution::UnsignedUniform, 16, 8);
        let (a, b) = src.next_wide(65);
        let out = Executor::host_sized().run(engine, &a, &b);
        assert_eq!(out.lanes(), 65);
        assert_eq!(out.stalls(), 0);
    }
}

//! Error-magnitude analysis (Ch. 3.3).
//!
//! When SCSA errs, all outputs of one window are off together, so the
//! numerical error is a single unit at the window boundary — a *relative*
//! error around `2^-(k-1)` of the result. Bit-level speculation (the VLSA
//! baseline) can instead flip the most significant bit alone, a relative
//! error up to ~50%. The accumulator below measures that contrast (used by
//! the error-tolerant example and the magnitude ablation experiment).

use bitnum::UBig;

/// Running statistics over relative error magnitudes.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MagnitudeStats {
    errors: u64,
    total: u64,
    sum: f64,
    max: f64,
}

impl MagnitudeStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one speculation: `spec` against the `exact` result. Returns
    /// the relative magnitude if the speculation was wrong.
    ///
    /// The magnitude is `|spec − exact| / exact` (the paper's definition);
    /// for an exact result of zero the magnitude is counted as 1.
    pub fn record(&mut self, spec: &UBig, exact: &UBig) -> Option<f64> {
        self.total += 1;
        if spec == exact {
            return None;
        }
        self.errors += 1;
        let diff = if spec > exact {
            spec.wrapping_sub(exact)
        } else {
            exact.wrapping_sub(spec)
        };
        let denom = exact.to_f64();
        let mag = if denom == 0.0 {
            1.0
        } else {
            diff.to_f64() / denom
        };
        self.sum += mag;
        self.max = self.max.max(mag);
        Some(mag)
    }

    /// Number of wrong speculations recorded.
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// Number of speculations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean relative magnitude over the *errors* (0.0 if none).
    pub fn mean(&self) -> f64 {
        if self.errors == 0 {
            0.0
        } else {
            self.sum / self.errors as f64
        }
    }

    /// Largest relative magnitude observed.
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OverflowMode, Scsa};
    use bitnum::rng::Xoshiro256;

    #[test]
    fn paper_example_3_3() {
        // Correct 11001, speculative 10001: magnitude 01000/11001 = 0.32.
        let mut stats = MagnitudeStats::new();
        let exact = UBig::from_u128(0b11001, 5);
        let spec = UBig::from_u128(0b10001, 5);
        let mag = stats.record(&spec, &exact).unwrap();
        assert!((mag - 8.0 / 25.0).abs() < 1e-12);
        assert_eq!(stats.errors(), 1);
    }

    #[test]
    fn correct_speculations_do_not_count() {
        let mut stats = MagnitudeStats::new();
        let v = UBig::from_u128(7, 8);
        assert!(stats.record(&v, &v).is_none());
        assert_eq!(stats.errors(), 0);
        assert_eq!(stats.total(), 1);
        assert_eq!(stats.mean(), 0.0);
    }

    #[test]
    fn scsa_errors_have_small_magnitude() {
        // Ch. 3.3's claim: SCSA errors are low-magnitude because a missing
        // inter-window carry is one unit at a window boundary. Like the
        // paper's analysis we consider non-overflowing additions (when the
        // true sum wraps, "relative error" loses meaning: the exact result
        // can be arbitrarily close to zero).
        let scsa = Scsa::new(64, 8);
        let mut rng = Xoshiro256::seed_from_u64(41);
        let mut stats = MagnitudeStats::new();
        for _ in 0..300_000 {
            let a = UBig::random(64, &mut rng);
            let b = UBig::random(64, &mut rng);
            let (exact, overflowed) = a.overflowing_add(&b);
            if overflowed {
                continue;
            }
            if scsa.is_error(&a, &b, OverflowMode::Truncate) {
                let spec = scsa.speculate(&a, &b);
                let mag = stats
                    .record(&spec.sum, &exact)
                    .expect("is_error says wrong");
                // A missing carry is one unit at a window boundary the
                // exact sum also contains, so each magnitude is <= 1.
                assert!(mag <= 1.0 + 1e-9, "magnitude {mag}");
            }
        }
        assert!(stats.errors() > 20, "need errors to measure");
        // Far below the ~50% of an MSB-flipping bit-speculation error.
        assert!(stats.mean() < 0.1, "mean magnitude {}", stats.mean());
    }
}

//! Speculative carry select addition and reliable variable-latency adders.
//!
//! This crate implements the contribution of *High Performance Reliable
//! Variable Latency Carry Select Addition* (Du, Rice University, 2011 /
//! DATE 2012):
//!
//! * **SCSA 1** ([`Scsa`]) — the input bits are segmented into ⌈n/k⌉
//!   windows; the carry into each window is *speculated* as the previous
//!   window's group generate (its own carry-in truncated to 0). Each window
//!   is a carry-select structure, so the critical path is a k-bit adder
//!   plus one multiplexer: `O(log k)` instead of `O(log n)` (Ch. 3–4).
//! * **Analytical error model** ([`model`]) — eq. 3.13 plus an exact
//!   window-level Markov model, and the window-size solvers that reproduce
//!   Tables 7.3/7.4.
//! * **VLCSA 1** ([`Vlcsa1`]) — SCSA 1 plus error detection
//!   (`ERR = ∨ P^{i+1}·G^i`, Fig. 5.1) and error recovery (an ⌈n/k⌉-bit
//!   prefix adder over the window group-P/G signals, Fig. 5.2): a reliable
//!   adder with 1-cycle fast path and 2-cycle recovery (Ch. 5).
//! * **SCSA 2 / VLCSA 2** ([`Scsa2`], [`Vlcsa2`]) — the modification for
//!   two's-complement Gaussian (practical) inputs: a second speculative
//!   result selected by the previous window's carry-out *assuming carry-in
//!   1*, plus a second detection signal `ERR1 = ∨ P^i·¬P^{i+1}` that
//!   recognizes MSB-reaching chains as correctable (Ch. 6).
//! * **Gate-level netlists** ([`netlist`]) — the complete datapaths
//!   (window carry-select adders, detection trees, recovery prefix adder,
//!   output steering) whose delay/area the Ch. 7 experiments measure.
//!
//! # Quick start
//!
//! ```
//! use bitnum::UBig;
//! use vlcsa::{Vlcsa1, OverflowMode};
//!
//! // 64-bit VLCSA 1 with the paper's window size for a 0.01% error rate.
//! let adder = Vlcsa1::new(64, 14);
//! let a = UBig::from_u128(0x1234_5678_9abc_def0, 64);
//! let b = UBig::from_u128(0x0fed_cba9_8765_4321, 64);
//! let outcome = adder.add(&a, &b);
//! assert_eq!(outcome.sum, a.wrapping_add(&b)); // always exact
//! assert!(outcome.cycles == 1 || outcome.cycles == 2);
//! # let _ = OverflowMode::Truncate;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod detect;
pub mod engine;
pub mod exec;
pub mod group;
pub mod magnitude;
pub mod model;
pub mod multiop;
pub mod netlist;
pub mod pipeline;
pub mod program;
pub mod route;
mod scsa;
mod scsa2;
mod vlcsa1;
mod vlcsa2;
pub mod window;

pub use batch::{Batch2Spec, BatchOutcome, BatchSpec, WindowPgWords};
pub use engine::{Engine, EngineLookupError, FixedLatency, Registry, VlsaBaseline};
pub use exec::{Executor, WideOutcome};
pub use group::{GroupBuilder, IssueGroup};
pub use program::{Operand, Program, ProgramError, ProgramOutcome};
pub use route::{RouteConfig, Router, AUTO_ENGINE};
pub use scsa::{Scsa, SpecResult, WindowPg};
pub use scsa2::{Scsa2, Spec2Result};
pub use vlcsa1::{AddOutcome, LatencyStats, Vlcsa1};
pub use vlcsa2::Vlcsa2;

/// How the adder treats the carry out of the most significant bit.
///
/// The paper's synthesized adders produce an `n`-bit sum (the carry-out is
/// unused), and Tables 7.3/7.4 are consistent with that accounting; the
/// literal eq. 3.13 counts one extra term corresponding to a wrong
/// carry-out. Both accountings are supported and documented in
/// EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OverflowMode {
    /// `n`-bit wrap-around sum; the carry-out is not part of the result.
    #[default]
    Truncate,
    /// The carry-out is part of the result (an `n+1`-bit adder).
    CarryOut,
}

//! Error detection signals (Ch. 5.1 and 6.6).
//!
//! Both detectors are pure combinations of the window group signals the
//! speculative adder already computes:
//!
//! * `ERR0 = ∨_{0 ≤ i < m−1} P^{i+1} · G^i` — window `i` generates and
//!   window `i+1` fully propagates, so the generate would have to reach the
//!   window after next: SCSA 1's speculation is (potentially) wrong. This
//!   is a *sound overestimate*: every real error is flagged (eq. 5.1).
//! * `ERR1 = ∨_{0 ≤ i < m−1} P^i · ¬P^{i+1}` — some propagating window is
//!   followed by a non-propagating one, i.e. a chain dies before the MSB.
//!   When `ERR0 = 1` but `ERR1 = 0`, the offending chain runs to the MSB
//!   and the second speculative result `S*,1` is exact (Ch. 6.6).

use bitnum::batch::Word;

use crate::batch::WindowPgWords;
use crate::scsa::WindowPg;

/// `ERR0` (the paper's `ERR` of VLCSA 1): flags when a generate abuts a
/// fully propagating window.
pub fn err0(windows: &[WindowPg]) -> bool {
    windows.windows(2).any(|w| w[0].g && w[1].p)
}

/// `ERR1` of VLCSA 2: flags when some propagate run dies before reaching
/// the most significant window.
///
/// The pair `(0, 1)` is excluded: window 0 is *not speculative* — its
/// carry-in is the architectural carry-in 0, so `S*,1` steers window 1
/// with the true carry-out `G⁰` (see [`crate::Scsa2`]) and a propagate run
/// confined to window 0 can never invalidate `S*,1`. This matters when the
/// remainder-sized LSB window is small (e.g. 2 bits at `n = 512, k = 17`,
/// where `P⁰ = 1` on a quarter of all inputs).
pub fn err1(windows: &[WindowPg]) -> bool {
    windows.len() >= 3 && windows[1..].windows(2).any(|w| w[0].p && !w[1].p)
}

/// Vectorized `ERR0`: evaluates [`err0`] for a whole lane word at once on
/// the batched group-signal words — one AND + OR per window pair,
/// whatever the lane word width.
///
/// ```
/// use bitnum::batch::{BitSlab, Word};
/// use bitnum::UBig;
/// use vlcsa::{detect, Scsa};
///
/// let scsa = Scsa::new(32, 8);
/// // Lane 1 is the classic error pattern (generate then full propagate);
/// // lane 0 is carry-free.
/// let a: BitSlab = BitSlab::from_lanes(&[UBig::from_u128(1, 32), UBig::from_u128(0xff80, 32)]);
/// let b = BitSlab::from_lanes(&[UBig::from_u128(2, 32), UBig::from_u128(0x0080, 32)]);
/// let err = detect::err0_word(&scsa.window_pg_batch(&a, &b));
/// assert_eq!(err.limb(0), 0b10);
/// ```
pub fn err0_word<W: Word>(windows: &[WindowPgWords<W>]) -> W {
    windows
        .windows(2)
        .fold(W::ZERO, |acc, w| acc | (w[0].g & w[1].p))
}

/// Vectorized `ERR1`: evaluates [`err1`] per lane on the batched
/// group-signal words, with the same window-pair `(0, 1)` exclusion as the
/// scalar detector.
///
/// ```
/// use bitnum::batch::{BitSlab, Word};
/// use bitnum::UBig;
/// use vlcsa::{detect, Scsa2};
///
/// let scsa2 = Scsa2::new(64, 13);
/// // Small positive + small negative: the chain reaches the MSB, so ERR0
/// // flags but ERR1 stays low and S*,1 is accepted — on every lane.
/// let a: BitSlab = BitSlab::from_lanes(&vec![UBig::from_u128(100, 64); 2]);
/// let b = BitSlab::from_lanes(&vec![UBig::from_i128(-3, 64); 2]);
/// let pgs = scsa2.window_pg_batch(&a, &b);
/// assert_eq!(detect::err0_word(&pgs).limb(0), 0b11);
/// assert!(detect::err1_word(&pgs).is_zero());
/// ```
pub fn err1_word<W: Word>(windows: &[WindowPgWords<W>]) -> W {
    if windows.len() < 3 {
        return W::ZERO;
    }
    // `p` words never carry bits beyond the lane mask, so `w[0].p & !w[1].p`
    // stays masked — per limb.
    windows[1..]
        .windows(2)
        .fold(W::ZERO, |acc, w| acc | (w[0].p & !w[1].p))
}

/// The VLCSA 2 selection decision (Ch. 6.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Selection {
    /// `ERR0 = 0`: `S*,0` is correct.
    Spec0,
    /// `ERR0 = 1, ERR1 = 0`: the chain reaches the MSB; `S*,1` is correct.
    Spec1,
    /// `ERR0 = 1, ERR1 = 1`: stall and recover.
    Recover,
}

/// Evaluates both detectors and returns the selection.
pub fn select(windows: &[WindowPg]) -> Selection {
    if !err0(windows) {
        Selection::Spec0
    } else if !err1(windows) {
        Selection::Spec1
    } else {
        Selection::Recover
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OverflowMode, Scsa, Scsa2};
    use bitnum::rng::Xoshiro256;
    use bitnum::UBig;

    fn wpg(p: bool, g: bool) -> WindowPg {
        WindowPg { p, g, gp: p || g }
    }

    #[test]
    fn err0_truth_table() {
        // G then P (ascending significance) flags.
        assert!(err0(&[wpg(false, true), wpg(true, false)]));
        // P then G does not.
        assert!(!err0(&[wpg(true, false), wpg(false, true)]));
        // Single window never flags.
        assert!(!err0(&[wpg(true, true)]));
        assert!(!err0(&[]));
    }

    #[test]
    fn err1_truth_table() {
        // A propagating window (above window 0) followed by a
        // non-propagating one flags.
        assert!(err1(&[
            wpg(false, true),
            wpg(true, false),
            wpg(false, false)
        ]));
        // Upward-closed propagate set (over windows >= 1) does not flag.
        assert!(!err1(&[
            wpg(false, true),
            wpg(true, false),
            wpg(true, false)
        ]));
        // The pair (0, 1) is excluded: window 0 is not speculative, so a
        // run confined to it cannot invalidate S*,1.
        assert!(!err1(&[
            wpg(true, false),
            wpg(false, false),
            wpg(false, false)
        ]));
        assert!(!err1(&[wpg(true, false), wpg(false, false)]));
        assert!(!err1(&[wpg(true, true)]));
    }

    #[test]
    fn err0_is_sound_for_scsa1_uniform() {
        // No false negatives on 50k uniform trials.
        let scsa = Scsa::new(64, 8);
        let mut rng = Xoshiro256::seed_from_u64(17);
        let mut errors = 0;
        for _ in 0..50_000 {
            let a = UBig::random(64, &mut rng);
            let b = UBig::random(64, &mut rng);
            if scsa.is_error(&a, &b, OverflowMode::Truncate) {
                errors += 1;
                assert!(err0(&scsa.window_pg(&a, &b)), "missed error {a} + {b}");
            }
        }
        assert!(errors > 10, "expected some errors at k=8");
    }

    #[test]
    fn selection_spec1_implies_sum1_exact() {
        // The Ch. 6.6 case analysis: ERR0=1 ∧ ERR1=0 ⇒ S*,1 exact.
        use workloads::dist::{Distribution, OperandSource};
        let scsa2 = Scsa2::new(64, 13);
        let mut src = OperandSource::new(Distribution::paper_gaussian(), 64, 23);
        let mut spec1_hits = 0;
        for _ in 0..20_000 {
            let (a, b) = src.next_pair();
            let pgs = scsa2.window_pg(&a, &b);
            if select(&pgs) == Selection::Spec1 {
                spec1_hits += 1;
                let spec = scsa2.speculate(&a, &b);
                assert_eq!(spec.sum1, a.wrapping_add(&b), "S*,1 wrong for {a} + {b}");
            }
        }
        // ~25% of Gaussian pairs take the S*,1 path.
        assert!(spec1_hits > 2_000, "spec1 path hits {spec1_hits}");
    }

    #[test]
    fn detectors_are_sound_for_scsa2() {
        // select() != Recover must imply the selected result is exact —
        // on uniform AND Gaussian inputs.
        use workloads::dist::{Distribution, OperandSource};
        for dist in [
            Distribution::UnsignedUniform,
            Distribution::paper_gaussian(),
        ] {
            let scsa2 = Scsa2::new(64, 9);
            let mut src = OperandSource::new(dist, 64, 31);
            for _ in 0..20_000 {
                let (a, b) = src.next_pair();
                let pgs = scsa2.window_pg(&a, &b);
                let spec = scsa2.speculate(&a, &b);
                let exact = a.wrapping_add(&b);
                match select(&pgs) {
                    Selection::Spec0 => assert_eq!(spec.sum0, exact),
                    Selection::Spec1 => assert_eq!(spec.sum1, exact),
                    Selection::Recover => {}
                }
            }
        }
    }
}

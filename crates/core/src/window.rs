//! Window segmentation (Ch. 4, Fig. 4.1).
//!
//! An `n`-bit adder is segmented into `m = ⌈n/k⌉` windows. When `k` does
//! not divide `n`, the remainder-sized window (`n − k·(m−1)` bits) is
//! placed at the **least-significant** end — the paper adopts the
//! carry-select optimization of putting the small block first so its late
//! select signal lines up with the other blocks' mux chains.

/// The window decomposition of an adder.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WindowLayout {
    width: usize,
    window: usize,
    /// (lo, len) per window, LSB window first.
    bounds: Vec<(usize, usize)>,
}

impl WindowLayout {
    /// Segments `width` bits into windows of size `window` (the first,
    /// least-significant window absorbs the remainder).
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`, `window == 0`, or `window > 63` (the
    /// behavioral kernels pack windows into `u64` words; the paper never
    /// uses windows above 21 bits).
    pub fn new(width: usize, window: usize) -> Self {
        assert!(width >= 1, "width must be >= 1");
        assert!((1..=63).contains(&window), "window size must be in 1..=63");
        let count = width.div_ceil(window);
        let first = width - window * (count - 1);
        let mut bounds = Vec::with_capacity(count);
        bounds.push((0, first));
        let mut lo = first;
        for _ in 1..count {
            bounds.push((lo, window));
            lo += window;
        }
        debug_assert_eq!(lo, width);
        Self {
            width,
            window,
            bounds,
        }
    }

    /// Total adder width `n`.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Nominal window size `k`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of windows `m = ⌈n/k⌉`.
    pub fn count(&self) -> usize {
        self.bounds.len()
    }

    /// `(lo, len)` of window `i` (window 0 is least significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= count()`.
    pub fn bounds(&self, i: usize) -> (usize, usize) {
        self.bounds[i]
    }

    /// Iterates over `(lo, len)` pairs, LSB window first.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.bounds.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_division() {
        let l = WindowLayout::new(64, 16);
        assert_eq!(l.count(), 4);
        assert_eq!(l.bounds(0), (0, 16));
        assert_eq!(l.bounds(3), (48, 16));
    }

    #[test]
    fn remainder_goes_first() {
        // 64 = 14*4 + 8: first window 8 bits, then four 14-bit windows.
        let l = WindowLayout::new(64, 14);
        assert_eq!(l.count(), 5);
        assert_eq!(l.bounds(0), (0, 8));
        for i in 1..5 {
            assert_eq!(l.bounds(i).1, 14);
        }
        let covered: usize = l.iter().map(|(_, len)| len).sum();
        assert_eq!(covered, 64);
    }

    #[test]
    fn windows_tile_the_width() {
        for width in [1usize, 7, 32, 63, 64, 65, 100, 512] {
            for window in [1usize, 3, 13, 17, 63] {
                let l = WindowLayout::new(width, window);
                let mut expected_lo = 0;
                for (i, (lo, len)) in l.iter().enumerate() {
                    assert_eq!(lo, expected_lo, "width {width} window {window} i {i}");
                    assert!(len >= 1 && len <= window);
                    if i > 0 {
                        assert_eq!(len, window, "only window 0 may be short");
                    }
                    expected_lo += len;
                }
                assert_eq!(expected_lo, width);
                assert_eq!(l.count(), width.div_ceil(window));
            }
        }
    }

    #[test]
    fn single_window_when_k_ge_n() {
        let l = WindowLayout::new(10, 32);
        assert_eq!(l.count(), 1);
        assert_eq!(l.bounds(0), (0, 10));
    }
}

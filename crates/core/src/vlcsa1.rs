//! VLCSA 1 — the reliable variable-latency carry select adder (Ch. 5).
//!
//! One cycle when the detector stays quiet (the overwhelmingly common
//! case), two cycles when it flags and the recovery prefix adder produces
//! the exact result. The output is **always** exact — the crate's central
//! reliability invariant, enforced by tests and a debug assertion.

use bitnum::UBig;

use crate::detect;
use crate::scsa::Scsa;
use crate::window::WindowLayout;

/// The outcome of one variable-latency addition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddOutcome {
    /// The (always exact) sum.
    pub sum: UBig,
    /// The (always exact) carry-out.
    pub cout: bool,
    /// Cycles consumed: 1 (speculation accepted) or 2 (recovery).
    pub cycles: u8,
    /// Whether error detection flagged (`STALL`).
    pub flagged: bool,
}

/// Latency bookkeeping across many operations (eq. 5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyStats {
    ops: u64,
    stalls: u64,
}

impl LatencyStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one outcome.
    pub fn record(&mut self, outcome: &AddOutcome) {
        self.ops += 1;
        if outcome.cycles > 1 {
            self.stalls += 1;
        }
    }

    /// Operations recorded.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Operations that stalled for recovery.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Observed stall (nominal error) rate.
    pub fn stall_rate(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.stalls as f64 / self.ops as f64
        }
    }

    /// Average cycles per addition: `1 + P_err` (eq. 5.2's `T_ave / T_clk`).
    pub fn avg_cycles(&self) -> f64 {
        1.0 + self.stall_rate()
    }

    /// Average time per addition given the clock period (eq. 5.2:
    /// `T_ave = T_clk · (1 + P_err)`).
    pub fn avg_time(&self, t_clk: f64) -> f64 {
        t_clk * self.avg_cycles()
    }
}

/// A VLCSA 1 instance.
///
/// # Example
///
/// ```
/// use bitnum::UBig;
/// use vlcsa::{LatencyStats, Vlcsa1};
///
/// let adder = Vlcsa1::new(64, 14);
/// let mut stats = LatencyStats::new();
/// let outcome = adder.add(&UBig::from_u128(7, 64), &UBig::from_u128(9, 64));
/// stats.record(&outcome);
/// assert_eq!(outcome.sum.to_u128(), Some(16));
/// assert_eq!(stats.avg_cycles(), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vlcsa1 {
    scsa: Scsa,
}

impl Vlcsa1 {
    /// Creates a VLCSA 1 of the given width and window size.
    ///
    /// # Panics
    ///
    /// Panics on the conditions of [`WindowLayout::new`].
    pub fn new(width: usize, window: usize) -> Self {
        Self {
            scsa: Scsa::new(width, window),
        }
    }

    /// Adder width.
    pub fn width(&self) -> usize {
        self.scsa.width()
    }

    /// Window size `k`.
    pub fn window(&self) -> usize {
        self.scsa.window()
    }

    /// The window decomposition.
    pub fn layout(&self) -> &WindowLayout {
        self.scsa.layout()
    }

    /// The underlying speculative adder.
    pub fn scsa(&self) -> &Scsa {
        &self.scsa
    }

    /// One variable-latency addition.
    ///
    /// # Panics
    ///
    /// Panics if operand widths do not match the adder width.
    pub fn add(&self, a: &UBig, b: &UBig) -> AddOutcome {
        let pgs = self.scsa.window_pg(a, b);
        let flagged = detect::err0(&pgs);
        if flagged {
            // STALL: the recovery prefix adder over the window group P/G
            // produces the exact result in the second cycle.
            let (sum, cout) = a.overflowing_add(b);
            AddOutcome {
                sum,
                cout,
                cycles: 2,
                flagged,
            }
        } else {
            // VALID: the speculative result is provably exact here.
            let spec = self.scsa.speculate(a, b);
            debug_assert_eq!(spec.sum, a.wrapping_add(b), "reliability invariant");
            AddOutcome {
                sum: spec.sum,
                cout: spec.cout,
                cycles: 1,
                flagged,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitnum::rng::Xoshiro256;
    use workloads::dist::{Distribution, OperandSource};

    #[test]
    fn always_exact_on_uniform() {
        let adder = Vlcsa1::new(64, 6); // small window: frequent stalls
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut stats = LatencyStats::new();
        for _ in 0..50_000 {
            let a = UBig::random(64, &mut rng);
            let b = UBig::random(64, &mut rng);
            let outcome = adder.add(&a, &b);
            let (sum, cout) = a.overflowing_add(&b);
            assert_eq!(outcome.sum, sum);
            assert_eq!(outcome.cout, cout);
            stats.record(&outcome);
        }
        assert!(stats.stalls() > 0, "k=6 must stall sometimes");
        assert!(stats.avg_cycles() > 1.0 && stats.avg_cycles() < 1.5);
    }

    #[test]
    fn stall_rate_matches_nominal_model() {
        let adder = Vlcsa1::new(128, 9);
        let mut rng = Xoshiro256::seed_from_u64(5);
        let mut stats = LatencyStats::new();
        for _ in 0..200_000 {
            let a = UBig::random(128, &mut rng);
            let b = UBig::random(128, &mut rng);
            stats.record(&adder.add(&a, &b));
        }
        let nominal = crate::model::err0_rate_exact(128, 9);
        let sigma = (nominal / 200_000.0).sqrt();
        assert!(
            (stats.stall_rate() - nominal).abs() < 5.0 * sigma + 1e-6,
            "stall {} vs nominal {}",
            stats.stall_rate(),
            nominal
        );
    }

    #[test]
    fn gaussian_inputs_stall_a_quarter_of_the_time() {
        // Table 7.1: 25.01% at (64, 14) with sigma = 2^32.
        let adder = Vlcsa1::new(64, 14);
        let mut src = OperandSource::new(Distribution::paper_gaussian(), 64, 7);
        let mut stats = LatencyStats::new();
        for _ in 0..50_000 {
            let (a, b) = src.next_pair();
            let outcome = adder.add(&a, &b);
            assert_eq!(outcome.sum, a.wrapping_add(&b));
            stats.record(&outcome);
        }
        assert!(
            (0.22..0.28).contains(&stats.stall_rate()),
            "stall rate {}",
            stats.stall_rate()
        );
    }

    #[test]
    fn eq_5_2_average_time() {
        let mut stats = LatencyStats::new();
        let fast = AddOutcome {
            sum: UBig::zero(8),
            cout: false,
            cycles: 1,
            flagged: false,
        };
        let slow = AddOutcome {
            cycles: 2,
            flagged: true,
            ..fast.clone()
        };
        for _ in 0..99 {
            stats.record(&fast);
        }
        stats.record(&slow);
        assert!((stats.avg_cycles() - 1.01).abs() < 1e-12);
        assert!((stats.avg_time(2.0) - 2.02).abs() < 1e-12);
    }
}

//! SCSA 1 — speculative carry select addition (Ch. 3–4), behavioral model.
//!
//! The behavioral kernel is word-parallel: each window (≤ 63 bits) is
//! extracted into a `u64`, its two conditional sums and carry-outs are one
//! `u64` addition each, and the speculative carry into window `i` is the
//! previous window's carry-out with carry-in 0 — the group generate
//! `G^{i-1}` (eq. 3.8). This runs tens of millions of trials per second,
//! which is what the Ch. 7 Monte Carlo experiments need.

use bitnum::pg;
use bitnum::UBig;

use crate::window::WindowLayout;
use crate::OverflowMode;

/// Group signals of one window: everything the window adder computes about
/// its own bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowPg {
    /// Group propagate `P^i` (all bits propagate).
    pub p: bool,
    /// Group generate `G^i` — the carry-out assuming carry-in 0.
    pub g: bool,
    /// Carry-out assuming carry-in 1: `G^i ∨ P^i`. SCSA 1 discards this
    /// select signal; SCSA 2 uses it for the second speculative result.
    pub gp: bool,
}

/// The result of a speculative addition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecResult {
    /// The speculative sum.
    pub sum: UBig,
    /// The speculative carry-out of the most significant bit.
    pub cout: bool,
}

/// An SCSA 1 speculative adder instance.
///
/// # Example
///
/// ```
/// use bitnum::UBig;
/// use vlcsa::Scsa;
///
/// let scsa = Scsa::new(64, 14);
/// let a = UBig::from_u128(1000, 64);
/// let b = UBig::from_u128(2000, 64);
/// let spec = scsa.speculate(&a, &b);
/// assert_eq!(spec.sum.to_u128(), Some(3000));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scsa {
    layout: WindowLayout,
}

impl Scsa {
    /// Creates an SCSA 1 of the given width and window size.
    ///
    /// # Panics
    ///
    /// Panics on the conditions of [`WindowLayout::new`].
    pub fn new(width: usize, window: usize) -> Self {
        Self {
            layout: WindowLayout::new(width, window),
        }
    }

    /// Creates an SCSA 1 from an explicit layout.
    pub fn with_layout(layout: WindowLayout) -> Self {
        Self { layout }
    }

    /// Adder width.
    pub fn width(&self) -> usize {
        self.layout.width()
    }

    /// Window size `k`.
    pub fn window(&self) -> usize {
        self.layout.window()
    }

    /// The window decomposition.
    pub fn layout(&self) -> &WindowLayout {
        &self.layout
    }

    /// Computes the group `(P, G, G∨P)` signals of every window.
    ///
    /// # Panics
    ///
    /// Panics if operand widths do not match the adder width.
    pub fn window_pg(&self, a: &UBig, b: &UBig) -> Vec<WindowPg> {
        self.check(a, b);
        self.layout
            .iter()
            .map(|(lo, len)| {
                let aw = pg::extract_window_u64(a, lo, len);
                let bw = pg::extract_window_u64(b, lo, len);
                let s0 = aw + bw; // len <= 63: no u64 overflow
                let g = (s0 >> len) & 1 == 1;
                let gp = ((s0 + 1) >> len) & 1 == 1;
                WindowPg { p: g != gp, g, gp }
            })
            .collect()
    }

    /// The SCSA 1 speculative addition (eq. 3.8: every inter-window carry
    /// speculated as the previous window's group generate).
    pub fn speculate(&self, a: &UBig, b: &UBig) -> SpecResult {
        self.check(a, b);
        let mut sum = UBig::zero(self.width());
        let mut spec_cin = false; // window 0: the real carry-in, 0
        let mut cout = false;
        for (lo, len) in self.layout.iter() {
            let aw = pg::extract_window_u64(a, lo, len);
            let bw = pg::extract_window_u64(b, lo, len);
            let s = aw + bw + spec_cin as u64;
            sum.deposit_bits(lo, len, s);
            cout = (s >> len) & 1 == 1;
            // Next window's carry is speculated with THIS window's
            // carry-in truncated to 0.
            spec_cin = ((aw + bw) >> len) & 1 == 1;
        }
        SpecResult { sum, cout }
    }

    /// True iff the speculative result differs from the exact sum under
    /// the given overflow accounting.
    pub fn is_error(&self, a: &UBig, b: &UBig, mode: OverflowMode) -> bool {
        let spec = self.speculate(a, b);
        let (exact, exact_cout) = a.overflowing_add(b);
        spec.sum != exact || (mode == OverflowMode::CarryOut && spec.cout != exact_cout)
    }

    fn check(&self, a: &UBig, b: &UBig) {
        assert_eq!(a.width(), self.width(), "operand width mismatch");
        assert_eq!(b.width(), self.width(), "operand width mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitnum::rng::Xoshiro256;

    #[test]
    fn exact_when_no_window_crossing_chains() {
        let scsa = Scsa::new(32, 8);
        // Operands with no carries at all.
        let a = UBig::from_u128(0x5555_5555, 32);
        let b = UBig::from_u128(0x2222_2222, 32);
        assert!(!scsa.is_error(&a, &b, OverflowMode::CarryOut));
    }

    #[test]
    fn window_pg_matches_planes() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let scsa = Scsa::new(100, 13);
        for _ in 0..200 {
            let a = UBig::random(100, &mut rng);
            let b = UBig::random(100, &mut rng);
            let pgs = scsa.window_pg(&a, &b);
            let planes = bitnum::pg::PgPlanes::of(&a, &b);
            for (i, (lo, len)) in scsa.layout().iter().enumerate() {
                let (p, g) = planes.group_pg(lo, len);
                assert_eq!(pgs[i].p, p, "P window {i}");
                assert_eq!(pgs[i].g, g, "G window {i}");
                assert_eq!(pgs[i].gp, g || p, "G|P window {i}");
            }
        }
    }

    #[test]
    fn speculation_matches_windowed_reference() {
        // Reference: recompute each window with the previous window's
        // isolated carry-out via UBig arithmetic.
        let mut rng = Xoshiro256::seed_from_u64(4);
        for (n, k) in [(64usize, 14usize), (65, 9), (128, 15), (512, 17)] {
            let scsa = Scsa::new(n, k);
            for _ in 0..50 {
                let a = UBig::random(n, &mut rng);
                let b = UBig::random(n, &mut rng);
                let spec = scsa.speculate(&a, &b);
                let mut cin = false;
                for (lo, len) in scsa.layout().iter() {
                    let aw = a.extract(lo, len);
                    let bw = b.extract(lo, len);
                    let (sw, _) = aw.add_with_carry(&bw, cin);
                    assert_eq!(spec.sum.extract(lo, len), sw, "window at {lo}");
                    let (_, g) = aw.overflowing_add(&bw);
                    cin = g;
                }
            }
        }
    }

    #[test]
    fn error_iff_flagged_pattern_exists() {
        // The classic error pattern (Fig. 3.4): window i generates, window
        // i+1 fully propagates.
        let n = 32;
        let k = 8;
        let scsa = Scsa::new(n, k);
        // Window 0 generates: a= b= 0x80 in window 0 => carry out.
        // Window 1 all-propagate: a=0xff, b=0x00.
        let a = UBig::from_u128(0x00_00_ff_80, 32);
        let b = UBig::from_u128(0x00_00_00_80, 32);
        assert!(scsa.is_error(&a, &b, OverflowMode::Truncate));
        let spec = scsa.speculate(&a, &b);
        let exact = a.wrapping_add(&b);
        // Error magnitude is small: one unit at the window boundary.
        let diff = exact.wrapping_sub(&spec.sum);
        assert_eq!(diff.count_ones(), 1);
    }

    #[test]
    fn full_width_window_is_exact() {
        let scsa = Scsa::new(40, 40);
        let mut rng = Xoshiro256::seed_from_u64(5);
        for _ in 0..200 {
            let a = UBig::random(40, &mut rng);
            let b = UBig::random(40, &mut rng);
            assert!(!scsa.is_error(&a, &b, OverflowMode::CarryOut));
        }
    }

    #[test]
    fn error_rate_decreases_with_window_size() {
        let mut rng = Xoshiro256::seed_from_u64(6);
        let trials = 30_000;
        let mut rates = Vec::new();
        for k in [4usize, 8, 12] {
            let scsa = Scsa::new(64, k);
            let mut errors = 0;
            for _ in 0..trials {
                let a = UBig::random(64, &mut rng);
                let b = UBig::random(64, &mut rng);
                if scsa.is_error(&a, &b, OverflowMode::CarryOut) {
                    errors += 1;
                }
            }
            rates.push(errors as f64 / trials as f64);
        }
        assert!(rates[0] > rates[1] && rates[1] > rates[2], "{rates:?}");
    }
}

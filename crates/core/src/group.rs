//! Packing heterogeneous addition requests into per-engine issue groups.
//!
//! A serving front-end receives a stream of independent requests, each
//! naming an engine and a width and carrying its own operands. The batch
//! kernels, by contrast, want homogeneous [`WideSlab`] issue groups — one
//! engine, one width, as many lanes as arrived. [`GroupBuilder`] is the
//! adapter between the two shapes: requests of any mix are `push`ed in
//! arrival order, the builder buckets them by `(engine, width)`, and
//! [`GroupBuilder::drain`] transposes each bucket into an [`IssueGroup`]
//! whose `tags[l]` remembers which request became lane `l`, so whatever
//! routing token the caller attached (a connection handle, a sequence
//! number, a oneshot channel) comes back out aligned with the lane data of
//! [`Executor::run`](crate::exec::Executor::run).
//!
//! The empty-batch edge is explicit: a batching window that expires with
//! nothing pending drains to **no groups at all** — no slab is built, no
//! executor is invoked, no thread is spawned. `drain` on an empty builder
//! is just `Vec::new()`.
//!
//! # Example
//!
//! ```
//! use bitnum::UBig;
//! use vlcsa::group::GroupBuilder;
//!
//! let mut builder: GroupBuilder<&str> = GroupBuilder::new();
//! builder.push("ripple", UBig::from_u128(1, 8), UBig::from_u128(2, 8), "r0");
//! builder.push("vlcsa1", UBig::from_u128(3, 16), UBig::from_u128(4, 16), "v0");
//! builder.push("ripple", UBig::from_u128(5, 8), UBig::from_u128(6, 8), "r1");
//! let groups = builder.drain();
//! assert_eq!(groups.len(), 2); // (ripple, 8) and (vlcsa1, 16)
//! assert_eq!(groups[0].engine, "ripple");
//! assert_eq!(groups[0].tags, vec!["r0", "r1"]);
//! assert_eq!(groups[0].a.lane(1).to_u128(), Some(5));
//! assert!(builder.is_empty());
//! ```

use bitnum::batch::{DefaultWord, SlabBuilder, WideSlab, Word};
use bitnum::UBig;

/// One homogeneous issue group ready for
/// [`Executor::run`](crate::exec::Executor::run): every lane is the same
/// engine and width, and `tags[l]` is the caller's routing token for lane
/// `l` of the outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IssueGroup<T, W: Word = DefaultWord> {
    /// The engine name every lane of this group asked for.
    pub engine: String,
    /// The operand width every lane of this group asked for.
    pub width: usize,
    /// First operands, lane `l` = the `l`-th request of this bucket.
    pub a: WideSlab<W>,
    /// Second operands, aligned with `a`.
    pub b: WideSlab<W>,
    /// Per-lane routing tokens, aligned with the slabs.
    pub tags: Vec<T>,
}

impl<T, W: Word> IssueGroup<T, W> {
    /// Number of lanes (requests) in the group.
    pub fn lanes(&self) -> usize {
        self.tags.len()
    }
}

/// One `(engine, width)` bucket of pending requests, in arrival order.
/// Operands land in incrementally-built slabs ([`SlabBuilder`]) the moment
/// they are pushed, so draining is a seal, not a transpose — and limb-level
/// submitters (the binary wire protocol) write straight into the slab
/// layout with no intermediate [`UBig`].
#[derive(Debug)]
struct Bucket<T, W: Word> {
    engine: String,
    width: usize,
    a: SlabBuilder<W>,
    b: SlabBuilder<W>,
    tags: Vec<T>,
}

/// Accumulates heterogeneous addition requests and drains them as
/// homogeneous [`IssueGroup`]s — see the module docs for the shape of the
/// adapter and the example.
///
/// Buckets keep arrival order both across groups (first-request order) and
/// within a group (lane `l` is the bucket's `l`-th request), so draining is
/// deterministic for any interleaving of pushes.
#[derive(Debug)]
pub struct GroupBuilder<T, W: Word = DefaultWord> {
    buckets: Vec<Bucket<T, W>>,
    lanes: usize,
}

impl<T, W: Word> GroupBuilder<T, W> {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self {
            buckets: Vec::new(),
            lanes: 0,
        }
    }

    /// The bucket of `(engine, width)`, created on first use.
    fn bucket(&mut self, engine: &str, width: usize) -> &mut Bucket<T, W> {
        match self
            .buckets
            .iter_mut()
            .position(|g| g.width == width && g.engine == engine)
        {
            Some(i) => &mut self.buckets[i],
            None => {
                self.buckets.push(Bucket {
                    engine: engine.to_string(),
                    width,
                    a: SlabBuilder::new(width),
                    b: SlabBuilder::new(width),
                    tags: Vec::new(),
                });
                self.buckets.last_mut().expect("just pushed")
            }
        }
    }

    /// Queues one request under its `(engine, width)` bucket. The width is
    /// taken from the operands; `engine` is not validated here — resolve it
    /// against a [`Registry`](crate::engine::Registry) *before* queueing so
    /// a bad name fails the one request instead of a whole group.
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` disagree on width.
    pub fn push(&mut self, engine: &str, a: UBig, b: UBig, tag: T) {
        assert_eq!(a.width(), b.width(), "operand width mismatch");
        let bucket = self.bucket(engine, a.width());
        bucket.a.push_lane(&a);
        bucket.b.push_lane(&b);
        bucket.tags.push(tag);
        self.lanes += 1;
    }

    /// Queues one request whose operands are raw little-endian `u64` limb
    /// runs — the binary wire protocol's zero-copy path: the limbs scatter
    /// straight into the bucket's slab layout
    /// ([`SlabBuilder::push_lane_limbs`]) without ever becoming a
    /// [`UBig`]. Mixes freely with [`GroupBuilder::push`] in the same
    /// bucket; lane order is arrival order either way.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not exactly `width.div_ceil(64)` limbs
    /// or carries bits at or above `width` — limb-level submitters
    /// validate frames *before* queueing, so a malformed operand here is a
    /// transport bug, not bad input.
    pub fn push_limbs(&mut self, engine: &str, width: usize, a: &[u64], b: &[u64], tag: T) {
        let bucket = self.bucket(engine, width);
        bucket.a.push_lane_limbs(a);
        bucket.b.push_lane_limbs(b);
        bucket.tags.push(tag);
        self.lanes += 1;
    }

    /// Total pending lanes across all buckets — the quantity a batching
    /// window compares against its max-lanes bound.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.lanes == 0
    }

    /// Seals every bucket into an [`IssueGroup`] and resets the builder —
    /// the lanes were transposed as they arrived, so this is a chunk seal,
    /// not a batch-wide transpose. An empty builder drains to an empty
    /// vector — the 0-request window expiry costs nothing and must never
    /// reach an executor.
    pub fn drain(&mut self) -> Vec<IssueGroup<T, W>> {
        self.lanes = 0;
        std::mem::take(&mut self.buckets)
            .into_iter()
            .map(|bucket| IssueGroup {
                engine: bucket.engine,
                width: bucket.width,
                a: bucket.a.finish(),
                b: bucket.b.finish(),
                tags: bucket.tags,
            })
            .collect()
    }
}

impl<T, W: Word> Default for GroupBuilder<T, W> {
    fn default() -> Self {
        Self::new()
    }
}

/// The single-bucket batching window of one `(engine, width)` worker lane.
///
/// A per-lane serving pipeline already knows every request it sees shares
/// one engine and one width — the lane *is* that bucket — so the
/// per-push bucket search of [`GroupBuilder`] (a linear scan plus a string
/// compare) is pure overhead on its hot path. `LaneBuilder` drops it:
/// pushes append straight onto the lane's two [`SlabBuilder`]s, and
/// [`LaneBuilder::drain`] seals at most one [`IssueGroup`].
///
/// ```
/// use bitnum::UBig;
/// use vlcsa::group::LaneBuilder;
///
/// let mut lane: LaneBuilder<u32> = LaneBuilder::new("vlcsa1", 16);
/// lane.push(UBig::from_u128(40, 16), UBig::from_u128(2, 16), 7);
/// let group = lane.drain().expect("one pending lane");
/// assert_eq!(group.engine, "vlcsa1");
/// assert_eq!(group.tags, vec![7]);
/// assert!(lane.drain().is_none()); // an empty window drains to nothing
/// ```
#[derive(Debug)]
pub struct LaneBuilder<T, W: Word = DefaultWord> {
    engine: String,
    width: usize,
    a: SlabBuilder<W>,
    b: SlabBuilder<W>,
    tags: Vec<T>,
}

impl<T, W: Word> LaneBuilder<T, W> {
    /// Creates the empty window of the `(engine, width)` lane.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`bitnum::MAX_WIDTH`]
    /// (the [`SlabBuilder`] contract).
    pub fn new(engine: impl Into<String>, width: usize) -> Self {
        Self {
            engine: engine.into(),
            width,
            a: SlabBuilder::new(width),
            b: SlabBuilder::new(width),
            tags: Vec::new(),
        }
    }

    /// The engine every request of this lane runs on.
    pub fn engine(&self) -> &str {
        &self.engine
    }

    /// The operand width of every request of this lane.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Queues one request. Lane submitters validate width upstream (the
    /// lane was *selected* by width), so a mismatch here is a routing bug.
    ///
    /// # Panics
    ///
    /// Panics if either operand's width is not the lane width.
    pub fn push(&mut self, a: UBig, b: UBig, tag: T) {
        assert_eq!(a.width(), self.width, "operand width off the lane width");
        assert_eq!(b.width(), self.width, "operand width off the lane width");
        self.a.push_lane(&a);
        self.b.push_lane(&b);
        self.tags.push(tag);
    }

    /// Queues one request whose operands are raw little-endian limb runs —
    /// the zero-copy path of [`GroupBuilder::push_limbs`], minus the
    /// bucket search.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not exactly `width.div_ceil(64)` limbs
    /// or carries bits at or above the lane width.
    pub fn push_limbs(&mut self, a: &[u64], b: &[u64], tag: T) {
        self.a.push_lane_limbs(a);
        self.b.push_lane_limbs(b);
        self.tags.push(tag);
    }

    /// Pending lanes in the open window.
    pub fn lanes(&self) -> usize {
        self.tags.len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Seals the window into its [`IssueGroup`] and resets the builder.
    /// An empty window drains to `None` — no slab, no executor, no thread,
    /// exactly like [`GroupBuilder::drain`]'s empty vector.
    pub fn drain(&mut self) -> Option<IssueGroup<T, W>> {
        if self.tags.is_empty() {
            return None;
        }
        let a = std::mem::replace(&mut self.a, SlabBuilder::new(self.width));
        let b = std::mem::replace(&mut self.b, SlabBuilder::new(self.width));
        Some(IssueGroup {
            engine: self.engine.clone(),
            width: self.width,
            a: a.finish(),
            b: b.finish(),
            tags: std::mem::take(&mut self.tags),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Registry;
    use crate::exec::Executor;
    use bitnum::rng::Xoshiro256;

    #[test]
    fn empty_drain_yields_no_groups() {
        // The 0-requests-at-window-expiry edge: no slabs, no groups, and
        // nothing for a worker to run — the executor is never invoked.
        let mut builder: GroupBuilder<u32> = GroupBuilder::new();
        assert!(builder.is_empty());
        assert_eq!(builder.lanes(), 0);
        assert_eq!(builder.drain(), Vec::new());
        // Draining again is still free, and the builder is reusable.
        assert_eq!(builder.drain(), Vec::new());
        builder.push("ripple", UBig::from_u128(1, 8), UBig::from_u128(2, 8), 7);
        assert_eq!(builder.drain().len(), 1);
        assert!(builder.is_empty());
    }

    #[test]
    fn buckets_preserve_arrival_order_and_lane_mapping() {
        let mut rng = Xoshiro256::seed_from_u64(21);
        let mut builder: GroupBuilder<usize> = GroupBuilder::new();
        // 150 requests round-robined over three buckets, two of which share
        // a name but not a width — groups must not merge across widths, and
        // the 50-lane buckets exercise partial (<64-lane) chunks.
        let shapes = [("ripple", 64usize), ("vlcsa1", 64), ("ripple", 40)];
        let mut expect: Vec<Vec<(UBig, UBig, usize)>> = vec![Vec::new(); shapes.len()];
        for i in 0..150 {
            let (engine, width) = shapes[i % shapes.len()];
            let a = UBig::random(width, &mut rng);
            let b = UBig::random(width, &mut rng);
            expect[i % shapes.len()].push((a.clone(), b.clone(), i));
            builder.push(engine, a, b, i);
        }
        assert_eq!(builder.lanes(), 150);
        let groups = builder.drain();
        assert!(builder.is_empty());
        assert_eq!(groups.len(), 3);
        for (group, expect) in groups.iter().zip(&expect) {
            assert_eq!(group.lanes(), 50);
            assert_eq!(group.a.lanes(), 50);
            for (l, (a, b, tag)) in expect.iter().enumerate() {
                assert_eq!(&group.a.lane(l), a, "lane {l}");
                assert_eq!(&group.b.lane(l), b, "lane {l}");
                assert_eq!(group.tags[l], *tag, "lane {l}");
            }
        }
    }

    #[test]
    fn drained_groups_run_through_the_executor() {
        // The end-to-end shape a serving worker uses: drain, resolve the
        // engine, run, and read outcome lane `l` for `tags[l]`.
        let mut rng = Xoshiro256::seed_from_u64(22);
        let mut builder = GroupBuilder::new();
        for i in 0..70 {
            let engine = if i % 2 == 0 { "carry-select" } else { "vlcsa2" };
            builder.push(
                engine,
                UBig::random(32, &mut rng),
                UBig::random(32, &mut rng),
                i,
            );
        }
        let registry = Registry::for_width(32);
        let exec = Executor::new(2);
        for group in builder.drain() {
            let engine = registry.lookup(&group.engine).expect("validated name");
            let out = exec.run(engine, &group.a, &group.b);
            assert_eq!(out.lanes(), group.lanes());
            for (l, tag) in group.tags.iter().enumerate() {
                let one = engine.add_one(&group.a.lane(l), &group.b.lane(l));
                assert_eq!(out.sum.lane(l), one.sum, "tag {tag}");
                assert_eq!(out.cycles(l), one.cycles, "tag {tag}");
            }
        }
    }

    #[test]
    fn limb_pushes_mix_with_ubig_pushes_bit_identically() {
        // The binary protocol's zero-copy ingest and the text protocol's
        // UBig path land interleaved in the same bucket; the drained group
        // must be identical to an all-UBig build of the same stream.
        let mut rng = Xoshiro256::seed_from_u64(23);
        let mut mixed: GroupBuilder<usize> = GroupBuilder::new();
        let mut reference: GroupBuilder<usize> = GroupBuilder::new();
        for i in 0..150 {
            let width = if i % 3 == 0 { 100 } else { 64 };
            let a = UBig::random(width, &mut rng);
            let b = UBig::random(width, &mut rng);
            if i % 2 == 0 {
                mixed.push_limbs("vlcsa1", width, a.limbs(), b.limbs(), i);
            } else {
                mixed.push("vlcsa1", a.clone(), b.clone(), i);
            }
            reference.push("vlcsa1", a, b, i);
        }
        let (mixed, reference) = (mixed.drain(), reference.drain());
        assert_eq!(mixed.len(), 2); // widths 100 and 64
        assert_eq!(mixed, reference);
    }

    #[test]
    #[should_panic(expected = "operand width mismatch")]
    fn mismatched_operand_widths_panic() {
        GroupBuilder::<(), bitnum::batch::DefaultWord>::new().push(
            "ripple",
            UBig::zero(8),
            UBig::zero(16),
            (),
        );
    }

    #[test]
    fn lane_builder_equals_group_builder_single_bucket() {
        // The lane window is observationally the one-bucket GroupBuilder:
        // same group, same lane order, same tags, for mixed value/limb
        // pushes — and it resets cleanly across windows.
        let mut rng = Xoshiro256::seed_from_u64(0xA11E);
        let mut lane: LaneBuilder<usize> = LaneBuilder::new("vlcsa2", 100);
        let mut reference: GroupBuilder<usize> = GroupBuilder::new();
        assert_eq!(lane.engine(), "vlcsa2");
        assert_eq!(lane.width(), 100);
        for window in 0..3 {
            for i in 0..70usize {
                let a = UBig::random(100, &mut rng);
                let b = UBig::random(100, &mut rng);
                if i % 3 == 0 {
                    lane.push_limbs(a.limbs(), b.limbs(), window * 100 + i);
                    reference.push_limbs("vlcsa2", 100, a.limbs(), b.limbs(), window * 100 + i);
                } else {
                    lane.push(a.clone(), b.clone(), window * 100 + i);
                    reference.push("vlcsa2", a, b, window * 100 + i);
                }
            }
            assert_eq!(lane.lanes(), 70);
            assert!(!lane.is_empty());
            let group = lane.drain().expect("70 pending lanes");
            let mut expect = reference.drain();
            assert_eq!(expect.len(), 1);
            assert_eq!(group, expect.remove(0), "window {window}");
            assert!(lane.is_empty());
            assert!(lane.drain().is_none());
        }
    }

    #[test]
    fn lane_builder_groups_run_exactly() {
        let mut lane: LaneBuilder<u32> = LaneBuilder::new("ripple", 16);
        for i in 0..5u32 {
            lane.push(
                UBig::from_u128(u128::from(i), 16),
                UBig::from_u128(u128::from(i) * 2, 16),
                i,
            );
        }
        let group = lane.drain().unwrap();
        let registry = Registry::for_width(16);
        let out = Executor::new(1).run(registry.get("ripple").unwrap(), &group.a, &group.b);
        for (l, tag) in group.tags.iter().enumerate() {
            assert_eq!(out.sum.lane(l).to_u128(), Some(u128::from(*tag) * 3));
        }
    }

    #[test]
    #[should_panic(expected = "off the lane width")]
    fn lane_builder_rejects_off_width_operands() {
        LaneBuilder::<(), bitnum::batch::DefaultWord>::new("ripple", 8).push(
            UBig::zero(8),
            UBig::zero(16),
            (),
        );
    }
}

//! Analytical error models and window-size solvers (Ch. 3.2, Tables
//! 7.3/7.4).
//!
//! Three models are provided for unsigned uniform inputs:
//!
//! * [`paper_error_rate`] — the paper's eq. 3.13,
//!   `P_err ≈ T · 2^−(k+1) · (1 − 2^−k)`, a union bound over the per-pair
//!   events `P^{i+1}·G^i = 1`. The number of terms `T` depends on the
//!   overflow accounting: the literal equation uses `⌈n/k⌉ − 1` terms
//!   (the last one only corrupts the carry-out); with an `n`-bit truncated
//!   sum one fewer term matters. The latter is what reproduces the paper's
//!   Tables 7.3/7.4 exactly.
//! * [`exact_error_rate`] — an exact window-level Markov chain over the
//!   real window layout (remainder window first), no independence or
//!   union-bound approximations.
//! * [`err0_rate_exact`] — the exact probability that the VLCSA 1 detector
//!   flags (the *nominal* error rate of Tables 7.1/7.2), which upper-bounds
//!   the real error rate.

use crate::window::WindowLayout;
use crate::OverflowMode;

/// The paper's analytical error model, eq. 3.13.
///
/// # Panics
///
/// Panics if `width == 0` or `window` is out of `1..=63`.
pub fn paper_error_rate(width: usize, window: usize, mode: OverflowMode) -> f64 {
    let layout = WindowLayout::new(width, window);
    let m = layout.count();
    let terms = match mode {
        OverflowMode::CarryOut => m.saturating_sub(1),
        OverflowMode::Truncate => m.saturating_sub(2),
    };
    let k = window as f64;
    terms as f64 * 2f64.powf(-(k + 1.0)) * (1.0 - 2f64.powf(-k))
}

/// Per-window signal probabilities for a window of `len` uniform bits:
/// `(P(P=1), P(G=1))`. `P(P=1) = 2^−len`; `P(G=1) = ½(1 − 2^−len)`.
fn window_probs(len: usize) -> (f64, f64) {
    let pp = 2f64.powi(-(len as i32));
    let pg = 0.5 * (1.0 - pp);
    (pp, pg)
}

/// Exact SCSA 1 error probability on unsigned uniform inputs.
///
/// A window's speculative carry-in is wrong iff the previous window fully
/// propagates *and* its own carry-in was 1; the carry evolves as
/// `c' = G ∨ (P ∧ c)`. The Markov chain over `(carry, errored)` runs over
/// the actual window layout (remainder window first).
///
/// There is no [`OverflowMode`] parameter because the implemented adder's
/// carry-out comes from the *selected* top window: it can only be wrong
/// when that window's sum is already wrong, so the error event sets are
/// identical under both accountings. (The literal eq. 3.13 counts one
/// extra term — the top window's *group generate* consumed by a
/// hypothetical next window; see [`paper_error_rate`].)
///
/// # Panics
///
/// Panics if `width == 0` or `window` is out of `1..=63`.
pub fn exact_error_rate(width: usize, window: usize) -> f64 {
    let layout = WindowLayout::new(width, window);
    let m = layout.count();
    // State: probability of (carry into next window, no error so far).
    let mut ok = [1.0f64, 0.0f64]; // indexed by carry value; start c=0
    let mut err = 0.0f64;
    for (i, (_, len)) in layout.iter().enumerate() {
        let (pp, pg) = window_probs(len);
        let pn = 1.0 - pp - pg;
        // The event "this window fully propagates while its carry-in is 1"
        // corrupts the *next* window; at the top window there is no
        // consumer of the mis-speculated group generate.
        let event_counts = i < m - 1;
        let mut next_ok = [0.0f64; 2];
        let mut next_err = err;
        for (c, &mass) in ok.iter().enumerate() {
            if mass == 0.0 {
                continue;
            }
            // Generate: carry-out 1.
            next_ok[1] += mass * pg;
            // Neither: carry-out 0.
            next_ok[0] += mass * pn;
            // Propagate: carry-out = carry-in; error if carry-in is 1.
            if c == 1 && event_counts {
                next_err += mass * pp;
            } else {
                next_ok[c] += mass * pp;
            }
        }
        // Once an error occurred the outcome is already wrong; no need to
        // track the carry any further.
        ok = next_ok;
        err = next_err;
    }
    err
}

/// Exact probability that `ERR0` flags on unsigned uniform inputs — the
/// VLCSA 1 *nominal* error (stall) rate.
///
/// # Panics
///
/// Panics if `width == 0` or `window` is out of `1..=63`.
pub fn err0_rate_exact(width: usize, window: usize) -> f64 {
    let layout = WindowLayout::new(width, window);
    // State: probability of (previous window had G=1, not yet flagged).
    let mut ok = [0.0f64; 2];
    let mut flagged = 0.0f64;
    for (i, (_, len)) in layout.iter().enumerate() {
        let (pp, pg) = window_probs(len);
        let pn = 1.0 - pp - pg;
        if i == 0 {
            ok[0] = pp + pn;
            ok[1] = pg;
            continue;
        }
        let mut next_ok = [0.0f64; 2];
        let mut next_flagged = flagged;
        for (prev_g, &mass) in ok.iter().enumerate() {
            if mass == 0.0 {
                continue;
            }
            if prev_g == 1 {
                // This window propagating raises the flag.
                next_flagged += mass * pp;
            } else {
                next_ok[0] += mass * pp;
            }
            next_ok[1] += mass * pg;
            next_ok[0] += mass * pn;
        }
        ok = next_ok;
        flagged = next_flagged;
    }
    flagged
}

/// Solver semantics for inverting an error model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Semantics {
    /// Smallest `k` with `rate ≤ target`.
    Strict,
    /// Smallest `k` whose rate, in percent rounded to two decimals, is
    /// `≤ target` — the paper's table convention (e.g. 0.0107% ↦ 0.01%).
    RoundsTo2Dp,
}

fn meets(rate: f64, target: f64, semantics: Semantics) -> bool {
    match semantics {
        Semantics::Strict => rate <= target,
        Semantics::RoundsTo2Dp => {
            let pct = (rate * 100.0 * 100.0).round() / 100.0;
            let tgt = (target * 100.0 * 100.0).round() / 100.0;
            pct <= tgt
        }
    }
}

/// Which analytical model the solver inverts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Model {
    /// The paper's eq. 3.13 ([`paper_error_rate`]).
    Paper,
    /// The exact Markov model ([`exact_error_rate`]).
    Exact,
}

/// Smallest window size `k` meeting `target` (a probability; `1e-4` for
/// the paper's "0.01%").
///
/// With `Model::Paper`, `OverflowMode::Truncate` and
/// `Semantics::RoundsTo2Dp` this reproduces the SCSA columns of Tables
/// 7.3 and 7.4 exactly (verified in tests).
///
/// # Panics
///
/// Panics if `target <= 0` or `width == 0`.
pub fn window_size_for(
    width: usize,
    target: f64,
    semantics: Semantics,
    mode: OverflowMode,
    model: Model,
) -> usize {
    assert!(target > 0.0, "target must be positive");
    for k in 1..=63usize.min(width) {
        let rate = match model {
            Model::Paper => paper_error_rate(width, k, mode),
            Model::Exact => exact_error_rate(width, k),
        };
        if meets(rate, target, semantics) {
            return k;
        }
    }
    width.min(63)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scsa;
    use bitnum::rng::Xoshiro256;
    use bitnum::UBig;

    #[test]
    fn eq_3_13_reference_point() {
        // Ch. 3.2: "if n = 256, k = 16, P_err ≈ 0.01%."
        let p = paper_error_rate(256, 16, OverflowMode::CarryOut);
        assert!((p - 15.0 * 2f64.powi(-17) * (1.0 - 2f64.powi(-16))).abs() < 1e-12);
        assert!((0.9e-4..1.3e-4).contains(&p), "rate {p}");
    }

    #[test]
    fn paper_table_7_3_and_7_4_window_sizes() {
        // Table 7.3 / 7.4, error target 0.01%: k = 14/15/16/17.
        for (n, k) in [(64usize, 14usize), (128, 15), (256, 16), (512, 17)] {
            let got = window_size_for(
                n,
                1e-4,
                Semantics::RoundsTo2Dp,
                OverflowMode::Truncate,
                Model::Paper,
            );
            assert_eq!(got, k, "n={n} @0.01%");
        }
        // Table 7.4, error target 0.25%: k = 10/11/12/13.
        for (n, k) in [(64usize, 10usize), (128, 11), (256, 12), (512, 13)] {
            let got = window_size_for(
                n,
                2.5e-3,
                Semantics::RoundsTo2Dp,
                OverflowMode::Truncate,
                Model::Paper,
            );
            assert_eq!(got, k, "n={n} @0.25%");
        }
    }

    #[test]
    fn exact_model_close_to_paper_model() {
        // eq. 3.13 approximates in two directions (union bound overcounts
        // overlaps; adjacent-generate terms ignore longer carry sources and
        // the short first window); the net deviation stays small in the
        // table-relevant range.
        for (n, k) in [(64usize, 10usize), (128, 12), (256, 16), (512, 17)] {
            let exact = exact_error_rate(n, k);
            let paper = paper_error_rate(n, k, OverflowMode::Truncate);
            let ratio = exact / paper;
            assert!(
                (0.9..1.15).contains(&ratio),
                "n={n} k={k}: {exact} vs {paper}"
            );
        }
    }

    #[test]
    fn exact_model_matches_monte_carlo() {
        let mut rng = Xoshiro256::seed_from_u64(99);
        for (n, k) in [(64usize, 6usize), (96, 8)] {
            let scsa = Scsa::new(n, k);
            let trials = 200_000;
            let mut errors = 0usize;
            let mut errors_with_cout = 0usize;
            for _ in 0..trials {
                let a = UBig::random(n, &mut rng);
                let b = UBig::random(n, &mut rng);
                errors += scsa.is_error(&a, &b, crate::OverflowMode::Truncate) as usize;
                errors_with_cout += scsa.is_error(&a, &b, crate::OverflowMode::CarryOut) as usize;
            }
            // For the implemented adder the carry-out is never
            // independently wrong.
            assert_eq!(errors, errors_with_cout, "n={n} k={k}");
            let mc = errors as f64 / trials as f64;
            let model = exact_error_rate(n, k);
            let sigma = (model * (1.0 - model) / trials as f64).sqrt();
            assert!(
                (mc - model).abs() < 5.0 * sigma + 1e-6,
                "n={n} k={k}: mc={mc:.6} model={model:.6}"
            );
        }
    }

    #[test]
    fn err0_rate_upper_bounds_error_rate_and_matches_mc() {
        let n = 64;
        let k = 7;
        let nominal = err0_rate_exact(n, k);
        let real = exact_error_rate(n, k);
        assert!(
            nominal >= real,
            "detection must overestimate: {nominal} vs {real}"
        );

        let scsa = Scsa::new(n, k);
        let mut rng = Xoshiro256::seed_from_u64(123);
        let trials = 200_000;
        let mut flags = 0usize;
        for _ in 0..trials {
            let a = UBig::random(n, &mut rng);
            let b = UBig::random(n, &mut rng);
            flags += crate::detect::err0(&scsa.window_pg(&a, &b)) as usize;
        }
        let mc = flags as f64 / trials as f64;
        let sigma = (nominal * (1.0 - nominal) / trials as f64).sqrt();
        assert!(
            (mc - nominal).abs() < 5.0 * sigma + 1e-6,
            "mc={mc} model={nominal}"
        );
    }

    #[test]
    fn solver_strict_vs_rounded() {
        for n in [64usize, 512] {
            let strict = window_size_for(
                n,
                1e-4,
                Semantics::Strict,
                OverflowMode::Truncate,
                Model::Paper,
            );
            let rounded = window_size_for(
                n,
                1e-4,
                Semantics::RoundsTo2Dp,
                OverflowMode::Truncate,
                Model::Paper,
            );
            assert!(rounded <= strict);
            assert!(strict - rounded <= 1);
        }
    }

    #[test]
    fn rates_monotonic_in_k() {
        for k in 4..20 {
            assert!(exact_error_rate(256, k + 1) <= exact_error_rate(256, k));
        }
    }
}

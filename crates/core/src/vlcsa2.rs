//! VLCSA 2 — the modified variable-latency adder for practical inputs
//! (Ch. 6.7).
//!
//! Selection logic (Fig. 6.8): `ERR0 = 0` → accept `S*,0`;
//! `ERR0 = 1 ∧ ERR1 = 0` → accept `S*,1` (the chain reaches the MSB and the
//! alternate speculation is exact); `ERR0 = 1 ∧ ERR1 = 1` → stall one cycle
//! and take the recovery result. Both accept paths are single-cycle.

use bitnum::UBig;

use crate::detect::{self, Selection};
use crate::scsa2::Scsa2;
use crate::vlcsa1::{AddOutcome, LatencyStats};
use crate::window::WindowLayout;

/// A VLCSA 2 instance.
///
/// # Example
///
/// ```
/// use bitnum::UBig;
/// use vlcsa::Vlcsa2;
///
/// let adder = Vlcsa2::new(64, 13); // Table 7.5 window size @0.01%
/// // Small positive + small negative: VLCSA 1 would stall; VLCSA 2's
/// // second speculative result absorbs it in a single cycle.
/// let a = UBig::from_u128(1000, 64);
/// let b = UBig::from_i128(-1, 64);
/// let outcome = adder.add(&a, &b);
/// assert_eq!(outcome.sum.to_u128(), Some(999));
/// assert_eq!(outcome.cycles, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vlcsa2 {
    scsa2: Scsa2,
}

impl Vlcsa2 {
    /// Creates a VLCSA 2 of the given width and window size.
    ///
    /// # Panics
    ///
    /// Panics on the conditions of [`WindowLayout::new`].
    pub fn new(width: usize, window: usize) -> Self {
        Self {
            scsa2: Scsa2::new(width, window),
        }
    }

    /// Adder width.
    pub fn width(&self) -> usize {
        self.scsa2.width()
    }

    /// Window size `k`.
    pub fn window(&self) -> usize {
        self.scsa2.window()
    }

    /// The window decomposition.
    pub fn layout(&self) -> &WindowLayout {
        self.scsa2.layout()
    }

    /// The underlying modified speculative adder.
    pub fn scsa2(&self) -> &Scsa2 {
        &self.scsa2
    }

    /// One variable-latency addition. The result is always exact.
    ///
    /// # Panics
    ///
    /// Panics if operand widths do not match the adder width.
    pub fn add(&self, a: &UBig, b: &UBig) -> AddOutcome {
        let pgs = self.scsa2.window_pg(a, b);
        match detect::select(&pgs) {
            Selection::Spec0 => {
                let spec = self.scsa2.speculate(a, b);
                debug_assert_eq!(spec.sum0, a.wrapping_add(b), "reliability invariant");
                AddOutcome {
                    sum: spec.sum0,
                    cout: spec.cout0,
                    cycles: 1,
                    flagged: false,
                }
            }
            Selection::Spec1 => {
                let spec = self.scsa2.speculate(a, b);
                debug_assert_eq!(spec.sum1, a.wrapping_add(b), "reliability invariant");
                AddOutcome {
                    sum: spec.sum1,
                    cout: spec.cout1,
                    cycles: 1,
                    flagged: false,
                }
            }
            Selection::Recover => {
                let (sum, cout) = a.overflowing_add(b);
                AddOutcome {
                    sum,
                    cout,
                    cycles: 2,
                    flagged: true,
                }
            }
        }
    }

    /// Convenience: measured stall rate over a stream of operand pairs.
    pub fn stall_rate<I: Iterator<Item = (UBig, UBig)>>(&self, pairs: I) -> LatencyStats {
        let mut stats = LatencyStats::new();
        for (a, b) in pairs {
            stats.record(&self.add(&a, &b));
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitnum::rng::{RandomBits, Xoshiro256};
    use workloads::dist::{Distribution, OperandSource};

    #[test]
    fn always_exact_on_all_distributions() {
        for dist in [
            Distribution::UnsignedUniform,
            Distribution::TwosComplementUniform,
            Distribution::UnsignedGaussian {
                sigma: (1u64 << 32) as f64,
            },
            Distribution::paper_gaussian(),
        ] {
            let adder = Vlcsa2::new(64, 9);
            let mut src = OperandSource::new(dist, 64, 17);
            for _ in 0..20_000 {
                let (a, b) = src.next_pair();
                let outcome = adder.add(&a, &b);
                let (sum, cout) = a.overflowing_add(&b);
                assert_eq!(outcome.sum, sum, "{dist:?}");
                assert_eq!(outcome.cout, cout, "{dist:?}");
            }
        }
    }

    #[test]
    fn gaussian_stall_rate_collapses_to_uniform_level() {
        // Table 7.2: nominal error rate 0.01% at (64, 14) — vs VLCSA 1's
        // 25% (Table 7.1). At 100k trials a 0.01% rate gives ~10 stalls.
        let adder = Vlcsa2::new(64, 14);
        let mut src = OperandSource::new(Distribution::paper_gaussian(), 64, 29);
        let mut stats = LatencyStats::new();
        for _ in 0..100_000 {
            let (a, b) = src.next_pair();
            stats.record(&adder.add(&a, &b));
        }
        assert!(
            stats.stall_rate() < 0.002,
            "VLCSA 2 stall rate {} should be near 0.01%",
            stats.stall_rate()
        );
    }

    #[test]
    fn single_cycle_for_pure_sign_extension_chains() {
        let adder = Vlcsa2::new(128, 13);
        let mut rng = Xoshiro256::seed_from_u64(31);
        for _ in 0..1000 {
            // small positive + small negative with |pos| > |neg|
            let pos = (rng.next_u64() >> 40) as i128 + 2;
            let neg = -((rng.next_u64() >> 50) as i128 % pos.max(2)) - 1;
            let a = UBig::from_i128(pos, 128);
            let b = UBig::from_i128(neg.max(-pos + 1), 128);
            let outcome = adder.add(&a, &b);
            assert_eq!(outcome.sum, a.wrapping_add(&b));
        }
    }

    #[test]
    fn stall_rate_helper_counts() {
        let adder = Vlcsa2::new(64, 10);
        let mut src = OperandSource::new(Distribution::UnsignedUniform, 64, 3);
        let pairs: Vec<_> = (0..5000).map(|_| src.next_pair()).collect();
        let stats = adder.stall_rate(pairs.into_iter());
        assert_eq!(stats.ops(), 5000);
        assert!(stats.avg_cycles() >= 1.0);
    }
}

//! Property-based tests for the SCSA/VLCSA invariants.

use bitnum::rng::Xoshiro256;
use bitnum::UBig;
use proptest::prelude::*;
use vlcsa::{detect, OverflowMode, Scsa, Scsa2};

/// Strategy: a width, a window size, and a seed for operand generation.
fn params() -> impl Strategy<Value = (usize, usize, u64)> {
    (2usize..300, 1usize..40, any::<u64>()).prop_map(|(n, k, seed)| (n, k.min(n).min(63), seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Speculation differs from the exact sum only in the presence of the
    /// flagged pattern — ERR0 soundness, for arbitrary (n, k).
    #[test]
    fn err0_soundness((n, k, seed) in params()) {
        let scsa = Scsa::new(n, k);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        for _ in 0..32 {
            let a = UBig::random(n, &mut rng);
            let b = UBig::random(n, &mut rng);
            if scsa.is_error(&a, &b, OverflowMode::CarryOut) {
                prop_assert!(detect::err0(&scsa.window_pg(&a, &b)));
            }
        }
    }

    /// The carry-out of the implemented SCSA is wrong only when the sum
    /// already is (the vacuity of eq. 3.13's last term).
    #[test]
    fn cout_error_implies_sum_error((n, k, seed) in params()) {
        let scsa = Scsa::new(n, k);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        for _ in 0..32 {
            let a = UBig::random(n, &mut rng);
            let b = UBig::random(n, &mut rng);
            prop_assert_eq!(
                scsa.is_error(&a, &b, OverflowMode::CarryOut),
                scsa.is_error(&a, &b, OverflowMode::Truncate)
            );
        }
    }

    /// SCSA 2's selection logic always yields an exact accepted result.
    #[test]
    fn scsa2_selection_soundness((n, k, seed) in params()) {
        let scsa2 = Scsa2::new(n, k);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        for _ in 0..32 {
            let a = UBig::random(n, &mut rng);
            let b = UBig::random(n, &mut rng);
            let exact = a.wrapping_add(&b);
            let spec = scsa2.speculate(&a, &b);
            match detect::select(&scsa2.window_pg(&a, &b)) {
                detect::Selection::Spec0 => prop_assert_eq!(&spec.sum0, &exact),
                detect::Selection::Spec1 => prop_assert_eq!(&spec.sum1, &exact),
                detect::Selection::Recover => {}
            }
        }
    }

    /// Speculation is *locally exact*: every window's sum equals the true
    /// sum of that window with the speculated carry-in — i.e. the only
    /// error mechanism is a wrong inter-window carry.
    #[test]
    fn speculation_is_locally_exact((n, k, seed) in params()) {
        let scsa = Scsa::new(n, k);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let a = UBig::random(n, &mut rng);
        let b = UBig::random(n, &mut rng);
        let spec = scsa.speculate(&a, &b);
        let pgs = scsa.window_pg(&a, &b);
        let mut prev_g = false; // window 0 carry-in is 0
        for (i, (lo, len)) in scsa.layout().iter().enumerate() {
            let aw = a.extract(lo, len);
            let bw = b.extract(lo, len);
            let (expect, _) = aw.add_with_carry(&bw, prev_g);
            prop_assert_eq!(spec.sum.extract(lo, len), expect, "window {}", i);
            prev_g = pgs[i].g;
        }
    }

    /// Monotonicity: an error at window size k+1 implies the chain that
    /// caused it also defeats size k... is false in general; what *does*
    /// hold is the model-level monotonicity. Check the exact model against
    /// arbitrary parameters.
    #[test]
    fn exact_model_bounded_and_monotone(n in 4usize..400, k in 2usize..24) {
        let k = k.min(n).min(63);
        let p = vlcsa::model::exact_error_rate(n, k);
        prop_assert!((0.0..=1.0).contains(&p));
        if k < n.min(63) {
            prop_assert!(vlcsa::model::exact_error_rate(n, k + 1) <= p + 1e-12);
        }
        let nominal = vlcsa::model::err0_rate_exact(n, k);
        prop_assert!(nominal + 1e-12 >= p, "nominal {} < exact {}", nominal, p);
    }

    /// Window layout invariants for arbitrary parameters.
    #[test]
    fn layout_tiles(n in 1usize..2000, k in 1usize..64) {
        let k = k.min(63);
        let layout = vlcsa::window::WindowLayout::new(n, k);
        let mut lo = 0usize;
        for (w_lo, w_len) in layout.iter() {
            prop_assert_eq!(w_lo, lo);
            prop_assert!(w_len >= 1 && w_len <= k);
            lo += w_len;
        }
        prop_assert_eq!(lo, n);
    }
}

//! Property tests for the batched speculative engines: lane-exact
//! agreement with the scalar path for both VLCSA variants, on every
//! operand distribution, including width-not-multiple-of-window and
//! lanes < 64 edge cases.

use bitnum::batch::{BitSlab, DefaultWord, Word};
use bitnum::rng::Xoshiro256;
use proptest::prelude::*;
use vlcsa::{detect, Scsa, Scsa2, Vlcsa1, Vlcsa2};
use workloads::dist::{Distribution, OperandSource};

/// Width, window, lane count and seed — widths deliberately not multiples
/// of the window, lane counts spanning the default word's full range
/// (clamped so the suite passes under `--cfg vlcsa_word64` too).
fn params() -> impl Strategy<Value = (usize, usize, usize, u64)> {
    (2usize..200, 1usize..30, 1usize..=256, any::<u64>())
        .prop_map(|(n, k, lanes, seed)| (n, k.min(n).min(63), lanes.min(DefaultWord::LANES), seed))
}

fn distributions() -> [Distribution; 4] {
    [
        Distribution::UnsignedUniform,
        Distribution::TwosComplementUniform,
        Distribution::UnsignedGaussian {
            sigma: (1u64 << 24) as f64,
        },
        Distribution::paper_gaussian(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `Vlcsa1::add_batch` lane `i` behaves exactly like `Vlcsa1::add` of
    /// lane `i`'s operands — sum, carry-out, cycles and flag — on all
    /// distributions.
    #[test]
    fn vlcsa1_batch_lane_agreement((n, k, lanes, seed) in params()) {
        let adder = Vlcsa1::new(n, k);
        for (d, dist) in distributions().into_iter().enumerate() {
            let mut src = OperandSource::new(dist, n, seed ^ d as u64);
            let (a, b) = src.next_batch(lanes);
            let out = adder.add_batch(&a, &b);
            prop_assert_eq!(out.lanes(), lanes);
            prop_assert_eq!(out.total_cycles(), lanes as u64 + out.stalls() as u64);
            for l in 0..lanes {
                let scalar = adder.add(&a.lane(l), &b.lane(l));
                prop_assert_eq!(&out.sum.lane(l), &scalar.sum, "{:?} lane {}", dist, l);
                prop_assert_eq!(out.cout.bit(l), scalar.cout);
                prop_assert_eq!(out.cycles(l), scalar.cycles);
                prop_assert_eq!(out.flagged.bit(l), scalar.flagged);
            }
        }
    }

    /// `Vlcsa2::add_batch` lane `i` behaves exactly like `Vlcsa2::add` of
    /// lane `i`'s operands on all distributions (sum, carry-out, cycles).
    #[test]
    fn vlcsa2_batch_lane_agreement((n, k, lanes, seed) in params()) {
        let adder = Vlcsa2::new(n, k);
        for (d, dist) in distributions().into_iter().enumerate() {
            let mut src = OperandSource::new(dist, n, seed ^ (d as u64) << 8);
            let (a, b) = src.next_batch(lanes);
            let out = adder.add_batch(&a, &b);
            for l in 0..lanes {
                let scalar = adder.add(&a.lane(l), &b.lane(l));
                prop_assert_eq!(&out.sum.lane(l), &scalar.sum, "{:?} lane {}", dist, l);
                prop_assert_eq!(out.cout.bit(l), scalar.cout);
                prop_assert_eq!(out.cycles(l), scalar.cycles);
            }
        }
    }

    /// The batched speculation and group signals match the scalar engines
    /// bit-for-bit (not just post-recovery results).
    #[test]
    fn speculation_and_pg_lane_agreement((n, k, lanes, seed) in params()) {
        let scsa = Scsa::new(n, k);
        let scsa2 = Scsa2::new(n, k);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let a = BitSlab::<DefaultWord>::random(n, lanes, &mut rng);
        let b = BitSlab::<DefaultWord>::random(n, lanes, &mut rng);
        let spec = scsa.speculate_batch(&a, &b);
        let spec2 = scsa2.speculate_batch(&a, &b);
        let words = scsa.window_pg_batch(&a, &b);
        for l in 0..lanes {
            let (al, bl) = (a.lane(l), b.lane(l));
            let s1 = scsa.speculate(&al, &bl);
            prop_assert_eq!(&spec.sum.lane(l), &s1.sum);
            prop_assert_eq!(spec.cout.bit(l), s1.cout);
            let s2 = scsa2.speculate(&al, &bl);
            prop_assert_eq!(&spec2.sum0.lane(l), &s2.sum0);
            prop_assert_eq!(&spec2.sum1.lane(l), &s2.sum1);
            prop_assert_eq!(spec2.cout0.bit(l), s2.cout0);
            prop_assert_eq!(spec2.cout1.bit(l), s2.cout1);
            for (i, w) in scsa.window_pg(&al, &bl).iter().enumerate() {
                prop_assert_eq!(words[i].p.bit(l), w.p);
                prop_assert_eq!(words[i].g.bit(l), w.g);
                prop_assert_eq!(words[i].gp.bit(l), w.gp);
            }
        }
    }

    /// The word detectors agree with the scalar detectors per lane.
    #[test]
    fn word_detectors_lane_agreement((n, k, lanes, seed) in params()) {
        let scsa = Scsa::new(n, k);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let a = BitSlab::<DefaultWord>::random(n, lanes, &mut rng);
        let b = BitSlab::<DefaultWord>::random(n, lanes, &mut rng);
        let words = scsa.window_pg_batch(&a, &b);
        let err0 = detect::err0_word(&words);
        let err1 = detect::err1_word(&words);
        prop_assert!((err0 & !a.lane_mask()).is_zero(), "stray err0 bits");
        prop_assert!((err1 & !a.lane_mask()).is_zero(), "stray err1 bits");
        for l in 0..lanes {
            let pgs = scsa.window_pg(&a.lane(l), &b.lane(l));
            prop_assert_eq!(err0.bit(l), detect::err0(&pgs), "lane {}", l);
            prop_assert_eq!(err1.bit(l), detect::err1(&pgs), "lane {}", l);
        }
    }
}

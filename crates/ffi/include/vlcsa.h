/*
 * vlcsa.h — embeddable C ABI over the vlcsa variable-latency
 * carry-select serving stack: submit, poll, and stats without a socket.
 *
 * Link against libvlcsa_ffi (cdylib or staticlib, built from
 * crates/ffi). The staticlib additionally needs the usual Rust runtime
 * system libraries on Linux: -lpthread -ldl -lm.
 *
 * Contract, in brief:
 *
 *  - Every function returns VLCSA_OK (0), VLCSA_PENDING (1, poll
 *    only), or a negative VLCSA_ERR_* code. No call ever panics or
 *    aborts the host: internal panics are caught at the boundary and
 *    reported as VLCSA_ERR_PANIC.
 *  - Operands and sums are little-endian uint64_t limb buffers of
 *    vlcsa_limbs(engine) limbs (= ceil(width / 64)). Bits at or above
 *    the configured width must be zero or the call fails with
 *    VLCSA_ERR_BAD_OPERANDS.
 *  - Handles are thread-safe: any thread may call any function on the
 *    same handle concurrently, except vlcsa_free, which must not race
 *    other calls on the same handle (close-once, like fclose). A freed
 *    or never-allocated handle fails closed with VLCSA_ERR_BAD_HANDLE.
 *  - vlcsa_last_error(engine) returns the handle's last error text;
 *    vlcsa_last_error(NULL) the calling thread's (for init and
 *    bad-handle failures). The pointer is owned by the library and
 *    valid until the next failing call on the same handle / thread.
 */

#ifndef VLCSA_H
#define VLCSA_H

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

/* --- Status codes ----------------------------------------------------- */

#define VLCSA_OK 0
/* The ticket's result is not ready yet (vlcsa_poll only). */
#define VLCSA_PENDING 1
/* A required pointer argument was null. */
#define VLCSA_ERR_NULL (-1)
/* The handle is not a live engine (already freed, or never allocated). */
#define VLCSA_ERR_BAD_HANDLE (-2)
/* Bad configuration: unknown engine name, width outside 1..=4096. */
#define VLCSA_ERR_BAD_CONFIG (-3)
/* Bad operands: count outside 1..=64, or bits set at/above the width. */
#define VLCSA_ERR_BAD_OPERANDS (-4)
/* The ticket was never issued, or its result was already claimed. */
#define VLCSA_ERR_BAD_TICKET (-5)
/* The service is shutting down. */
#define VLCSA_ERR_STOPPED (-6)
/* A panic was caught at the boundary (library bug, not host UB). */
#define VLCSA_ERR_PANIC (-7)

/* --- Types ------------------------------------------------------------ */

/* Opaque engine handle. */
typedef struct vlcsa_engine vlcsa_engine_t;

/* Configuration for vlcsa_init. Zero-initialize, then set what you
 * need: every 0 / NULL field picks a sensible default. */
typedef struct vlcsa_config {
    /* Engine name: "auto" (adaptive routing), "vlcsa1", "vlcsa2",
     * "carry-select", "ripple", ... NULL selects "auto". */
    const char *engine;
    /* Operand width in bits, 1..=4096. Required (0 is invalid). */
    size_t width;
    /* Worker threads running issue groups; 0 = default. */
    size_t threads;
    /* Batching-window flush bound in lanes; 0 = default. */
    size_t max_lanes;
    /* Batching-window flush bound in microseconds; 0 = default. */
    uint64_t max_wait_micros;
    /* p99 latency budget (microseconds) for "auto" SLO degradation;
     * 0 = no budget. */
    uint64_t slo_micros;
} vlcsa_config_t;

/* Counters snapshot, aggregated over every engine the handle's traffic
 * touched (several, when routing under "auto"). */
typedef struct vlcsa_stats {
    uint64_t lanes;        /* lanes (requests) served               */
    uint64_t stalls;       /* lanes that took the 2-cycle recovery  */
    uint64_t groups;       /* issue groups (batches) run            */
    uint64_t queue_depth;  /* requests queued ahead of the batcher  */
    uint64_t window_lanes; /* lanes pending in the open window      */
    uint64_t word_bits;    /* lanes per slab word (64 or 256)       */
} vlcsa_stats_t;

/* Engine-name capacity of vlcsa_lane_stats_t, including the NUL. */
#define VLCSA_LANE_NAME_CAP 32

/* One live (engine, width) lane of the scale-out runtime: each lane
 * owns its own ingress queue, batching window and workers, so these
 * depths are per-lane backlogs, not shares of a global queue. */
typedef struct vlcsa_lane_stats {
    /* Concrete engine name running this lane (NUL-terminated,
     * truncated to fit). "auto" traffic appears under the engine the
     * router picked. */
    char engine[VLCSA_LANE_NAME_CAP];
    size_t width;       /* operand width of this lane               */
    uint64_t depth;     /* requests queued ahead of its batcher     */
    uint64_t occupancy; /* lanes pending in its open window         */
} vlcsa_lane_stats_t;

/* --- Lifecycle -------------------------------------------------------- */

/* Creates an engine handle; writes it to *out on VLCSA_OK. */
int vlcsa_init(const vlcsa_config_t *config, vlcsa_engine_t **out);

/* Drains in-flight work, joins worker threads, frees the handle.
 * Unclaimed tickets are dropped. Double free returns
 * VLCSA_ERR_BAD_HANDLE without touching memory. */
int vlcsa_free(vlcsa_engine_t *engine);

/* Limbs per operand (and per sum) at the handle's width:
 * ceil(width / 64). Returns 0 on a null or dead handle. */
size_t vlcsa_limbs(vlcsa_engine_t *engine);

/* Lanes per slab word this build batches into: 64 or 256. */
size_t vlcsa_word_bits(void);

/* --- Synchronous ------------------------------------------------------ */

/* sum = a + b at the handle's width; blocks until the batching window
 * flushes and the lane runs. cout (carry out of the top bit) and
 * cycles (1, or 2 after a recovery stall) may be NULL. */
int vlcsa_add(vlcsa_engine_t *engine, const uint64_t *a, const uint64_t *b,
              uint64_t *sum, int *cout, uint32_t *cycles);

/* sum = ops[0] + ... + ops[n-1]: one carry-save-compressed reduction
 * whose carries resolve exactly once. ops holds n operands of
 * vlcsa_limbs(engine) limbs each, back to back; n must be 1..=64. */
int vlcsa_sum(vlcsa_engine_t *engine, const uint64_t *ops, size_t n,
              uint64_t *sum, int *cout, uint32_t *cycles);

/* --- Asynchronous ----------------------------------------------------- */

/* Queues a + b into the batching window and returns a ticket
 * immediately; a burst of submits coalesces into wide issue groups.
 * Operand buffers are copied before return. */
int vlcsa_submit(vlcsa_engine_t *engine, const uint64_t *a, const uint64_t *b,
                 uint64_t *ticket);

/* Claims a ticket's result without blocking: VLCSA_PENDING while in
 * flight; on VLCSA_OK the ticket is consumed (a second poll returns
 * VLCSA_ERR_BAD_TICKET). */
int vlcsa_poll(vlcsa_engine_t *engine, uint64_t ticket, uint64_t *sum,
               int *cout, uint32_t *cycles);

/* --- Introspection ---------------------------------------------------- */

/* Snapshots the service counters into *out. */
int vlcsa_stats(vlcsa_engine_t *engine, vlcsa_stats_t *out);

/* Number of live (engine, width) lanes (lanes spin up on first use
 * and live until shutdown). Returns 0 on a null or dead handle. */
size_t vlcsa_lane_count(vlcsa_engine_t *engine);

/* Snapshots up to cap per-lane rows into out and writes the total
 * number of live lanes to *count (which may exceed cap — call
 * vlcsa_lane_count or retry with a larger buffer). out may be NULL
 * when cap is 0. */
int vlcsa_lanes(vlcsa_engine_t *engine, vlcsa_lane_stats_t *out,
                size_t cap, size_t *count);

/* Last error text: the handle's, or the calling thread's when engine
 * is NULL or not live. Never NULL; possibly empty. */
const char *vlcsa_last_error(vlcsa_engine_t *engine);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* VLCSA_H */

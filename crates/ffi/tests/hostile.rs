//! Hostile-input coverage for the FFI boundary: every abuse a C host
//! can express must come back as an error code — never UB, never an
//! abort, never a panic unwinding into foreign frames.

use std::ffi::{c_int, CStr};
use std::ptr;

use vlcsa_ffi::{
    vlcsa_add, vlcsa_free, vlcsa_init, vlcsa_last_error, vlcsa_limbs, vlcsa_poll, vlcsa_stats,
    vlcsa_submit, vlcsa_sum, VlcsaConfig, VlcsaEngine, VlcsaStats, VLCSA_ERR_BAD_CONFIG,
    VLCSA_ERR_BAD_HANDLE, VLCSA_ERR_BAD_OPERANDS, VLCSA_ERR_BAD_TICKET, VLCSA_ERR_NULL, VLCSA_OK,
};

fn config(engine: *const std::ffi::c_char, width: usize) -> VlcsaConfig {
    VlcsaConfig {
        engine,
        width,
        threads: 1,
        max_lanes: 0,
        max_wait_micros: 100,
        slo_micros: 0,
    }
}

fn init_ok(width: usize) -> *mut VlcsaEngine {
    let mut handle = ptr::null_mut();
    assert_eq!(
        unsafe { vlcsa_init(&config(c"ripple".as_ptr(), width), &mut handle) },
        VLCSA_OK
    );
    handle
}

fn thread_error() -> String {
    unsafe { CStr::from_ptr(vlcsa_last_error(ptr::null_mut())) }
        .to_string_lossy()
        .into_owned()
}

#[test]
fn init_rejects_null_and_bad_config() {
    let mut handle: *mut VlcsaEngine = ptr::null_mut();
    assert_eq!(
        unsafe { vlcsa_init(ptr::null(), &mut handle) },
        VLCSA_ERR_NULL
    );
    assert_eq!(
        unsafe { vlcsa_init(&config(ptr::null(), 64), ptr::null_mut()) },
        VLCSA_ERR_NULL
    );
    // Zero width.
    assert_eq!(
        unsafe { vlcsa_init(&config(c"ripple".as_ptr(), 0), &mut handle) },
        VLCSA_ERR_BAD_CONFIG
    );
    assert!(thread_error().contains("width"), "{}", thread_error());
    // Width over the cap.
    assert_eq!(
        unsafe { vlcsa_init(&config(c"ripple".as_ptr(), 4097), &mut handle) },
        VLCSA_ERR_BAD_CONFIG
    );
    // Bad engine name.
    assert_eq!(
        unsafe { vlcsa_init(&config(c"no-such-engine".as_ptr(), 64), &mut handle) },
        VLCSA_ERR_BAD_CONFIG
    );
    assert!(
        thread_error().contains("no-such-engine"),
        "{}",
        thread_error()
    );
    // Nothing above may have produced a handle.
    assert!(handle.is_null());
}

#[test]
fn calls_on_dead_or_garbage_handles_fail_closed() {
    let handle = init_ok(64);
    assert_eq!(unsafe { vlcsa_free(handle) }, VLCSA_OK);
    // Double free: the registry already forgot the address, so the
    // second free must not touch the memory.
    assert_eq!(unsafe { vlcsa_free(handle) }, VLCSA_ERR_BAD_HANDLE);
    // Every other call on the stale pointer fails closed too.
    let (a, b, mut sum) = ([1u64], [2u64], [0u64]);
    let mut ticket = 0u64;
    let mut stats = VlcsaStats {
        lanes: 0,
        stalls: 0,
        groups: 0,
        queue_depth: 0,
        window_lanes: 0,
        word_bits: 0,
    };
    assert_eq!(
        unsafe {
            vlcsa_add(
                handle,
                a.as_ptr(),
                b.as_ptr(),
                sum.as_mut_ptr(),
                ptr::null_mut(),
                ptr::null_mut(),
            )
        },
        VLCSA_ERR_BAD_HANDLE
    );
    assert_eq!(
        unsafe { vlcsa_submit(handle, a.as_ptr(), b.as_ptr(), &mut ticket) },
        VLCSA_ERR_BAD_HANDLE
    );
    assert_eq!(
        unsafe {
            vlcsa_poll(
                handle,
                1,
                sum.as_mut_ptr(),
                ptr::null_mut(),
                ptr::null_mut(),
            )
        },
        VLCSA_ERR_BAD_HANDLE
    );
    assert_eq!(
        unsafe { vlcsa_stats(handle, &mut stats) },
        VLCSA_ERR_BAD_HANDLE
    );
    assert_eq!(unsafe { vlcsa_limbs(handle) }, 0);
    // Null handles are their own error.
    assert_eq!(unsafe { vlcsa_free(ptr::null_mut()) }, VLCSA_ERR_NULL);
    // A pointer that was never a handle is indistinguishable from a
    // freed one — also refused without a dereference.
    let garbage = 0xdead_beefusize as *mut VlcsaEngine;
    assert_eq!(unsafe { vlcsa_free(garbage) }, VLCSA_ERR_BAD_HANDLE);
}

#[test]
fn null_operand_pointers_are_rejected() {
    let handle = init_ok(64);
    let (a, mut sum) = ([1u64], [0u64]);
    let mut ticket = 0u64;
    assert_eq!(
        unsafe {
            vlcsa_add(
                handle,
                ptr::null(),
                a.as_ptr(),
                sum.as_mut_ptr(),
                ptr::null_mut(),
                ptr::null_mut(),
            )
        },
        VLCSA_ERR_NULL
    );
    assert_eq!(
        unsafe {
            vlcsa_add(
                handle,
                a.as_ptr(),
                a.as_ptr(),
                ptr::null_mut(),
                ptr::null_mut(),
                ptr::null_mut(),
            )
        },
        VLCSA_ERR_NULL
    );
    assert_eq!(
        unsafe { vlcsa_submit(handle, a.as_ptr(), ptr::null(), &mut ticket) },
        VLCSA_ERR_NULL
    );
    assert_eq!(
        unsafe {
            vlcsa_sum(
                handle,
                ptr::null(),
                2,
                sum.as_mut_ptr(),
                ptr::null_mut(),
                ptr::null_mut(),
            )
        },
        VLCSA_ERR_NULL
    );
    // The handle records the error text.
    let text = unsafe { CStr::from_ptr(vlcsa_last_error(handle)) }
        .to_string_lossy()
        .into_owned();
    assert!(text.contains("non-null"), "{text}");
    assert_eq!(unsafe { vlcsa_free(handle) }, VLCSA_OK);
}

#[test]
fn over_cap_and_out_of_width_operands_are_rejected() {
    let handle = init_ok(96);
    let limbs = unsafe { vlcsa_limbs(handle) };
    assert_eq!(limbs, 2);
    let mut sum = vec![0u64; limbs];
    // Operand count over the 64-input program cap: must fail BEFORE the
    // library reads n * limbs limbs (the buffer here is far smaller).
    let one = vec![1u64; limbs];
    for n in [0usize, 65, usize::MAX / 16] {
        assert_eq!(
            unsafe {
                vlcsa_sum(
                    handle,
                    one.as_ptr(),
                    n,
                    sum.as_mut_ptr(),
                    ptr::null_mut(),
                    ptr::null_mut(),
                )
            },
            VLCSA_ERR_BAD_OPERANDS,
            "n={n}"
        );
    }
    // Bits at or above width 96 in the top limb: rejected, same as the
    // wire protocols.
    let dirty = [u64::MAX, u64::MAX];
    let clean = [1u64, 1];
    assert_eq!(
        unsafe {
            vlcsa_add(
                handle,
                dirty.as_ptr(),
                clean.as_ptr(),
                sum.as_mut_ptr(),
                ptr::null_mut(),
                ptr::null_mut(),
            )
        },
        VLCSA_ERR_BAD_OPERANDS
    );
    let flat = [1u64, 1, u64::MAX, u64::MAX];
    assert_eq!(
        unsafe {
            vlcsa_sum(
                handle,
                flat.as_ptr(),
                2,
                sum.as_mut_ptr(),
                ptr::null_mut(),
                ptr::null_mut(),
            )
        },
        VLCSA_ERR_BAD_OPERANDS
    );
    assert_eq!(unsafe { vlcsa_free(handle) }, VLCSA_OK);
}

#[test]
fn tickets_are_single_use_and_unknown_tickets_fail() {
    let handle = init_ok(64);
    let (a, b) = ([7u64], [8u64]);
    let mut sum = [0u64];
    // Never-issued ticket.
    assert_eq!(
        unsafe {
            vlcsa_poll(
                handle,
                999,
                sum.as_mut_ptr(),
                ptr::null_mut(),
                ptr::null_mut(),
            )
        },
        VLCSA_ERR_BAD_TICKET
    );
    let mut ticket = 0u64;
    assert_eq!(
        unsafe { vlcsa_submit(handle, a.as_ptr(), b.as_ptr(), &mut ticket) },
        VLCSA_OK
    );
    // Spin to completion, then claim again: consumed tickets are gone.
    let mut cout: c_int = 0;
    loop {
        let code =
            unsafe { vlcsa_poll(handle, ticket, sum.as_mut_ptr(), &mut cout, ptr::null_mut()) };
        if code == VLCSA_OK {
            break;
        }
        assert_eq!(code, vlcsa_ffi::VLCSA_PENDING);
        std::thread::yield_now();
    }
    assert_eq!(sum[0], 15);
    assert_eq!(
        unsafe {
            vlcsa_poll(
                handle,
                ticket,
                sum.as_mut_ptr(),
                ptr::null_mut(),
                ptr::null_mut(),
            )
        },
        VLCSA_ERR_BAD_TICKET
    );
    assert_eq!(unsafe { vlcsa_free(handle) }, VLCSA_OK);
}

/// The lane-introspection entry points fail closed exactly like the
/// rest of the surface: null/dead handles, null out-params, and a
/// non-zero cap with a null buffer are all rejected with stable codes
/// and error text, never a crash.
#[test]
fn lane_introspection_rejects_null_and_dead_handles() {
    assert_eq!(unsafe { vlcsa_ffi::vlcsa_lane_count(ptr::null_mut()) }, 0);
    let mut count = 7usize;
    assert_eq!(
        unsafe { vlcsa_ffi::vlcsa_lanes(ptr::null_mut(), ptr::null_mut(), 0, &mut count) },
        vlcsa_ffi::VLCSA_ERR_NULL
    );
    assert_eq!(count, 7, "count untouched on failure");

    let handle = init_ok(64);
    assert_eq!(
        unsafe { vlcsa_ffi::vlcsa_lanes(handle, ptr::null_mut(), 0, ptr::null_mut()) },
        vlcsa_ffi::VLCSA_ERR_NULL
    );
    // cap > 0 demands a buffer.
    assert_eq!(
        unsafe { vlcsa_ffi::vlcsa_lanes(handle, ptr::null_mut(), 4, &mut count) },
        vlcsa_ffi::VLCSA_ERR_NULL
    );
    assert_eq!(unsafe { vlcsa_free(handle) }, VLCSA_OK);
    // Dead handle after free.
    assert_eq!(unsafe { vlcsa_ffi::vlcsa_lane_count(handle) }, 0);
    assert_eq!(
        unsafe { vlcsa_ffi::vlcsa_lanes(handle, ptr::null_mut(), 0, &mut count) },
        vlcsa_ffi::VLCSA_ERR_BAD_HANDLE
    );
}

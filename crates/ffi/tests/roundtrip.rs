//! Round-trips through the exported C ABI, pinned against the scalar
//! ripple reference — the same bit-exactness bar every engine and both
//! wire protocols are held to, now enforced at the FFI boundary.
//!
//! The tests call the `extern "C"` functions exactly as a C host would
//! (raw pointers, limb buffers, out-params), at this build's slab word
//! width — CI runs them under both the default `W256` and
//! `--cfg vlcsa_word64`.

use std::ffi::c_int;
use std::ptr;
use std::time::{Duration, Instant};

use adders::batch::{BatchRipple, ScalarAdd};
use bitnum::rng::SplitMix64;
use bitnum::UBig;
use vlcsa_ffi::{
    vlcsa_add, vlcsa_free, vlcsa_init, vlcsa_limbs, vlcsa_poll, vlcsa_stats, vlcsa_submit,
    vlcsa_sum, vlcsa_word_bits, VlcsaConfig, VlcsaEngine, VlcsaStats, VLCSA_OK, VLCSA_PENDING,
};

/// Builds a handle or panics with the thread's error text.
fn init(engine: &std::ffi::CStr, width: usize) -> *mut VlcsaEngine {
    let config = VlcsaConfig {
        engine: engine.as_ptr(),
        width,
        threads: 2,
        max_lanes: 0,
        max_wait_micros: 200,
        slo_micros: 0,
    };
    let mut handle: *mut VlcsaEngine = ptr::null_mut();
    let code = unsafe { vlcsa_init(&config, &mut handle) };
    assert_eq!(code, VLCSA_OK, "init failed: {}", last_error_text());
    assert!(!handle.is_null());
    handle
}

fn last_error_text() -> String {
    unsafe {
        std::ffi::CStr::from_ptr(vlcsa_ffi::vlcsa_last_error(ptr::null_mut()))
            .to_string_lossy()
            .into_owned()
    }
}

/// One FFI add, returning (sum, cout, cycles).
fn ffi_add(handle: *mut VlcsaEngine, width: usize, a: &UBig, b: &UBig) -> (UBig, bool, u32) {
    let limbs = unsafe { vlcsa_limbs(handle) };
    assert_eq!(limbs, width.div_ceil(64));
    let mut sum = vec![0u64; limbs];
    let mut cout: c_int = -1;
    let mut cycles: u32 = 0;
    let code = unsafe {
        vlcsa_add(
            handle,
            a.limbs().as_ptr(),
            b.limbs().as_ptr(),
            sum.as_mut_ptr(),
            &mut cout,
            &mut cycles,
        )
    };
    assert_eq!(code, VLCSA_OK);
    (UBig::from_limbs(&sum, width), cout != 0, cycles)
}

#[test]
fn add_matches_scalar_reference_across_widths() {
    // 64 exercises the exact-limb case, 96 a masked top limb — at both
    // build word widths (the CI matrix covers W256 and W64).
    for width in [64usize, 96] {
        let reference = BatchRipple::new(width);
        let handle = init(c"vlcsa2", width);
        let mut rng = SplitMix64::seed_from_u64(0x5eed_0000 + width as u64);
        for _ in 0..40 {
            let a = UBig::random(width, &mut rng);
            let b = UBig::random(width, &mut rng);
            let (want_sum, want_cout) = reference.add_one(&a, &b);
            let (sum, cout, cycles) = ffi_add(handle, width, &a, &b);
            assert_eq!(sum, want_sum, "width {width}");
            assert_eq!(cout, want_cout, "width {width}");
            assert!(cycles == 1 || cycles == 2);
        }
        assert_eq!(unsafe { vlcsa_free(handle) }, VLCSA_OK);
    }
}

#[test]
fn sum_reduction_matches_scalar_reference() {
    let width = 128usize;
    let reference = BatchRipple::new(width);
    let handle = init(c"vlcsa1", width);
    let limbs = unsafe { vlcsa_limbs(handle) };
    let mut rng = SplitMix64::seed_from_u64(0xfeed);
    for n in [1usize, 2, 8, 64] {
        let operands: Vec<UBig> = (0..n).map(|_| UBig::random(width, &mut rng)).collect();
        // The reference result: fold with the scalar adder, final carry
        // out of the last resolve is not comparable fold-wise, so pin
        // the sum value only (the reduction's carry semantics are
        // pinned by the serve-level tests).
        let mut want = UBig::zero(width);
        for op in &operands {
            (want, _) = reference.add_one(&want, op);
        }
        let flat: Vec<u64> = operands.iter().flat_map(|o| o.limbs().to_vec()).collect();
        let mut sum = vec![0u64; limbs];
        let code = unsafe {
            vlcsa_sum(
                handle,
                flat.as_ptr(),
                n,
                sum.as_mut_ptr(),
                ptr::null_mut(),
                ptr::null_mut(),
            )
        };
        assert_eq!(code, VLCSA_OK, "n={n}: {}", last_error_text());
        assert_eq!(UBig::from_limbs(&sum, width), want, "n={n}");
    }
    assert_eq!(unsafe { vlcsa_free(handle) }, VLCSA_OK);
}

#[test]
fn auto_routed_tickets_batch_and_report_groups() {
    let width = 64usize;
    let reference = BatchRipple::new(width);
    let handle = init(c"auto", width);
    let mut rng = SplitMix64::seed_from_u64(0xab5eed);
    let pairs: Vec<(UBig, UBig)> = (0..128)
        .map(|_| (UBig::random(width, &mut rng), UBig::random(width, &mut rng)))
        .collect();
    // Submit the whole burst before polling anything — this is what
    // makes the async API batch into wide issue groups.
    let tickets: Vec<u64> = pairs
        .iter()
        .map(|(a, b)| {
            let mut ticket = 0u64;
            let code = unsafe {
                vlcsa_submit(handle, a.limbs().as_ptr(), b.limbs().as_ptr(), &mut ticket)
            };
            assert_eq!(code, VLCSA_OK);
            ticket
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(10);
    for (ticket, (a, b)) in tickets.iter().zip(&pairs) {
        let (want_sum, want_cout) = reference.add_one(a, b);
        let mut sum = vec![0u64; 1];
        let mut cout: c_int = -1;
        loop {
            let code = unsafe {
                vlcsa_poll(
                    handle,
                    *ticket,
                    sum.as_mut_ptr(),
                    &mut cout,
                    ptr::null_mut(),
                )
            };
            if code == VLCSA_OK {
                break;
            }
            assert_eq!(code, VLCSA_PENDING);
            assert!(Instant::now() < deadline, "ticket {ticket} never completed");
            std::thread::yield_now();
        }
        assert_eq!(UBig::from_limbs(&sum, width), want_sum);
        assert_eq!(cout != 0, want_cout);
    }
    // The burst must have coalesced: fewer groups than lanes, and the
    // stats must say so through the C struct.
    let mut stats = VlcsaStats {
        lanes: 0,
        stalls: 0,
        groups: 0,
        queue_depth: 0,
        window_lanes: 0,
        word_bits: 0,
    };
    assert_eq!(unsafe { vlcsa_stats(handle, &mut stats) }, VLCSA_OK);
    assert_eq!(stats.lanes, 128);
    assert!(stats.groups > 0, "groups counter must be non-zero");
    assert!(
        stats.groups < 128,
        "128 burst submits must batch into fewer groups, got {}",
        stats.groups
    );
    assert_eq!(stats.word_bits as usize, vlcsa_word_bits());
    assert_eq!(unsafe { vlcsa_free(handle) }, VLCSA_OK);
}

/// The per-lane introspection surface: after traffic on one concrete
/// engine, exactly one `(engine, width)` lane exists, its name and
/// width come back through the C struct, and a drained handle reports
/// empty per-lane backlogs. A second width on the same handle is not
/// possible (handles are width-bound), so the multi-lane shape is
/// exercised via `auto` in the burst test above feeding several
/// engines; here the contract is the snapshot layout itself.
#[test]
fn lane_snapshots_report_engine_width_and_drained_backlog() {
    let width = 96usize;
    let handle = init(c"carry-select", width);
    // No traffic yet: lanes spin up on first use.
    assert_eq!(unsafe { vlcsa_ffi::vlcsa_lane_count(handle) }, 0);
    let mut count = usize::MAX;
    assert_eq!(
        unsafe { vlcsa_ffi::vlcsa_lanes(handle, ptr::null_mut(), 0, &mut count) },
        VLCSA_OK
    );
    assert_eq!(count, 0);

    let mut rng = SplitMix64::seed_from_u64(0x1a9e5);
    for _ in 0..8 {
        let (a, b) = (UBig::random(width, &mut rng), UBig::random(width, &mut rng));
        let reference = BatchRipple::new(width);
        let (want_sum, want_cout) = reference.add_one(&a, &b);
        let (sum, cout, _) = ffi_add(handle, width, &a, &b);
        assert_eq!(sum, want_sum);
        assert_eq!(cout, want_cout);
    }

    assert_eq!(unsafe { vlcsa_ffi::vlcsa_lane_count(handle) }, 1);
    let zeroed = || vlcsa_ffi::VlcsaLaneStats {
        engine: [0; vlcsa_ffi::VLCSA_LANE_NAME_CAP],
        width: 0,
        depth: u64::MAX,
        occupancy: u64::MAX,
    };
    // A too-small buffer still reports the true total and fills the
    // prefix it was given.
    let mut rows = [zeroed(), zeroed()];
    let mut count = 0usize;
    assert_eq!(
        unsafe { vlcsa_ffi::vlcsa_lanes(handle, rows.as_mut_ptr(), rows.len(), &mut count) },
        VLCSA_OK
    );
    assert_eq!(count, 1);
    let name = unsafe { std::ffi::CStr::from_ptr(rows[0].engine.as_ptr()) };
    assert_eq!(name.to_str().expect("engine name is UTF-8"), "carry-select");
    assert_eq!(rows[0].width, width);
    // Blocking adds have all drained: no queued requests, no open window.
    assert_eq!((rows[0].depth, rows[0].occupancy), (0, 0));
    // The untouched second row really was untouched.
    assert_eq!(rows[1].width, 0);
    assert_eq!(unsafe { vlcsa_free(handle) }, VLCSA_OK);
}

//! `vlcsa-ffi` — the embeddable C ABI over the serving stack: submit,
//! poll, and stats with no socket anywhere.
//!
//! The TCP server and this crate are two transports over the same core:
//! [`vlcsa_serve::Service`] validates, batches, routes (`auto` + SLO
//! degradation) and runs issue groups; here the "wire" is a function
//! call. A host process links `libvlcsa_ffi` (cdylib or staticlib),
//! includes `include/vlcsa.h`, and drives the engines through an opaque
//! handle:
//!
//! * [`vlcsa_init`] / [`vlcsa_free`] — start and stop one engine handle
//!   (engine name incl. `"auto"`, width, worker threads, batching
//!   window, optional SLO budget);
//! * [`vlcsa_add`] / [`vlcsa_sum`] — synchronous adds and n-operand
//!   reductions over raw little-endian `u64` limb buffers — the same
//!   zero-copy limb ingress as the binary wire protocol, no hex and no
//!   bignum allocation on the caller's thread for `add`;
//! * [`vlcsa_submit`] / [`vlcsa_poll`] — the asynchronous ticket API:
//!   submissions batch through the same window the TCP server uses, so
//!   a burst of tickets coalesces into wide issue groups;
//! * [`vlcsa_stats`] / [`vlcsa_lane_count`] / [`vlcsa_lanes`] /
//!   [`vlcsa_last_error`] — aggregate counters (lanes, stalls, issue
//!   groups, queue depth), per-`(engine, width)` lane snapshots (each
//!   lane's own ingress backlog and window occupancy — the scale-out
//!   runtime's unit of isolation), and per-thread / per-handle error
//!   text.
//!
//! # Boundary contract
//!
//! Every entry point returns a stable error code from `vlcsa.h`
//! (`VLCSA_OK`, `VLCSA_PENDING`, `VLCSA_ERR_*`) and **never panics
//! across the boundary**: each body runs under
//! [`std::panic::catch_unwind`] and an escaped panic becomes
//! `VLCSA_ERR_PANIC`. Freed or never-allocated handles are detected via
//! a process-wide live-handle registry, so a double free or a call on a
//! stale pointer reports `VLCSA_ERR_BAD_HANDLE` instead of touching
//! freed memory. Null pointers report `VLCSA_ERR_NULL`.
//!
//! Handles are `Send + Sync`: any thread may call any function on the
//! same handle concurrently, except [`vlcsa_free`], which the host must
//! serialize against in-flight calls on the same handle (the usual
//! close-once contract of C handle APIs).

#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::ffi::{c_char, c_int, CStr, CString};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use bitnum::UBig;
use vlcsa::route::AUTO_ENGINE;
use vlcsa_serve::protocol::{OPERAND_RANGE, WIDTH_RANGE};
use vlcsa_serve::service::{AddResult, ServeConfig, Service, SubmitError};

/// Success.
pub const VLCSA_OK: c_int = 0;
/// The ticket's result is not ready yet ([`vlcsa_poll`] only).
pub const VLCSA_PENDING: c_int = 1;
/// A required pointer argument was null.
pub const VLCSA_ERR_NULL: c_int = -1;
/// The handle is not a live engine (never allocated, or already freed).
pub const VLCSA_ERR_BAD_HANDLE: c_int = -2;
/// The configuration is invalid (unknown engine name, width out of
/// `1..=4096`, non-UTF-8 engine string).
pub const VLCSA_ERR_BAD_CONFIG: c_int = -3;
/// The operands are invalid (operand count outside `1..=64`, or bits
/// set at or above the configured width).
pub const VLCSA_ERR_BAD_OPERANDS: c_int = -4;
/// The ticket is unknown (never issued, or its result already claimed).
pub const VLCSA_ERR_BAD_TICKET: c_int = -5;
/// The service is shutting down.
pub const VLCSA_ERR_STOPPED: c_int = -6;
/// A panic was caught at the boundary — a bug in the library, reported
/// as an error code rather than an abort in the host process.
pub const VLCSA_ERR_PANIC: c_int = -7;

/// The C-visible configuration of one engine handle — must stay layout-
/// identical to `vlcsa_config_t` in `include/vlcsa.h`.
#[repr(C)]
pub struct VlcsaConfig {
    /// Engine name (`"auto"`, `"vlcsa1"`, `"carry-select"`, …); null
    /// selects `"auto"`.
    pub engine: *const c_char,
    /// Operand width in bits, `1..=4096`.
    pub width: usize,
    /// Worker threads running issue groups; 0 picks the default.
    pub threads: usize,
    /// Batching-window flush bound in lanes; 0 picks the default.
    pub max_lanes: usize,
    /// Batching-window flush bound in microseconds; 0 picks the default.
    pub max_wait_micros: u64,
    /// p99 latency budget for `auto` SLO degradation; 0 = off.
    pub slo_micros: u64,
}

/// The C-visible counters snapshot — must stay layout-identical to
/// `vlcsa_stats_t` in `include/vlcsa.h`. Engine totals are aggregated
/// across every engine the handle's traffic touched (under `"auto"`
/// that can be several).
#[repr(C)]
pub struct VlcsaStats {
    /// Lanes (requests) served.
    pub lanes: u64,
    /// Lanes that took the 2-cycle recovery path.
    pub stalls: u64,
    /// Issue groups (batches) run — non-zero once anything was served.
    pub groups: u64,
    /// Requests currently queued ahead of the batcher.
    pub queue_depth: u64,
    /// Lanes pending in the open batching window.
    pub window_lanes: u64,
    /// Lanes per slab word this build batches into (64 or 256).
    pub word_bits: u64,
}

/// Engine-name capacity of [`VlcsaLaneStats`], including the NUL —
/// must match `VLCSA_LANE_NAME_CAP` in `include/vlcsa.h`.
pub const VLCSA_LANE_NAME_CAP: usize = 32;

/// One live `(engine, width)` lane's queue snapshot — must stay
/// layout-identical to `vlcsa_lane_stats_t` in `include/vlcsa.h`. Each
/// lane owns its own ingress queue, batching window and workers, so
/// `depth`/`occupancy` are per-lane backlogs, not shares of a global
/// queue.
#[repr(C)]
pub struct VlcsaLaneStats {
    /// Concrete engine name running this lane, NUL-terminated and
    /// truncated to fit; `auto` traffic appears under the engine the
    /// router picked.
    pub engine: [c_char; VLCSA_LANE_NAME_CAP],
    /// Operand width of this lane.
    pub width: usize,
    /// Requests queued ahead of this lane's batcher.
    pub depth: u64,
    /// Lanes pending in this lane's open batching window.
    pub occupancy: u64,
}

/// One ticket's parking slot: filled by the worker's reply callback,
/// drained by [`vlcsa_poll`].
type Slot = Arc<Mutex<Option<AddResult>>>;

/// The opaque engine handle behind `vlcsa_engine_t`.
pub struct VlcsaEngine {
    service: Service,
    engine: String,
    width: usize,
    limbs: usize,
    next_ticket: AtomicU64,
    tickets: Mutex<HashMap<u64, Slot>>,
    last_error: Mutex<CString>,
}

/// Process-wide set of live handle addresses. Calls verify membership
/// before dereferencing, so stale pointers fail closed with
/// [`VLCSA_ERR_BAD_HANDLE`] instead of reading freed memory.
fn live_handles() -> &'static Mutex<HashSet<usize>> {
    static LIVE: OnceLock<Mutex<HashSet<usize>>> = OnceLock::new();
    LIVE.get_or_init(|| Mutex::new(HashSet::new()))
}

thread_local! {
    /// Error text for failures with no (valid) handle to hang it on.
    static TLS_ERROR: RefCell<CString> = RefCell::new(CString::default());
}

/// Records error text on the handle if one is live, else on the calling
/// thread, and passes the code through.
fn fail(engine: Option<&VlcsaEngine>, code: c_int, message: &str) -> c_int {
    let text = CString::new(message.replace('\0', "?")).unwrap_or_default();
    match engine {
        Some(e) => *e.last_error.lock().expect("last_error lock") = text,
        None => TLS_ERROR.with(|t| *t.borrow_mut() = text),
    }
    code
}

/// Checks handle liveness and reborrows it. The `unsafe` contract is
/// the caller's: a live address in the registry is one we allocated via
/// `Box` in [`vlcsa_init`] and have not freed.
unsafe fn deref_handle<'a>(handle: *mut VlcsaEngine) -> Result<&'a VlcsaEngine, c_int> {
    if handle.is_null() {
        return Err(fail(None, VLCSA_ERR_NULL, "engine handle is null"));
    }
    if !live_handles()
        .lock()
        .expect("live-handle lock")
        .contains(&(handle as usize))
    {
        return Err(fail(
            None,
            VLCSA_ERR_BAD_HANDLE,
            "engine handle is not live (already freed, or never allocated)",
        ));
    }
    Ok(&*handle)
}

/// Maps a service rejection onto the C error-code space.
fn submit_code(err: &SubmitError) -> c_int {
    match err {
        SubmitError::UnknownEngine(_) => VLCSA_ERR_BAD_CONFIG,
        SubmitError::WidthMismatch(..) | SubmitError::BadWidth(_) => VLCSA_ERR_BAD_OPERANDS,
        SubmitError::BadOperandCount(_) | SubmitError::BadLimbs(_) => VLCSA_ERR_BAD_OPERANDS,
        SubmitError::Stopped => VLCSA_ERR_STOPPED,
    }
}

/// Wraps an entry-point body so a panic becomes [`VLCSA_ERR_PANIC`]
/// instead of unwinding into the host's C frames (undefined behavior).
fn guarded(body: impl FnOnce() -> c_int) -> c_int {
    match catch_unwind(AssertUnwindSafe(body)) {
        Ok(code) => code,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic across the FFI boundary".to_string());
            fail(None, VLCSA_ERR_PANIC, &msg)
        }
    }
}

/// Copies a result into the caller's out buffers. `sum` must hold
/// `limbs` limbs; `cout`/`cycles` may be null when the caller does not
/// care.
unsafe fn write_result(
    result: &AddResult,
    limbs: usize,
    sum: *mut u64,
    cout: *mut c_int,
    cycles: *mut u32,
) {
    let out = std::slice::from_raw_parts_mut(sum, limbs);
    out.copy_from_slice(result.sum.limbs());
    if !cout.is_null() {
        *cout = c_int::from(result.cout);
    }
    if !cycles.is_null() {
        *cycles = u32::from(result.cycles);
    }
}

/// Validates that `limbs` is a well-formed operand at `width`: bits at
/// or above the width must be zero (the wire protocols reject these
/// too, so all transports agree on what an operand is).
fn check_top_bits(limbs: &[u64], width: usize) -> Result<(), String> {
    let used = width % 64;
    if used != 0 {
        let top = limbs[limbs.len() - 1];
        if top >> used != 0 {
            return Err(format!("operand has bits set at or above width {width}"));
        }
    }
    Ok(())
}

/// Creates an engine handle.
///
/// On success writes the new handle to `*out` and returns [`VLCSA_OK`];
/// on failure leaves `*out` untouched and returns a negative code (the
/// text is available via `vlcsa_last_error(NULL)` on this thread).
///
/// # Safety
///
/// `config` must point to a valid [`VlcsaConfig`] (its `engine` field
/// null or a valid NUL-terminated string) and `out` to writable storage
/// for one pointer.
#[no_mangle]
pub unsafe extern "C" fn vlcsa_init(
    config: *const VlcsaConfig,
    out: *mut *mut VlcsaEngine,
) -> c_int {
    guarded(|| {
        if config.is_null() || out.is_null() {
            return fail(None, VLCSA_ERR_NULL, "config and out must be non-null");
        }
        let config = &*config;
        if !WIDTH_RANGE.contains(&config.width) {
            return fail(
                None,
                VLCSA_ERR_BAD_CONFIG,
                &format!(
                    "width {} outside {}..={}",
                    config.width,
                    WIDTH_RANGE.start(),
                    WIDTH_RANGE.end()
                ),
            );
        }
        let engine = if config.engine.is_null() {
            AUTO_ENGINE.to_string()
        } else {
            match CStr::from_ptr(config.engine).to_str() {
                Ok(name) => name.to_string(),
                Err(_) => {
                    return fail(None, VLCSA_ERR_BAD_CONFIG, "engine name is not UTF-8");
                }
            }
        };
        // Engine names are width-independent; validate against the
        // registry before spawning any service threads.
        if engine != AUTO_ENGINE
            && !vlcsa::engine::Registry::for_width(64)
                .names()
                .contains(&engine.as_str())
        {
            return fail(
                None,
                VLCSA_ERR_BAD_CONFIG,
                &format!("unknown engine `{engine}`"),
            );
        }
        let defaults = ServeConfig::default();
        let serve = ServeConfig {
            max_lanes: if config.max_lanes == 0 {
                defaults.max_lanes
            } else {
                config.max_lanes
            },
            max_wait: if config.max_wait_micros == 0 {
                defaults.max_wait
            } else {
                Duration::from_micros(config.max_wait_micros)
            },
            workers: if config.threads == 0 {
                defaults.workers
            } else {
                config.threads
            },
            ..defaults
        }
        .with_slo((config.slo_micros != 0).then_some(config.slo_micros));
        let handle = Box::new(VlcsaEngine {
            service: Service::start(serve),
            engine,
            width: config.width,
            limbs: config.width.div_ceil(64),
            next_ticket: AtomicU64::new(1),
            tickets: Mutex::new(HashMap::new()),
            last_error: Mutex::new(CString::default()),
        });
        let raw = Box::into_raw(handle);
        live_handles()
            .lock()
            .expect("live-handle lock")
            .insert(raw as usize);
        *out = raw;
        VLCSA_OK
    })
}

/// Destroys an engine handle: drains in-flight work, joins the worker
/// threads, and releases the handle. Unclaimed tickets are dropped.
/// A second free of the same pointer returns [`VLCSA_ERR_BAD_HANDLE`].
///
/// # Safety
///
/// No other call on `engine` may be in flight or started after this
/// one (close-once, like `fclose`).
#[no_mangle]
pub unsafe extern "C" fn vlcsa_free(engine: *mut VlcsaEngine) -> c_int {
    guarded(|| {
        if engine.is_null() {
            return fail(None, VLCSA_ERR_NULL, "engine handle is null");
        }
        // Claim the address atomically: exactly one free wins; the loser
        // sees a dead handle and never touches the memory.
        if !live_handles()
            .lock()
            .expect("live-handle lock")
            .remove(&(engine as usize))
        {
            return fail(
                None,
                VLCSA_ERR_BAD_HANDLE,
                "engine handle is not live (double free?)",
            );
        }
        // Dropping the service closes the queue and joins every thread.
        drop(Box::from_raw(engine));
        VLCSA_OK
    })
}

/// The number of `u64` limbs per operand (and per sum) at this handle's
/// width: `ceil(width / 64)`. Returns 0 on a dead or null handle.
///
/// # Safety
///
/// `engine` must be null, live, or a previously valid handle (the
/// live-handle registry screens the rest).
#[no_mangle]
pub unsafe extern "C" fn vlcsa_limbs(engine: *mut VlcsaEngine) -> usize {
    guarded(|| match deref_handle(engine) {
        Ok(e) => {
            // `guarded` wants a c_int; limb counts fit comfortably
            // (width <= 4096 means at most 64 limbs).
            e.limbs as c_int
        }
        Err(_) => 0,
    })
    .max(0) as usize
}

/// Lanes per slab word this build batches into: 64 (`--cfg
/// vlcsa_word64`) or 256 (default).
#[no_mangle]
pub extern "C" fn vlcsa_word_bits() -> usize {
    use bitnum::batch::{DefaultWord, Word};
    DefaultWord::LANES
}

/// Synchronous addition: `sum = a + b` at the handle's width, blocking
/// until the batching window flushes and the lane runs. Operands and
/// sum are little-endian `u64` limb buffers of [`vlcsa_limbs`] limbs.
/// `cout` (carry out of the top bit) and `cycles` (1, or 2 after a
/// recovery stall) may be null.
///
/// # Safety
///
/// `a`, `b` and `sum` must each point to [`vlcsa_limbs`]`(engine)`
/// readable (resp. writable) limbs; `cout` and `cycles` must be null or
/// writable.
#[no_mangle]
pub unsafe extern "C" fn vlcsa_add(
    engine: *mut VlcsaEngine,
    a: *const u64,
    b: *const u64,
    sum: *mut u64,
    cout: *mut c_int,
    cycles: *mut u32,
) -> c_int {
    guarded(|| {
        let e = match deref_handle(engine) {
            Ok(e) => e,
            Err(code) => return code,
        };
        if a.is_null() || b.is_null() || sum.is_null() {
            return fail(Some(e), VLCSA_ERR_NULL, "a, b and sum must be non-null");
        }
        let a = std::slice::from_raw_parts(a, e.limbs).to_vec();
        let b = std::slice::from_raw_parts(b, e.limbs).to_vec();
        let (tx, rx) = mpsc::channel();
        let submitted = e.service.submit_limbs(
            &e.engine,
            e.width,
            a,
            b,
            Box::new(move |result| {
                let _ = tx.send(result);
            }),
        );
        if let Err(err) = submitted {
            return fail(Some(e), submit_code(&err), &err.to_string());
        }
        match rx.recv() {
            Ok(result) => {
                write_result(&result, e.limbs, sum, cout, cycles);
                VLCSA_OK
            }
            Err(_) => fail(Some(e), VLCSA_ERR_STOPPED, "service stopped mid-request"),
        }
    })
}

/// Synchronous n-operand reduction: `sum = ops[0] + … + ops[n-1]` at
/// the handle's width, compressed carry-save style so carries resolve
/// exactly once. `ops` is `n` operands of [`vlcsa_limbs`] limbs each,
/// back to back; `n` must be in `1..=64`. `cout` is the carry out of
/// the whole reduction's final resolve.
///
/// # Safety
///
/// `ops` must point to `n * `[`vlcsa_limbs`]`(engine)` readable limbs
/// and `sum` to [`vlcsa_limbs`]`(engine)` writable limbs; `cout` and
/// `cycles` must be null or writable.
#[no_mangle]
pub unsafe extern "C" fn vlcsa_sum(
    engine: *mut VlcsaEngine,
    ops: *const u64,
    n: usize,
    sum: *mut u64,
    cout: *mut c_int,
    cycles: *mut u32,
) -> c_int {
    guarded(|| {
        let e = match deref_handle(engine) {
            Ok(e) => e,
            Err(code) => return code,
        };
        if ops.is_null() || sum.is_null() {
            return fail(Some(e), VLCSA_ERR_NULL, "ops and sum must be non-null");
        }
        // Validate the count BEFORE touching n * limbs of caller
        // memory: a hostile n must fail here, not read out of bounds.
        if !OPERAND_RANGE.contains(&n) {
            return fail(
                Some(e),
                VLCSA_ERR_BAD_OPERANDS,
                &format!(
                    "operand count {n} outside {}..={}",
                    OPERAND_RANGE.start(),
                    OPERAND_RANGE.end()
                ),
            );
        }
        let flat = std::slice::from_raw_parts(ops, n * e.limbs);
        let mut operands = Vec::with_capacity(n);
        for chunk in flat.chunks_exact(e.limbs) {
            // `UBig::from_limbs` masks silently; the FFI contract (like
            // the wire protocols) rejects out-of-width bits instead.
            if let Err(msg) = check_top_bits(chunk, e.width) {
                return fail(Some(e), VLCSA_ERR_BAD_OPERANDS, &msg);
            }
            operands.push(UBig::from_limbs(chunk, e.width));
        }
        match e.service.sum_blocking(&e.engine, &operands) {
            Ok(result) => {
                write_result(&result, e.limbs, sum, cout, cycles);
                VLCSA_OK
            }
            Err(err) => fail(Some(e), submit_code(&err), &err.to_string()),
        }
    })
}

/// Asynchronous addition: queues `a + b` into the batching window and
/// returns a ticket immediately. Many submits from one burst coalesce
/// into the same wide issue group — the point of the async API. Claim
/// the result with [`vlcsa_poll`]; tickets are single-use.
///
/// # Safety
///
/// `a` and `b` must each point to [`vlcsa_limbs`]`(engine)` readable
/// limbs (copied before return); `ticket` must be writable.
#[no_mangle]
pub unsafe extern "C" fn vlcsa_submit(
    engine: *mut VlcsaEngine,
    a: *const u64,
    b: *const u64,
    ticket: *mut u64,
) -> c_int {
    guarded(|| {
        let e = match deref_handle(engine) {
            Ok(e) => e,
            Err(code) => return code,
        };
        if a.is_null() || b.is_null() || ticket.is_null() {
            return fail(Some(e), VLCSA_ERR_NULL, "a, b and ticket must be non-null");
        }
        let a = std::slice::from_raw_parts(a, e.limbs).to_vec();
        let b = std::slice::from_raw_parts(b, e.limbs).to_vec();
        let slot: Slot = Arc::new(Mutex::new(None));
        let fill = Arc::clone(&slot);
        let submitted = e.service.submit_limbs(
            &e.engine,
            e.width,
            a,
            b,
            Box::new(move |result| {
                *fill.lock().expect("ticket slot lock") = Some(result);
            }),
        );
        if let Err(err) = submitted {
            return fail(Some(e), submit_code(&err), &err.to_string());
        }
        let id = e.next_ticket.fetch_add(1, Ordering::Relaxed);
        e.tickets
            .lock()
            .expect("ticket table lock")
            .insert(id, slot);
        *ticket = id;
        VLCSA_OK
    })
}

/// Claims a ticket's result. Returns [`VLCSA_PENDING`] (without
/// blocking) while the lane is still in flight; on [`VLCSA_OK`] the
/// ticket is consumed and a second poll returns
/// [`VLCSA_ERR_BAD_TICKET`].
///
/// # Safety
///
/// `sum` must point to [`vlcsa_limbs`]`(engine)` writable limbs;
/// `cout` and `cycles` must be null or writable.
#[no_mangle]
pub unsafe extern "C" fn vlcsa_poll(
    engine: *mut VlcsaEngine,
    ticket: u64,
    sum: *mut u64,
    cout: *mut c_int,
    cycles: *mut u32,
) -> c_int {
    guarded(|| {
        let e = match deref_handle(engine) {
            Ok(e) => e,
            Err(code) => return code,
        };
        if sum.is_null() {
            return fail(Some(e), VLCSA_ERR_NULL, "sum must be non-null");
        }
        let mut tickets = e.tickets.lock().expect("ticket table lock");
        let Some(slot) = tickets.get(&ticket) else {
            return fail(
                Some(e),
                VLCSA_ERR_BAD_TICKET,
                &format!("ticket {ticket} was never issued or is already claimed"),
            );
        };
        let ready = slot.lock().expect("ticket slot lock").take();
        match ready {
            Some(result) => {
                tickets.remove(&ticket);
                drop(tickets);
                write_result(&result, e.limbs, sum, cout, cycles);
                VLCSA_OK
            }
            None => VLCSA_PENDING,
        }
    })
}

/// Snapshots the handle's service counters into `*out`. Lane, stall and
/// group totals aggregate across every engine the traffic touched
/// (several, when routing under `"auto"`).
///
/// # Safety
///
/// `out` must point to writable storage for one [`VlcsaStats`].
#[no_mangle]
pub unsafe extern "C" fn vlcsa_stats(engine: *mut VlcsaEngine, out: *mut VlcsaStats) -> c_int {
    guarded(|| {
        let e = match deref_handle(engine) {
            Ok(e) => e,
            Err(code) => return code,
        };
        if out.is_null() {
            return fail(Some(e), VLCSA_ERR_NULL, "out must be non-null");
        }
        let report = e.service.stats();
        *out = VlcsaStats {
            lanes: report.total_lanes(),
            stalls: report.total_stalls(),
            groups: report.total_groups(),
            queue_depth: report.queue_depth as u64,
            window_lanes: report.window_lanes as u64,
            word_bits: report.word_bits as u64,
        };
        VLCSA_OK
    })
}

/// The number of live `(engine, width)` lanes on this handle — lanes
/// spin up on first use and live until shutdown. Returns 0 on a null
/// or dead handle.
///
/// # Safety
///
/// `engine` must be null, live, or a previously valid handle (the
/// live-handle registry screens the rest).
#[no_mangle]
pub unsafe extern "C" fn vlcsa_lane_count(engine: *mut VlcsaEngine) -> usize {
    guarded(|| match deref_handle(engine) {
        // `guarded` wants a c_int; the lane count is bounded by the
        // engine-family count times the widths this handle touched.
        Ok(e) => e.service.stats().lanes.len() as c_int,
        Err(_) => 0,
    })
    .max(0) as usize
}

/// Snapshots up to `cap` per-lane rows into `out` and writes the total
/// number of live lanes to `*count`. The total may exceed `cap` — the
/// caller sizes the buffer via [`vlcsa_lane_count`] or retries larger;
/// the copied prefix is still valid either way.
///
/// # Safety
///
/// `out` must point to `cap` writable [`VlcsaLaneStats`] (or be null
/// when `cap` is 0) and `count` to writable storage for one `size_t`.
#[no_mangle]
pub unsafe extern "C" fn vlcsa_lanes(
    engine: *mut VlcsaEngine,
    out: *mut VlcsaLaneStats,
    cap: usize,
    count: *mut usize,
) -> c_int {
    guarded(|| {
        let e = match deref_handle(engine) {
            Ok(e) => e,
            Err(code) => return code,
        };
        if count.is_null() {
            return fail(Some(e), VLCSA_ERR_NULL, "count must be non-null");
        }
        if out.is_null() && cap != 0 {
            return fail(Some(e), VLCSA_ERR_NULL, "out must be non-null when cap > 0");
        }
        let lanes = e.service.stats().lanes;
        *count = lanes.len();
        let copy = cap.min(lanes.len());
        if copy > 0 {
            for (slot, lane) in std::slice::from_raw_parts_mut(out, copy)
                .iter_mut()
                .zip(&lanes)
            {
                let mut name = [0 as c_char; VLCSA_LANE_NAME_CAP];
                for (dst, src) in name
                    .iter_mut()
                    .zip(lane.engine.bytes().take(VLCSA_LANE_NAME_CAP - 1))
                {
                    *dst = src as c_char;
                }
                *slot = VlcsaLaneStats {
                    engine: name,
                    width: lane.width,
                    depth: lane.depth as u64,
                    occupancy: lane.occupancy as u64,
                };
            }
        }
        VLCSA_OK
    })
}

/// The text of the last error: the handle's, or — when `engine` is null
/// or not live — the calling thread's (covering [`vlcsa_init`] and
/// bad-handle failures). The pointer is valid until the next failing
/// call on the same handle (resp. thread); never null, possibly empty.
///
/// # Safety
///
/// `engine` must be null or a pointer previously returned by
/// [`vlcsa_init`] (live or freed — freed handles fall back to the
/// thread's error text rather than being dereferenced).
#[no_mangle]
pub unsafe extern "C" fn vlcsa_last_error(engine: *mut VlcsaEngine) -> *const c_char {
    // No `guarded`: this path allocates nothing and must stay callable
    // while reporting a caught panic.
    if !engine.is_null()
        && live_handles()
            .lock()
            .expect("live-handle lock")
            .contains(&(engine as usize))
    {
        let e = &*engine;
        return e.last_error.lock().expect("last_error lock").as_ptr();
    }
    TLS_ERROR.with(|t| t.borrow().as_ptr())
}

//! Host crate for the repository-root `tests/` directory. The interesting
//! code lives in those integration tests; this library is intentionally
//! empty.

//! Bounded MPMC queues on `Mutex` + `Condvar` — the only concurrency
//! primitives the service layer needs beyond `std::thread`.
//!
//! Producers block in [`Queue::push`] while the queue is full (that is the
//! service's backpressure: a full request queue blocks connection readers,
//! which stops draining their sockets, which pushes back on clients), and
//! consumers block in [`Queue::pop`] while it is empty. [`Queue::close`]
//! wakes everyone: pushes start failing immediately, pops keep returning
//! the already-queued items and then report closure — so a shutdown drains
//! in-flight work instead of dropping it.
//!
//! The deadline variant [`Queue::pop_deadline`] is what a batching window
//! is made of: pop the first request unconditionally, then keep popping
//! with the window's expiry as the deadline.
//!
//! [`ShardedQueue`] keeps the same contract but splits the item storage
//! across several independently locked shards, so many submitter threads
//! funnelling into one hot lane do not serialize on a single deque lock —
//! see its docs for the ordering trade (per-shard FIFO, not global FIFO).
//!
//! # Example
//!
//! ```
//! use vlcsa_serve::queue::Queue;
//!
//! let queue: Queue<u32> = Queue::new(8);
//! queue.push(1).unwrap();
//! queue.push(2).unwrap();
//! queue.close();
//! assert_eq!(queue.push(3), Err(3));       // closed to producers…
//! assert_eq!(queue.pop(), Some(1));        // …but drains to consumers
//! assert_eq!(queue.pop(), Some(2));
//! assert_eq!(queue.pop(), None);           // drained and closed
//! ```

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// What [`Queue::pop_deadline`] observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PopResult<T> {
    /// An item arrived (or was already queued) before the deadline.
    Item(T),
    /// The deadline passed with the queue empty and open.
    TimedOut,
    /// The queue is closed and fully drained.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded MPMC queue — see the module docs for the blocking and
/// close semantics.
pub struct Queue<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Queue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "a queue needs capacity for at least 1 item");
        Self {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Enqueues `item`, blocking while the queue is full.
    ///
    /// # Errors
    ///
    /// Returns the item back if the queue is (or becomes, while blocked)
    /// closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if state.closed {
                return Err(item);
            }
            if state.items.len() < self.capacity {
                state.items.push_back(item);
                self.not_empty.notify_one();
                return Ok(());
            }
            state = self.not_full.wait(state).expect("queue lock");
        }
    }

    /// Dequeues the oldest item, blocking while the queue is empty and
    /// open. Returns `None` once the queue is closed **and** drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = state.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue lock");
        }
    }

    /// Dequeues the oldest item, giving up at `deadline` — the batching
    /// window's wait primitive.
    pub fn pop_deadline(&self, deadline: Instant) -> PopResult<T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = state.items.pop_front() {
                self.not_full.notify_one();
                return PopResult::Item(item);
            }
            if state.closed {
                return PopResult::Closed;
            }
            let now = Instant::now();
            let Some(wait) = deadline
                .checked_duration_since(now)
                .filter(|w| !w.is_zero())
            else {
                return PopResult::TimedOut;
            };
            let (guard, timeout) = self
                .not_empty
                .wait_timeout(state, wait)
                .expect("queue lock");
            state = guard;
            if timeout.timed_out() && state.items.is_empty() && !state.closed {
                return PopResult::TimedOut;
            }
        }
    }

    /// Closes the queue: pending and future pushes fail, pops drain what
    /// is already queued and then report closure. Idempotent.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("queue lock");
        state.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Number of items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// Whether nothing is currently queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One shard of a [`ShardedQueue`]: its own lock, deque, capacity slice
/// and producer-side condvar.
struct Shard<T> {
    items: Mutex<VecDeque<T>>,
    not_full: Condvar,
}

/// The consumer-side gate of a [`ShardedQueue`]: the published-item count
/// and the close flag, guarded by one tiny lock so a consumer can sleep
/// without polling every shard.
struct Gate {
    pending: usize,
    closed: bool,
}

/// A bounded MPMC queue sharded across independently locked deques — the
/// ingress side of a serve lane.
///
/// Same contract as [`Queue`] (bounded, blocking push for backpressure,
/// close-then-drain shutdown) with one structural difference: items live
/// in `shards` separate `Mutex<VecDeque>` stripes and a producer only
/// takes its own stripe's lock plus a constant-time tick on the shared
/// gate, so submitter threads hammering one hot lane contend on the gate's
/// increment instead of serializing whole deque operations and capacity
/// waits behind a single lock.
///
/// The trade is ordering: FIFO holds **per shard**, not globally. The
/// serve protocol is built for that — responses name their request by
/// sequence number precisely because the batching window may complete
/// requests out of submission order (see `protocol` module docs).
///
/// Consumers claim before they scan: `pop` decrements `pending` under the
/// gate lock (so claims never exceed physically published items — `push`
/// publishes to its shard *before* ticking the gate) and then sweeps the
/// shards from a rotating cursor until the claimed item surfaces. With
/// concurrent consumers a sweep can transiently miss (another claimant may
/// drain a shard this sweep already passed), so the sweep loops; it
/// terminates because every removal is matched to a claim, leaving at
/// least one item for each outstanding claim.
///
/// # Example
///
/// ```
/// use vlcsa_serve::queue::ShardedQueue;
///
/// let queue: ShardedQueue<u32> = ShardedQueue::new(8, 4);
/// queue.push(0, 1).unwrap();
/// queue.push(27, 2).unwrap();  // any hint works; hints pick shards
/// assert_eq!(queue.len(), 2);
/// queue.close();
/// assert_eq!(queue.push(0, 3), Err(3));
/// let mut drained = [queue.pop().unwrap(), queue.pop().unwrap()];
/// drained.sort_unstable();
/// assert_eq!(drained, [1, 2]);
/// assert_eq!(queue.pop(), None);
/// ```
pub struct ShardedQueue<T> {
    shards: Vec<Shard<T>>,
    /// Per-shard capacity: the total bound split evenly (rounded up), so
    /// backpressure engages per stripe.
    shard_capacity: usize,
    gate: Mutex<Gate>,
    not_empty: Condvar,
    /// Rotating scan start, so a lone busy shard does not make the sweep
    /// quadratic and early shards get no structural priority.
    cursor: std::sync::atomic::AtomicUsize,
}

impl<T> ShardedQueue<T> {
    /// Creates a queue of `shards` stripes holding at most `capacity`
    /// items in total (each stripe bounds `capacity.div_ceil(shards)`).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `shards` is zero.
    pub fn new(capacity: usize, shards: usize) -> Self {
        assert!(capacity >= 1, "a queue needs capacity for at least 1 item");
        assert!(shards >= 1, "a sharded queue needs at least 1 shard");
        Self {
            shards: (0..shards)
                .map(|_| Shard {
                    items: Mutex::new(VecDeque::new()),
                    not_full: Condvar::new(),
                })
                .collect(),
            shard_capacity: capacity.div_ceil(shards),
            gate: Mutex::new(Gate {
                pending: 0,
                closed: false,
            }),
            not_empty: Condvar::new(),
            cursor: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Number of stripes.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Enqueues `item` on the stripe picked by `shard_hint` (any value —
    /// it is reduced modulo the stripe count), blocking while that stripe
    /// is full. Producers that keep a stable hint (e.g. a per-thread or
    /// per-connection token) never contend on each other's stripe locks.
    ///
    /// # Errors
    ///
    /// Returns the item back if the queue is (or becomes, while blocked)
    /// closed.
    pub fn push(&self, shard_hint: usize, item: T) -> Result<(), T> {
        let shard = &self.shards[shard_hint % self.shards.len()];
        let mut items = shard.items.lock().expect("shard lock");
        loop {
            if items.len() < self.shard_capacity {
                // Publish and tick in one gate critical section, so
                // `pending` never admits a claim for an item that is not
                // physically present in some stripe.
                let mut gate = self.gate.lock().expect("gate lock");
                if gate.closed {
                    return Err(item);
                }
                items.push_back(item);
                gate.pending += 1;
                drop(gate);
                drop(items);
                self.not_empty.notify_one();
                return Ok(());
            }
            if self.gate.lock().expect("gate lock").closed {
                return Err(item);
            }
            items = shard.not_full.wait(items).expect("shard lock");
        }
    }

    /// Claims one published item (or closure) at the gate; `None` when the
    /// caller should keep waiting.
    fn claim(&self, gate: &mut Gate) -> Option<Option<()>> {
        if gate.pending > 0 {
            gate.pending -= 1;
            Some(Some(()))
        } else if gate.closed {
            Some(None)
        } else {
            None
        }
    }

    /// Sweeps the stripes until the claimed item surfaces.
    fn take_claimed(&self) -> T {
        use std::sync::atomic::Ordering;
        let n = self.shards.len();
        let start = self.cursor.fetch_add(1, Ordering::Relaxed);
        loop {
            for off in 0..n {
                let shard = &self.shards[(start + off) % n];
                let mut items = shard.items.lock().expect("shard lock");
                if let Some(item) = items.pop_front() {
                    drop(items);
                    shard.not_full.notify_one();
                    return item;
                }
            }
            // A concurrent claimant drained a stripe behind this sweep;
            // the claim invariant guarantees an item is still out there.
            std::thread::yield_now();
        }
    }

    /// Dequeues an item, blocking while the queue is empty and open.
    /// Returns `None` once the queue is closed **and** drained.
    pub fn pop(&self) -> Option<T> {
        let mut gate = self.gate.lock().expect("gate lock");
        loop {
            if let Some(claim) = self.claim(&mut gate) {
                drop(gate);
                return claim.map(|()| self.take_claimed());
            }
            gate = self.not_empty.wait(gate).expect("gate lock");
        }
    }

    /// Dequeues an item, giving up at `deadline` — the lane batcher's
    /// window-wait primitive.
    pub fn pop_deadline(&self, deadline: Instant) -> PopResult<T> {
        let mut gate = self.gate.lock().expect("gate lock");
        loop {
            if let Some(claim) = self.claim(&mut gate) {
                drop(gate);
                return match claim {
                    Some(()) => PopResult::Item(self.take_claimed()),
                    None => PopResult::Closed,
                };
            }
            let now = Instant::now();
            let Some(wait) = deadline
                .checked_duration_since(now)
                .filter(|w| !w.is_zero())
            else {
                return PopResult::TimedOut;
            };
            let (guard, timeout) = self.not_empty.wait_timeout(gate, wait).expect("gate lock");
            gate = guard;
            if timeout.timed_out() && gate.pending == 0 && !gate.closed {
                return PopResult::TimedOut;
            }
        }
    }

    /// Closes the queue: pending and future pushes fail, pops drain what
    /// is already queued and then report closure. Idempotent.
    pub fn close(&self) {
        let mut gate = self.gate.lock().expect("gate lock");
        gate.closed = true;
        drop(gate);
        self.not_empty.notify_all();
        for shard in &self.shards {
            // Take the stripe lock so a producer between its capacity
            // check and its wait cannot miss the wakeup.
            drop(shard.items.lock().expect("shard lock"));
            shard.not_full.notify_all();
        }
    }

    /// Number of items currently queued (published across all stripes and
    /// not yet claimed) — the lane's queue depth gauge.
    pub fn len(&self) -> usize {
        self.gate.lock().expect("gate lock").pending
    }

    /// Whether nothing is currently queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_order_within_one_producer() {
        let queue = Queue::new(16);
        for i in 0..10 {
            queue.push(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(queue.pop(), Some(i));
        }
    }

    #[test]
    fn full_queue_blocks_until_popped() {
        let queue = Arc::new(Queue::new(2));
        queue.push(1).unwrap();
        queue.push(2).unwrap();
        let producer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.push(3))
        };
        // The producer is blocked on capacity; popping frees a slot.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(queue.pop(), Some(1));
        producer.join().unwrap().unwrap();
        assert_eq!(queue.pop(), Some(2));
        assert_eq!(queue.pop(), Some(3));
    }

    #[test]
    fn deadline_pop_times_out_then_delivers() {
        let queue: Arc<Queue<u8>> = Arc::new(Queue::new(4));
        let deadline = Instant::now() + Duration::from_millis(10);
        assert_eq!(queue.pop_deadline(deadline), PopResult::TimedOut);
        let pusher = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                queue.push(7).unwrap();
            })
        };
        let far = Instant::now() + Duration::from_secs(5);
        assert_eq!(queue.pop_deadline(far), PopResult::Item(7));
        pusher.join().unwrap();
    }

    #[test]
    fn close_wakes_blocked_consumers_and_drains() {
        let queue: Arc<Queue<u8>> = Arc::new(Queue::new(4));
        let consumer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.pop())
        };
        std::thread::sleep(Duration::from_millis(10));
        queue.push(5).unwrap();
        queue.close();
        // The blocked consumer gets the item, not the closure.
        assert_eq!(consumer.join().unwrap(), Some(5));
        assert_eq!(queue.pop(), None);
        assert_eq!(
            queue.pop_deadline(Instant::now() + Duration::from_millis(1)),
            PopResult::Closed
        );
        assert_eq!(queue.push(9), Err(9));
    }

    #[test]
    fn close_wakes_blocked_producers() {
        let queue = Arc::new(Queue::new(1));
        queue.push(1).unwrap();
        let producer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.push(2))
        };
        std::thread::sleep(Duration::from_millis(10));
        queue.close();
        assert_eq!(producer.join().unwrap(), Err(2));
    }

    #[test]
    fn sharded_fifo_within_one_stripe() {
        let queue = ShardedQueue::new(64, 4);
        assert_eq!(queue.shards(), 4);
        for i in 0..10 {
            queue.push(2, i).unwrap(); // one stable hint → one stripe
        }
        for i in 0..10 {
            assert_eq!(queue.pop(), Some(i), "stripe order");
        }
    }

    #[test]
    fn sharded_drains_every_stripe_and_counts() {
        let queue = ShardedQueue::new(64, 3);
        for i in 0..30u32 {
            queue.push(i as usize, i).unwrap(); // hints cover all stripes
        }
        assert_eq!(queue.len(), 30);
        let mut seen: Vec<u32> = (0..30).map(|_| queue.pop().unwrap()).collect();
        assert!(queue.is_empty());
        seen.sort_unstable();
        assert_eq!(seen, (0..30).collect::<Vec<_>>());
    }

    #[test]
    fn sharded_full_stripe_blocks_until_popped() {
        // Total capacity 4 over 2 stripes → 2 per stripe.
        let queue = Arc::new(ShardedQueue::new(4, 2));
        queue.push(0, 1).unwrap();
        queue.push(0, 2).unwrap();
        let producer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.push(0, 3))
        };
        std::thread::sleep(Duration::from_millis(20));
        // Stripe 1 is untouched by stripe 0's backpressure.
        queue.push(1, 9).unwrap();
        assert_eq!(queue.pop(), Some(1));
        producer.join().unwrap().unwrap();
        let mut rest = [
            queue.pop().unwrap(),
            queue.pop().unwrap(),
            queue.pop().unwrap(),
        ];
        rest.sort_unstable();
        assert_eq!(rest, [2, 3, 9]);
    }

    #[test]
    fn sharded_deadline_pop_times_out_then_delivers() {
        let queue: Arc<ShardedQueue<u8>> = Arc::new(ShardedQueue::new(8, 2));
        let deadline = Instant::now() + Duration::from_millis(10);
        assert_eq!(queue.pop_deadline(deadline), PopResult::TimedOut);
        let pusher = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                queue.push(1, 7).unwrap();
            })
        };
        let far = Instant::now() + Duration::from_secs(5);
        assert_eq!(queue.pop_deadline(far), PopResult::Item(7));
        pusher.join().unwrap();
    }

    #[test]
    fn sharded_close_drains_then_reports_closure() {
        let queue: Arc<ShardedQueue<u8>> = Arc::new(ShardedQueue::new(8, 3));
        let consumer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.pop())
        };
        std::thread::sleep(Duration::from_millis(10));
        queue.push(2, 5).unwrap();
        queue.close();
        assert_eq!(consumer.join().unwrap(), Some(5));
        assert_eq!(queue.pop(), None);
        assert_eq!(
            queue.pop_deadline(Instant::now() + Duration::from_millis(1)),
            PopResult::Closed
        );
        assert_eq!(queue.push(0, 9), Err(9));
    }

    #[test]
    fn sharded_close_wakes_blocked_producers() {
        let queue = Arc::new(ShardedQueue::new(2, 2)); // 1 per stripe
        queue.push(0, 1).unwrap();
        let producer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.push(0, 2))
        };
        std::thread::sleep(Duration::from_millis(10));
        queue.close();
        assert_eq!(producer.join().unwrap(), Err(2));
    }

    #[test]
    fn sharded_concurrent_producers_and_consumers_lose_nothing() {
        let queue: Arc<ShardedQueue<u64>> = Arc::new(ShardedQueue::new(16, 4));
        let producers: Vec<_> = (0..4u64)
            .map(|p| {
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        queue.push(p as usize, p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(item) = queue.pop() {
                        got.push(item);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        queue.close();
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expect: Vec<u64> = (0..4u64)
            .flat_map(|p| (0..100).map(move |i| p * 1000 + i))
            .collect();
        expect.sort_unstable();
        assert_eq!(all, expect, "every pushed item popped exactly once");
    }
}

//! A bounded MPMC queue on `Mutex` + `Condvar` — the only concurrency
//! primitives the service layer needs beyond `std::thread`.
//!
//! Producers block in [`Queue::push`] while the queue is full (that is the
//! service's backpressure: a full request queue blocks connection readers,
//! which stops draining their sockets, which pushes back on clients), and
//! consumers block in [`Queue::pop`] while it is empty. [`Queue::close`]
//! wakes everyone: pushes start failing immediately, pops keep returning
//! the already-queued items and then report closure — so a shutdown drains
//! in-flight work instead of dropping it.
//!
//! The deadline variant [`Queue::pop_deadline`] is what a batching window
//! is made of: pop the first request unconditionally, then keep popping
//! with the window's expiry as the deadline.
//!
//! # Example
//!
//! ```
//! use vlcsa_serve::queue::Queue;
//!
//! let queue: Queue<u32> = Queue::new(8);
//! queue.push(1).unwrap();
//! queue.push(2).unwrap();
//! queue.close();
//! assert_eq!(queue.push(3), Err(3));       // closed to producers…
//! assert_eq!(queue.pop(), Some(1));        // …but drains to consumers
//! assert_eq!(queue.pop(), Some(2));
//! assert_eq!(queue.pop(), None);           // drained and closed
//! ```

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// What [`Queue::pop_deadline`] observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PopResult<T> {
    /// An item arrived (or was already queued) before the deadline.
    Item(T),
    /// The deadline passed with the queue empty and open.
    TimedOut,
    /// The queue is closed and fully drained.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded MPMC queue — see the module docs for the blocking and
/// close semantics.
pub struct Queue<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Queue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "a queue needs capacity for at least 1 item");
        Self {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Enqueues `item`, blocking while the queue is full.
    ///
    /// # Errors
    ///
    /// Returns the item back if the queue is (or becomes, while blocked)
    /// closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if state.closed {
                return Err(item);
            }
            if state.items.len() < self.capacity {
                state.items.push_back(item);
                self.not_empty.notify_one();
                return Ok(());
            }
            state = self.not_full.wait(state).expect("queue lock");
        }
    }

    /// Dequeues the oldest item, blocking while the queue is empty and
    /// open. Returns `None` once the queue is closed **and** drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = state.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue lock");
        }
    }

    /// Dequeues the oldest item, giving up at `deadline` — the batching
    /// window's wait primitive.
    pub fn pop_deadline(&self, deadline: Instant) -> PopResult<T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = state.items.pop_front() {
                self.not_full.notify_one();
                return PopResult::Item(item);
            }
            if state.closed {
                return PopResult::Closed;
            }
            let now = Instant::now();
            let Some(wait) = deadline
                .checked_duration_since(now)
                .filter(|w| !w.is_zero())
            else {
                return PopResult::TimedOut;
            };
            let (guard, timeout) = self
                .not_empty
                .wait_timeout(state, wait)
                .expect("queue lock");
            state = guard;
            if timeout.timed_out() && state.items.is_empty() && !state.closed {
                return PopResult::TimedOut;
            }
        }
    }

    /// Closes the queue: pending and future pushes fail, pops drain what
    /// is already queued and then report closure. Idempotent.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("queue lock");
        state.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Number of items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// Whether nothing is currently queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_order_within_one_producer() {
        let queue = Queue::new(16);
        for i in 0..10 {
            queue.push(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(queue.pop(), Some(i));
        }
    }

    #[test]
    fn full_queue_blocks_until_popped() {
        let queue = Arc::new(Queue::new(2));
        queue.push(1).unwrap();
        queue.push(2).unwrap();
        let producer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.push(3))
        };
        // The producer is blocked on capacity; popping frees a slot.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(queue.pop(), Some(1));
        producer.join().unwrap().unwrap();
        assert_eq!(queue.pop(), Some(2));
        assert_eq!(queue.pop(), Some(3));
    }

    #[test]
    fn deadline_pop_times_out_then_delivers() {
        let queue: Arc<Queue<u8>> = Arc::new(Queue::new(4));
        let deadline = Instant::now() + Duration::from_millis(10);
        assert_eq!(queue.pop_deadline(deadline), PopResult::TimedOut);
        let pusher = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                queue.push(7).unwrap();
            })
        };
        let far = Instant::now() + Duration::from_secs(5);
        assert_eq!(queue.pop_deadline(far), PopResult::Item(7));
        pusher.join().unwrap();
    }

    #[test]
    fn close_wakes_blocked_consumers_and_drains() {
        let queue: Arc<Queue<u8>> = Arc::new(Queue::new(4));
        let consumer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.pop())
        };
        std::thread::sleep(Duration::from_millis(10));
        queue.push(5).unwrap();
        queue.close();
        // The blocked consumer gets the item, not the closure.
        assert_eq!(consumer.join().unwrap(), Some(5));
        assert_eq!(queue.pop(), None);
        assert_eq!(
            queue.pop_deadline(Instant::now() + Duration::from_millis(1)),
            PopResult::Closed
        );
        assert_eq!(queue.push(9), Err(9));
    }

    #[test]
    fn close_wakes_blocked_producers() {
        let queue = Arc::new(Queue::new(1));
        queue.push(1).unwrap();
        let producer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.push(2))
        };
        std::thread::sleep(Duration::from_millis(10));
        queue.close();
        assert_eq!(producer.join().unwrap(), Err(2));
    }
}

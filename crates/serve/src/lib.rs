//! `vlcsa-serve` — a batching request/response service over the adder
//! engines: the paper's variable-latency trade-off under real traffic.
//!
//! The point of a variable-latency adder is average-case service: 1-cycle
//! speculation with rare 2-cycle recoveries only pays off when a stream of
//! requests flows through the unit and the stalls are absorbed by
//! queueing. This crate is that serving-shaped workload for the
//! reproduction. Clients submit additions over TCP, each naming any engine
//! of [`vlcsa::engine::Registry`]; a bounded queue and a batching window
//! (max lanes / max wait) pack the stream into per-engine
//! [`WideSlab`](bitnum::batch::WideSlab) issue groups; a worker pool runs
//! the groups through the sharded [`Executor`](vlcsa::exec::Executor); and
//! every response carries the lane's exact sum, carry-out and cycle count,
//! so VLCSA stall accounting is visible end to end.
//!
//! The layers, bottom up:
//!
//! * [`queue`] — the bounded MPMC queues, plain and sharded
//!   (backpressure + clean shutdown);
//! * [`protocol`] — the newline-delimited text wire format;
//! * [`binary`] — wire protocol v2: length-prefixed frames whose operands
//!   are raw little-endian limbs, negotiated per connection via a `HELLO`
//!   line ([`Client::connect_binary`]) — the zero-copy ingress path;
//! * [`service`] — the transport-independent core: validation and
//!   routing, then per-`(engine, width)` worker lanes, each owning a
//!   sharded ingress queue, a batching window over
//!   [`vlcsa::group::LaneBuilder`] and its own worker pool — a stalling
//!   engine head-of-line-blocks only its own lane;
//! * [`session`] — transport-independent request dispatch over sink
//!   traits, shared by the TCP server and socket-free embedders (the
//!   `vlcsa-ffi` C ABI);
//! * [`server`] / [`client`] — the TCP front-end and the client library.
//!
//! Requests may also name the pseudo-engine `auto`: submitters resolve it
//! per request through [`vlcsa::route::Router`] — EWMA cycles/op
//! estimates fed by every completed group, degrading to a fixed-latency
//! family when the `SLO <micros>` p99 budget is breached — and the
//! request then rides the chosen engine's lane. `STATS` reports the
//! current route per width, the budget in force, and every lane's queue
//! depth and window occupancy.
//!
//! # Quick start
//!
//! ```
//! use bitnum::UBig;
//! use vlcsa_serve::{Client, ServeConfig, Server};
//!
//! let server = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//!
//! // Engines are discoverable…
//! assert!(client.engines().unwrap().contains(&"vlcsa2".to_string()));
//!
//! // …and additions answer with latency accounting.
//! let a = UBig::from_u128(u64::MAX as u128, 64);
//! let b = UBig::from_u128(1, 64);
//! let response = client.add("vlcsa1", &a, &b).unwrap();
//! assert_eq!(response.sum.to_u128(), Some(0)); // u64::MAX + 1 wraps at width 64
//! assert!(response.cout);
//! assert!(response.cycles == 1 || response.cycles == 2);
//!
//! // One request can carry a whole reduction: the server compresses the
//! // operands carry-save style and resolves carries exactly once.
//! let ops: Vec<UBig> = (1..=8).map(|v| UBig::from_u128(v, 64)).collect();
//! assert_eq!(client.sum("vlcsa1", &ops).unwrap().sum.to_u128(), Some(36));
//!
//! client.close();
//! server.shutdown();
//! ```

// The default build carries no `unsafe` at all. The `reactor` feature
// needs raw epoll syscalls, so there the crate-wide wall drops to `deny`
// and exactly one module (`reactor::sys` and its call sites) opts out
// with per-site `SAFETY` arguments.
#![cfg_attr(not(feature = "reactor"), forbid(unsafe_code))]
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod binary;
pub mod client;
pub mod protocol;
pub mod queue;
#[cfg(feature = "reactor")]
mod reactor;
pub mod server;
pub mod service;
pub mod session;

pub use client::{AddResponse, Client, ClientError};
pub use protocol::{
    EngineStats, ErrorCode, LaneStats, Request, RequestError, Response, SloAction, StatsReport,
};
pub use server::Server;
pub use service::{AddResult, RegistryCache, ServeConfig, Service, SubmitError};
pub use session::{ByteSession, FeedOutcome, FrameSink, ResponseSink};
pub use vlcsa::program::Program;
pub use vlcsa::route::{RouteStat, Router, AUTO_ENGINE};

//! The TCP front-end: a listener, one reader thread per connection, and
//! response writing from the worker threads.
//!
//! Each accepted connection gets a reader thread that parses request lines
//! ([`crate::protocol`]) and submits them to the shared [`Service`]. A
//! connection whose **first** non-empty line is exactly
//! [`HELLO_LINE`] upgrades to the binary
//! framing of [`crate::binary`] instead — the server echoes the line and
//! both directions speak frames from then on; every other connection is
//! text forever. The
//! write half of the socket is wrapped in an `Arc<Mutex<TcpStream>>`; each
//! `ADD`'s reply callback captures that handle plus the request's sequence
//! number, so worker threads write `OK` lines (or `OK` frames) directly to
//! the right
//! client whenever their issue group completes — out of submission order
//! when the batching window split a connection's requests across groups.
//! Validation and protocol errors are answered inline by the reader as
//! `ERR` lines; nothing short of a socket error drops a connection.
//! Because workers write to client sockets directly, a client that stops
//! reading could otherwise pin a worker on its full send buffer and
//! head-of-line-block every other connection — so each accepted socket
//! carries [`Server::WRITE_TIMEOUT`], after which that client's response
//! is dropped (its connection is already broken) and the worker moves on.
//!
//! [`Server::shutdown`] is clean and bounded: stop accepting, shut the
//! sockets down (unblocking the readers), answer everything already
//! accepted (worker writes to a shut-down socket are ignored), and join
//! every thread.
//!
//! With the `reactor` cargo feature, the one-reader-thread-per-connection
//! model is replaced by the [`crate::session::ByteSession`] state machine
//! driven from an `epoll(7)` reader pool (see the `reactor` module) —
//! many idle connections, a handful of threads. Everything else — the
//! service core, the wire protocols, the write path, the shutdown
//! contract — is identical, and without the feature none of that code is
//! even compiled.
//!
//! # Example
//!
//! ```
//! use bitnum::UBig;
//! use vlcsa_serve::{Client, ServeConfig, Server};
//!
//! let server = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! let response = client
//!     .add("carry-select", &UBig::from_u128(2, 32), &UBig::from_u128(3, 32))
//!     .unwrap();
//! assert_eq!(response.sum.to_u128(), Some(5));
//! client.close();
//! server.shutdown();
//! ```

use std::collections::HashMap;
use std::io::Write;
#[cfg(not(feature = "reactor"))]
use std::io::{BufRead, BufReader};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

#[cfg(not(feature = "reactor"))]
use crate::binary::{self, FrameReadError, HELLO_LINE};
use crate::protocol::Response;
#[cfg(not(feature = "reactor"))]
use crate::protocol::{ErrorCode, RequestError};
use crate::service::{ServeConfig, Service};
#[cfg(not(feature = "reactor"))]
use crate::session;
use crate::session::{FrameSink, ResponseSink};

/// The text sink over a shared socket: writes one response line,
/// swallowing write errors — a worker answering after the client hung up
/// (or after shutdown) has nobody left to tell. A failed (or timed-out)
/// write may have sent a partial line, so the socket is shut down: a
/// desynced stream is unrecoverable and killing it also unblocks the
/// connection's reader.
impl ResponseSink for Mutex<TcpStream> {
    fn send(&self, response: &Response) {
        let line = crate::protocol::format_response(response);
        let mut stream = self.lock().expect("connection write lock");
        if stream
            .write_all(line.as_bytes())
            .and_then(|()| stream.write_all(b"\n"))
            .is_err()
        {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

/// The frame sink over a shared socket, with the same swallow-and-shutdown
/// failure policy as the text sink — a partial frame desyncs the stream
/// just as a partial line does.
impl FrameSink for Mutex<TcpStream> {
    fn send_frame(&self, frame: &[u8]) {
        let mut stream = self.lock().expect("connection write lock");
        if stream.write_all(frame).is_err() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

/// One connection's read loop: parse, validate, submit; answer errors
/// inline. Returns when the client disconnects or the socket is shut down.
///
/// Protocol negotiation happens here, once: if the first non-empty line
/// is exactly [`HELLO_LINE`], the server echoes it and hands the
/// connection to [`serve_binary`] — that decision point is the only one,
/// so text responses and frames can never interleave on one socket. A
/// `HELLO` anywhere later is just an unknown text command
/// (`ERR 0 bad-request`).
#[cfg(not(feature = "reactor"))]
fn serve_connection(stream: TcpStream, service: &Service) {
    let mut reader = match stream.try_clone() {
        Ok(read_half) => BufReader::new(read_half),
        Err(_) => return,
    };
    let writer = Arc::new(Mutex::new(stream));
    let mut first = true;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        if first && line.trim_end_matches(['\r', '\n']) == HELLO_LINE {
            // The ack is the upgrade line itself, echoed; it is the last
            // text this connection ever sees. The upgrade exchange counts
            // as neither protocol's traffic.
            {
                let mut stream = writer.lock().expect("connection write lock");
                if stream
                    .write_all(HELLO_LINE.as_bytes())
                    .and_then(|()| stream.write_all(b"\n"))
                    .is_err()
                {
                    let _ = stream.shutdown(Shutdown::Both);
                    return;
                }
            }
            serve_binary(reader, &writer, service);
            return;
        }
        first = false;
        service.note_text_request();
        session::dispatch_text(&line, service, &writer);
    }
}

/// The binary read loop, entered once per upgraded connection and never
/// left. This is pure transport: read frames, hand them to
/// [`session::dispatch_binary`]. Error policy, per frame:
///
/// - a clean close at a frame boundary, or a socket error / disconnect
///   mid-frame: return (nothing to answer a half-frame with);
/// - an untrustworthy header (unknown version byte, length prefix over
///   [`binary::MAX_FRAME_BODY`]): answer one `ERR` frame and close — the
///   stream cannot be resynchronized;
/// - a malformed **body**: dispatch answers an `ERR` frame and the loop
///   keeps going — the length prefix already delimited the bad frame, so
///   later frames on the same connection are unaffected.
#[cfg(not(feature = "reactor"))]
fn serve_binary(
    mut reader: BufReader<TcpStream>,
    writer: &Arc<Mutex<TcpStream>>,
    service: &Service,
) {
    // Engine ids are indices into the width-independent name listing —
    // the same listing (and the same `lookup` error surface) the text
    // `ENGINES` command exposes.
    let names = service.registries().at(64).names();
    loop {
        let (opcode, body) = match binary::read_frame(&mut reader) {
            Ok(Some(frame)) => frame,
            Ok(None) => return,
            Err(FrameReadError::Io(_)) => return,
            Err(poison) => {
                service.note_binary_request();
                writer.send_frame(&binary::encode_err(&RequestError {
                    seq: 0,
                    code: ErrorCode::BadRequest,
                    message: poison.to_string(),
                }));
                let _ = writer
                    .lock()
                    .expect("connection write lock")
                    .shutdown(Shutdown::Both);
                return;
            }
        };
        service.note_binary_request();
        session::dispatch_binary(opcode, &body, &names, service, writer);
    }
}

/// Hands one accepted connection to the epoll reactor: the original
/// stream becomes the watched read half, a clone becomes the shared
/// write half, and `on_close` keeps the server's connection registry in
/// sync with the reactor's. On any setup failure the connection is
/// dropped (and deregistered) — the same fate a failed `try_clone` has
/// on the threaded path.
#[cfg(feature = "reactor")]
fn attach_to_reactor(
    reactor: &crate::reactor::Reactor,
    stream: TcpStream,
    conn_id: u64,
    connections: &Arc<Mutex<HashMap<u64, TcpStream>>>,
) {
    let deregister = |connections: &Mutex<HashMap<u64, TcpStream>>| {
        connections
            .lock()
            .expect("connection registry lock")
            .remove(&conn_id);
    };
    match stream.try_clone() {
        Ok(writer) => {
            let conns = Arc::clone(connections);
            let on_close = Box::new(move || {
                conns
                    .lock()
                    .expect("connection registry lock")
                    .remove(&conn_id);
            });
            if reactor
                .register(stream, Arc::new(Mutex::new(writer)), on_close)
                .is_err()
            {
                deregister(connections);
            }
        }
        Err(_) => deregister(connections),
    }
}

/// The running TCP server — see the module docs and example.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    service: Option<Arc<Service>>,
    accept_thread: Option<JoinHandle<()>>,
    connections: Arc<Mutex<HashMap<u64, TcpStream>>>,
    reader_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    #[cfg(feature = "reactor")]
    reactor: Option<Arc<crate::reactor::Reactor>>,
}

impl Server {
    /// How long a worker will wait on one client's full send buffer
    /// before abandoning that response. A client that stops reading gets
    /// its replies dropped after this bound instead of wedging the shared
    /// worker pool (head-of-line blocking across connections).
    pub const WRITE_TIMEOUT: Duration = Duration::from_secs(5);

    /// Binds `addr` (use port 0 for an OS-assigned port), starts the
    /// service core and the accept loop.
    ///
    /// # Errors
    ///
    /// Returns the bind error.
    pub fn start(addr: impl ToSocketAddrs, config: ServeConfig) -> std::io::Result<Self> {
        Self::start_with_service(addr, Service::start(config))
    }

    /// Like [`Server::start`], but over an already-built [`Service`] —
    /// the seam for serving custom routers or injected registries
    /// ([`Service::start_custom`]) over real sockets.
    ///
    /// # Errors
    ///
    /// Returns the bind error (the feature-gated reactor build can also
    /// surface an `epoll` setup error). The service is dropped — and
    /// thereby drained — on the error path.
    pub fn start_with_service(addr: impl ToSocketAddrs, service: Service) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let service = Arc::new(service);
        #[cfg(feature = "reactor")]
        let reactor =
            crate::reactor::Reactor::start(Arc::clone(&service), Self::reactor_readers())?;
        let connections: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
        let reader_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept_thread = {
            let stop = Arc::clone(&stop);
            #[cfg(not(feature = "reactor"))]
            let service = Arc::clone(&service);
            let connections = Arc::clone(&connections);
            #[cfg(not(feature = "reactor"))]
            let reader_threads = Arc::clone(&reader_threads);
            #[cfg(feature = "reactor")]
            let reactor = Arc::clone(&reactor);
            std::thread::spawn(move || {
                let mut next_conn_id = 0u64;
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // Responses are single short lines; without NODELAY,
                    // Nagle + delayed ACK quantizes every round trip to
                    // tens of milliseconds. The write timeout bounds how
                    // long a worker can be held by one stalled client.
                    stream.set_nodelay(true).ok();
                    stream.set_write_timeout(Some(Self::WRITE_TIMEOUT)).ok();
                    let conn_id = next_conn_id;
                    next_conn_id += 1;
                    if let Ok(registered) = stream.try_clone() {
                        connections
                            .lock()
                            .expect("connection registry lock")
                            .insert(conn_id, registered);
                    }
                    #[cfg(not(feature = "reactor"))]
                    {
                        let service = Arc::clone(&service);
                        let conns = Arc::clone(&connections);
                        let handle = std::thread::spawn(move || {
                            serve_connection(stream, &service);
                            // Deregister on exit so a long-running server
                            // does not accumulate one open fd per dead
                            // connection.
                            conns
                                .lock()
                                .expect("connection registry lock")
                                .remove(&conn_id);
                        });
                        // Reap finished readers here, for the same reason.
                        let finished: Vec<JoinHandle<()>> = {
                            let mut handles = reader_threads.lock().expect("reader registry lock");
                            let (done, live) = handles.drain(..).partition(|h| h.is_finished());
                            *handles = live;
                            handles.push(handle);
                            done
                        };
                        for done in finished {
                            // Already returned; join cannot block.
                            let _ = done.join();
                        }
                    }
                    #[cfg(feature = "reactor")]
                    attach_to_reactor(&reactor, stream, conn_id, &connections);
                }
            })
        };

        Ok(Self {
            addr,
            stop,
            service: Some(service),
            accept_thread: Some(accept_thread),
            connections,
            reader_threads,
            #[cfg(feature = "reactor")]
            reactor: Some(reactor),
        })
    }

    /// Reader-pool size for the reactor build: a few threads overlap a
    /// few concurrently-chatty connections; idle ones cost nothing.
    #[cfg(feature = "reactor")]
    fn reactor_readers() -> usize {
        std::thread::available_parallelism()
            .map_or(2, usize::from)
            .clamp(1, 4)
    }

    /// The bound address (with the OS-assigned port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of currently registered connections. Dead connections are
    /// deregistered by their reader threads (and their handles reaped on
    /// the next accept), so a long-running server's registries track live
    /// clients, not connection history — this is the observable for that.
    pub fn open_connections(&self) -> usize {
        self.connections
            .lock()
            .expect("connection registry lock")
            .len()
    }

    /// Stops accepting, shuts every connection's socket down, answers the
    /// already-accepted requests, and joins all threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection; if the
        // listener is somehow unreachable the loop is already dead.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        for (_, stream) in self
            .connections
            .lock()
            .expect("connection registry lock")
            .drain()
        {
            let _ = stream.shutdown(Shutdown::Both);
        }
        // With the sockets already shut down, every pool thread's next
        // read returns, so the join inside is bounded; the reactor binding
        // drops at the end of the block, releasing its `Arc<Service>`
        // clone so `into_inner` below sees the last handle.
        #[cfg(feature = "reactor")]
        if let Some(reactor) = self.reactor.take() {
            reactor.shutdown();
        }
        let readers: Vec<_> = self
            .reader_threads
            .lock()
            .expect("reader registry lock")
            .drain(..)
            .collect();
        for handle in readers {
            let _ = handle.join();
        }
        // The readers are gone, so nothing submits anymore; this drains
        // and answers what was accepted (writes to dead sockets no-op).
        // The joined readers dropped their `Arc` clones, so `into_inner`
        // succeeds; if it ever did not, `Service::drop` closes and joins.
        if let Some(service) = self.service.take().and_then(Arc::into_inner) {
            service.shutdown();
        }
    }
}

impl Drop for Server {
    /// A dropped (not shut down) server still stops its accept loop so the
    /// listener thread cannot outlive the handle.
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The pool threads notice within their wait timeout, exit, and
        // drop their reactor handles — no join needed here, mirroring the
        // reader threads being left to unblock on their own.
        #[cfg(feature = "reactor")]
        if let Some(reactor) = &self.reactor {
            reactor.request_stop();
        }
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

//! A feature-gated `epoll(7)` reactor: many idle connections multiplexed
//! onto a small reader pool.
//!
//! The default front-end spends one blocking reader thread per
//! connection — simple, but a server holding thousands of mostly-idle
//! clients pays a thread (stack, scheduler slot) for each. With the
//! `reactor` feature, accepted sockets are instead registered with one
//! shared epoll instance and a fixed pool of reader threads waits on it;
//! per-connection protocol state lives in a
//! [`ByteSession`](crate::session::ByteSession), which consumes whatever
//! byte slice a readiness event delivers.
//!
//! Design, and why each choice:
//!
//! * **Blocking sockets, level-triggered events.** Workers still write
//!   responses with plain blocking `write_all` under the socket mutex
//!   (bounded by the server's write timeout), so the sockets stay in
//!   blocking mode and only *reads* are event-driven. Level-triggered
//!   `EPOLLIN` on a connected TCP socket means data (or EOF) is pending,
//!   so the single `read` per event does not block; in the rare spurious
//!   case it parks one pool thread on that socket until its client speaks
//!   or leaves — bounded impact, no data loss, no busy loop.
//! * **`EPOLLONESHOT`, one read per event, rearm after processing.** A
//!   connection is owned by at most one pool thread at a time, so its
//!   session state needs only a plain mutex and bytes are fed in arrival
//!   order. Rearming only after `feed` returns keeps per-connection
//!   processing serialized without parking other connections.
//! * **Raw `extern "C"` bindings.** The crate is dependency-free and the
//!   container adds nothing; the four calls needed (`epoll_create1`,
//!   `epoll_ctl`, `epoll_wait`, `close`) are declared directly in [`sys`],
//!   the only module in the crate allowed `unsafe`.
//!
//! Backpressure is unchanged: a full lane ingress queue blocks the
//! feeding pool thread inside `Service::submit`, the unread socket bytes
//! back up, and TCP flow control pushes the stall to the client — the
//! same path the blocking front-end takes, with the pool absorbing it a
//! few connections at a time instead of one thread each.

use std::collections::HashMap;
use std::io::Read;
use std::net::{Shutdown, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::service::Service;
use crate::session::{ByteSession, FeedOutcome};

/// The raw `epoll(7)` surface: constants, the event struct, and the four
/// syscall wrappers, declared directly so the crate stays dependency-free.
/// This is the only `unsafe` in the crate, and it is all FFI declaration —
/// every call site carries its own `SAFETY` argument.
#[allow(unsafe_code)]
pub(crate) mod sys {
    /// `EPOLL_CLOEXEC`: the epoll fd does not leak across `exec`.
    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    /// `epoll_ctl` op: register an fd.
    pub const EPOLL_CTL_ADD: i32 = 1;
    /// `epoll_ctl` op: deregister an fd.
    pub const EPOLL_CTL_DEL: i32 = 2;
    /// `epoll_ctl` op: rearm / change an fd's registration.
    pub const EPOLL_CTL_MOD: i32 = 3;
    /// Readable (data or EOF pending, level-triggered).
    pub const EPOLLIN: u32 = 0x1;
    /// Peer shut its write half; surfaces as readability with EOF.
    pub const EPOLLRDHUP: u32 = 0x2000;
    /// Disarm after delivering one event; rearm with `EPOLL_CTL_MOD`.
    pub const EPOLLONESHOT: u32 = 1 << 30;

    /// The kernel's `struct epoll_event`. On x86 it is packed (the
    /// 64-bit `data` sits at offset 4); other Linux targets use natural
    /// alignment — the `cfg_attr` split mirrors the kernel UAPI header.
    #[derive(Clone, Copy)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
    #[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
    pub struct EpollEvent {
        /// Event mask (`EPOLLIN | …`).
        pub events: u32,
        /// Caller-chosen cookie, delivered back verbatim (our token).
        pub data: u64,
    }

    unsafe extern "C" {
        /// `epoll_create1(2)`: a new epoll instance; `-1` + `errno` on
        /// failure.
        pub fn epoll_create1(flags: i32) -> i32;
        /// `epoll_ctl(2)`: add/mod/del `fd` on `epfd`.
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        /// `epoll_wait(2)`: up to `maxevents` ready events into `events`.
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        /// `close(2)` — for the epoll fd itself, which is not wrapped in
        /// any std type.
        pub fn close(fd: i32) -> i32;
    }
}

/// Owns the epoll file descriptor; closed exactly once, on drop.
struct EpollFd(i32);

impl Drop for EpollFd {
    fn drop(&mut self) {
        // SAFETY: `self.0` came from a successful `epoll_create1` and is
        // owned exclusively by this wrapper — nothing else closes it, so
        // this is the single close of a valid, open fd.
        #[allow(unsafe_code)]
        unsafe {
            sys::close(self.0)
        };
    }
}

/// How many ready events one `epoll_wait` call collects.
const EVENT_BATCH: usize = 64;
/// The `epoll_wait` timeout in milliseconds — the bound on how long a
/// stop request waits for an idle pool thread to notice it.
const WAIT_MS: i32 = 50;
/// Read size per readiness event; a whole batch of pipelined frames fits.
const READ_BUF: usize = 16 * 1024;

/// One registered connection: the read half the epoll instance watches
/// plus the protocol state machine feeding off it.
struct Conn {
    stream: TcpStream,
    session: Mutex<ByteSession<Mutex<TcpStream>>>,
    /// Runs once when the connection is deregistered (EOF, error, poison,
    /// or reactor shutdown) — the server drops its registry entry here.
    on_close: Box<dyn Fn() + Send + Sync>,
}

/// The reactor: one epoll instance, a token→connection registry, and the
/// reader pool draining readiness events. See the module docs.
pub(crate) struct Reactor {
    epfd: EpollFd,
    service: Arc<Service>,
    conns: Mutex<HashMap<u64, Arc<Conn>>>,
    next_token: AtomicU64,
    stop: AtomicBool,
    pool: Mutex<Vec<JoinHandle<()>>>,
}

impl Reactor {
    /// Creates the epoll instance and spawns `readers` pool threads.
    ///
    /// # Errors
    ///
    /// Returns the `epoll_create1` error.
    pub(crate) fn start(service: Arc<Service>, readers: usize) -> std::io::Result<Arc<Self>> {
        assert!(readers >= 1, "a reactor needs at least one reader");
        // SAFETY: no pointers; `epoll_create1` takes a flags word and
        // returns a new fd or -1.
        #[allow(unsafe_code)]
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        let reactor = Arc::new(Self {
            epfd: EpollFd(epfd),
            service,
            conns: Mutex::new(HashMap::new()),
            next_token: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            pool: Mutex::new(Vec::new()),
        });
        let mut pool = reactor.pool.lock().expect("reactor pool lock");
        for _ in 0..readers {
            let reactor = Arc::clone(&reactor);
            pool.push(std::thread::spawn(move || reactor.event_loop()));
        }
        drop(pool);
        Ok(reactor)
    }

    /// Registers a connection: `stream` is the read half the reactor
    /// watches, `writer` the shared write half responses leave through,
    /// `on_close` the deregistration callback.
    ///
    /// # Errors
    ///
    /// Returns the `epoll_ctl` error (the connection is not retained).
    pub(crate) fn register(
        &self,
        stream: TcpStream,
        writer: Arc<Mutex<TcpStream>>,
        on_close: Box<dyn Fn() + Send + Sync>,
    ) -> std::io::Result<()> {
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        let fd = stream.as_raw_fd();
        let conn = Arc::new(Conn {
            stream,
            session: Mutex::new(ByteSession::new(writer)),
            on_close,
        });
        self.conns
            .lock()
            .expect("reactor registry lock")
            .insert(token, conn);
        let mut event = sys::EpollEvent {
            events: sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLONESHOT,
            data: token,
        };
        // SAFETY: `epfd` is this reactor's open epoll fd, `fd` is the
        // open socket owned by the `Conn` just stored (so it outlives the
        // call), and `event` is a live, writable `epoll_event`.
        #[allow(unsafe_code)]
        let rc = unsafe { sys::epoll_ctl(self.epfd.0, sys::EPOLL_CTL_ADD, fd, &mut event) };
        if rc < 0 {
            let err = std::io::Error::last_os_error();
            self.conns
                .lock()
                .expect("reactor registry lock")
                .remove(&token);
            return Err(err);
        }
        Ok(())
    }

    /// Asks the pool to stop without joining it — the non-blocking half
    /// of shutdown, also safe from `Drop` paths.
    pub(crate) fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Stops the pool, joins it, and drops every registered connection
    /// (shutting their sockets down, firing their `on_close`). After this
    /// the caller's `Arc` is the last one, so dropping it frees the
    /// reactor and its `Arc<Service>`.
    pub(crate) fn shutdown(&self) {
        self.request_stop();
        let pool: Vec<_> = self
            .pool
            .lock()
            .expect("reactor pool lock")
            .drain(..)
            .collect();
        for handle in pool {
            let _ = handle.join();
        }
        let conns: Vec<_> = self
            .conns
            .lock()
            .expect("reactor registry lock")
            .drain()
            .collect();
        for (_, conn) in conns {
            let _ = conn.stream.shutdown(Shutdown::Both);
            (conn.on_close)();
        }
    }

    /// One pool thread: wait for readiness, service each event with a
    /// single read, rearm. The timeout bounds the stop-flag check.
    fn event_loop(&self) {
        let mut events = [sys::EpollEvent { events: 0, data: 0 }; EVENT_BATCH];
        while !self.stop.load(Ordering::SeqCst) {
            // SAFETY: `epfd` is open for the reactor's lifetime, and
            // `events` is a live buffer of exactly `EVENT_BATCH` entries,
            // matching the `maxevents` argument.
            #[allow(unsafe_code)]
            let n = unsafe {
                sys::epoll_wait(
                    self.epfd.0,
                    events.as_mut_ptr(),
                    EVENT_BATCH as i32,
                    WAIT_MS,
                )
            };
            if n <= 0 {
                // Timeout, or EINTR — both just re-check the stop flag.
                continue;
            }
            for event in &events[..n as usize] {
                let token = event.data;
                let conn = self
                    .conns
                    .lock()
                    .expect("reactor registry lock")
                    .get(&token)
                    .cloned();
                // A vanished token is a connection shutdown raced with a
                // delivered event; ONESHOT means no more will follow.
                if let Some(conn) = conn {
                    self.service_event(token, &conn);
                }
            }
        }
    }

    /// Services one readiness event: one read, feed the session, then
    /// rearm — or deregister on EOF, error, or a poisoned stream.
    fn service_event(&self, token: u64, conn: &Conn) {
        let mut session = conn.session.lock().expect("reactor session lock");
        let mut buf = [0u8; READ_BUF];
        let n = match (&conn.stream).read(&mut buf) {
            Ok(0) => {
                drop(session);
                self.deregister(token);
                return;
            }
            Ok(n) => n,
            Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => 0,
            Err(_) => {
                drop(session);
                self.deregister(token);
                return;
            }
        };
        match session.feed(&buf[..n], &self.service) {
            FeedOutcome::Continue => {
                drop(session);
                self.rearm(token, &conn.stream);
            }
            FeedOutcome::Close => {
                let _ = conn.stream.shutdown(Shutdown::Both);
                drop(session);
                self.deregister(token);
            }
        }
    }

    /// Rearms a ONESHOT-disarmed connection for its next readable event.
    fn rearm(&self, token: u64, stream: &TcpStream) {
        let mut event = sys::EpollEvent {
            events: sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLONESHOT,
            data: token,
        };
        // SAFETY: `epfd` is open, `stream`'s fd is open (its `Conn` is
        // alive — the caller holds it), `event` is live and writable.
        #[allow(unsafe_code)]
        let rc = unsafe {
            sys::epoll_ctl(
                self.epfd.0,
                sys::EPOLL_CTL_MOD,
                stream.as_raw_fd(),
                &mut event,
            )
        };
        if rc < 0 {
            self.deregister(token);
        }
    }

    /// Removes a connection from the epoll set and the registry and fires
    /// its `on_close`. Dropping the last `Conn` handle closes the read
    /// half; the write half lives on in any still-pending reply closures,
    /// whose writes to the dead socket are swallowed by the sinks.
    fn deregister(&self, token: u64) {
        let conn = self
            .conns
            .lock()
            .expect("reactor registry lock")
            .remove(&token);
        if let Some(conn) = conn {
            // SAFETY: `epfd` is open and the socket fd is still open
            // (`conn` keeps it alive past this call); DEL takes no event
            // struct. A failure (fd already gone from the set) is fine —
            // ONESHOT already disarmed it.
            #[allow(unsafe_code)]
            unsafe {
                sys::epoll_ctl(
                    self.epfd.0,
                    sys::EPOLL_CTL_DEL,
                    conn.stream.as_raw_fd(),
                    std::ptr::null_mut(),
                )
            };
            (conn.on_close)();
        }
    }
}

#[cfg(test)]
mod tests {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpListener;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    use super::*;
    use crate::service::ServeConfig;

    /// The reactor drives a real socket end to end without the `Server`
    /// wiring: register, text request, reply, EOF deregistration.
    #[test]
    fn reactor_serves_a_text_connection() {
        let service = Arc::new(Service::start(ServeConfig {
            max_wait: Duration::from_micros(200),
            ..ServeConfig::default()
        }));
        let reactor = Reactor::start(Arc::clone(&service), 2).expect("epoll instance");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let mut client = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        let (accepted, _) = listener.accept().expect("accept");
        let writer = Arc::new(Mutex::new(accepted.try_clone().expect("clone")));
        let closed = Arc::new(AtomicUsize::new(0));
        let on_close = {
            let closed = Arc::clone(&closed);
            Box::new(move || {
                closed.fetch_add(1, Ordering::SeqCst);
            })
        };
        reactor
            .register(accepted, writer, on_close)
            .expect("register");
        assert_eq!(reactor.conns.lock().expect("registry").len(), 1);

        client.write_all(b"ADD 9 vlcsa1 32 2 3\n").expect("request");
        let mut reply = String::new();
        let mut reader = BufReader::new(client.try_clone().expect("clone"));
        reader.read_line(&mut reply).expect("reply");
        assert!(reply.starts_with("OK 9 5 0 "), "{reply:?}");

        // EOF deregisters and fires on_close.
        drop(reader);
        client.shutdown(Shutdown::Both).expect("client close");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while closed.load(Ordering::SeqCst) == 0 {
            assert!(std::time::Instant::now() < deadline, "close not observed");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(reactor.conns.lock().expect("registry").len(), 0);

        reactor.shutdown();
        drop(reactor);
        Arc::into_inner(service)
            .expect("the reactor released its service handle")
            .shutdown();
    }
}

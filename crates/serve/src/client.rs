//! A blocking client for the serve protocol, with pipelining.
//!
//! [`Client::add`] is the one-shot path: submit, wait for that response.
//! For throughput, [`Client::submit`] queues many `ADD`s without waiting
//! and [`Client::recv`] returns completions as the server finishes them —
//! possibly out of submission order, matched back to requests by sequence
//! number (the client tracks each pending request's width so sums parse at
//! the right width).
//!
//! [`Client::connect`] speaks the text protocol; [`Client::connect_binary`]
//! negotiates the binary framing of [`crate::binary`] at connect time
//! (one `HELLO` line, then frames forever) and every method transparently
//! uses frames instead — operands travel as raw little-endian limbs, no
//! hex on either side. The API is identical across the two; only the
//! bytes differ.
//!
//! # Example
//!
//! ```no_run
//! use bitnum::UBig;
//! use vlcsa_serve::Client;
//!
//! let mut client = Client::connect("127.0.0.1:4915").unwrap();
//! let a = UBig::from_u128(7, 64);
//! let b = UBig::from_u128(8, 64);
//! let seq = client.submit("vlcsa1", &a, &b).unwrap();
//! let (done, response) = client.recv().unwrap();
//! assert_eq!(done, seq);
//! assert_eq!(response.unwrap().sum.to_u128(), Some(15));
//! ```

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};

use bitnum::UBig;
use vlcsa::program::Program;

use crate::binary::{self, BinResponse, FrameReadError, HELLO_LINE};
use crate::protocol::{
    format_add, format_program, format_sum, parse_response, RequestError, Response, SloAction,
    StatsReport, OPERAND_RANGE,
};

/// One successful `ADD` answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddResponse {
    /// The exact sum, at the request's width.
    pub sum: UBig,
    /// Carry out of the most significant bit.
    pub cout: bool,
    /// Cycles the lane consumed (1, or 2 after a recovery stall).
    pub cycles: u8,
}

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed or closed mid-conversation.
    Io(std::io::Error),
    /// The server sent a line this client cannot parse.
    Protocol(String),
    /// The request cannot be expressed on the wire at all — e.g. a
    /// step-less program, whose spec is the empty string and so not a
    /// protocol token. Nothing was sent; the connection is still usable.
    Unrepresentable(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Unrepresentable(msg) => {
                write!(f, "request not representable on the wire: {msg}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Which encoding this connection committed to at connect time.
enum Wire {
    /// Newline-delimited text ([`crate::protocol`]).
    Text,
    /// Binary frames ([`crate::binary`]); engine names map to the wire's
    /// ids via the listing fetched during the upgrade handshake.
    Binary { ids: HashMap<String, u8> },
}

/// Resolves an engine name to its binary wire id. Unlike text mode —
/// where unknown names go to the server and come back as structured
/// `ERR`s — binary frames carry ids, so a name the listing doesn't have
/// is unsendable and fails here, before any bytes move.
fn engine_id(ids: &HashMap<String, u8>, engine: &str) -> std::io::Result<u8> {
    ids.get(engine).copied().ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("engine `{engine}` is not in the server's listing"),
        )
    })
}

/// The blocking protocol client — see the module docs.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    next_seq: u64,
    /// Widths of in-flight requests, by sequence number.
    pending: HashMap<u64, usize>,
    wire: Wire,
}

impl Client {
    /// Connects to a serve endpoint, speaking the text protocol.
    ///
    /// # Errors
    ///
    /// Returns the connect error.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true).ok();
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Self {
            writer,
            reader,
            next_seq: 1,
            pending: HashMap::new(),
            wire: Wire::Text,
        })
    }

    /// Connects and upgrades to the binary framing: sends the `HELLO`
    /// line, checks the server's echo, and fetches the engine-id listing
    /// the frames will name engines by. After this returns, every method
    /// of this client speaks frames.
    ///
    /// # Errors
    ///
    /// Fails on connect/socket errors, or with a protocol error when the
    /// other end does not speak the upgrade (e.g. an older server answers
    /// `ERR 0 bad-request …` instead of the echo).
    pub fn connect_binary(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let mut client = Self::connect(addr)?;
        client.writer.write_all(HELLO_LINE.as_bytes())?;
        client.writer.write_all(b"\n")?;
        let ack = client.read_line()?;
        if ack.trim_end_matches(['\r', '\n']) != HELLO_LINE {
            return Err(ClientError::Protocol(format!(
                "server did not accept the binary upgrade: `{}`",
                ack.trim()
            )));
        }
        client.wire = Wire::Binary {
            ids: HashMap::new(),
        };
        let ids = client
            .engines_entries()?
            .into_iter()
            .map(|(id, name)| (name, id))
            .collect();
        client.wire = Wire::Binary { ids };
        Ok(client)
    }

    /// Whether this connection speaks the binary framing.
    pub fn is_binary(&self) -> bool {
        matches!(self.wire, Wire::Binary { .. })
    }

    /// Number of submitted requests not yet answered.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Reads one response frame (binary mode only).
    fn read_response_frame(&mut self) -> Result<(u8, Vec<u8>), ClientError> {
        match binary::read_frame(&mut self.reader) {
            Ok(Some(frame)) => Ok(frame),
            Ok(None) => Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))),
            Err(FrameReadError::Io(e)) => Err(ClientError::Io(e)),
            Err(poison) => Err(ClientError::Protocol(poison.to_string())),
        }
    }

    fn read_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        Ok(line)
    }

    /// Queues one `ADD` without waiting and returns its sequence number.
    /// The operand widths must agree (the request width is theirs).
    ///
    /// # Errors
    ///
    /// Returns the socket write error.
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` disagree on width, or if `engine` is empty
    /// or contains whitespace — the protocol is line- and space-
    /// delimited, so such a name would desync the whole session, not
    /// just fail one request. (An unknown-but-well-formed name is fine:
    /// the server answers it with a structured `ERR`.)
    pub fn submit(&mut self, engine: &str, a: &UBig, b: &UBig) -> std::io::Result<u64> {
        assert_eq!(a.width(), b.width(), "operand width mismatch");
        self.check_engine_token(engine);
        let seq = self.next_seq;
        self.next_seq += 1;
        match &self.wire {
            Wire::Text => {
                let line = format_add(seq, engine, a, b);
                self.writer.write_all(line.as_bytes())?;
                self.writer.write_all(b"\n")?;
            }
            Wire::Binary { ids } => {
                let id = engine_id(ids, engine)?;
                let frame = binary::encode_add(seq, id, a.width(), a.limbs(), b.limbs());
                self.writer.write_all(&frame)?;
            }
        }
        self.pending.insert(seq, a.width());
        Ok(seq)
    }

    /// Queues one `SUM` — a whole n-operand reduction in one request —
    /// without waiting, and returns its sequence number. The response
    /// (via [`Client::recv`]) carries the exact wrapped sum and the
    /// single final carry-resolve's `cout` and `cycles`.
    ///
    /// # Errors
    ///
    /// Returns the socket write error.
    ///
    /// # Panics
    ///
    /// Panics if `operands` is empty or longer than the protocol cap, if
    /// the operands disagree on width, or if `engine` is not a single
    /// protocol token (as [`Client::submit`]).
    pub fn submit_sum(&mut self, engine: &str, operands: &[UBig]) -> std::io::Result<u64> {
        assert!(
            OPERAND_RANGE.contains(&operands.len()),
            "operand count {} outside {OPERAND_RANGE:?}",
            operands.len()
        );
        for op in operands {
            assert_eq!(op.width(), operands[0].width(), "operand width mismatch");
        }
        self.check_engine_token(engine);
        let seq = self.next_seq;
        self.next_seq += 1;
        match &self.wire {
            Wire::Text => {
                let line = format_sum(seq, engine, operands);
                self.writer.write_all(line.as_bytes())?;
                self.writer.write_all(b"\n")?;
            }
            Wire::Binary { ids } => {
                let id = engine_id(ids, engine)?;
                let frame = binary::encode_sum(seq, id, operands);
                self.writer.write_all(&frame)?;
            }
        }
        self.pending.insert(seq, operands[0].width());
        Ok(seq)
    }

    /// One full `SUM` round trip: submit the reduction, wait for *that*
    /// request (don't mix with in-flight `submit`s).
    ///
    /// # Errors
    ///
    /// Fails on the conditions of [`Client::submit_sum`] /
    /// [`Client::recv`], or with the server's [`RequestError`] as a
    /// protocol error.
    pub fn sum(&mut self, engine: &str, operands: &[UBig]) -> Result<AddResponse, ClientError> {
        let seq = self.submit_sum(engine, operands)?;
        self.recv_expecting(seq)
    }

    /// Queues one `PROG` — an arbitrary dataflow add-program — without
    /// waiting, and returns its sequence number.
    ///
    /// # Errors
    ///
    /// Returns the socket write error, or
    /// [`ClientError::Unrepresentable`] — without sending anything — for
    /// a step-less program: its spec is the empty string, which is not a
    /// wire token (run it locally with
    /// [`Program::eval_scalar`] instead; there is nothing to batch).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` does not match the program's input count, if
    /// the inputs disagree on width, or if `engine` is not a single
    /// protocol token.
    pub fn submit_program(
        &mut self,
        engine: &str,
        program: &Program,
        inputs: &[UBig],
    ) -> Result<u64, ClientError> {
        assert_eq!(
            inputs.len(),
            program.inputs(),
            "program input count mismatch"
        );
        for op in inputs {
            assert_eq!(op.width(), inputs[0].width(), "operand width mismatch");
        }
        if program.steps().is_empty() {
            return Err(ClientError::Unrepresentable(format!(
                "a step-less {}-input program has an empty spec; evaluate it locally",
                program.inputs()
            )));
        }
        self.check_engine_token(engine);
        let seq = self.next_seq;
        self.next_seq += 1;
        match &self.wire {
            Wire::Text => {
                let line = format_program(seq, engine, program, inputs);
                self.writer.write_all(line.as_bytes())?;
                self.writer.write_all(b"\n")?;
            }
            Wire::Binary { ids } => {
                let id = engine_id(ids, engine)?;
                let frame = binary::encode_program(seq, id, program, inputs);
                self.writer.write_all(&frame)?;
            }
        }
        self.pending.insert(seq, inputs[0].width());
        Ok(seq)
    }

    /// One full `PROG` round trip: submit the program, wait for *that*
    /// request (don't mix with in-flight `submit`s).
    ///
    /// # Errors
    ///
    /// Fails on the conditions of [`Client::submit_program`] /
    /// [`Client::recv`], or with the server's [`RequestError`] as a
    /// protocol error. A step-less program is a structured
    /// [`ClientError::Unrepresentable`], not a panic, and leaves the
    /// connection usable.
    pub fn run_program(
        &mut self,
        engine: &str,
        program: &Program,
        inputs: &[UBig],
    ) -> Result<AddResponse, ClientError> {
        let seq = self.submit_program(engine, program, inputs)?;
        self.recv_expecting(seq)
    }

    fn check_engine_token(&self, engine: &str) {
        assert!(
            !engine.is_empty() && !engine.contains(char::is_whitespace),
            "engine name `{engine}` is not a single protocol token"
        );
    }

    fn recv_expecting(&mut self, seq: u64) -> Result<AddResponse, ClientError> {
        let (done, response) = self.recv()?;
        if done != seq {
            return Err(ClientError::Protocol(format!(
                "expected response to {seq}, got {done} (mixing add with pipelined submits?)"
            )));
        }
        response.map_err(|e| ClientError::Protocol(format!("{} {}", e.code, e.message)))
    }

    /// Blocks for the next completion, whichever in-flight request it
    /// answers: `(seq, Ok(response))` or `(seq, Err(server error))`.
    ///
    /// # Errors
    ///
    /// Fails on socket errors, on unparseable lines, and on responses that
    /// answer no in-flight sequence number.
    pub fn recv(&mut self) -> Result<(u64, Result<AddResponse, RequestError>), ClientError> {
        if self.is_binary() {
            return self.recv_binary();
        }
        let line = self.read_line()?;
        // Peek the seq token to find the request (and its width) first.
        let seq = line
            .split_ascii_whitespace()
            .nth(1)
            .and_then(|t| t.parse::<u64>().ok())
            .ok_or_else(|| ClientError::Protocol(format!("no sequence in `{}`", line.trim())))?;
        let width = self
            .pending
            .remove(&seq)
            .ok_or_else(|| ClientError::Protocol(format!("response to unknown request {seq}")))?;
        match parse_response(&line, width).map_err(ClientError::Protocol)? {
            Response::Ok {
                sum, cout, cycles, ..
            } => Ok((seq, Ok(AddResponse { sum, cout, cycles }))),
            Response::Err(err) => Ok((seq, Err(err))),
            Response::Engines(_) | Response::Stats(_) | Response::Slo(_) => Err(
                ClientError::Protocol("non-ADD response while waiting for ADD".into()),
            ),
        }
    }

    /// The binary half of [`Client::recv`]: one frame in, the sum rebuilt
    /// from its limbs at the pending request's width.
    fn recv_binary(&mut self) -> Result<(u64, Result<AddResponse, RequestError>), ClientError> {
        let (opcode, body) = self.read_response_frame()?;
        match binary::decode_response(opcode, &body).map_err(ClientError::Protocol)? {
            BinResponse::Ok {
                seq,
                cout,
                cycles,
                sum_limbs,
            } => {
                let width = self.pending.remove(&seq).ok_or_else(|| {
                    ClientError::Protocol(format!("response to unknown request {seq}"))
                })?;
                if sum_limbs.len() != width.div_ceil(64) {
                    return Err(ClientError::Protocol(format!(
                        "OK sum is {} limbs, width {width} needs {}",
                        sum_limbs.len(),
                        width.div_ceil(64)
                    )));
                }
                let sum = UBig::from_limbs(&sum_limbs, width);
                Ok((seq, Ok(AddResponse { sum, cout, cycles })))
            }
            BinResponse::Err(err) => {
                let seq = err.seq;
                self.pending.remove(&seq).ok_or_else(|| {
                    ClientError::Protocol(format!("response to unknown request {seq}"))
                })?;
                Ok((seq, Err(err)))
            }
            other => Err(ClientError::Protocol(format!(
                "non-ADD frame while waiting for ADD: {other:?}"
            ))),
        }
    }

    /// One full round trip: submit, then wait for *that* request (other
    /// pipelined completions arriving first are an error — don't mix `add`
    /// with in-flight `submit`s).
    ///
    /// # Errors
    ///
    /// Fails on the conditions of [`Client::submit`] / [`Client::recv`],
    /// or with the server's [`RequestError`] as a protocol error.
    pub fn add(&mut self, engine: &str, a: &UBig, b: &UBig) -> Result<AddResponse, ClientError> {
        let seq = self.submit(engine, a, b)?;
        self.recv_expecting(seq)
    }

    /// Asks the server for its engine-name list.
    ///
    /// # Errors
    ///
    /// Fails on socket errors or an unparseable reply. Call with no
    /// in-flight requests — an `OK` arriving first is a protocol error.
    pub fn engines(&mut self) -> Result<Vec<String>, ClientError> {
        if self.is_binary() {
            return Ok(self
                .engines_entries()?
                .into_iter()
                .map(|(_, name)| name)
                .collect());
        }
        self.writer.write_all(b"ENGINES\n")?;
        let line = self.read_line()?;
        match parse_response(&line, 1).map_err(ClientError::Protocol)? {
            Response::Engines(names) => Ok(names),
            other => Err(ClientError::Protocol(format!(
                "expected ENGINES response, got {other:?}"
            ))),
        }
    }

    /// The binary `ENGINES` round trip, ids included — what the upgrade
    /// handshake builds the name→id map from.
    fn engines_entries(&mut self) -> Result<Vec<(u8, String)>, ClientError> {
        self.writer.write_all(&binary::encode_engines_request())?;
        let (opcode, body) = self.read_response_frame()?;
        match binary::decode_response(opcode, &body).map_err(ClientError::Protocol)? {
            BinResponse::Engines(entries) => Ok(entries),
            other => Err(ClientError::Protocol(format!(
                "expected ENGINES frame, got {other:?}"
            ))),
        }
    }

    /// Asks the server for its live counters — queue depth, batching
    /// window occupancy, slab word width and per-engine stall totals.
    ///
    /// # Errors
    ///
    /// Fails on socket errors or an unparseable reply. Call with no
    /// in-flight requests — an `OK` arriving first is a protocol error.
    pub fn stats(&mut self) -> Result<StatsReport, ClientError> {
        let line = if self.is_binary() {
            self.writer.write_all(&binary::encode_stats_request())?;
            let (opcode, body) = self.read_response_frame()?;
            match binary::decode_response(opcode, &body).map_err(ClientError::Protocol)? {
                // The frame carries the text snapshot line verbatim: one
                // format, one parser, whatever the transport.
                BinResponse::Stats(line) => line,
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected STATS frame, got {other:?}"
                    )))
                }
            }
        } else {
            self.writer.write_all(b"STATS\n")?;
            self.read_line()?
        };
        match parse_response(&line, 1).map_err(ClientError::Protocol)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(ClientError::Protocol(format!(
                "expected STATS response, got {other:?}"
            ))),
        }
    }

    /// Queries the server's p99 latency budget — `Ok(None)` means no SLO
    /// is set (the `auto` router never degrades).
    ///
    /// # Errors
    ///
    /// Fails on socket errors or an unparseable reply. Call with no
    /// in-flight requests — an `OK` arriving first is a protocol error.
    pub fn slo(&mut self) -> Result<Option<u64>, ClientError> {
        self.slo_command(SloAction::Query)
    }

    /// Sets (`Some(micros)`) or clears (`None`) the server's p99 budget
    /// and returns the budget now in force (the server's echo).
    ///
    /// # Errors
    ///
    /// As [`Client::slo`].
    ///
    /// # Panics
    ///
    /// Panics if `budget` is `Some(0)` — the protocol reserves 0; clear
    /// with `None` / `SLO off` instead.
    pub fn set_slo(&mut self, budget: Option<u64>) -> Result<Option<u64>, ClientError> {
        let action = match budget {
            Some(micros) => {
                assert!(micros >= 1, "an SLO budget must be >= 1 micros");
                SloAction::Set(micros)
            }
            None => SloAction::Clear,
        };
        self.slo_command(action)
    }

    fn slo_command(&mut self, action: SloAction) -> Result<Option<u64>, ClientError> {
        if self.is_binary() {
            self.writer.write_all(&binary::encode_slo_request(action))?;
            let (opcode, body) = self.read_response_frame()?;
            return match binary::decode_response(opcode, &body).map_err(ClientError::Protocol)? {
                BinResponse::Slo(budget) => Ok(budget),
                other => Err(ClientError::Protocol(format!(
                    "expected SLO frame, got {other:?}"
                ))),
            };
        }
        let line = match action {
            SloAction::Query => "SLO\n".to_string(),
            SloAction::Set(micros) => format!("SLO {micros}\n"),
            SloAction::Clear => "SLO off\n".to_string(),
        };
        self.writer.write_all(line.as_bytes())?;
        let line = self.read_line()?;
        match parse_response(&line, 1).map_err(ClientError::Protocol)? {
            Response::Slo(budget) => Ok(budget),
            other => Err(ClientError::Protocol(format!(
                "expected SLO response, got {other:?}"
            ))),
        }
    }

    /// Shuts the connection down (best effort; dropping does the same).
    pub fn close(self) {
        let _ = self.writer.shutdown(Shutdown::Both);
    }
}

//! A blocking client for the serve protocol, with pipelining.
//!
//! [`Client::add`] is the one-shot path: submit, wait for that response.
//! For throughput, [`Client::submit`] queues many `ADD`s without waiting
//! and [`Client::recv`] returns completions as the server finishes them —
//! possibly out of submission order, matched back to requests by sequence
//! number (the client tracks each pending request's width so sums parse at
//! the right width).
//!
//! # Example
//!
//! ```no_run
//! use bitnum::UBig;
//! use vlcsa_serve::Client;
//!
//! let mut client = Client::connect("127.0.0.1:4915").unwrap();
//! let a = UBig::from_u128(7, 64);
//! let b = UBig::from_u128(8, 64);
//! let seq = client.submit("vlcsa1", &a, &b).unwrap();
//! let (done, response) = client.recv().unwrap();
//! assert_eq!(done, seq);
//! assert_eq!(response.unwrap().sum.to_u128(), Some(15));
//! ```

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};

use bitnum::UBig;
use vlcsa::program::Program;

use crate::protocol::{
    format_add, format_program, format_sum, parse_response, RequestError, Response, StatsReport,
    OPERAND_RANGE,
};

/// One successful `ADD` answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddResponse {
    /// The exact sum, at the request's width.
    pub sum: UBig,
    /// Carry out of the most significant bit.
    pub cout: bool,
    /// Cycles the lane consumed (1, or 2 after a recovery stall).
    pub cycles: u8,
}

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed or closed mid-conversation.
    Io(std::io::Error),
    /// The server sent a line this client cannot parse.
    Protocol(String),
    /// The request cannot be expressed on the wire at all — e.g. a
    /// step-less program, whose spec is the empty string and so not a
    /// protocol token. Nothing was sent; the connection is still usable.
    Unrepresentable(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Unrepresentable(msg) => {
                write!(f, "request not representable on the wire: {msg}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// The blocking protocol client — see the module docs.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    next_seq: u64,
    /// Widths of in-flight requests, by sequence number.
    pending: HashMap<u64, usize>,
}

impl Client {
    /// Connects to a serve endpoint.
    ///
    /// # Errors
    ///
    /// Returns the connect error.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true).ok();
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Self {
            writer,
            reader,
            next_seq: 1,
            pending: HashMap::new(),
        })
    }

    /// Number of submitted requests not yet answered.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    fn read_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        Ok(line)
    }

    /// Queues one `ADD` without waiting and returns its sequence number.
    /// The operand widths must agree (the request width is theirs).
    ///
    /// # Errors
    ///
    /// Returns the socket write error.
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` disagree on width, or if `engine` is empty
    /// or contains whitespace — the protocol is line- and space-
    /// delimited, so such a name would desync the whole session, not
    /// just fail one request. (An unknown-but-well-formed name is fine:
    /// the server answers it with a structured `ERR`.)
    pub fn submit(&mut self, engine: &str, a: &UBig, b: &UBig) -> std::io::Result<u64> {
        assert_eq!(a.width(), b.width(), "operand width mismatch");
        self.check_engine_token(engine);
        let seq = self.next_seq;
        self.next_seq += 1;
        let line = format_add(seq, engine, a, b);
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.pending.insert(seq, a.width());
        Ok(seq)
    }

    /// Queues one `SUM` — a whole n-operand reduction in one request —
    /// without waiting, and returns its sequence number. The response
    /// (via [`Client::recv`]) carries the exact wrapped sum and the
    /// single final carry-resolve's `cout` and `cycles`.
    ///
    /// # Errors
    ///
    /// Returns the socket write error.
    ///
    /// # Panics
    ///
    /// Panics if `operands` is empty or longer than the protocol cap, if
    /// the operands disagree on width, or if `engine` is not a single
    /// protocol token (as [`Client::submit`]).
    pub fn submit_sum(&mut self, engine: &str, operands: &[UBig]) -> std::io::Result<u64> {
        assert!(
            OPERAND_RANGE.contains(&operands.len()),
            "operand count {} outside {OPERAND_RANGE:?}",
            operands.len()
        );
        for op in operands {
            assert_eq!(op.width(), operands[0].width(), "operand width mismatch");
        }
        self.check_engine_token(engine);
        let seq = self.next_seq;
        self.next_seq += 1;
        let line = format_sum(seq, engine, operands);
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.pending.insert(seq, operands[0].width());
        Ok(seq)
    }

    /// One full `SUM` round trip: submit the reduction, wait for *that*
    /// request (don't mix with in-flight `submit`s).
    ///
    /// # Errors
    ///
    /// Fails on the conditions of [`Client::submit_sum`] /
    /// [`Client::recv`], or with the server's [`RequestError`] as a
    /// protocol error.
    pub fn sum(&mut self, engine: &str, operands: &[UBig]) -> Result<AddResponse, ClientError> {
        let seq = self.submit_sum(engine, operands)?;
        self.recv_expecting(seq)
    }

    /// Queues one `PROG` — an arbitrary dataflow add-program — without
    /// waiting, and returns its sequence number.
    ///
    /// # Errors
    ///
    /// Returns the socket write error, or
    /// [`ClientError::Unrepresentable`] — without sending anything — for
    /// a step-less program: its spec is the empty string, which is not a
    /// wire token (run it locally with
    /// [`Program::eval_scalar`] instead; there is nothing to batch).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` does not match the program's input count, if
    /// the inputs disagree on width, or if `engine` is not a single
    /// protocol token.
    pub fn submit_program(
        &mut self,
        engine: &str,
        program: &Program,
        inputs: &[UBig],
    ) -> Result<u64, ClientError> {
        assert_eq!(
            inputs.len(),
            program.inputs(),
            "program input count mismatch"
        );
        for op in inputs {
            assert_eq!(op.width(), inputs[0].width(), "operand width mismatch");
        }
        if program.steps().is_empty() {
            return Err(ClientError::Unrepresentable(format!(
                "a step-less {}-input program has an empty spec; evaluate it locally",
                program.inputs()
            )));
        }
        self.check_engine_token(engine);
        let seq = self.next_seq;
        self.next_seq += 1;
        let line = format_program(seq, engine, program, inputs);
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.pending.insert(seq, inputs[0].width());
        Ok(seq)
    }

    /// One full `PROG` round trip: submit the program, wait for *that*
    /// request (don't mix with in-flight `submit`s).
    ///
    /// # Errors
    ///
    /// Fails on the conditions of [`Client::submit_program`] /
    /// [`Client::recv`], or with the server's [`RequestError`] as a
    /// protocol error. A step-less program is a structured
    /// [`ClientError::Unrepresentable`], not a panic, and leaves the
    /// connection usable.
    pub fn run_program(
        &mut self,
        engine: &str,
        program: &Program,
        inputs: &[UBig],
    ) -> Result<AddResponse, ClientError> {
        let seq = self.submit_program(engine, program, inputs)?;
        self.recv_expecting(seq)
    }

    fn check_engine_token(&self, engine: &str) {
        assert!(
            !engine.is_empty() && !engine.contains(char::is_whitespace),
            "engine name `{engine}` is not a single protocol token"
        );
    }

    fn recv_expecting(&mut self, seq: u64) -> Result<AddResponse, ClientError> {
        let (done, response) = self.recv()?;
        if done != seq {
            return Err(ClientError::Protocol(format!(
                "expected response to {seq}, got {done} (mixing add with pipelined submits?)"
            )));
        }
        response.map_err(|e| ClientError::Protocol(format!("{} {}", e.code, e.message)))
    }

    /// Blocks for the next completion, whichever in-flight request it
    /// answers: `(seq, Ok(response))` or `(seq, Err(server error))`.
    ///
    /// # Errors
    ///
    /// Fails on socket errors, on unparseable lines, and on responses that
    /// answer no in-flight sequence number.
    pub fn recv(&mut self) -> Result<(u64, Result<AddResponse, RequestError>), ClientError> {
        let line = self.read_line()?;
        // Peek the seq token to find the request (and its width) first.
        let seq = line
            .split_ascii_whitespace()
            .nth(1)
            .and_then(|t| t.parse::<u64>().ok())
            .ok_or_else(|| ClientError::Protocol(format!("no sequence in `{}`", line.trim())))?;
        let width = self
            .pending
            .remove(&seq)
            .ok_or_else(|| ClientError::Protocol(format!("response to unknown request {seq}")))?;
        match parse_response(&line, width).map_err(ClientError::Protocol)? {
            Response::Ok {
                sum, cout, cycles, ..
            } => Ok((seq, Ok(AddResponse { sum, cout, cycles }))),
            Response::Err(err) => Ok((seq, Err(err))),
            Response::Engines(_) | Response::Stats(_) | Response::Slo(_) => Err(
                ClientError::Protocol("non-ADD response while waiting for ADD".into()),
            ),
        }
    }

    /// One full round trip: submit, then wait for *that* request (other
    /// pipelined completions arriving first are an error — don't mix `add`
    /// with in-flight `submit`s).
    ///
    /// # Errors
    ///
    /// Fails on the conditions of [`Client::submit`] / [`Client::recv`],
    /// or with the server's [`RequestError`] as a protocol error.
    pub fn add(&mut self, engine: &str, a: &UBig, b: &UBig) -> Result<AddResponse, ClientError> {
        let seq = self.submit(engine, a, b)?;
        self.recv_expecting(seq)
    }

    /// Asks the server for its engine-name list.
    ///
    /// # Errors
    ///
    /// Fails on socket errors or an unparseable reply. Call with no
    /// in-flight requests — an `OK` arriving first is a protocol error.
    pub fn engines(&mut self) -> Result<Vec<String>, ClientError> {
        self.writer.write_all(b"ENGINES\n")?;
        let line = self.read_line()?;
        match parse_response(&line, 1).map_err(ClientError::Protocol)? {
            Response::Engines(names) => Ok(names),
            other => Err(ClientError::Protocol(format!(
                "expected ENGINES response, got {other:?}"
            ))),
        }
    }

    /// Asks the server for its live counters — queue depth, batching
    /// window occupancy, slab word width and per-engine stall totals.
    ///
    /// # Errors
    ///
    /// Fails on socket errors or an unparseable reply. Call with no
    /// in-flight requests — an `OK` arriving first is a protocol error.
    pub fn stats(&mut self) -> Result<StatsReport, ClientError> {
        self.writer.write_all(b"STATS\n")?;
        let line = self.read_line()?;
        match parse_response(&line, 1).map_err(ClientError::Protocol)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(ClientError::Protocol(format!(
                "expected STATS response, got {other:?}"
            ))),
        }
    }

    /// Queries the server's p99 latency budget — `Ok(None)` means no SLO
    /// is set (the `auto` router never degrades).
    ///
    /// # Errors
    ///
    /// Fails on socket errors or an unparseable reply. Call with no
    /// in-flight requests — an `OK` arriving first is a protocol error.
    pub fn slo(&mut self) -> Result<Option<u64>, ClientError> {
        self.slo_command("SLO\n")
    }

    /// Sets (`Some(micros)`) or clears (`None`) the server's p99 budget
    /// and returns the budget now in force (the server's echo).
    ///
    /// # Errors
    ///
    /// As [`Client::slo`].
    ///
    /// # Panics
    ///
    /// Panics if `budget` is `Some(0)` — the protocol reserves 0; clear
    /// with `None` / `SLO off` instead.
    pub fn set_slo(&mut self, budget: Option<u64>) -> Result<Option<u64>, ClientError> {
        let line = match budget {
            Some(micros) => {
                assert!(micros >= 1, "an SLO budget must be >= 1 micros");
                format!("SLO {micros}\n")
            }
            None => "SLO off\n".to_string(),
        };
        self.slo_command(&line)
    }

    fn slo_command(&mut self, line: &str) -> Result<Option<u64>, ClientError> {
        self.writer.write_all(line.as_bytes())?;
        let line = self.read_line()?;
        match parse_response(&line, 1).map_err(ClientError::Protocol)? {
            Response::Slo(budget) => Ok(budget),
            other => Err(ClientError::Protocol(format!(
                "expected SLO response, got {other:?}"
            ))),
        }
    }

    /// Shuts the connection down (best effort; dropping does the same).
    pub fn close(self) {
        let _ = self.writer.shutdown(Shutdown::Both);
    }
}

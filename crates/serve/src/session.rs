//! Transport-independent request dispatch: the per-request surface of
//! both wire protocols, factored out of the TCP front-end.
//!
//! [`server`](crate::server) owns sockets, threads, and framing; this
//! module owns what happens *between* a decoded request and the
//! [`Service`] — validation-error mapping, submit calls, and reply
//! routing. Responses leave through a caller-supplied sink:
//!
//! * [`ResponseSink`] receives parsed [`Response`] values (the text
//!   protocol's unit of output);
//! * [`FrameSink`] receives pre-encoded binary frames (the framed
//!   protocol's unit of output).
//!
//! The TCP server implements both sinks on `Mutex<TcpStream>`; the C ABI
//! ([`vlcsa-ffi`]) and in-process tests implement them on plain
//! collectors. Either way, worker threads call the sink directly when an
//! issue group completes — possibly out of submission order, possibly
//! concurrently — so sinks must be `Send + Sync` and serialize their own
//! output.
//!
//! [`vlcsa-ffi`]: https://docs.rs/vlcsa-ffi

use std::sync::Arc;

use vlcsa::route::AUTO_ENGINE;

use crate::binary::{
    self, BinRequest, FrameReadError, ENGINE_ID_AUTO, HEADER_LEN, HELLO_LINE, MAX_FRAME_BODY,
    PROTOCOL_VERSION,
};
use crate::protocol::{
    format_response, parse_request, ErrorCode, Request, RequestError, Response, SloAction,
};
use crate::service::{Service, SubmitError};

/// Where parsed text-protocol responses go. Implementations must
/// tolerate concurrent calls from worker threads and serialize their own
/// output (the TCP server locks the socket; a test sink locks a `Vec`).
pub trait ResponseSink: Send + Sync + 'static {
    /// Delivers one response. Errors are the sink's problem: a dispatch
    /// has nobody to tell that the client hung up.
    fn send(&self, response: &Response);
}

/// Where pre-encoded binary frames go; same concurrency contract as
/// [`ResponseSink`].
pub trait FrameSink: Send + Sync + 'static {
    /// Delivers one complete, already-encoded frame.
    fn send_frame(&self, frame: &[u8]);
}

/// Maps a [`SubmitError`] onto the wire error-code space, echoing the
/// request's sequence number. One mapping for both protocols (and the C
/// ABI, which reuses the same codes).
pub fn submit_error(seq: u64, err: SubmitError) -> RequestError {
    let code = match err {
        SubmitError::UnknownEngine(_) => ErrorCode::UnknownEngine,
        SubmitError::WidthMismatch(..) => ErrorCode::BadRequest,
        SubmitError::BadWidth(_) => ErrorCode::BadWidth,
        SubmitError::BadOperandCount(_) => ErrorCode::BadRequest,
        SubmitError::BadLimbs(_) => ErrorCode::BadOperand,
        SubmitError::Stopped => ErrorCode::Shutdown,
    };
    RequestError {
        seq,
        code,
        message: err.to_string(),
    }
}

fn submit_error_response(seq: u64, err: SubmitError) -> Response {
    Response::Err(submit_error(seq, err))
}

/// Dispatches one text-protocol line: parse, validate, submit; answer
/// errors inline through the sink. `ADD`/`SUM`/`PROG` replies arrive
/// later, from a worker thread, when the batching window flushes — the
/// sink is retained (via `Arc`) until every in-flight reply has fired.
pub fn dispatch_text<S: ResponseSink>(line: &str, service: &Service, sink: &Arc<S>) {
    match parse_request(line) {
        Ok(Request::Engines) => {
            // Engine names are width-independent; any registry lists
            // them. 64 is as good a cache key as any. `auto` rides
            // along so clients discover the pseudo-engine too.
            let names = service.registries().at(64).names();
            let names = names
                .into_iter()
                .map(str::to_string)
                .chain(std::iter::once(AUTO_ENGINE.to_string()))
                .collect();
            sink.send(&Response::Engines(names));
        }
        Ok(Request::Stats) => {
            sink.send(&Response::Stats(service.stats()));
        }
        Ok(Request::Slo(action)) => {
            match action {
                SloAction::Query => {}
                SloAction::Set(micros) => service.set_slo(Some(micros)),
                SloAction::Clear => service.set_slo(None),
            }
            // Always echo the budget now in force, so a set doubles
            // as a readback and a query is just the degenerate case.
            sink.send(&Response::Slo(service.slo()));
        }
        Ok(Request::Add {
            seq,
            engine,
            width: _,
            a,
            b,
        }) => {
            let reply_to = Arc::clone(sink);
            let submitted = service.submit(
                &engine,
                a,
                b,
                Box::new(move |result| {
                    reply_to.send(&Response::Ok {
                        seq,
                        sum: result.sum,
                        cout: result.cout,
                        cycles: result.cycles,
                    });
                }),
            );
            if let Err(err) = submitted {
                sink.send(&submit_error_response(seq, err));
            }
        }
        Ok(Request::Sum {
            seq,
            engine,
            width: _,
            operands,
        }) => {
            let reply_to = Arc::clone(sink);
            let submitted = service.submit_sum(
                &engine,
                &operands,
                Box::new(move |result| {
                    reply_to.send(&Response::Ok {
                        seq,
                        sum: result.sum,
                        cout: result.cout,
                        cycles: result.cycles,
                    });
                }),
            );
            if let Err(err) = submitted {
                sink.send(&submit_error_response(seq, err));
            }
        }
        Ok(Request::Program {
            seq,
            engine,
            width: _,
            program,
            inputs,
        }) => {
            let reply_to = Arc::clone(sink);
            let submitted = service.submit_program(
                &engine,
                &program,
                &inputs,
                Box::new(move |result| {
                    reply_to.send(&Response::Ok {
                        seq,
                        sum: result.sum,
                        cout: result.cout,
                        cycles: result.cycles,
                    });
                }),
            );
            if let Err(err) = submitted {
                sink.send(&submit_error_response(seq, err));
            }
        }
        Err(err) => sink.send(&Response::Err(err)),
    }
}

/// Dispatches one binary frame (already read and length-delimited):
/// decode, validate, submit; answer errors as `ERR` frames through the
/// sink. `names` is the width-independent engine listing frame ids index
/// into — the caller computes it once per connection, not per frame.
/// Body-level malformation is answered and absorbed here; only the
/// *caller* can see header-level poison (bad version, oversized length),
/// which is a close-the-stream event.
pub fn dispatch_binary<S: FrameSink>(
    opcode: u8,
    body: &[u8],
    names: &[&'static str],
    service: &Service,
    sink: &Arc<S>,
) {
    match binary::decode_request(opcode, body, names) {
        Ok(BinRequest::Add {
            seq,
            engine,
            width,
            a,
            b,
        }) => {
            let reply_to = Arc::clone(sink);
            // The limbs go straight from the frame into the slab
            // layout; the reply's limbs come straight out of it.
            let submitted = service.submit_limbs(
                engine,
                width,
                a,
                b,
                Box::new(move |result| {
                    reply_to.send_frame(&binary::encode_ok(
                        seq,
                        result.cout,
                        result.cycles,
                        result.sum.limbs(),
                    ));
                }),
            );
            if let Err(err) = submitted {
                sink.send_frame(&binary::encode_err(&submit_error(seq, err)));
            }
        }
        Ok(BinRequest::Sum {
            seq,
            engine,
            width: _,
            operands,
        }) => {
            let reply_to = Arc::clone(sink);
            let submitted = service.submit_sum(
                engine,
                &operands,
                Box::new(move |result| {
                    reply_to.send_frame(&binary::encode_ok(
                        seq,
                        result.cout,
                        result.cycles,
                        result.sum.limbs(),
                    ));
                }),
            );
            if let Err(err) = submitted {
                sink.send_frame(&binary::encode_err(&submit_error(seq, err)));
            }
        }
        Ok(BinRequest::Prog {
            seq,
            engine,
            width: _,
            program,
            inputs,
        }) => {
            let reply_to = Arc::clone(sink);
            let submitted = service.submit_program(
                engine,
                &program,
                &inputs,
                Box::new(move |result| {
                    reply_to.send_frame(&binary::encode_ok(
                        seq,
                        result.cout,
                        result.cycles,
                        result.sum.limbs(),
                    ));
                }),
            );
            if let Err(err) = submitted {
                sink.send_frame(&binary::encode_err(&submit_error(seq, err)));
            }
        }
        Ok(BinRequest::Engines) => {
            let entries: Vec<(u8, &str)> = names
                .iter()
                .enumerate()
                .map(|(i, n)| (i as u8, *n))
                .chain(std::iter::once((ENGINE_ID_AUTO, AUTO_ENGINE)))
                .collect();
            sink.send_frame(&binary::encode_engines(&entries));
        }
        Ok(BinRequest::Stats) => {
            // The counters snapshot rides as its text line — one
            // format, one parser, whatever the transport.
            let line = format_response(&Response::Stats(service.stats()));
            sink.send_frame(&binary::encode_stats(&line));
        }
        Ok(BinRequest::Slo(action)) => {
            match action {
                SloAction::Query => {}
                SloAction::Set(micros) => service.set_slo(Some(micros)),
                SloAction::Clear => service.set_slo(None),
            }
            sink.send_frame(&binary::encode_slo(service.slo()));
        }
        Err(err) => sink.send_frame(&binary::encode_err(&err)),
    }
}

/// How a [`ByteSession::feed`] left the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedOutcome {
    /// The stream is still healthy; feed more bytes as they arrive.
    Continue,
    /// The stream is finished — poisoned framing or an undecodable line.
    /// Any answerable error was already answered through the sink; the
    /// caller should shut the connection down.
    Close,
}

/// The event-driven twin of the server's blocking read loops: an
/// incremental byte-stream session for transports that deliver bytes in
/// arbitrary slices (the `reactor` feature's epoll reader pool) instead
/// of owning a blocking per-connection read loop.
///
/// Semantics match `serve_connection` / `serve_binary` in
/// [`server`](crate::server) exactly:
///
/// * text lines are dispatched as they complete; blank lines are ignored
///   and do not burn the upgrade opportunity;
/// * a **first** non-empty line equal to [`HELLO_LINE`] upgrades the
///   session to binary framing — the ack (the upgrade line echoed) leaves
///   through [`FrameSink`] as raw bytes, the last non-frame output the
///   connection ever sees;
/// * framed mode consumes length-delimited frames; an untrustworthy
///   header (unknown version byte, lying length prefix) answers one `ERR`
///   frame and reports [`FeedOutcome::Close`];
/// * a line that is not valid UTF-8 closes the stream, as the blocking
///   reader's `read_line` error path does.
///
/// One instance is one connection's state; callers serialize `feed` per
/// connection (the reactor holds a per-connection lock). Replies to
/// batched submissions arrive later, from worker threads, through the
/// same sink — identical to the blocking front-end.
pub struct ByteSession<S> {
    sink: Arc<S>,
    buf: Vec<u8>,
    mode: SessionMode,
    first: bool,
}

enum SessionMode {
    Text,
    Binary { names: Vec<&'static str> },
}

impl<S: ResponseSink + FrameSink> ByteSession<S> {
    /// A fresh session in text mode, answering through `sink`.
    pub fn new(sink: Arc<S>) -> Self {
        Self {
            sink,
            buf: Vec::new(),
            mode: SessionMode::Text,
            first: true,
        }
    }

    /// Consumes `bytes` — any split, including an empty slice — and
    /// dispatches every request they complete. Incomplete trailing input
    /// is buffered for the next call.
    pub fn feed(&mut self, bytes: &[u8], service: &Service) -> FeedOutcome {
        self.buf.extend_from_slice(bytes);
        loop {
            match &self.mode {
                SessionMode::Text => {
                    let Some(nl) = self.buf.iter().position(|&b| b == b'\n') else {
                        return FeedOutcome::Continue;
                    };
                    let line: Vec<u8> = self.buf.drain(..=nl).collect();
                    let Ok(line) = std::str::from_utf8(&line) else {
                        return FeedOutcome::Close;
                    };
                    if line.trim().is_empty() {
                        continue;
                    }
                    if self.first && line.trim_end_matches(['\r', '\n']) == HELLO_LINE {
                        // The ack is the upgrade line itself; it rides the
                        // frame sink because it is raw bytes, not a
                        // `Response`. The exchange counts as neither
                        // protocol's traffic, as in the blocking loop.
                        self.sink.send_frame(format!("{HELLO_LINE}\n").as_bytes());
                        self.mode = SessionMode::Binary {
                            names: service.registries().at(64).names(),
                        };
                        continue;
                    }
                    self.first = false;
                    service.note_text_request();
                    dispatch_text(line, service, &self.sink);
                }
                SessionMode::Binary { names } => {
                    if self.buf.len() < HEADER_LEN {
                        return FeedOutcome::Continue;
                    }
                    let version = self.buf[0];
                    let len = u32::from_le_bytes(self.buf[2..6].try_into().expect("4 header bytes"))
                        as usize;
                    let poison = if version != PROTOCOL_VERSION {
                        Some(FrameReadError::BadVersion(version))
                    } else if len > MAX_FRAME_BODY {
                        Some(FrameReadError::Oversized(len))
                    } else {
                        None
                    };
                    if let Some(poison) = poison {
                        service.note_binary_request();
                        self.sink.send_frame(&binary::encode_err(&RequestError {
                            seq: 0,
                            code: ErrorCode::BadRequest,
                            message: poison.to_string(),
                        }));
                        return FeedOutcome::Close;
                    }
                    if self.buf.len() < HEADER_LEN + len {
                        return FeedOutcome::Continue;
                    }
                    let frame: Vec<u8> = self.buf.drain(..HEADER_LEN + len).collect();
                    service.note_binary_request();
                    dispatch_binary(frame[1], &frame[HEADER_LEN..], names, service, &self.sink);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Mutex;
    use std::time::{Duration, Instant};

    use super::*;
    use crate::service::ServeConfig;

    /// A sink that collects formatted response lines — the whole point of
    /// the split: the text protocol exercised with no socket anywhere.
    struct Lines(Mutex<Vec<String>>);

    impl ResponseSink for Lines {
        fn send(&self, response: &Response) {
            self.0
                .lock()
                .expect("test sink lock")
                .push(format_response(response));
        }
    }

    impl FrameSink for Lines {
        fn send_frame(&self, frame: &[u8]) {
            // Tests only need to see that *a* frame arrived; stash the
            // opcode byte (frame[1], after the version byte).
            self.0
                .lock()
                .expect("test sink lock")
                .push(format!("frame:{:#04x}", frame[1]));
        }
    }

    fn drain(sink: &Arc<Lines>, want: usize) -> Vec<String> {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            {
                let lines = sink.0.lock().expect("test sink lock");
                if lines.len() >= want {
                    return lines.clone();
                }
            }
            assert!(Instant::now() < deadline, "timed out waiting for replies");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn text_dispatch_needs_no_socket() {
        let service = Service::start(ServeConfig {
            max_wait: Duration::from_micros(200),
            ..ServeConfig::default()
        });
        let sink = Arc::new(Lines(Mutex::new(Vec::new())));
        dispatch_text("ADD 7 carry-select 32 2 3", &service, &sink);
        dispatch_text("SUM 8 ripple 32 4 1 2 3 4", &service, &sink);
        dispatch_text("nonsense", &service, &sink);
        let mut lines = drain(&sink, 3);
        lines.sort();
        // Cycles may be 1 or 2 (a recovery stall), so match the prefix.
        assert!(
            lines.iter().any(|l| l.starts_with("OK 7 5 0 ")),
            "{lines:?}"
        );
        assert!(
            lines.iter().any(|l| l.starts_with("OK 8 a 0 ")),
            "{lines:?}"
        );
        assert!(
            lines.iter().any(|l| l.starts_with("ERR 0 bad-request")),
            "{lines:?}"
        );
        service.shutdown();
    }

    #[test]
    fn text_dispatch_maps_submit_errors_inline() {
        let service = Service::start(ServeConfig::default());
        let sink = Arc::new(Lines(Mutex::new(Vec::new())));
        dispatch_text("ADD 3 no-such-engine 32 1 2", &service, &sink);
        let lines = drain(&sink, 1);
        assert!(
            lines[0].starts_with("ERR 3 unknown-engine"),
            "{:?}",
            lines[0]
        );
        service.shutdown();
    }

    #[test]
    fn binary_dispatch_needs_no_socket() {
        let service = Service::start(ServeConfig {
            max_wait: Duration::from_micros(200),
            ..ServeConfig::default()
        });
        let names = service.registries().at(64).names();
        let sink = Arc::new(Lines(Mutex::new(Vec::new())));
        // A STATS frame is opcode-only; an ADD frame carries real limbs.
        let stats = binary::encode_stats_request();
        dispatch_binary(
            stats[1],
            &stats[binary::HEADER_LEN..],
            &names,
            &service,
            &sink,
        );
        let add = binary::encode_add(5, 0, 64, &[7], &[8]);
        dispatch_binary(add[1], &add[binary::HEADER_LEN..], &names, &service, &sink);
        let mut lines = drain(&sink, 2);
        lines.sort();
        assert!(
            lines.contains(&format!("frame:{:#04x}", binary::resp::STATS)),
            "{lines:?}"
        );
        assert!(
            lines.contains(&format!("frame:{:#04x}", binary::resp::OK)),
            "{lines:?}"
        );
        service.shutdown();
    }

    /// A byte-accurate sink for [`ByteSession`] tests: text responses as
    /// their wire lines, frames (and the HELLO ack) verbatim.
    struct Wire(Mutex<Vec<Vec<u8>>>);

    impl ResponseSink for Wire {
        fn send(&self, response: &Response) {
            let mut line = format_response(response).into_bytes();
            line.push(b'\n');
            self.0.lock().expect("test sink lock").push(line);
        }
    }

    impl FrameSink for Wire {
        fn send_frame(&self, frame: &[u8]) {
            self.0.lock().expect("test sink lock").push(frame.to_vec());
        }
    }

    fn drain_wire(sink: &Arc<Wire>, want: usize) -> Vec<Vec<u8>> {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            {
                let out = sink.0.lock().expect("test sink lock");
                if out.len() >= want {
                    return out.clone();
                }
            }
            assert!(Instant::now() < deadline, "timed out waiting for replies");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn byte_session_reassembles_split_text_lines() {
        let service = Service::start(ServeConfig {
            max_wait: Duration::from_micros(200),
            ..ServeConfig::default()
        });
        let sink = Arc::new(Wire(Mutex::new(Vec::new())));
        let mut session = ByteSession::new(Arc::clone(&sink));
        // A request split mid-token across three feeds dispatches exactly
        // once, when its newline arrives.
        assert_eq!(
            session.feed(b"ADD 7 carry-s", &service),
            FeedOutcome::Continue
        );
        assert_eq!(
            session.feed(b"elect 32 2 3", &service),
            FeedOutcome::Continue
        );
        assert!(sink.0.lock().expect("test sink lock").is_empty());
        assert_eq!(session.feed(b"\n", &service), FeedOutcome::Continue);
        let out = drain_wire(&sink, 1);
        let line = String::from_utf8(out[0].clone()).expect("text reply");
        assert!(line.starts_with("OK 7 5 0 "), "{line:?}");
        service.shutdown();
    }

    #[test]
    fn byte_session_upgrades_and_frames_byte_at_a_time() {
        let service = Service::start(ServeConfig {
            max_wait: Duration::from_micros(200),
            ..ServeConfig::default()
        });
        let sink = Arc::new(Wire(Mutex::new(Vec::new())));
        let mut session = ByteSession::new(Arc::clone(&sink));
        // Blank lines (even CRLF) before the HELLO do not burn the
        // upgrade; then a whole ADD frame arrives one byte at a time.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"\r\n");
        bytes.extend_from_slice(b"HELLO BIN 1\n");
        bytes.extend_from_slice(&binary::encode_add(5, 0, 64, &[7], &[8]));
        for b in bytes {
            assert_eq!(session.feed(&[b], &service), FeedOutcome::Continue);
        }
        let out = drain_wire(&sink, 2);
        assert_eq!(out[0], b"HELLO BIN 1\n".to_vec(), "ack first");
        assert_eq!(out[1][1], binary::resp::OK, "then the OK frame");
        let report = service.stats();
        assert_eq!(
            report.proto_text, 0,
            "the upgrade is neither protocol's traffic"
        );
        assert_eq!(report.proto_bin, 1);
        service.shutdown();
    }

    #[test]
    fn byte_session_poisoned_header_answers_err_and_closes() {
        let service = Service::start(ServeConfig::default());
        let sink = Arc::new(Wire(Mutex::new(Vec::new())));
        let mut session = ByteSession::new(Arc::clone(&sink));
        assert_eq!(
            session.feed(b"HELLO BIN 1\n", &service),
            FeedOutcome::Continue
        );
        // Version byte 9: untrustworthy header, stream unrecoverable.
        let header = [9u8, 0x01, 0, 0, 0, 0];
        assert_eq!(session.feed(&header, &service), FeedOutcome::Close);
        let out = drain_wire(&sink, 2);
        assert_eq!(out[1][1], binary::resp::ERR, "{out:?}");
        service.shutdown();
    }

    #[test]
    fn byte_session_closes_on_invalid_utf8_line() {
        let service = Service::start(ServeConfig::default());
        let sink = Arc::new(Wire(Mutex::new(Vec::new())));
        let mut session = ByteSession::new(Arc::clone(&sink));
        assert_eq!(
            session.feed(&[0xff, 0xfe, b'\n'], &service),
            FeedOutcome::Close
        );
        assert!(sink.0.lock().expect("test sink lock").is_empty());
        service.shutdown();
    }
}
